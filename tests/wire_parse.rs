//! The wire parser's safety contract: `parse_frame` never panics and every
//! rejection is a typed `ParseError`.
//!
//! Three layers of assault:
//!
//! 1. a seeded corpus of *valid* frames (IPv4/IPv6 × TCP/UDP × VLAN ×
//!    payload sizes) that must parse and round-trip their flow identity;
//! 2. deterministic fuzz: every prefix truncation, seeded byte flips and
//!    pure garbage over the corpus — the parser must return `Ok` or a
//!    typed error, never panic (a panic aborts the test process);
//! 3. a table of hand-built malformations, each pinned to its *exact*
//!    `ParseError` variant, and the engine-level proof that rejected
//!    frames land in the dispatcher's parse-error buckets instead of
//!    reaching any tenant.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{
    Deployment, EngineBuilder, FramePush, ParseErrorCounters, Pegasus, RawIngress, RawVerdict,
};
use pegasus::datasets::{extract_views, generate_trace, peerrush, GenConfig};
use pegasus::net::packet::{ParseError, PROTO_TCP};
use pegasus::net::wire::{
    build_frame, parse_frame, FrameSpec, IpAddrs, ETHERTYPE_QINQ, ETHERTYPE_VLAN,
};
use pegasus::net::{FiveTuple, FrameBatch, RawFrame};
use pegasus::switch::SwitchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A seeded corpus of structurally valid frames covering the parse graph.
fn corpus(seed: u64, count: usize) -> Vec<(FrameSpec, Vec<u8>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let payload_len = rng.gen_range(0usize..120);
        let payload: Vec<u8> = (0..payload_len).map(|_| rng.gen_range(0u64..256) as u8).collect();
        let (sp, dp) = (rng.gen_range(1u16..u16::MAX), rng.gen_range(1u16..u16::MAX));
        let tcp = i % 2 == 0;
        let mut spec = if i % 3 == 0 {
            let mut src = [0u8; 16];
            let mut dst = [0u8; 16];
            for b in src.iter_mut().chain(dst.iter_mut()) {
                *b = rng.gen_range(0u64..256) as u8;
            }
            if tcp {
                FrameSpec::v6_tcp(src, dst, sp, dp, payload)
            } else {
                FrameSpec::v6_udp(src, dst, sp, dp, payload)
            }
        } else {
            let (src, dst) = (rng.gen_range(1u32..u32::MAX), rng.gen_range(1u32..u32::MAX));
            if tcp {
                FrameSpec::v4_tcp(src, dst, sp, dp, payload)
            } else {
                FrameSpec::v4_udp(src, dst, sp, dp, payload)
            }
        };
        if i % 5 == 0 {
            spec = spec.with_vlan(rng.gen_range(1u16..4095));
        }
        spec.ttl = rng.gen_range(1u64..256) as u8;
        if tcp {
            spec.tcp_flags = rng.gen_range(0u64..256) as u8;
        }
        let frame = build_frame(&spec);
        out.push((spec, frame));
    }
    out
}

#[test]
fn valid_corpus_parses_and_round_trips() {
    for (spec, frame) in corpus(0xc0ffee, 200) {
        let p = parse_frame(&frame)
            .unwrap_or_else(|e| panic!("valid frame rejected: {e} (spec {spec:?})"));
        assert_eq!(p.flow.src_port, spec.src_port);
        assert_eq!(p.flow.dst_port, spec.dst_port);
        assert_eq!(p.flow.protocol, spec.protocol);
        assert_eq!(p.ttl, spec.ttl);
        assert_eq!(p.vlan, spec.vlan.map(|v| v & 0x0fff));
        assert_eq!(p.payload, &spec.payload[..], "payload must be the exact sub-slice");
        if spec.protocol == PROTO_TCP {
            assert_eq!(p.tcp_flags, spec.tcp_flags);
        }
        match (&spec.ip, &p.ip) {
            (IpAddrs::V4 { src, dst }, IpAddrs::V4 { src: ps, dst: pd }) => {
                assert_eq!((src, dst), (ps, pd));
                assert_eq!(p.flow.src_ip, *src);
            }
            (IpAddrs::V6 { src, dst }, IpAddrs::V6 { src: ps, dst: pd }) => {
                assert_eq!((src, dst), (ps, pd));
            }
            (a, b) => panic!("IP version changed in flight: {a:?} vs {b:?}"),
        }
    }
}

/// Every truncation of every corpus frame: `Ok` (payload-only cut) or a
/// typed error — never a panic, and cuts inside the headers must be typed.
#[test]
fn every_prefix_truncation_is_total() {
    for (_, frame) in corpus(0x7a04c4, 60) {
        for cut in 0..frame.len() {
            let _ = parse_frame(&frame[..cut]);
        }
        // The full frame still parses after the sweep (no interior
        // mutation happened).
        assert!(parse_frame(&frame).is_ok());
    }
}

/// Seeded byte-flip fuzzing: flip 1–4 bytes anywhere and parse. The result
/// is either Ok (a don't-care byte) or a typed error.
#[test]
fn seeded_byte_flips_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xf1b);
    let mut oks = 0u64;
    let mut errs = 0u64;
    for (_, frame) in corpus(0xbadc0de, 120) {
        for _ in 0..40 {
            let mut mutant = frame.clone();
            for _ in 0..rng.gen_range(1usize..=4) {
                let at = rng.gen_range(0usize..mutant.len());
                mutant[at] ^= rng.gen_range(1u64..256) as u8;
            }
            match parse_frame(&mutant) {
                Ok(_) => oks += 1,
                Err(_) => errs += 1,
            }
        }
    }
    // Both outcomes must actually occur, or the harness is vacuous.
    assert!(oks > 0, "no mutant parsed — mutation harness too destructive");
    assert!(errs > 0, "no mutant rejected — checksum/structure checks dead");
}

/// Random garbage of every small size parses to a typed result.
#[test]
fn pure_garbage_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x6a5ba6e);
    for len in 0..200 {
        for _ in 0..20 {
            let junk: Vec<u8> = (0..len).map(|_| rng.gen_range(0u64..256) as u8).collect();
            let _ = parse_frame(&junk);
        }
    }
}

/// Hand-built malformations, each mapped to its exact variant.
#[test]
fn malformed_inputs_map_to_exact_variants() {
    let base_udp = build_frame(&FrameSpec::v4_udp(0x0a000001, 0x0a000002, 4000, 53, vec![9; 20]));
    let base_tcp = build_frame(&FrameSpec::v4_tcp(0x0a000001, 0x0a000002, 4000, 443, vec![9; 20]));

    // Truncated IPv4 header: cut 10 bytes into the IP header.
    assert_eq!(
        parse_frame(&base_udp[..14 + 10]),
        Err(ParseError::Truncated { layer: "ipv4", needed: 20, got: 10 })
    );

    // Bad IHL: claim a 16-byte header (IHL 4 < 5). Checked before the
    // checksum, so no fix-up needed.
    let mut bad_ihl = base_udp.clone();
    bad_ihl[14] = 0x44;
    assert_eq!(parse_frame(&bad_ihl), Err(ParseError::Malformed("ihl")));

    // Bad IP version nibble.
    let mut bad_ver = base_udp.clone();
    bad_ver[14] = 0x55;
    assert_eq!(parse_frame(&bad_ver), Err(ParseError::Malformed("ip version")));

    // VLAN-in-VLAN: wrap a tagged frame in a second 802.1Q tag.
    let tagged = build_frame(&FrameSpec::v4_udp(1, 2, 3, 4, vec![]).with_vlan(10));
    let mut qinq = tagged[..12].to_vec();
    qinq.extend_from_slice(&ETHERTYPE_VLAN.to_be_bytes());
    qinq.extend_from_slice(&20u16.to_be_bytes());
    qinq.extend_from_slice(&tagged[12..]);
    assert_eq!(parse_frame(&qinq), Err(ParseError::NestedVlan));

    // Provider tag (802.1ad) outer: also nested-VLAN territory.
    let mut stag = tagged.clone();
    stag[12..14].copy_from_slice(&ETHERTYPE_QINQ.to_be_bytes());
    assert_eq!(parse_frame(&stag), Err(ParseError::NestedVlan));

    // Snaplen-cut TCP header: 8 of 20 TCP bytes captured.
    assert_eq!(
        parse_frame(&base_tcp[..14 + 20 + 8]),
        Err(ParseError::Truncated { layer: "tcp", needed: 20, got: 8 })
    );

    // Snaplen cut inside claimed TCP options.
    let mut opts = base_tcp.clone();
    opts[14 + 20 + 12] = 0xa0; // data offset 10 words = 40 bytes
    let cut = &opts[..14 + 20 + 24];
    assert_eq!(
        parse_frame(cut),
        Err(ParseError::Truncated { layer: "tcp options", needed: 40, got: 24 })
    );

    // Corrupted IPv4 checksum.
    let mut bad_csum = base_udp.clone();
    bad_csum[14 + 8] ^= 0xff; // flip TTL without recomputing
    assert_eq!(parse_frame(&bad_csum), Err(ParseError::BadChecksum));

    // ARP is unsupported, typed.
    let mut arp = base_udp.clone();
    arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
    assert_eq!(parse_frame(&arp), Err(ParseError::UnsupportedEtherType(0x0806)));

    // ICMP is unsupported, typed (recompute the checksum so the protocol
    // field is the only lie).
    let mut icmp = base_udp.clone();
    icmp[14 + 9] = 1;
    icmp[14 + 10..14 + 12].copy_from_slice(&[0, 0]);
    let csum = pegasus::net::packet::internet_checksum(&icmp[14..14 + 20]);
    icmp[14 + 10..14 + 12].copy_from_slice(&csum.to_be_bytes());
    assert_eq!(parse_frame(&icmp), Err(ParseError::UnsupportedProtocol(1)));

    // UDP length field below the header size.
    let mut short_udp = base_udp.clone();
    short_udp[14 + 20 + 4..14 + 20 + 6].copy_from_slice(&4u16.to_be_bytes());
    assert_eq!(parse_frame(&short_udp), Err(ParseError::Malformed("udp length")));
}

/// Batched-ingress fuzz: a repeating corpus stream with seeded byte-flips
/// and truncations injected *mid-batch* must (a) never panic, (b) land
/// every rejected frame in exactly the parse-error bucket a direct
/// `parse_frame` predicts, and (c) give every surviving frame the same
/// verdict — and the ingress the same counters — as the frame-at-a-time
/// path over the identical stream.
#[test]
fn batched_ingress_survives_mutants_and_matches_per_frame() {
    // A small flow population repeated enough rounds that surviving flows
    // warm up past WINDOW and actually classify (mutants only corrupt
    // their own slot, not the flow's later packets).
    let specs = corpus(0x8a7c4, 24);
    let mut rng = StdRng::seed_from_u64(0xba7c);
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for round in 0..14 {
        for (i, (_, frame)) in specs.iter().enumerate() {
            let idx = round * specs.len() + i;
            if idx.is_multiple_of(3) {
                let mut mutant = frame.clone();
                if idx.is_multiple_of(2) {
                    for _ in 0..rng.gen_range(1usize..=3) {
                        let at = rng.gen_range(0usize..mutant.len());
                        mutant[at] ^= rng.gen_range(1u64..256) as u8;
                    }
                } else {
                    mutant.truncate(rng.gen_range(0usize..mutant.len()));
                }
                frames.push(mutant);
            } else {
                frames.push(frame.clone());
            }
        }
    }

    // What a direct parse predicts for every frame: the per-kind buckets
    // both ingress paths must reproduce exactly.
    let mut expected = ParseErrorCounters::default();
    let mut survivors = 0u64;
    for f in &frames {
        match parse_frame(f) {
            Ok(_) => survivors += 1,
            Err(e) => expected.record(e.kind()),
        }
    }
    assert!(expected.total() > 0, "mutation harness produced no rejects — vacuous");
    assert!(survivors > 0, "mutation harness killed every frame — vacuous");

    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 });
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment: Deployment<MlpB> = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    let artifact = deployment.engine_artifact().expect("artifact");

    // Frame-at-a-time reference.
    let mut per_frame = RawIngress::with_defaults(&artifact).expect("raw ingress");
    let mut ref_preds: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    for (i, f) in frames.iter().enumerate() {
        match per_frame.process(RawFrame::new(i as u64 * 37, f)).expect("processes") {
            RawVerdict::Classified(class) => {
                let flow = parse_frame(f).expect("classified implies parsed").flow;
                ref_preds.entry(flow).or_default().push(class);
            }
            RawVerdict::Warmup | RawVerdict::Rejected(_) => {}
        }
    }

    // Fused batches of 16 — rejects land mid-batch without consuming a
    // slot, so batches straddle mutants in every alignment.
    let mut batched = RawIngress::with_defaults(&artifact).expect("raw ingress");
    let mut batch = FrameBatch::with_capacity(16);
    let mut batch_preds: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    let mut flush = |ing: &mut RawIngress, batch: &mut FrameBatch| {
        let verdicts = ing.process_batch(batch).expect("batch processes");
        for (flow, v) in batch.flows().iter().zip(verdicts) {
            if let Some(class) = v {
                batch_preds.entry(*flow).or_default().push(*class);
            }
        }
        batch.clear();
    };
    for (i, f) in frames.iter().enumerate() {
        batched.push_batch_frame(&mut batch, RawFrame::new(i as u64 * 37, f));
        if batch.is_full() {
            flush(&mut batched, &mut batch);
        }
    }
    if !batch.is_empty() {
        flush(&mut batched, &mut batch);
    }

    let a = per_frame.stats();
    let b = batched.stats();
    assert_eq!(a.parse, expected, "per-frame buckets diverged from direct parses");
    assert_eq!(b.parse, expected, "batched buckets diverged from direct parses");
    assert_eq!(a.packets, survivors, "every surviving frame is processed");
    assert_eq!(b.packets, a.packets);
    assert_eq!(b.classified, a.classified);
    assert_eq!(b.warmup, a.warmup);
    assert_eq!(b.flows, a.flows);
    assert_eq!(b.table, a.table, "flow-table counters diverged under batching");
    assert!(a.classified > 0, "no surviving flow classified — fuzz stream too short");
    assert_eq!(batch_preds, ref_preds, "surviving frames' verdicts diverged under batching");
}

/// Rejected frames surface in the engine's parse-error buckets — per
/// error kind, without reaching any tenant (no tenants are even attached).
#[test]
fn engine_counts_rejected_frames_by_kind() {
    let server = EngineBuilder::new().build().expect("builds");
    let ingress = server.ingress();
    let control = server.control();

    let good = build_frame(&FrameSpec::v4_udp(1, 2, 3, 4, vec![1, 2, 3]));
    // A parseable frame with no tenants is Unrouted, not a parse error.
    assert_eq!(ingress.push_frame(RawFrame::new(0, &good)).expect("push"), FramePush::Unrouted);

    let mut truncated = good.clone();
    truncated.truncate(14 + 6);
    let mut bad_csum = good.clone();
    bad_csum[14 + 8] ^= 0xff;
    let mut arp = good.clone();
    arp[12..14].copy_from_slice(&0x0806u16.to_be_bytes());
    let mut bad_ihl = good.clone();
    bad_ihl[14] = 0x42;
    for (frame, expect_kind) in [
        (&truncated, "truncated"),
        (&bad_csum, "checksum"),
        (&arp, "unsupported"),
        (&bad_ihl, "malformed"),
    ] {
        match ingress.push_frame(RawFrame::new(1, frame)).expect("push") {
            FramePush::Rejected(_) => {}
            other => panic!("{expect_kind}: expected rejection, got {other:?}"),
        }
    }

    let stats = control.stats().expect("stats");
    assert_eq!(stats.parse_errors.truncated, 1);
    assert_eq!(stats.parse_errors.checksum, 1);
    assert_eq!(stats.parse_errors.unsupported, 1);
    assert_eq!(stats.parse_errors.malformed, 1);
    assert_eq!(stats.parse_errors.total(), 4);
    assert_eq!(stats.unrouted, 1);

    let report = server.shutdown().expect("shuts down");
    assert_eq!(report.parse_errors.total(), 4, "terminal report keeps the counters");
    assert_eq!(report.unrouted, 1);
}

//! Bounded flow-state semantics of the serving engine.
//!
//! The engine's per-flow state now lives in fixed-capacity, hash-indexed
//! [`FlowTable`]s instead of unbounded maps. These tests pin the three
//! contracts that refactor must honor:
//!
//! 1. **Bounded ≡ unbounded.** With capacity ≥ distinct live flows (and no
//!    aging), streaming verdicts are bit-identical to a sequential replay
//!    through an unbounded map — at 1, 2, and 4 shards.
//! 2. **Eviction means amnesia.** A flow whose slot was reclaimed re-warms
//!    from scratch when it returns, exactly like a flow whose switch
//!    registers were reallocated.
//! 3. **Alias mode is the hardware.** The engine's per-flow-pipeline
//!    occupancy accounting (a [`FlowTable`] in alias mode) reproduces,
//!    slot for slot, the collision behavior of the classifier's
//!    hash-indexed register files.
//!
//! Plus the control-plane contract: per-tenant state budgets are priced
//! against the switch model's stateful SRAM and over-budget attaches are
//! rejected.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{
    Deployment, EngineBuilder, Pegasus, PegasusError, StreamConfig, TenantConfig,
    HOST_WINDOW_STATE_BITS,
};
use pegasus::datasets::{extract_views, generate_trace, iscxvpn, peerrush, GenConfig};
use pegasus::net::{
    FiveTuple, FlowTable, FlowTableConfig, FlowTracker, StatFeatures, Trace, TracePacket, WINDOW,
};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;

fn train_mlp_b(trace: &Trace) -> Deployment<MlpB> {
    let views = extract_views(trace);
    let data = ModelData::new().with_stat(&views.stat);
    Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys")
}

/// Sequential replay through a genuinely unbounded map — the pre-refactor
/// semantics the bounded table must reproduce when capacity suffices.
fn unbounded_reference(
    deployment: &Deployment<MlpB>,
    trace: &Trace,
) -> HashMap<FiveTuple, Vec<usize>> {
    let mut tracker = FlowTracker::bounded(
        WINDOW,
        // Far more slots than flows: observationally an unbounded map.
        FlowTableConfig::with_capacity(16 * trace.flow_count().max(1)),
    );
    let mut out: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    for pkt in &trace.packets {
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes = StatFeatures::extract(
            state,
            &obs,
            pkt.flow.protocol,
            pkt.tcp_flags,
            pkt.flow.src_port,
            pkt.flow.dst_port,
            pkt.ttl,
            pkt.payload_head.len() as u16,
        )
        .to_f32();
        let class = deployment.classify(&codes).expect("classifies");
        out.entry(pkt.flow).or_default().push(class);
    }
    out
}

#[test]
fn bounded_streaming_matches_unbounded_when_capacity_suffices() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 10, seed: 77 });
    let deployment = train_mlp_b(&trace);
    let reference = unbounded_reference(&deployment, &trace);
    assert!(!reference.is_empty());

    // The tightest sufficient capacity: exactly the distinct flow count
    // (each shard owns a full table and holds at most that many flows).
    let tight = FlowTableConfig::with_capacity(trace.flow_count());
    for shards in [1usize, 2, 4] {
        let cfg = StreamConfig {
            shards,
            record_predictions: true,
            flow_table: tight,
            ..StreamConfig::default()
        };
        let report = deployment.stream_with(&mut trace.source(), &cfg).expect("streams");
        assert_eq!(report.table.evictions(), 0, "{shards} shards: nothing may be evicted");
        assert_eq!(report.table.occupancy, report.flows, "{shards} shards");
        assert_eq!(report.table.capacity, (trace.flow_count() * shards) as u64);
        let preds = report.predictions.expect("recording requested");
        assert_eq!(preds.len(), reference.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &reference {
            assert_eq!(
                preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged from the unbounded replay"
            );
        }
    }
}

fn pkt(flow: FiveTuple, ts_micros: u64) -> TracePacket {
    TracePacket { ts_micros, flow, wire_len: 100, payload_head: Vec::new(), tcp_flags: 0, ttl: 64 }
}

#[test]
fn evicted_flow_rewarms_from_scratch_on_return() {
    // One-slot table, one shard: flow B's arrival evicts flow A, so a
    // returning A must warm up all over again — its windows are gone the
    // way a reallocated register slot's contents would be.
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 4, seed: 5 });
    let deployment = train_mlp_b(&trace);

    let a = FiveTuple::new(10, 20, 1000, 80, 6);
    let b = FiveTuple::new(11, 21, 1001, 81, 6);
    let mut packets: Vec<TracePacket> = Vec::new();
    // A completes one window (classifies exactly once)...
    for i in 0..WINDOW as u64 {
        packets.push(pkt(a, i * 1000));
    }
    // ...B steals the slot...
    packets.push(pkt(b, 20_000));
    // ...and A returns for another full window: with its state retained it
    // would classify on every one of these packets; evicted, it re-warms
    // and classifies exactly once more.
    for i in 0..WINDOW as u64 {
        packets.push(pkt(a, 30_000 + i * 1000));
    }

    let server = EngineBuilder::new().shards(1).build().expect("builds");
    let control = server.control();
    let token = control
        .attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().flow_capacity(1).record_predictions(true),
        )
        .expect("attaches");
    let ingress = server.ingress();
    for p in packets {
        ingress.push(p).expect("pushes");
    }
    let mut report = server.shutdown().expect("shuts down");
    let result = report.take_tenant(token).expect("tenant").result.expect("serves");
    assert_eq!(result.classified, 2, "one classification per completed window");
    assert_eq!(result.warmup as usize, 2 * (WINDOW - 1) + 1);
    // A evicted by B, B evicted by A's return: two capacity evictions.
    assert_eq!(result.table.evictions_capacity, 2);
    assert_eq!(result.table.occupancy, 1);
    let preds = result.predictions.expect("recording requested");
    assert_eq!(preds[&a].len(), 2, "A classified once per window, re-warmed in between");
}

#[test]
fn flow_pipeline_occupancy_matches_register_file_aliasing() {
    use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};

    // CNN-L keeps its per-flow state in hash-indexed registers; the
    // engine's occupancy table must mirror the exact slot-sharing those
    // registers exhibit. Verdicts must also be unchanged by the
    // accounting refactor (same forked-reference check style as
    // stream_engine.rs, one shard is enough here — collisions are
    // per-register-file).
    let trace = generate_trace(&iscxvpn(), &GenConfig { flows_per_class: 4, seed: 41 });
    let views = extract_views(&trace);
    let data = ModelData::new().with_raw(&views.raw).with_seq(&views.seq);
    let deployment = Pegasus::new(CnnL::fit(
        &views.raw,
        &views.seq,
        CnnLVariant::v44(),
        &TrainSettings::quick(),
    ))
    .options(CompileOptions { clustering_depth: 5, ..Default::default() })
    .compile(&data)
    .expect("compiles")
    .deploy(&SwitchConfig::tofino2())
    .expect("deploys");
    let slots = deployment.flow().expect("flow plane").flow_slots();

    for shards in [1usize, 2] {
        // Reference: one alias table per shard, fed the same packets the
        // shard's register file sees.
        let mut tables: Vec<FlowTable<()>> =
            (0..shards).map(|_| FlowTable::new(FlowTableConfig::aliased(slots))).collect();
        for p in &trace.packets {
            tables[p.flow.shard_of(shards)].admit(p.flow, || ());
        }
        let expect_occupancy: u64 = tables.iter().map(|t| t.len() as u64).sum();
        let expect_collisions: u64 = tables.iter().map(|t| t.stats().alias_collisions).sum();

        let cfg = StreamConfig { shards, ..StreamConfig::default() };
        let report = deployment.stream_with(&mut trace.source(), &cfg).expect("streams");
        assert_eq!(report.flows, expect_occupancy, "{shards} shards: occupied register slots");
        assert_eq!(report.table.occupancy, expect_occupancy, "{shards} shards");
        assert_eq!(
            report.table.alias_collisions, expect_collisions,
            "{shards} shards: slot-ownership changes"
        );
        assert_eq!(report.table.capacity, (slots * shards) as u64);
        // The register SRAM those slots model, in bytes.
        let fc = deployment.flow().expect("flow plane");
        assert_eq!(report.table.state_bytes, (fc.register_state_bits() / 8) * shards as u64);
    }
}

#[test]
fn attach_rejects_state_budgets_exceeding_the_sram_model() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 4, seed: 5 });
    let deployment = train_mlp_b(&trace);
    let budget = SwitchConfig::tofino2().register_bits_total;
    let over = (budget / HOST_WINDOW_STATE_BITS + 1) as usize;

    let server = EngineBuilder::new().build().expect("builds");
    let control = server.control();
    // Over budget: rejected before any slab is allocated.
    match control.attach(
        deployment.engine_artifact().expect("artifact"),
        TenantConfig::new().flow_capacity(over),
    ) {
        Err(PegasusError::StateBudget { needed_bits, budget_bits }) => {
            assert!(needed_bits > budget_bits);
            assert_eq!(budget_bits, budget);
        }
        other => panic!("expected StateBudget, got {other:?}"),
    }
    // Zero capacity: invalid configuration.
    assert!(matches!(
        control.attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().flow_capacity(0),
        ),
        Err(PegasusError::InvalidConfig { field: "flow_capacity", .. })
    ));
    // The largest in-budget capacity attaches fine — and a same-shape swap
    // re-validates and passes.
    let token = control
        .attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().flow_capacity(over - 1),
        )
        .expect("in-budget attach");
    control.swap(token, deployment.engine_artifact().expect("artifact")).expect("swap fits too");
    server.shutdown().expect("shuts down");
}

#[test]
fn churn_keeps_state_flat_while_evicting() {
    // Heavy flow churn through a small table: occupancy saturates at the
    // capacity, state bytes stay flat, and the overflow surfaces as
    // eviction counters rather than memory growth.
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 24, seed: 9 });
    let deployment = train_mlp_b(&trace);
    let capacity = 8usize;
    assert!(trace.flow_count() > 4 * capacity, "trace must overwhelm the table");

    let cfg = StreamConfig {
        shards: 1,
        flow_table: FlowTableConfig::with_capacity(capacity),
        ..StreamConfig::default()
    };
    let report = deployment.stream_with(&mut trace.source(), &cfg).expect("streams");
    assert_eq!(report.table.capacity, capacity as u64);
    assert!(report.table.occupancy <= capacity as u64);
    assert!(
        report.table.evictions_capacity > 0,
        "churn past the capacity must evict: {:?}",
        report.table
    );
    // Flat slab + at most `capacity` windows of heap.
    let slab_only = FlowTracker::bounded(WINDOW, FlowTableConfig::with_capacity(capacity));
    assert!(report.table.state_bytes <= slab_only.state_bytes() + (capacity * WINDOW * 24) as u64);
}

//! Cross-crate property tests: fusion preserves end-to-end switch
//! predictions, and the compiled pipeline respects every configured
//! hardware limit. Randomized over seeded cases (no external frameworks —
//! the workspace's deterministic RNG drives the sweep).

use pegasus::core::compile::{compile, CompileOptions, CompileTarget};
use pegasus::core::fusion::fuse_basic;
use pegasus::core::primitives::{MapFn, PrimitiveProgram};
use pegasus::core::runtime::DataplaneModel;
use pegasus::nn::Tensor;
use pegasus::switch::SwitchConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A two-layer scorer with randomized weights, built unfused.
fn random_program(weights: &[f32]) -> PrimitiveProgram {
    let mut p = PrimitiveProgram::new(8);
    let bn_scale: Vec<f32> = weights[0..8].iter().map(|w| 0.02 + w.abs() * 0.02).collect();
    let bn = p.map(p.input, MapFn::Affine { scale: bn_scale, shift: vec![0.0; 8] });
    let segs = p.partition_strided(bn, 4, 4);
    let w0 = Tensor::from_vec(weights[8..16].to_vec(), &[4, 2]);
    let w1 = Tensor::from_vec(weights[16..24].to_vec(), &[4, 2]);
    let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.1, -0.1] });
    let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![0.0, 0.0] });
    let s = p.sum_reduce(&[m0, m1]);
    let relu = p.map(s, MapFn::Relu);
    let w2 = Tensor::from_vec(weights[24..28].to_vec(), &[2, 2]);
    let out = p.map(relu, MapFn::MatVec { weight: w2, bias: vec![0.0, 0.0] });
    p.set_output(out);
    p
}

/// Clustered inputs: a handful of prototype rows plus small noise — the
/// i.i.d.-from-structured-distribution setting fuzzy matching assumes
/// (§4.2; uniform-random inputs have no clusters to learn).
fn code_inputs(seed: u64, n: usize) -> Vec<Vec<f32>> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        (state >> 33) as u32
    };
    let prototypes: Vec<Vec<f32>> =
        (0..6).map(|_| (0..8).map(|_| (next() % 256) as f32).collect()).collect();
    (0..n)
        .map(|_| {
            let proto = &prototypes[(next() % 6) as usize];
            proto.iter().map(|&v| (v + (next() % 21) as f32 - 10.0).clamp(0.0, 255.0)).collect()
        })
        .collect()
}

/// Weights bounded away from zero: fuzzy matching only promises fidelity on
/// value distributions it can cluster — a degenerate program whose output is
/// almost always exactly zero gives the training set nothing to learn from
/// (and gives the dataplane nothing to match), which is outside the paper's
/// operating regime.
fn random_weights(rng: &mut StdRng) -> Vec<f32> {
    (0..28)
        .map(|_| {
            let mag = rng.gen_range(0.3f32..1.0);
            if rng.gen::<bool>() {
                mag
            } else {
                -mag
            }
        })
        .collect()
}

/// Fused and unfused programs agree (float), and the compiled pipeline is a
/// deterministic function with valid verdicts. (Accuracy fidelity is a
/// claim about trained models on their data distribution — the paper's §7.5
/// comparison — and lives in the model-level integration tests; arbitrary
/// random programs with arbitrary prototypes can starve a cluster and
/// legitimately diverge.)
#[test]
fn fusion_and_compilation_preserve_predictions() {
    for case in 0u64..8 {
        let mut rng = StdRng::seed_from_u64(case);
        let weights = random_weights(&mut rng);
        let seed = rng.gen_range(0u64..1000);
        let unfused = random_program(&weights);
        let mut fused = unfused.clone();
        fuse_basic(&mut fused);
        let train = code_inputs(seed, 1200);
        for x in train.iter().take(30) {
            let a = unfused.eval(x);
            let b = fused.eval(x);
            for (u, v) in a.iter().zip(b.iter()) {
                assert!(
                    (u - v).abs() < 1e-2,
                    "case {case}: fusion changed semantics: {a:?} vs {b:?}"
                );
            }
        }
        let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
        let pipeline =
            compile(&fused, &train, &opts, CompileTarget::Classify, "prop").expect("compiles");
        let dp = DataplaneModel::deploy(pipeline, &SwitchConfig::tofino2()).expect("fits");
        let test = code_inputs(seed ^ 0xabc, 40);
        for x in &test {
            let a = dp.classify(x).expect("classifies");
            let b = dp.classify(x).expect("classifies");
            assert_eq!(a, b, "case {case}: classification must be deterministic");
            assert!(a < 2, "case {case}: verdict must be a valid class");
        }
    }
}

/// Deployed programs never exceed the configured hardware limits.
#[test]
fn deployed_resources_within_limits() {
    for case in 0u64..8 {
        let mut rng = StdRng::seed_from_u64(case ^ 0x5eed);
        let weights: Vec<f32> = (0..28).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let depth = rng.gen_range(3usize..7);
        let mut prog = random_program(&weights);
        fuse_basic(&mut prog);
        let train = code_inputs(7, 800);
        let opts = CompileOptions { clustering_depth: depth, ..Default::default() };
        let pipeline =
            compile(&prog, &train, &opts, CompileTarget::Classify, "lim").expect("compiles");
        let cfg = SwitchConfig::tofino2();
        let dp = DataplaneModel::deploy(pipeline, &cfg).expect("fits");
        let r = dp.resource_report();
        assert!(r.stages_used <= cfg.stages, "case {case}");
        assert!(r.sram_frac <= 1.0, "case {case}");
        assert!(r.tcam_frac <= 1.0, "case {case}");
        assert!(r.bus_frac <= 1.0, "case {case}");
    }
}

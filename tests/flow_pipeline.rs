//! Integration tests of the per-flow windowed pipeline (CNN-L) driven by
//! real trace replay, including fault injection.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{flow_hash, CnnL, CnnLVariant, BYTES};
use pegasus::core::models::TrainSettings;
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::net::{Replayer, ReplayOptions, TracePacket};
use pegasus::switch::SwitchConfig;

fn trained_cnn_l() -> (CnnL, pegasus::core::flowpipe::FlowClassifier, pegasus::net::Trace) {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 18, seed: 51 });
    let (train, _val, test) = split_by_flow(&trace, 51);
    let tv = extract_views(&train);
    let mut m = CnnL::train(
        &tv.raw,
        &tv.seq,
        CnnLVariant::v28(),
        &TrainSettings { epochs: 5, ..TrainSettings::quick() },
    );
    let dp = m
        .deploy(
            &tv.raw,
            &tv.seq,
            &CompileOptions { clustering_depth: 5, ..Default::default() },
            &SwitchConfig::tofino2(),
        )
        .expect("CNN-L fits");
    (m, dp, test)
}

#[test]
fn replay_classifies_above_chance() {
    let (_m, mut dp, test) = trained_cnn_l();
    let f1 = CnnL::evaluate_on_trace(&mut dp, &test).f1;
    assert!(f1 > 1.0 / 3.0, "CNN-L replay F1 {f1}");
}

#[test]
fn replay_is_deterministic_after_reset() {
    let (_m, mut dp, test) = trained_cnn_l();
    let a = CnnL::evaluate_on_trace(&mut dp, &test).f1;
    let b = CnnL::evaluate_on_trace(&mut dp, &test).f1; // evaluate resets state
    assert_eq!(a, b);
}

#[test]
fn survives_packet_loss() {
    // Fault injection: with 10% drops the pipeline must still produce
    // verdicts (windows just take longer to fill) and stay above chance.
    let (_m, mut dp, test) = trained_cnn_l();
    dp.reset();
    let mut verdicts = 0u64;
    let mut correct = 0u64;
    let mut sink = |pkt: &TracePacket| {
        let codes: Vec<f32> = pkt
            .payload_head
            .iter()
            .take(BYTES)
            .map(|&b| f32::from(b))
            .chain(std::iter::repeat(0.0))
            .take(BYTES)
            .collect();
        let v = dp.on_packet(flow_hash(&pkt.flow), pkt.ts_micros, pkt.wire_len, &codes);
        if let (Some(pred), Some(label)) = (v.predicted, test.label_of(&pkt.flow)) {
            verdicts += 1;
            if pred == label {
                correct += 1;
            }
        }
    };
    let stats = Replayer::with_options(ReplayOptions {
        drop_chance: 0.10,
        truncate_chance: 0.0,
        seed: 5,
    })
    .replay(&test, &mut sink);
    assert!(stats.dropped > 0, "fault injection should drop packets");
    assert!(verdicts > 0, "windows should still fill under loss");
    assert!(
        correct as f64 / verdicts as f64 > 1.0 / 3.0,
        "accuracy under loss {correct}/{verdicts}"
    );
}

//! Integration tests of the per-flow windowed pipeline (CNN-L) driven by
//! real trace replay, including fault injection.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{flow_hash, CnnL, CnnLVariant, BYTES};
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{Deployment, Pegasus};
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::net::{ReplayOptions, Replayer, TracePacket};
use pegasus::switch::SwitchConfig;

fn trained_cnn_l() -> (Deployment<CnnL>, pegasus::net::Trace) {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 18, seed: 51 });
    let (train, _val, test) = split_by_flow(&trace, 51);
    let tv = extract_views(&train);
    let m = CnnL::fit(
        &tv.raw,
        &tv.seq,
        CnnLVariant::v28(),
        &TrainSettings { epochs: 5, ..TrainSettings::quick() },
    );
    let data = ModelData::new().with_raw(&tv.raw).with_seq(&tv.seq);
    let dp = Pegasus::new(m)
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("CNN-L fits");
    (dp, test)
}

#[test]
fn replay_classifies_above_chance() {
    let (mut dp, test) = trained_cnn_l();
    let f1 = CnnL::evaluate_on_trace(dp.flow_mut().expect("per-flow"), &test).expect("replays").f1;
    assert!(f1 > 1.0 / 3.0, "CNN-L replay F1 {f1}");
}

#[test]
fn replay_is_deterministic_after_reset() {
    let (mut dp, test) = trained_cnn_l();
    let fc = dp.flow_mut().expect("per-flow");
    let a = CnnL::evaluate_on_trace(fc, &test).expect("replays").f1;
    let b = CnnL::evaluate_on_trace(fc, &test).expect("replays").f1; // evaluate resets state
    assert_eq!(a, b);
}

#[test]
fn row_inference_is_rejected_on_flow_pipelines() {
    // Per-flow pipelines need packet context; the stateless entry points
    // must refuse cleanly instead of producing garbage.
    let (dp, _test) = trained_cnn_l();
    let err = dp.classify(&[0.0; BYTES]).unwrap_err();
    assert!(matches!(err, pegasus::core::PegasusError::FlowStateRequired { .. }), "{err:?}");
}

#[test]
fn survives_packet_loss() {
    // Fault injection: with 10% drops the pipeline must still produce
    // verdicts (windows just take longer to fill) and stay above chance.
    let (mut dp, test) = trained_cnn_l();
    let fc = dp.flow_mut().expect("per-flow");
    fc.reset();
    let mut verdicts = 0u64;
    let mut correct = 0u64;
    let mut sink = |pkt: &TracePacket| {
        let codes: Vec<f32> = pkt
            .payload_head
            .iter()
            .take(BYTES)
            .map(|&b| f32::from(b))
            .chain(std::iter::repeat(0.0))
            .take(BYTES)
            .collect();
        let v = fc
            .on_packet(flow_hash(&pkt.flow), pkt.ts_micros, pkt.wire_len, &codes)
            .expect("arity matches");
        if let (Some(pred), Some(label)) = (v.predicted, test.label_of(&pkt.flow)) {
            verdicts += 1;
            if pred == label {
                correct += 1;
            }
        }
    };
    let stats =
        Replayer::with_options(ReplayOptions { drop_chance: 0.10, truncate_chance: 0.0, seed: 5 })
            .replay(&test, &mut sink);
    assert!(stats.dropped > 0, "fault injection should drop packets");
    assert!(verdicts > 0, "windows should still fill under loss");
    assert!(
        correct as f64 / verdicts as f64 > 1.0 / 3.0,
        "accuracy under loss {correct}/{verdicts}"
    );
}

//! Cross-crate integration tests: the full train → compile → deploy →
//! classify path for the Pegasus models, on all three synthetic datasets —
//! everything through the `DataplaneNet` trait and the `Pegasus` builder.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::rnn_b::RnnB;
use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
use pegasus::core::Pegasus;
use pegasus::datasets::{all_datasets, extract_views, generate_trace, split_by_flow, GenConfig};
use pegasus::switch::SwitchConfig;

#[test]
fn mlp_b_deploys_on_every_dataset() {
    for spec in all_datasets() {
        let trace = generate_trace(&spec, &GenConfig { flows_per_class: 15, seed: 31 });
        let (train, _val, test) = split_by_flow(&trace, 31);
        let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
        let data = ModelData::new().with_stat(&train);
        let m = MlpB::train(&data, &TrainSettings::quick()).expect("trains");
        let dp = Pegasus::new(m)
            .compile(&data)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name))
            .deploy(&SwitchConfig::tofino2())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let r = dp.resource_report();
        assert!(r.stages_used <= 20, "{}: {} stages", spec.name, r.stages_used);
        let f1 = dp.evaluate(&test).expect("evaluates").f1;
        let chance = 1.0 / spec.num_classes() as f64;
        assert!(f1 > chance, "{}: F1 {f1} at/below chance {chance}", spec.name);
    }
}

#[test]
fn rnn_b_transition_tables_deploy_and_classify() {
    let spec = &all_datasets()[0];
    let trace = generate_trace(spec, &GenConfig { flows_per_class: 20, seed: 32 });
    let (train, _val, test) = split_by_flow(&trace, 32);
    let (train, test) = (extract_views(&train).seq, extract_views(&test).seq);
    let data = ModelData::new().with_seq(&train);
    let m = RnnB::train(&data, &TrainSettings::quick()).expect("trains");
    let dp = Pegasus::new(m)
        .options(CompileOptions { clustering_depth: 4, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("fits");
    let f1 = dp.evaluate(&test).expect("evaluates").f1;
    assert!(f1 > 0.4, "RNN-B dataplane F1 {f1}");
}

#[test]
fn compiled_predictions_deterministic_across_deploys() {
    let spec = &all_datasets()[0];
    let trace = generate_trace(spec, &GenConfig { flows_per_class: 12, seed: 33 });
    let (train, _val, test) = split_by_flow(&trace, 33);
    let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
    let data = ModelData::new().with_stat(&train);
    let m = MlpB::train(&data, &TrainSettings::quick()).expect("trains");
    let d1 =
        Pegasus::new(m).compile(&data).expect("compiles").deploy(&SwitchConfig::tofino2()).unwrap();
    let rows: Vec<Vec<f32>> = (0..test.len().min(100)).map(|r| test.x.row(r).to_vec()).collect();
    let a = d1.classify_batch(&rows);
    // Rebuild an identical deployment from the same trained weights.
    let d2 = Pegasus::new(d1.into_model())
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .unwrap();
    let b = d2.classify_batch(&rows);
    for (r, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.as_ref().expect("classifies"),
            y.as_ref().expect("classifies"),
            "row {r} diverged between identical compiles"
        );
    }
}

//! Cross-crate integration tests: the full train → compile → deploy →
//! classify path for the Pegasus models, on all three synthetic datasets.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::rnn_b::RnnB;
use pegasus::core::models::TrainSettings;
use pegasus::core::runtime::DataplaneModel;
use pegasus::datasets::{
    all_datasets, extract_views, generate_trace, split_by_flow, GenConfig,
};
use pegasus::switch::SwitchConfig;

#[test]
fn mlp_b_deploys_on_every_dataset() {
    for spec in all_datasets() {
        let trace = generate_trace(&spec, &GenConfig { flows_per_class: 15, seed: 31 });
        let (train, _val, test) = split_by_flow(&trace, 31);
        let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
        let mut m = MlpB::train(&train, None, &TrainSettings::quick());
        let pipeline = m.compile(&train, &CompileOptions::default(), false);
        let mut dp = DataplaneModel::deploy(pipeline, &SwitchConfig::tofino2())
            .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        let r = dp.resource_report();
        assert!(r.stages_used <= 20, "{}: {} stages", spec.name, r.stages_used);
        let f1 = dp.evaluate(&test).f1;
        let chance = 1.0 / spec.num_classes() as f64;
        assert!(f1 > chance, "{}: F1 {f1} at/below chance {chance}", spec.name);
    }
}

#[test]
fn rnn_b_transition_tables_deploy_and_classify() {
    let spec = &all_datasets()[0];
    let trace = generate_trace(spec, &GenConfig { flows_per_class: 20, seed: 32 });
    let (train, _val, test) = split_by_flow(&trace, 32);
    let (train, test) = (extract_views(&train).seq, extract_views(&test).seq);
    let m = RnnB::train(&train, &TrainSettings::quick());
    let pipeline = m.compile(&train, &CompileOptions { clustering_depth: 4, ..Default::default() });
    let mut dp = DataplaneModel::deploy(pipeline, &SwitchConfig::tofino2()).expect("fits");
    let f1 = dp.evaluate(&test).f1;
    assert!(f1 > 0.4, "RNN-B dataplane F1 {f1}");
}

#[test]
fn compiled_predictions_deterministic_across_deploys() {
    let spec = &all_datasets()[0];
    let trace = generate_trace(spec, &GenConfig { flows_per_class: 12, seed: 33 });
    let (train, _val, test) = split_by_flow(&trace, 33);
    let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
    let mut m = MlpB::train(&train, None, &TrainSettings::quick());
    let p1 = m.compile(&train, &CompileOptions::default(), false);
    let p2 = m.compile(&train, &CompileOptions::default(), false);
    let mut d1 = DataplaneModel::deploy(p1, &SwitchConfig::tofino2()).unwrap();
    let mut d2 = DataplaneModel::deploy(p2, &SwitchConfig::tofino2()).unwrap();
    for r in 0..test.len().min(100) {
        assert_eq!(
            d1.classify(test.x.row(r)),
            d2.classify(test.x.row(r)),
            "row {r} diverged between identical compiles"
        );
    }
}

//! Baseline-parity integration tests: each baseline's deployed form must
//! agree with its host-side reference semantics (the DESIGN.md §6 parity
//! requirement), driven through the shared `Pegasus` builder.

use pegasus::baselines::{Bos, Leo, LeoConfig, N3ic};
use pegasus::core::models::ModelData;
use pegasus::core::{Pegasus, PegasusError};
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::switch::{DeployError, SwitchConfig};

#[test]
fn leo_switch_table_is_exact() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 20, seed: 41 });
    let (train, _v, test) = split_by_flow(&trace, 41);
    let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
    let leo = Leo::fit(&train, &LeoConfig { max_nodes: 255, min_samples: 4, ..Default::default() });
    let data = ModelData::new().with_stat(&train);
    let dp = Pegasus::new(leo)
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("Leo fits");
    for r in 0..test.len() {
        let got = dp.classify(test.x.row(r)).expect("classifies");
        assert_eq!(got, dp.model().predict(test.x.row(r)), "row {r}");
    }
}

#[test]
fn bos_exhaustive_tables_are_exact() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 15, seed: 42 });
    let (train, _v, test) = split_by_flow(&trace, 42);
    let (train, test) = (extract_views(&train).seq, extract_views(&test).seq);
    let bos = Bos::fit(&train, 6, 0.01, 42);
    let host = bos.forward(&test.x).argmax_rows();
    let data = ModelData::new().with_seq(&train);
    let dp = Pegasus::new(bos)
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("BoS fits");
    for (r, &want) in host.iter().enumerate() {
        assert_eq!(dp.classify(test.x.row(r)).expect("classifies"), want, "row {r}");
    }
}

#[test]
fn n3ic_packed_matches_float_binary_path() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 15, seed: 43 });
    let (train, _v, test) = split_by_flow(&trace, 43);
    let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
    let mut m = N3ic::fit(&train, 6, 0.01, 43);
    let float_preds = m.forward(&test.x).argmax_rows();
    let packed = m.pack();
    for (r, &want) in float_preds.iter().enumerate() {
        assert_eq!(
            packed.classify_codes(test.x.row(r)),
            want,
            "row {r}: packed XNOR/popcnt diverged from the float binary path"
        );
    }
}

#[test]
fn n3ic_cannot_deploy_but_bos_and_leo_can() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 44 });
    let (train, _v, _t) = split_by_flow(&trace, 44);
    let views = extract_views(&train);
    let data = ModelData::new().with_stat(&views.stat).with_seq(&views.seq);
    let switch = SwitchConfig::tofino2();

    let n3ic = N3ic::fit(&views.stat, 1, 0.01, 44);
    let err = Pegasus::new(n3ic)
        .compile(&data)
        .expect("cost model compiles")
        .deploy(&switch)
        .map(|_| ())
        .unwrap_err();
    assert!(
        matches!(err, PegasusError::Deploy(DeployError::OutOfStages { .. })),
        "N3IC should hit the stage wall, got {err:?}"
    );

    let bos = Bos::fit(&views.seq, 1, 0.01, 44);
    assert!(
        Pegasus::new(bos).compile(&data).expect("compiles").deploy(&switch).is_ok(),
        "BoS should fit"
    );
    let leo = Leo::fit(&views.stat, &LeoConfig::default());
    assert!(
        Pegasus::new(leo).compile(&data).expect("compiles").deploy(&switch).is_ok(),
        "Leo should fit"
    );
}

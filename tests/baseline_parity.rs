//! Baseline-parity integration tests: each baseline's deployed form must
//! agree with its host-side reference semantics (the DESIGN.md §6 parity
//! requirement).

use pegasus::baselines::{Bos, Leo, LeoConfig, N3ic};
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::switch::SwitchConfig;

#[test]
fn leo_switch_table_is_exact() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 20, seed: 41 });
    let (train, _v, test) = split_by_flow(&trace, 41);
    let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
    let leo = Leo::train(&train, &LeoConfig { max_nodes: 255, min_samples: 4, ..Default::default() });
    let mut dp = leo.compile().deploy(&SwitchConfig::tofino2()).expect("Leo fits");
    for r in 0..test.len() {
        assert_eq!(dp.classify(test.x.row(r)), leo.predict(test.x.row(r)), "row {r}");
    }
}

#[test]
fn bos_exhaustive_tables_are_exact() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 15, seed: 42 });
    let (train, _v, test) = split_by_flow(&trace, 42);
    let (train, test) = (extract_views(&train).seq, extract_views(&test).seq);
    let bos = Bos::train(&train, 6, 0.01, 42);
    let host = bos.forward(&test.x).argmax_rows();
    let mut dp = bos.compile().deploy(&SwitchConfig::tofino2()).expect("BoS fits");
    for r in 0..test.len() {
        assert_eq!(dp.classify(test.x.row(r)), host[r], "row {r}");
    }
}

#[test]
fn n3ic_packed_matches_float_binary_path() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 15, seed: 43 });
    let (train, _v, test) = split_by_flow(&trace, 43);
    let (train, test) = (extract_views(&train).stat, extract_views(&test).stat);
    let mut m = N3ic::train(&train, 6, 0.01, 43);
    let float_preds = m.forward(&test.x).argmax_rows();
    let packed = m.pack();
    for r in 0..test.len() {
        assert_eq!(
            packed.classify_codes(test.x.row(r)),
            float_preds[r],
            "row {r}: packed XNOR/popcnt diverged from the float binary path"
        );
    }
}

#[test]
fn n3ic_cannot_deploy_but_bos_and_leo_can() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 44 });
    let (train, _v, _t) = split_by_flow(&trace, 44);
    let views = extract_views(&train);
    let n3ic = N3ic::train(&views.stat, 1, 0.01, 44);
    assert!(n3ic.try_deploy(&SwitchConfig::tofino2()).is_err(), "N3IC should not fit");
    let bos = Bos::train(&views.seq, 1, 0.01, 44);
    assert!(bos.compile().deploy(&SwitchConfig::tofino2()).is_ok(), "BoS should fit");
    let leo = Leo::train(&views.stat, &LeoConfig::default());
    assert!(leo.compile().deploy(&SwitchConfig::tofino2()).is_ok(), "Leo should fit");
}

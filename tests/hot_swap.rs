//! Hot-swap behaviour under the epoch/RCU apply.
//!
//! `tests/stream_engine.rs` proves swap *equivalence* (bit-identical
//! verdicts around a quiesced epoch boundary). This suite pins the
//! control-plane properties of the stall-free apply itself:
//!
//! * a swap rejected by validation is free — no queue drained, no epoch
//!   burned, the tenant keeps serving;
//! * live stats snapshots never pair one generation's epoch with another
//!   generation's artifact identity, no matter how hard they race the
//!   swap loop;
//! * repeated swaps under a sustained stream neither stall the engine
//!   nor diverge its verdicts from a segmented sequential reference,
//!   and every shard converges to the last published epoch;
//! * the adopt-on-first-touch transplant's grace window bounds the old
//!   register file's lifetime (raw path, where the boundary is exact by
//!   construction).

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{DataplaneNet, ModelData, StreamFeatures, TrainSettings};
use pegasus::core::{
    ControlHandle, Deployment, EngineBuilder, IngressHandle, Pegasus, PegasusError, RawIngress,
    StreamReport, TenantConfig, TenantToken, HOST_WINDOW_STATE_BITS,
};
use pegasus::datasets::{extract_views, generate_trace, iscxvpn, peerrush, GenConfig};
use pegasus::net::wire::build_frame;
use pegasus::net::{FiveTuple, FlowTracker, FrameSpec, StatFeatures, Trace, WINDOW};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn test_trace() -> Trace {
    generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 })
}

fn train_mlp(data: &ModelData, depth: usize) -> Deployment<MlpB> {
    Pegasus::<MlpB>::train(data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: depth, ..Default::default() })
        .compile(data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys")
}

fn train_cnn(trace: &Trace) -> Deployment<CnnL> {
    let views = extract_views(trace);
    let data = ModelData::new().with_raw(&views.raw).with_seq(&views.seq);
    Pegasus::new(CnnL::fit(&views.raw, &views.seq, CnnLVariant::v44(), &TrainSettings::quick()))
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys")
}

/// Flush + wait until every routed packet has been processed (swaps are
/// epoch/RCU-published and never drain queues themselves, so exact
/// boundaries are the caller's job — same helper as `stream_engine.rs`).
fn quiesce(
    ingress: &IngressHandle,
    control: &ControlHandle,
    token: TenantToken,
    expect_packets: u64,
) {
    ingress.flush().expect("flushes");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = control.tenant_stats(token).expect("stats");
        if stats.report.packets >= expect_packets {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "engine failed to quiesce: {} of {expect_packets} packets processed",
            stats.report.packets
        );
        std::thread::yield_now();
    }
}

/// Sequential reference for a multi-swap run: one tracker whose windows
/// survive every boundary, packets in segment `i` (delimited by
/// `bounds`) classified by `models[i]`.
fn segmented_reference(
    models: &[&Deployment<MlpB>],
    bounds: &[usize],
    trace: &Trace,
) -> HashMap<FiveTuple, Vec<usize>> {
    assert_eq!(models.len(), bounds.len() + 1);
    assert_eq!(models[0].model().stream_features(), StreamFeatures::Stat);
    let mut tracker = FlowTracker::new(WINDOW);
    let mut out: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    for (i, pkt) in trace.packets.iter().enumerate() {
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes = StatFeatures::extract(
            state,
            &obs,
            pkt.flow.protocol,
            pkt.tcp_flags,
            pkt.flow.src_port,
            pkt.flow.dst_port,
            pkt.ttl,
            pkt.payload_head.len() as u16,
        )
        .to_f32();
        let segment = bounds.iter().filter(|&&b| i >= b).count();
        let class = models[segment].classify(&codes).expect("classifies");
        out.entry(pkt.flow).or_default().push(class);
    }
    out
}

/// Streams `trace` with a quiesced swap at every bound, waits for all
/// shards to converge to the last published epoch, and returns the final
/// merged report.
fn run_with_swaps(
    models: &[&Deployment<MlpB>],
    bounds: &[usize],
    trace: &Trace,
    shards: usize,
) -> StreamReport {
    let server = EngineBuilder::new().shards(shards).build().expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let token = control
        .attach(
            models[0].engine_artifact().expect("artifact"),
            TenantConfig::new().record_predictions(true),
        )
        .expect("attaches");
    let mut start = 0;
    for segment in 0..models.len() {
        let end = bounds.get(segment).copied().unwrap_or(trace.packets.len());
        for pkt in &trace.packets[start..end] {
            ingress.push(pkt.clone()).expect("pushes");
        }
        quiesce(&ingress, &control, token, end as u64);
        if segment + 1 < models.len() {
            let swap = control
                .swap(token, models[segment + 1].engine_artifact().expect("artifact"))
                .expect("swaps");
            assert_eq!(swap.epoch, segment as u64 + 1, "{shards} shards");
            assert!(swap.state_retained, "{shards} shards: same-shape swap retains state");
        }
        start = end;
    }
    // Idle workers apply pending publications eagerly, so even a shard
    // that saw no packet after the last swap must converge.
    let want = (models.len() - 1) as u64;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = control.tenant_stats(token).expect("stats");
        if stats.report.swap.applied_epoch == want {
            assert!(
                stats.report.swap.swaps_applied >= shards as u64,
                "{shards} shards: every shard must have applied at least one swap"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{shards} shards: shards stuck at applied epoch {} (want {want})",
            stats.report.swap.applied_epoch
        );
        std::thread::yield_now();
    }
    let mut report = server.shutdown().expect("shuts down");
    let tenant = report.take_tenant(token).expect("tenant report");
    assert_eq!(tenant.routed_packets, trace.packets.len() as u64, "{shards} shards");
    tenant.result.expect("tenant served cleanly")
}

/// Plain no-swap run of the same shape, for latency baselines.
fn run_without_swaps(model: &Deployment<MlpB>, trace: &Trace, shards: usize) -> StreamReport {
    let server = EngineBuilder::new().shards(shards).build().expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let token = control
        .attach(model.engine_artifact().expect("artifact"), TenantConfig::new())
        .expect("attaches");
    for pkt in &trace.packets {
        ingress.push(pkt.clone()).expect("pushes");
    }
    quiesce(&ingress, &control, token, trace.packets.len() as u64);
    let mut report = server.shutdown().expect("shuts down");
    report.take_tenant(token).expect("tenant report").result.expect("tenant served cleanly")
}

#[test]
fn rejected_swap_is_free_and_does_not_drain_queues() {
    // The old flush-based swap drained every queue before it could fail
    // validation, so a rejected swap still cost a full stall. The
    // epoch/RCU apply validates *everything* before touching the
    // dispatcher: a swap the fleet ledger rejects must leave queued
    // packets exactly where they were, burn no epoch, and leave the
    // tenant serving.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let mlp = train_mlp(&data, 5);
    let cnn = train_cnn(&generate_trace(&iscxvpn(), &GenConfig { flows_per_class: 4, seed: 41 }));

    // Fleet budget sized to exactly the stateless tenant's host-window
    // mirror — the per-flow CNN-L artifact's register slab cannot fit.
    let capacity = 64u64;
    let fleet_budget = capacity * HOST_WINDOW_STATE_BITS;
    let cnn_artifact = cnn.engine_artifact().expect("artifact");
    let cnn_cost = cnn_artifact.flow_slots().expect("flow pipeline") as u64
        * cnn_artifact.state_bits_per_flow();
    assert!(cnn_cost > fleet_budget, "CNN-L slab ({cnn_cost} bits) must exceed {fleet_budget}");

    let server = EngineBuilder::new()
        .shards(2)
        .batch(4096) // far above what we push: everything stays queued
        .fleet_state_budget_bits(fleet_budget)
        .build()
        .expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let token = control
        .attach(
            mlp.engine_artifact().expect("artifact"),
            TenantConfig::new().flow_capacity(capacity as usize),
        )
        .expect("attaches");

    let queued = trace.packets.len().min(128);
    for pkt in &trace.packets[..queued] {
        ingress.push(pkt.clone()).expect("pushes");
    }
    let before = control.tenant_stats(token).expect("stats");
    assert_eq!(before.report.packets, 0, "packets must still be queued, not processed");

    let err = control.swap(token, cnn_artifact).expect_err("fleet budget must reject");
    assert!(matches!(err, PegasusError::FleetStateBudget { .. }), "{err:?}");

    // Rejection was free: nothing drained, no epoch burned.
    let after = control.tenant_stats(token).expect("stats");
    assert_eq!(after.report.packets, 0, "rejected swap must not drain queues");
    assert_eq!(after.epoch, 0, "rejected swap must not burn an epoch");

    // The tenant still serves, and a valid swap still lands.
    let swap = control.swap(token, mlp.engine_artifact().expect("artifact")).expect("swaps");
    assert_eq!(swap.epoch, 1);
    quiesce(&ingress, &control, token, queued as u64);
    let mut report = server.shutdown().expect("shuts down");
    let tenant = report.take_tenant(token).expect("tenant report");
    assert_eq!(tenant.routed_packets, queued as u64);
    assert_eq!(tenant.result.expect("serves cleanly").packets, queued as u64);
}

#[test]
fn stats_snapshots_never_mix_swap_generations() {
    // Epoch, artifact key and artifact bytes are published under one
    // lock. A stats reader racing a swap storm must therefore always see
    // a coherent (epoch, artifact) pairing — never the new epoch with
    // the old artifact's size. Two artifacts of different byte sizes
    // alternate at even/odd epochs; any mixed snapshot is a bug.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let a = train_mlp(&data, 5);
    let b = train_mlp(&data, 4);

    let server = EngineBuilder::new().shards(1).build().expect("builds");
    let control = server.control();
    let token = control
        .attach(a.engine_artifact().expect("artifact"), TenantConfig::new())
        .expect("attaches");
    let bytes_a = control.stats().expect("stats").artifacts.resident_bytes;
    control.swap(token, b.engine_artifact().expect("artifact")).expect("swaps"); // epoch 1
    let bytes_b = control.stats().expect("stats").artifacts.resident_bytes;
    assert_ne!(bytes_a, bytes_b, "artifacts must differ in size for this test to bite");
    control.swap(token, a.engine_artifact().expect("artifact")).expect("swaps"); // epoch 2

    // From here on: even epoch <=> artifact A, odd epoch <=> artifact B.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let control = control.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let stats = control.stats().expect("stats");
                snapshots.push((stats.tenants[0].epoch, stats.artifacts.resident_bytes));
            }
            snapshots
        })
    };
    for i in 0..60u64 {
        let next = if i % 2 == 0 { &b } else { &a };
        control.swap(token, next.engine_artifact().expect("artifact")).expect("swaps");
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = hammer.join().expect("hammer thread");
    assert!(!snapshots.is_empty(), "stats thread never got a snapshot in");
    for (epoch, bytes) in snapshots {
        let expected = if epoch % 2 == 0 { bytes_a } else { bytes_b };
        assert_eq!(
            bytes, expected,
            "epoch {epoch} snapshotted with the other generation's artifact bytes"
        );
    }
    server.shutdown().expect("shuts down");
}

#[test]
fn repeated_swaps_under_sustained_load_match_segmented_reference() {
    // N swaps during one steady stream: verdicts must match a sequential
    // reference that switches models at the same (quiesced) boundaries,
    // at every shard count, and all shards must converge to the last
    // published epoch without the stream ever stalling.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let a = train_mlp(&data, 5);
    let rotated: Vec<usize> =
        views.stat.y.iter().map(|&y| (y + 1) % views.stat.classes()).collect();
    let stat_rot = pegasus::nn::Dataset::new(views.stat.x.clone(), rotated);
    let data_rot = ModelData::new().with_stat(&stat_rot);
    let b = train_mlp(&data_rot, 5);

    let n = trace.packets.len();
    let bounds = [n / 4, n / 2, 3 * n / 4];
    let models = [&a, &b, &a, &b];
    let reference = segmented_reference(&models, &bounds, &trace);
    let unswapped = segmented_reference(&[&a], &[], &trace);
    assert_ne!(reference, unswapped, "retrained model never disagreed; swaps are vacuous");

    for shards in [1usize, 2, 4] {
        let report = run_with_swaps(&models, &bounds, &trace, shards);
        assert_eq!(report.packets, n as u64, "{shards} shards");
        let preds = report.predictions.expect("recording was requested");
        assert_eq!(preds.len(), reference.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &reference {
            assert_eq!(
                preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged across the swap sequence"
            );
        }
    }
}

#[test]
fn swaps_do_not_spike_per_packet_latency() {
    // The stall-free apply's latency promise: a stream that absorbs
    // three swaps must keep its worst per-packet latency within 2x of a
    // swap-free run (plus a floor that absorbs debug-build timer noise;
    // the release-mode `--swap-only` bench smoke enforces the strict
    // bound). Baselines take the max of three trials and the swap run
    // the min, so a single preempted packet cannot fail the test in
    // either direction.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let a = train_mlp(&data, 5);
    let rotated: Vec<usize> =
        views.stat.y.iter().map(|&y| (y + 1) % views.stat.classes()).collect();
    let stat_rot = pegasus::nn::Dataset::new(views.stat.x.clone(), rotated);
    let data_rot = ModelData::new().with_stat(&stat_rot);
    let b = train_mlp(&data_rot, 5);

    let n = trace.packets.len();
    let bounds = [n / 4, n / 2, 3 * n / 4];
    let models = [&a, &b, &a, &b];

    let baseline_max = (0..3)
        .map(|_| run_without_swaps(&a, &trace, 1).latency.max_nanos())
        .max()
        .expect("three baseline trials");
    let swapped_max = (0..3)
        .map(|_| run_with_swaps(&models, &bounds, &trace, 1).latency.max_nanos())
        .min()
        .expect("three swap trials");
    let bound = (2 * baseline_max).max(2_000_000);
    assert!(
        swapped_max <= bound,
        "worst per-packet latency {swapped_max}ns under swaps exceeds bound {bound}ns \
         (steady-state max {baseline_max}ns)"
    );
}

#[test]
fn raw_swap_grace_window_bounds_transplant_lifetime() {
    // The adopt-on-first-touch transplant on the raw path, where the
    // swap boundary is exact by construction: grace 0 keeps the old
    // register file until a chained swap completes it eagerly; a finite
    // grace drops it (flows re-warm) once the window is spent.
    let cnn = train_cnn(&generate_trace(&iscxvpn(), &GenConfig { flows_per_class: 4, seed: 41 }));
    let artifact = cnn.engine_artifact().expect("artifact");
    let slots = artifact.flow_slots().expect("flow pipeline") as u64;
    let mut raw = RawIngress::with_defaults(&artifact).expect("raw ingress");

    let f1 = build_frame(&FrameSpec::v4_udp(0x0a00_0001, 0x0a00_0002, 1111, 2222, vec![7; 24]));
    let f2 = build_frame(&FrameSpec::v4_udp(0x0a00_0003, 0x0a00_0004, 3333, 4444, vec![9; 24]));
    let f3 = build_frame(&FrameSpec::v4_udp(0x0a00_0005, 0x0a00_0006, 5555, 6666, vec![3; 24]));
    let mut ts = 0u64;
    let mut feed = |raw: &mut RawIngress, frame: &[u8]| {
        ts += 100;
        raw.process_frame(ts, frame).expect("processes");
    };

    // Warm some pre-swap state; no transplant exists yet.
    for frame in [&f1, &f2, &f3, &f1, &f2, &f3] {
        feed(&mut raw, frame);
    }
    assert_eq!(raw.stats().swap.adopted_slots, 0);

    // Swap with grace 0: the whole register file goes pending, kept
    // until drained (or a chained swap).
    assert!(raw.swap(&artifact, 0).expect("swaps"), "same-shape swap retains state");
    let s = raw.stats().swap;
    assert_eq!((s.applied_epoch, s.swaps_applied), (1, 1));
    assert_eq!(s.pending_slots, slots, "nothing adopted yet");

    // First touch migrates exactly that flow's slot.
    feed(&mut raw, &f1);
    let s = raw.stats().swap;
    assert_eq!(s.adopted_slots, 1);
    assert_eq!(s.pending_slots, slots - 1);
    assert_eq!((s.transplants_completed, s.transplants_expired), (0, 0));

    // A chained swap completes the pending transplant eagerly (the
    // memory bound: at most one old register file alive at a time),
    // then opens a new one with a 2-packet grace window.
    assert!(raw.swap(&artifact, 2).expect("swaps"), "chained swap retains state");
    let s = raw.stats().swap;
    assert_eq!(s.transplants_completed, 1, "chained swap must finish the pending transplant");
    assert_eq!(s.adopted_slots, slots, "completion migrates every remaining slot");
    assert_eq!(s.pending_slots, slots, "and the new transplant starts full");

    // Two packets spend the grace window: the touched slots migrate,
    // everything else is dropped — those flows re-warm.
    feed(&mut raw, &f2);
    feed(&mut raw, &f3);
    let s = raw.stats().swap;
    assert_eq!(s.transplants_expired, 1, "grace exhausted must drop the old file");
    assert_eq!(s.pending_slots, 0, "expired transplant holds no slots");
    assert!(s.adopted_slots > slots, "grace-window touches still migrated their slots");
    assert_eq!((s.applied_epoch, s.swaps_applied), (2, 2));

    // Post-expiry traffic runs plain: counters are frozen.
    feed(&mut raw, &f1);
    assert_eq!(raw.stats().swap, s);
}

//! The bytes-to-verdict path is the structured path, bit for bit.
//!
//! The engine now has two front doors: structured [`TracePacket`]s
//! (`IngressHandle::push`) and raw wire frames (`push_frame`, plus the
//! single-pass `RawIngress` executor). This suite proves they are the
//! same engine — identical per-flow verdict sequences *and* identical
//! flow-table counters at 1/2/4 shards, for a stateless pipeline (MLP-B)
//! and the per-flow register pipeline (CNN-L) — and pins the checked-in
//! golden capture: byte-exact round trips through the pcap writer and a
//! frozen per-class verdict census.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
use pegasus::core::{Deployment, Pegasus, RawIngress, RawVerdict, StreamConfig, StreamReport};
use pegasus::datasets::{
    extract_views, generate_trace, iscxvpn, peerrush, synthesize_pcap, GenConfig, SyntheticConfig,
};
use pegasus::net::wire::parse_frame;
use pegasus::net::{
    FiveTuple, FrameSource, PacketSource, PcapReader, PcapSource, PcapWriter, DEFAULT_SNAPLEN,
};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;

const FIXTURE_PATH: &str = "tests/fixtures/golden.pcap";
/// The fixture's snaplen: small enough that long frames are genuinely
/// snapped (exercising truncated-capture handling end to end), large
/// enough that every header survives.
const FIXTURE_SNAPLEN: u32 = 96;

fn train_mlp(trace: &pegasus::net::Trace) -> Deployment<MlpB> {
    let views = extract_views(trace);
    let data = ModelData::new().with_stat(&views.stat);
    Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys")
}

/// Streams the same capture through both front doors at every shard count
/// and asserts the reports are indistinguishable.
fn assert_raw_matches_structured<M: DataplaneNet>(deployment: &Deployment<M>, pcap: &[u8]) {
    for shards in [1usize, 2, 4] {
        let cfg = StreamConfig { shards, record_predictions: true, ..StreamConfig::default() };

        let mut structured_src = PcapSource::from_bytes(pcap.to_vec()).expect("capture");
        let structured = deployment
            .stream_with(&mut structured_src as &mut dyn PacketSource, &cfg)
            .expect("structured path streams");
        assert_eq!(structured_src.parse_errors(), 0, "fixture frames all parse");

        let mut raw_src = PcapSource::from_bytes(pcap.to_vec()).expect("capture");
        let raw = deployment
            .stream_frames_with(&mut raw_src as &mut dyn FrameSource, &cfg)
            .expect("raw path streams");

        assert_eq!(raw.packets, structured.packets, "{shards} shards: packet counts");
        assert_eq!(raw.classified, structured.classified, "{shards} shards: classified");
        assert_eq!(raw.warmup, structured.warmup, "{shards} shards: warmup");
        assert_eq!(raw.flows, structured.flows, "{shards} shards: flows");
        assert_eq!(raw.table, structured.table, "{shards} shards: flow-table counters");
        assert_eq!(raw.parse.total(), 0, "{shards} shards: nothing rejected");
        assert_eq!(structured.parse.total(), 0);

        let raw_preds = raw.predictions.expect("recording requested");
        let structured_preds = structured.predictions.expect("recording requested");
        assert!(
            structured.classified > 0,
            "{shards} shards: capture too small to classify anything"
        );
        assert_eq!(raw_preds.len(), structured_preds.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &structured_preds {
            assert_eq!(
                raw_preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged between bytes and structs"
            );
        }
    }
}

#[test]
fn raw_path_matches_structured_path_mlp_b() {
    let spec = peerrush();
    let cfg = SyntheticConfig {
        flows_per_class: 8,
        seed: 0xd1ff,
        payload_bytes: 8,
        ..SyntheticConfig::default()
    };
    let pcap = synthesize_pcap(&spec, &cfg, DEFAULT_SNAPLEN);
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);
    assert_raw_matches_structured(&deployment, &pcap);
}

#[test]
fn raw_path_matches_structured_path_cnn_l() {
    // The per-flow register pipeline consumes raw payload bytes, so the
    // frames carry full class-signature payloads; verdicts additionally
    // depend on hash-slot aliasing, which both paths must reproduce
    // identically at each shard count.
    let spec = iscxvpn();
    let stream_cfg = SyntheticConfig {
        flows_per_class: 3,
        seed: 0xcafe,
        payload_bytes: 60,
        ..SyntheticConfig::default()
    };
    let pcap = synthesize_pcap(&spec, &stream_cfg, DEFAULT_SNAPLEN);

    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 4, seed: 41 });
    let views = extract_views(&trace);
    let settings = TrainSettings::quick();
    let data = ModelData::new().with_raw(&views.raw).with_seq(&views.seq);
    let deployment = Pegasus::new(CnnL::fit(&views.raw, &views.seq, CnnLVariant::v44(), &settings))
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    assert_raw_matches_structured(&deployment, &pcap);
}

#[test]
fn single_pass_raw_ingress_matches_the_server() {
    // The allocation-free RawIngress executor (what the bench measures)
    // must agree with a 1-shard server run packet for packet: same
    // verdict sequences, same counters, same flow table.
    let spec = peerrush();
    let cfg = SyntheticConfig {
        flows_per_class: 6,
        seed: 0x5176,
        payload_bytes: 8,
        ..SyntheticConfig::default()
    };
    let pcap = synthesize_pcap(&spec, &cfg, DEFAULT_SNAPLEN);
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);

    let mut reference_src = PcapSource::from_bytes(pcap.clone()).expect("capture");
    let reference = deployment
        .stream_frames_with(
            &mut reference_src as &mut dyn FrameSource,
            &StreamConfig { shards: 1, record_predictions: true, ..StreamConfig::default() },
        )
        .expect("server streams");
    let reference_preds = reference.predictions.clone().expect("recording requested");

    let mut raw =
        RawIngress::with_defaults(&deployment.engine_artifact().expect("artifact")).expect("raw");
    let mut src = PcapSource::from_bytes(pcap).expect("capture");
    let mut verdicts: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    while let Some(frame) = src.next_frame() {
        match raw.process(frame).expect("processes") {
            RawVerdict::Classified(class) => {
                let flow = parse_frame(frame.bytes).expect("parsed once already").flow;
                verdicts.entry(flow).or_default().push(class);
            }
            RawVerdict::Warmup => {}
            RawVerdict::Rejected(e) => panic!("fixture frame rejected: {e}"),
        }
    }

    let stats = raw.stats();
    assert_eq!(stats.packets, reference.packets);
    assert_eq!(stats.classified, reference.classified);
    assert_eq!(stats.warmup, reference.warmup);
    assert_eq!(stats.flows, reference.flows);
    assert_eq!(stats.table, reference.table);
    assert_eq!(stats.parse.total(), 0);
    assert_eq!(verdicts.len(), reference_preds.len());
    for (flow, seq) in &reference_preds {
        assert_eq!(verdicts.get(flow), Some(seq), "flow {flow:?} diverged from the server");
    }
}

/// The checked-in golden capture: generator-stable, byte-exact through
/// the writer, and with a frozen verdict census under the deterministic
/// quick-trained MLP-B.
///
/// Regenerate after intentional generator changes with
/// `PEGASUS_REGEN_FIXTURES=1 cargo test --test raw_path golden` (then
/// update the pinned numbers below if they shifted).
#[test]
fn golden_fixture_round_trips_and_pins_verdicts() {
    let expected = synthesize_pcap(&peerrush(), &SyntheticConfig::fixture(), FIXTURE_SNAPLEN);
    if std::env::var_os("PEGASUS_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all("tests/fixtures").expect("mkdir fixtures");
        std::fs::write(FIXTURE_PATH, &expected).expect("write fixture");
    }
    let bytes = std::fs::read(FIXTURE_PATH)
        .expect("tests/fixtures/golden.pcap is checked in (PEGASUS_REGEN_FIXTURES=1 to create)");
    assert_eq!(
        bytes, expected,
        "fixture no longer matches the generator — regenerate deliberately, not accidentally"
    );

    // Structural pins.
    let mut reader = PcapReader::new(&bytes).expect("header");
    assert!(!reader.is_big_endian());
    assert_eq!(reader.snaplen(), FIXTURE_SNAPLEN);
    let mut records = 0u64;
    let mut snapped = 0u64;
    let mut flows: Vec<FiveTuple> = Vec::new();
    while let Some(rec) = reader.next_record() {
        let rec = rec.expect("well-formed record");
        let frame = parse_frame(rec.data).expect("every fixture frame parses");
        flows.push(frame.flow);
        if (rec.orig_len as usize) > rec.data.len() {
            snapped += 1;
        }
        records += 1;
    }
    flows.sort_unstable();
    flows.dedup();
    assert_eq!(records, PINNED_PACKETS, "fixture packet count");
    assert_eq!(flows.len() as u64, PINNED_FLOWS, "fixture flow count");
    assert!(snapped > 0, "fixture must exercise snaplen truncation");

    // Byte-exact rewrite (little-endian, the fixture's own layout).
    let mut reader = PcapReader::new(&bytes).expect("header");
    let mut writer = PcapWriter::with_snaplen(FIXTURE_SNAPLEN);
    while let Some(rec) = reader.next_record() {
        let rec = rec.expect("record");
        writer.record_with_orig_len(rec.ts_micros, rec.data, rec.orig_len);
    }
    assert_eq!(writer.into_bytes(), bytes, "read→write round trip is byte-identical");

    // Cross-endian round trip: rewrite big-endian, read back, compare
    // record contents (the swapped file differs byte-wise by design).
    let mut reader = PcapReader::new(&bytes).expect("header");
    let mut be_writer = PcapWriter::big_endian(FIXTURE_SNAPLEN);
    let mut originals = Vec::new();
    while let Some(rec) = reader.next_record() {
        let rec = rec.expect("record");
        be_writer.record_with_orig_len(rec.ts_micros, rec.data, rec.orig_len);
        originals.push((rec.ts_micros, rec.orig_len, rec.data.to_vec()));
    }
    let be_bytes = be_writer.into_bytes();
    assert_ne!(be_bytes, bytes);
    let mut be_reader = PcapReader::new(&be_bytes).expect("BE header parses");
    assert!(be_reader.is_big_endian());
    for (ts, orig, data) in &originals {
        let rec = be_reader.next_record().expect("record").expect("ok");
        assert_eq!((rec.ts_micros, rec.orig_len), (*ts, *orig));
        assert_eq!(rec.data, &data[..]);
    }
    assert!(be_reader.next_record().is_none());

    // Verdict census under the deterministic quick-trained model.
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);
    let mut src = PcapSource::from_bytes(bytes).expect("capture");
    let report: StreamReport = deployment
        .stream_frames_with(
            &mut src as &mut dyn FrameSource,
            &StreamConfig { shards: 1, record_predictions: true, ..StreamConfig::default() },
        )
        .expect("classifies the fixture");
    assert_eq!(report.packets, PINNED_PACKETS);
    assert_eq!(report.parse.total(), 0);
    let verdicts = report.flow_verdicts().expect("recording requested");
    let mut census = [0u64; 3];
    for class in verdicts.values() {
        census[*class] += 1;
    }
    assert_eq!(census, PINNED_CLASS_CENSUS, "per-class verdict counts drifted");
}

/// Pinned facts about `tests/fixtures/golden.pcap` (see the regen note on
/// the golden test).
const PINNED_PACKETS: u64 = 338;
const PINNED_FLOWS: u64 = 12;
/// Flows whose majority verdict landed in class 0/1/2 under the seed-21
/// quick-trained MLP-B.
const PINNED_CLASS_CENSUS: [u64; 3] = [4, 4, 4];

//! The bytes-to-verdict path is the structured path, bit for bit.
//!
//! The engine now has two front doors: structured [`TracePacket`]s
//! (`IngressHandle::push`) and raw wire frames (`push_frame`, plus the
//! single-pass `RawIngress` executor). This suite proves they are the
//! same engine — identical per-flow verdict sequences *and* identical
//! flow-table counters at 1/2/4 shards, for a stateless pipeline (MLP-B)
//! and the per-flow register pipeline (CNN-L) — and pins the checked-in
//! golden capture: byte-exact round trips through the pcap writer and a
//! frozen per-class verdict census.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
use pegasus::core::{
    Deployment, FlowTableCounters, Pegasus, RawIngress, RawVerdict, StreamConfig, StreamReport,
    DEFAULT_BATCH_FRAMES,
};
use pegasus::datasets::{
    extract_views, generate_trace, iscxvpn, peerrush, synthesize_pcap, GenConfig, SyntheticConfig,
};
use pegasus::net::wire::{build_frame, parse_frame};
use pegasus::net::{
    FiveTuple, FlowTableConfig, FrameBatch, FrameSource, FrameSpec, PacketSource, PcapReader,
    PcapSource, PcapWriter, RawFrame, DEFAULT_SNAPLEN,
};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;

const FIXTURE_PATH: &str = "tests/fixtures/golden.pcap";
/// The fixture's snaplen: small enough that long frames are genuinely
/// snapped (exercising truncated-capture handling end to end), large
/// enough that every header survives.
const FIXTURE_SNAPLEN: u32 = 96;

fn train_mlp(trace: &pegasus::net::Trace) -> Deployment<MlpB> {
    let views = extract_views(trace);
    let data = ModelData::new().with_stat(&views.stat);
    Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys")
}

/// Merged counters and per-flow verdict sequences of a sharded batched
/// [`RawIngress`] run — the fused parse → slot → features → LUT path.
struct BatchedRun {
    packets: u64,
    classified: u64,
    warmup: u64,
    flows: u64,
    table: FlowTableCounters,
    parse_total: u64,
    preds: HashMap<FiveTuple, Vec<usize>>,
}

/// Streams the capture through `shards` independent batched [`RawIngress`]
/// executors — frames routed by the same bidirectional five-tuple hash the
/// server's dispatcher uses — `batch_frames` frames per fused batch, and
/// returns the merged counters plus per-flow verdict sequences.
fn run_batched<M: DataplaneNet>(
    deployment: &Deployment<M>,
    pcap: &[u8],
    shards: usize,
    batch_frames: usize,
) -> BatchedRun {
    fn flush(
        ing: &mut RawIngress,
        batch: &mut FrameBatch,
        preds: &mut HashMap<FiveTuple, Vec<usize>>,
    ) {
        let verdicts = ing.process_batch(batch).expect("batch processes");
        for (flow, v) in batch.flows().iter().zip(verdicts) {
            if let Some(class) = v {
                preds.entry(*flow).or_default().push(*class);
            }
        }
        batch.clear();
    }

    let artifact = deployment.engine_artifact().expect("artifact");
    let mut ingresses: Vec<RawIngress> =
        (0..shards).map(|_| RawIngress::with_defaults(&artifact).expect("raw ingress")).collect();
    let mut batches: Vec<FrameBatch> =
        (0..shards).map(|_| FrameBatch::with_capacity(batch_frames)).collect();
    let mut preds: HashMap<FiveTuple, Vec<usize>> = HashMap::new();

    let mut src = PcapSource::from_bytes(pcap.to_vec()).expect("capture");
    while let Some(frame) = src.next_frame() {
        // Unparseable frames go to shard 0 so the rejection is counted
        // somewhere deterministic (the batch push re-rejects them without
        // consuming a slot, mirroring the dispatcher's drop).
        let s = match parse_frame(frame.bytes) {
            Ok(p) => p.flow.shard_of(shards),
            Err(_) => 0,
        };
        ingresses[s].push_batch_frame(&mut batches[s], frame);
        if batches[s].is_full() {
            flush(&mut ingresses[s], &mut batches[s], &mut preds);
        }
    }
    for (ing, batch) in ingresses.iter_mut().zip(batches.iter_mut()) {
        if !batch.is_empty() {
            flush(ing, batch, &mut preds);
        }
    }

    let mut run = BatchedRun {
        packets: 0,
        classified: 0,
        warmup: 0,
        flows: 0,
        table: FlowTableCounters::default(),
        parse_total: 0,
        preds,
    };
    for ing in &ingresses {
        let s = ing.stats();
        run.packets += s.packets;
        run.classified += s.classified;
        run.warmup += s.warmup;
        run.flows += s.flows;
        run.table.merge(&s.table);
        run.parse_total += s.parse.total();
    }
    run
}

/// Streams the same capture through both front doors at every shard count
/// and asserts the reports are indistinguishable.
fn assert_raw_matches_structured<M: DataplaneNet>(deployment: &Deployment<M>, pcap: &[u8]) {
    for shards in [1usize, 2, 4] {
        let cfg = StreamConfig { shards, record_predictions: true, ..StreamConfig::default() };

        let mut structured_src = PcapSource::from_bytes(pcap.to_vec()).expect("capture");
        let structured = deployment
            .stream_with(&mut structured_src as &mut dyn PacketSource, &cfg)
            .expect("structured path streams");
        assert_eq!(structured_src.parse_errors(), 0, "fixture frames all parse");

        let mut raw_src = PcapSource::from_bytes(pcap.to_vec()).expect("capture");
        let raw = deployment
            .stream_frames_with(&mut raw_src as &mut dyn FrameSource, &cfg)
            .expect("raw path streams");

        assert_eq!(raw.packets, structured.packets, "{shards} shards: packet counts");
        assert_eq!(raw.classified, structured.classified, "{shards} shards: classified");
        assert_eq!(raw.warmup, structured.warmup, "{shards} shards: warmup");
        assert_eq!(raw.flows, structured.flows, "{shards} shards: flows");
        assert_eq!(raw.table, structured.table, "{shards} shards: flow-table counters");
        assert_eq!(raw.parse.total(), 0, "{shards} shards: nothing rejected");
        assert_eq!(structured.parse.total(), 0);

        let raw_preds = raw.predictions.expect("recording requested");
        let structured_preds = structured.predictions.expect("recording requested");
        assert!(
            structured.classified > 0,
            "{shards} shards: capture too small to classify anything"
        );
        assert_eq!(raw_preds.len(), structured_preds.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &structured_preds {
            assert_eq!(
                raw_preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged between bytes and structs"
            );
        }

        // The fused batched path, at pathological and friendly batch
        // shapes: single-frame batches, a prime that forces misaligned
        // partial flushes (7), an exact divisor of the packet count (the
        // final batch is full — no partial-flush epilogue at 1 shard), and
        // 64 (a partial last batch). Every shape must reproduce the
        // structured report bit for bit: counters, flow table, and every
        // flow's verdict sequence.
        let n = structured.packets as usize;
        let exact = (2..=n.min(96)).rev().find(|d| n.is_multiple_of(*d)).unwrap_or(1);
        for batch_frames in [1usize, 7, exact, 64] {
            let b = run_batched(deployment, pcap, shards, batch_frames);
            let tag = format!("{shards} shards, batch {batch_frames}");
            assert_eq!(b.packets, structured.packets, "{tag}: packets");
            assert_eq!(b.classified, structured.classified, "{tag}: classified");
            assert_eq!(b.warmup, structured.warmup, "{tag}: warmup");
            assert_eq!(b.flows, structured.flows, "{tag}: flows");
            assert_eq!(b.table, structured.table, "{tag}: flow-table counters");
            assert_eq!(b.parse_total, 0, "{tag}: nothing rejected");
            assert_eq!(b.preds.len(), structured_preds.len(), "{tag}: flow sets differ");
            for (flow, seq) in &structured_preds {
                assert_eq!(
                    b.preds.get(flow),
                    Some(seq),
                    "{tag}: flow {flow:?} diverged between fused batches and structs"
                );
            }
        }
    }
}

#[test]
fn raw_path_matches_structured_path_mlp_b() {
    let spec = peerrush();
    let cfg = SyntheticConfig {
        flows_per_class: 8,
        seed: 0xd1ff,
        payload_bytes: 8,
        ..SyntheticConfig::default()
    };
    let pcap = synthesize_pcap(&spec, &cfg, DEFAULT_SNAPLEN);
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);
    assert_raw_matches_structured(&deployment, &pcap);
}

#[test]
fn raw_path_matches_structured_path_cnn_l() {
    // The per-flow register pipeline consumes raw payload bytes, so the
    // frames carry full class-signature payloads; verdicts additionally
    // depend on hash-slot aliasing, which both paths must reproduce
    // identically at each shard count.
    let spec = iscxvpn();
    let stream_cfg = SyntheticConfig {
        flows_per_class: 3,
        seed: 0xcafe,
        payload_bytes: 60,
        ..SyntheticConfig::default()
    };
    let pcap = synthesize_pcap(&spec, &stream_cfg, DEFAULT_SNAPLEN);

    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 4, seed: 41 });
    let views = extract_views(&trace);
    let settings = TrainSettings::quick();
    let data = ModelData::new().with_raw(&views.raw).with_seq(&views.seq);
    let deployment = Pegasus::new(CnnL::fit(&views.raw, &views.seq, CnnLVariant::v44(), &settings))
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    assert_raw_matches_structured(&deployment, &pcap);
}

#[test]
fn single_pass_raw_ingress_matches_the_server() {
    // The allocation-free RawIngress executor (what the bench measures)
    // must agree with a 1-shard server run packet for packet: same
    // verdict sequences, same counters, same flow table.
    let spec = peerrush();
    let cfg = SyntheticConfig {
        flows_per_class: 6,
        seed: 0x5176,
        payload_bytes: 8,
        ..SyntheticConfig::default()
    };
    let pcap = synthesize_pcap(&spec, &cfg, DEFAULT_SNAPLEN);
    let trace = generate_trace(&spec, &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);

    let mut reference_src = PcapSource::from_bytes(pcap.clone()).expect("capture");
    let reference = deployment
        .stream_frames_with(
            &mut reference_src as &mut dyn FrameSource,
            &StreamConfig { shards: 1, record_predictions: true, ..StreamConfig::default() },
        )
        .expect("server streams");
    let reference_preds = reference.predictions.clone().expect("recording requested");

    let mut raw =
        RawIngress::with_defaults(&deployment.engine_artifact().expect("artifact")).expect("raw");
    let mut src = PcapSource::from_bytes(pcap).expect("capture");
    let mut verdicts: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    while let Some(frame) = src.next_frame() {
        match raw.process(frame).expect("processes") {
            RawVerdict::Classified(class) => {
                let flow = parse_frame(frame.bytes).expect("parsed once already").flow;
                verdicts.entry(flow).or_default().push(class);
            }
            RawVerdict::Warmup => {}
            RawVerdict::Rejected(e) => panic!("fixture frame rejected: {e}"),
        }
    }

    let stats = raw.stats();
    assert_eq!(stats.packets, reference.packets);
    assert_eq!(stats.classified, reference.classified);
    assert_eq!(stats.warmup, reference.warmup);
    assert_eq!(stats.flows, reference.flows);
    assert_eq!(stats.table, reference.table);
    assert_eq!(stats.parse.total(), 0);
    assert_eq!(verdicts.len(), reference_preds.len());
    for (flow, seq) in &reference_preds {
        assert_eq!(verdicts.get(flow), Some(seq), "flow {flow:?} diverged from the server");
    }
}

/// The checked-in golden capture: generator-stable, byte-exact through
/// the writer, and with a frozen verdict census under the deterministic
/// quick-trained MLP-B.
///
/// Regenerate after intentional generator changes with
/// `PEGASUS_REGEN_FIXTURES=1 cargo test --test raw_path golden` (then
/// update the pinned numbers below if they shifted).
#[test]
fn golden_fixture_round_trips_and_pins_verdicts() {
    let expected = synthesize_pcap(&peerrush(), &SyntheticConfig::fixture(), FIXTURE_SNAPLEN);
    if std::env::var_os("PEGASUS_REGEN_FIXTURES").is_some() {
        std::fs::create_dir_all("tests/fixtures").expect("mkdir fixtures");
        std::fs::write(FIXTURE_PATH, &expected).expect("write fixture");
    }
    let bytes = std::fs::read(FIXTURE_PATH)
        .expect("tests/fixtures/golden.pcap is checked in (PEGASUS_REGEN_FIXTURES=1 to create)");
    assert_eq!(
        bytes, expected,
        "fixture no longer matches the generator — regenerate deliberately, not accidentally"
    );

    // Structural pins.
    let mut reader = PcapReader::new(&bytes).expect("header");
    assert!(!reader.is_big_endian());
    assert_eq!(reader.snaplen(), FIXTURE_SNAPLEN);
    let mut records = 0u64;
    let mut snapped = 0u64;
    let mut flows: Vec<FiveTuple> = Vec::new();
    while let Some(rec) = reader.next_record() {
        let rec = rec.expect("well-formed record");
        let frame = parse_frame(rec.data).expect("every fixture frame parses");
        flows.push(frame.flow);
        if (rec.orig_len as usize) > rec.data.len() {
            snapped += 1;
        }
        records += 1;
    }
    flows.sort_unstable();
    flows.dedup();
    assert_eq!(records, PINNED_PACKETS, "fixture packet count");
    assert_eq!(flows.len() as u64, PINNED_FLOWS, "fixture flow count");
    assert!(snapped > 0, "fixture must exercise snaplen truncation");

    // Byte-exact rewrite (little-endian, the fixture's own layout).
    let mut reader = PcapReader::new(&bytes).expect("header");
    let mut writer = PcapWriter::with_snaplen(FIXTURE_SNAPLEN);
    while let Some(rec) = reader.next_record() {
        let rec = rec.expect("record");
        writer.record_with_orig_len(rec.ts_micros, rec.data, rec.orig_len);
    }
    assert_eq!(writer.into_bytes(), bytes, "read→write round trip is byte-identical");

    // Cross-endian round trip: rewrite big-endian, read back, compare
    // record contents (the swapped file differs byte-wise by design).
    let mut reader = PcapReader::new(&bytes).expect("header");
    let mut be_writer = PcapWriter::big_endian(FIXTURE_SNAPLEN);
    let mut originals = Vec::new();
    while let Some(rec) = reader.next_record() {
        let rec = rec.expect("record");
        be_writer.record_with_orig_len(rec.ts_micros, rec.data, rec.orig_len);
        originals.push((rec.ts_micros, rec.orig_len, rec.data.to_vec()));
    }
    let be_bytes = be_writer.into_bytes();
    assert_ne!(be_bytes, bytes);
    let mut be_reader = PcapReader::new(&be_bytes).expect("BE header parses");
    assert!(be_reader.is_big_endian());
    for (ts, orig, data) in &originals {
        let rec = be_reader.next_record().expect("record").expect("ok");
        assert_eq!((rec.ts_micros, rec.orig_len), (*ts, *orig));
        assert_eq!(rec.data, &data[..]);
    }
    assert!(be_reader.next_record().is_none());

    // Verdict census under the deterministic quick-trained model.
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);
    let mut src = PcapSource::from_bytes(bytes).expect("capture");
    let report: StreamReport = deployment
        .stream_frames_with(
            &mut src as &mut dyn FrameSource,
            &StreamConfig { shards: 1, record_predictions: true, ..StreamConfig::default() },
        )
        .expect("classifies the fixture");
    assert_eq!(report.packets, PINNED_PACKETS);
    assert_eq!(report.parse.total(), 0);
    let verdicts = report.flow_verdicts().expect("recording requested");
    let mut census = [0u64; 3];
    for class in verdicts.values() {
        census[*class] += 1;
    }
    assert_eq!(census, PINNED_CLASS_CENSUS, "per-class verdict counts drifted");
}

/// The golden capture through the *fused batched* path must reproduce the
/// same frozen census the per-frame path pins: 338 packets, 12 flows,
/// [4, 4, 4] majority-verdict classes. This is the end-to-end witness that
/// batching changed the schedule, not the semantics.
#[test]
fn golden_fixture_census_survives_the_fused_batched_path() {
    let bytes = std::fs::read(FIXTURE_PATH)
        .expect("tests/fixtures/golden.pcap is checked in (PEGASUS_REGEN_FIXTURES=1 to create)");
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);

    let run = run_batched(&deployment, &bytes, 1, DEFAULT_BATCH_FRAMES);
    assert_eq!(run.packets, PINNED_PACKETS, "fixture packet count through batches");
    assert_eq!(run.parse_total, 0, "every fixture frame parses");
    assert_eq!(run.flows, PINNED_FLOWS, "fixture flow count through batches");

    // Majority vote per flow, tie-broken exactly like
    // `StreamReport::flow_verdicts` (ties to the smaller class id).
    let mut census = [0u64; 3];
    for seq in run.preds.values() {
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for &c in seq {
            *counts.entry(c).or_insert(0) += 1;
        }
        let (&class, _) =
            counts.iter().max_by_key(|(&class, &n)| (n, std::cmp::Reverse(class))).expect("votes");
        census[class] += 1;
    }
    assert_eq!(census, PINNED_CLASS_CENSUS, "per-class verdict census drifted under batching");
}

/// Regression: several packets of the *same brand-new flow* inside one
/// batch must admit the flow's slot exactly once and reuse it — a batched
/// slot-resolution that probed every frame against the pre-batch table
/// state would admit the flow once per packet, double-counting admissions
/// and (on a tight table) evicting an innocent neighbor under phantom
/// capacity pressure. Pinned against the per-frame path on a 2-slot table.
#[test]
fn repeated_new_flow_in_one_batch_admits_a_slot_once() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 });
    let deployment = train_mlp(&trace);
    let artifact = deployment.engine_artifact().expect("artifact");
    let table = FlowTableConfig { capacity: 2, idle_timeout_packets: 0, alias: false };

    // One resident flow to make spurious evictions observable, then five
    // packets of a brand-new flow in the same batch, then the resident
    // again — on a 2-slot table a double-admission of the new flow would
    // have to evict the resident.
    let resident = build_frame(&FrameSpec::v4_udp(0x0a000001, 0x0a000002, 1111, 2222, vec![7; 12]));
    let newcomer = build_frame(&FrameSpec::v4_udp(0x0a000003, 0x0a000004, 3333, 4444, vec![9; 12]));
    let frames: Vec<&[u8]> =
        vec![&resident, &newcomer, &newcomer, &newcomer, &newcomer, &newcomer, &resident];

    let mut batched = RawIngress::new(&artifact, table).expect("raw ingress");
    let mut batch = FrameBatch::with_capacity(frames.len());
    for (i, f) in frames.iter().enumerate() {
        let rejected = batched.push_batch_frame(&mut batch, RawFrame::new(i as u64 * 100, f));
        assert!(rejected.is_none(), "hand-built frame {i} failed to parse");
    }
    batched.process_batch(&batch).expect("batch processes");

    let mut per_frame = RawIngress::new(&artifact, table).expect("raw ingress");
    for (i, f) in frames.iter().enumerate() {
        per_frame.process(RawFrame::new(i as u64 * 100, f)).expect("processes");
    }

    let b = batched.stats();
    let p = per_frame.stats();
    assert_eq!(b.table, p.table, "batched admission diverged from the per-frame path");
    assert_eq!(b.table.occupancy, 2, "two distinct flows, two resident slots");
    assert_eq!(
        b.table.evictions_capacity, 0,
        "a repeated new flow double-admitted and evicted its neighbor"
    );
    assert_eq!(b.table.evictions_idle, 0, "no aging configured, none may fire");
    assert_eq!((b.packets, b.classified, b.warmup), (p.packets, p.classified, p.warmup));
}

/// Pinned facts about `tests/fixtures/golden.pcap` (see the regen note on
/// the golden test).
const PINNED_PACKETS: u64 = 338;
const PINNED_FLOWS: u64 = 12;
/// Flows whose majority verdict landed in class 0/1/2 under the seed-21
/// quick-trained MLP-B.
const PINNED_CLASS_CENSUS: [u64; 3] = [4, 4, 4];

//! The "universal framework" contract, as one parameterized test: every
//! paper model and every baseline flows through the same
//! `DataplaneNet::train` → `Pegasus` builder → `deploy` path on the
//! Tofino-2 configuration, from one shared `ModelData` bundle.
//!
//! Eight of the nine implementations must deploy with a non-empty
//! `ResourceReport`; N3IC must fail with `OutOfStages` — the §2 cost-model
//! result the paper leans on — through the very same path.

use pegasus::baselines::{Bos, Leo, N3ic};
use pegasus::core::models::autoencoder::AutoEncoder;
use pegasus::core::models::cnn_b::CnnB;
use pegasus::core::models::cnn_l::CnnL;
use pegasus::core::models::cnn_m::CnnM;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::rnn_b::RnnB;
use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
use pegasus::core::{Pegasus, PegasusError};
use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
use pegasus::switch::{DeployError, ResourceReport, SwitchConfig};

/// The one generic path: train from the shared bundle, compile with the
/// builder, deploy on Tofino-2, return the resource report.
fn drive<M: DataplaneNet>(
    data: &ModelData<'_>,
    settings: &TrainSettings,
) -> Result<ResourceReport, PegasusError> {
    let model = M::train(data, settings)?;
    let deployed = Pegasus::new(model).compile(data)?.deploy(&SwitchConfig::tofino2())?;
    Ok(deployed.resource_report())
}

#[test]
fn all_models_and_baselines_share_one_pipeline() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 61 });
    let (train, val, _test) = split_by_flow(&trace, 61);
    let tv = extract_views(&train);
    let vv = extract_views(&val);
    let bundle = ModelData::new()
        .with_stat(&tv.stat)
        .with_seq(&tv.seq)
        .with_raw(&tv.raw)
        .with_validation(&vv.stat, &vv.seq);
    let settings = TrainSettings { epochs: 4, ..TrainSettings::quick() };

    type Driver = fn(&ModelData<'_>, &TrainSettings) -> Result<ResourceReport, PegasusError>;
    let deployable: [(&str, Driver); 8] = [
        ("MLP-B", drive::<MlpB>),
        ("RNN-B", drive::<RnnB>),
        ("CNN-B", drive::<CnnB>),
        ("CNN-M", drive::<CnnM>),
        ("CNN-L", drive::<CnnL>),
        ("AutoEncoder", drive::<AutoEncoder>),
        ("BoS", drive::<Bos>),
        ("Leo", drive::<Leo>),
    ];

    for (name, driver) in deployable {
        let report = driver(&bundle, &settings)
            .unwrap_or_else(|e| panic!("{name} failed the unified path: {e}"));
        assert!(report.entries > 0, "{name}: report has no table entries");
        assert!(report.stages_used > 0, "{name}: report shows no stages");
        assert!(report.stages_used <= 20, "{name}: {} stages exceed Tofino-2", report.stages_used);
        assert!(report.sram_bits + report.tcam_bits > 0, "{name}: report shows no memory use");
    }

    // N3IC goes through the same path and must hit the stage wall (§2).
    let err = drive::<N3ic>(&bundle, &settings).unwrap_err();
    assert!(
        matches!(err, PegasusError::Deploy(DeployError::OutOfStages { .. })),
        "N3IC should fail OutOfStages through the unified path, got {err:?}"
    );
}

#[test]
fn bespoke_pipelines_reject_contradicting_target_overrides() {
    use pegasus::core::compile::CompileTarget;
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 10, seed: 63 });
    let (train, _val, _test) = split_by_flow(&trace, 63);
    let tv = extract_views(&train);
    let bundle = ModelData::new().with_seq(&tv.seq);
    let settings = TrainSettings { epochs: 2, ..TrainSettings::quick() };
    // The AutoEncoder emits a Scores pipeline; demanding Classify must fail
    // loudly instead of being silently dropped.
    let ae = AutoEncoder::train(&bundle, &settings).expect("trains");
    let err =
        Pegasus::new(ae).target(CompileTarget::Classify).compile(&bundle).map(|_| ()).unwrap_err();
    assert!(matches!(err, PegasusError::Unsupported { .. }), "{err:?}");
    // Asking for the head it already has is fine.
    let ae = AutoEncoder::train(&bundle, &settings).expect("trains");
    assert!(Pegasus::new(ae).target(CompileTarget::Scores).compile(&bundle).is_ok());
}

#[test]
fn missing_views_error_cleanly() {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 10, seed: 62 });
    let (train, _val, _test) = split_by_flow(&trace, 62);
    let tv = extract_views(&train);
    // Bundle with only the stat view: sequence models must refuse with
    // MissingView, not panic.
    let bundle = ModelData::new().with_stat(&tv.stat);
    let settings = TrainSettings { epochs: 1, ..TrainSettings::quick() };
    let err = drive::<CnnB>(&bundle, &settings).unwrap_err();
    assert!(matches!(err, PegasusError::MissingView { view: "seq", .. }), "{err:?}");
    let err = drive::<CnnL>(&bundle, &settings).unwrap_err();
    assert!(matches!(err, PegasusError::MissingView { .. }), "{err:?}");
}

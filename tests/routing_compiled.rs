//! Compiled tenant routing: the `CompiledRouter` must be bit-identical to
//! a naive first-match `RoutePredicate` scan — over random predicate sets
//! with overlaps and priority ties, pure and through the engine at 1/2/4
//! shards — and the control plane built on it must hold its new
//! contracts: stats that never wait on the dispatcher lock, content-hash
//! artifact dedup, and the aggregate fleet SRAM budget.

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::{ModelData, TrainSettings};
use pegasus::core::{
    Deployment, EngineBuilder, Pegasus, PegasusError, TenantConfig, TenantRoute, TenantRouter,
    TenantToken, HOST_WINDOW_STATE_BITS,
};
use pegasus::datasets::{extract_views, generate_trace, peerrush, GenConfig};
use pegasus::net::{CompiledRouter, FiveTuple, RoutePredicate, TracePacket};
use pegasus::switch::SwitchConfig;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::time::Duration;

// --- seeded generators ----------------------------------------------------

/// xorshift64* — deterministic, no external RNG crates.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

// Small value pools so random rules and random packets collide constantly:
// overlaps and priority ties are the interesting cases.
const PORTS: [u16; 6] = [53, 80, 443, 8080, 8443, 40000];
const ADDRS: [u32; 5] = [0x0a00_0001, 0x0a0a_0a05, 0xc0a8_0101, 0xc0a8_0201, 0x0808_0808];
const PROTOS: [u8; 3] = [6, 17, 1];

fn random_predicate(rng: &mut Rng, depth: usize) -> RoutePredicate {
    let max = if depth == 0 { 7 } else { 10 };
    match rng.below(max) {
        0 => RoutePredicate::Any,
        1 => RoutePredicate::DstPort(PORTS[rng.below(6) as usize]),
        2 => {
            // Sometimes inverted (lo > hi): an empty range must stay empty.
            let lo = PORTS[rng.below(6) as usize];
            let hi = lo.wrapping_add_signed(rng.below(200) as i16 - 40);
            RoutePredicate::DstPortRange { lo, hi }
        }
        3 => RoutePredicate::SrcPort(PORTS[rng.below(6) as usize]),
        4 => RoutePredicate::DstSubnet {
            addr: ADDRS[rng.below(5) as usize],
            prefix: rng.below(33) as u8,
        },
        5 => RoutePredicate::SrcSubnet {
            addr: ADDRS[rng.below(5) as usize],
            prefix: rng.below(33) as u8,
        },
        6 => RoutePredicate::Protocol(PROTOS[rng.below(3) as usize]),
        7 => {
            let n = rng.below(3) as usize; // 0 children = catch-all
            RoutePredicate::AllOf((0..n).map(|_| random_predicate(rng, depth - 1)).collect())
        }
        8 => {
            let n = rng.below(3) as usize; // 0 children = match-nothing
            RoutePredicate::AnyOf((0..n).map(|_| random_predicate(rng, depth - 1)).collect())
        }
        _ => RoutePredicate::Not(Box::new(random_predicate(rng, depth - 1))),
    }
}

fn random_tuple(rng: &mut Rng) -> FiveTuple {
    FiveTuple::new(
        ADDRS[rng.below(5) as usize],
        ADDRS[rng.below(5) as usize],
        PORTS[rng.below(6) as usize],
        PORTS[rng.below(6) as usize],
        PROTOS[rng.below(3) as usize],
    )
}

/// The oracle: first rule whose predicate matches, in list order.
fn naive_first_match(rules: &[(u32, RoutePredicate)], ft: &FiveTuple) -> Option<u32> {
    rules.iter().find(|(_, p)| p.matches(ft)).map(|(payload, _)| *payload)
}

// --- pure differential fuzz ----------------------------------------------

#[test]
fn compiled_router_matches_naive_scan_over_random_rule_sets() {
    let mut mismatches = 0u64;
    for seed in 1..=25u64 {
        let mut rng = Rng::new(seed * 0x9e37_79b9);
        let n_rules = 1 + rng.below(12) as usize;
        // Payloads deliberately non-contiguous: routing must return the
        // rule's payload, not its index.
        let rules: Vec<(u32, RoutePredicate)> =
            (0..n_rules).map(|i| (i as u32 * 7 + 3, random_predicate(&mut rng, 2))).collect();
        let compiled = CompiledRouter::build(&rules);
        for _ in 0..600 {
            let ft = random_tuple(&mut rng);
            let expected = naive_first_match(&rules, &ft);
            let got = compiled.route(&ft).payload;
            if got != expected {
                mismatches += 1;
                eprintln!("seed {seed}: {ft:?} -> compiled {got:?}, scan {expected:?}\n{rules:?}");
            }
        }
    }
    assert_eq!(mismatches, 0, "compiled routing diverged from the first-match scan");
}

#[test]
fn compiled_router_priority_ties_resolve_to_first_attached() {
    // Every structure claims the same packet: the winner must be the
    // earliest rule regardless of which structure it compiled into.
    let claims: Vec<RoutePredicate> = vec![
        RoutePredicate::DstPort(443),
        RoutePredicate::DstSubnet { addr: 0x0a00_0000, prefix: 8 },
        RoutePredicate::SrcSubnet { addr: 0x0a00_0000, prefix: 8 },
        RoutePredicate::Protocol(6),
        RoutePredicate::Any,
        RoutePredicate::SrcPort(40000), // residual
    ];
    let ft = FiveTuple::new(0x0a00_0001, 0x0a0a_0a05, 40000, 443, 6);
    // Try every rotation: the first rule of each rotation must win.
    for rot in 0..claims.len() {
        let rules: Vec<(u32, RoutePredicate)> = (0..claims.len())
            .map(|i| (100 + i as u32, claims[(rot + i) % claims.len()].clone()))
            .collect();
        let compiled = CompiledRouter::build(&rules);
        assert_eq!(
            compiled.route(&ft).payload,
            Some(100),
            "rotation {rot}: a later rule outranked the first"
        );
        assert_eq!(compiled.route(&ft).payload, naive_first_match(&rules, &ft));
    }
}

// --- engine-level differential at 1/2/4 shards ----------------------------

fn mlp_deployment() -> Deployment<MlpB> {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 8, seed: 33 });
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys")
}

fn packet(ft: FiveTuple, seq: u64) -> TracePacket {
    TracePacket {
        ts_micros: seq * 100,
        flow: ft,
        wire_len: 120,
        payload_head: Vec::new(),
        tcp_flags: 0x18,
        ttl: 64,
    }
}

#[test]
fn engine_dispatch_matches_naive_scan_at_every_shard_count() {
    let deployment = mlp_deployment();
    let mut rng = Rng::new(0xfeed_beef);
    let predicates: Vec<RoutePredicate> = (0..10).map(|_| random_predicate(&mut rng, 2)).collect();
    let packets: Vec<FiveTuple> = (0..800).map(|_| random_tuple(&mut rng)).collect();

    for shards in [1usize, 2, 4] {
        let server = EngineBuilder::new().shards(shards).batch(64).build().expect("builds");
        let control = server.control();
        let ingress = server.ingress();
        let mut tokens: Vec<TenantToken> = Vec::new();
        for (i, pred) in predicates.iter().enumerate() {
            let token = control
                .attach(
                    deployment.engine_artifact().expect("artifact"),
                    TenantConfig::new()
                        .name(&format!("t{i}"))
                        .route(pred.clone())
                        .flow_capacity(128),
                )
                .expect("attaches");
            tokens.push(token);
        }
        // The oracle rule list mirrors attach order with token payloads.
        let rules: Vec<(u32, RoutePredicate)> =
            tokens.iter().zip(&predicates).map(|(t, p)| (t.id(), p.clone())).collect();
        let mut expected_routed = vec![0u64; tokens.len()];
        let mut expected_unrouted = 0u64;
        for (seq, ft) in packets.iter().enumerate() {
            let routed = ingress.push(packet(*ft, seq as u64)).expect("pushes");
            match naive_first_match(&rules, ft) {
                Some(id) => {
                    assert!(routed, "{shards} shards: scan routed {ft:?}, engine dropped it");
                    let pos = tokens.iter().position(|t| t.id() == id).unwrap();
                    expected_routed[pos] += 1;
                }
                None => {
                    assert!(!routed, "{shards} shards: scan dropped {ft:?}, engine routed it");
                    expected_unrouted += 1;
                }
            }
        }
        ingress.flush().expect("flushes");
        let stats = control.stats().expect("stats");
        assert_eq!(stats.unrouted, expected_unrouted, "{shards} shards");
        for (pos, token) in tokens.iter().enumerate() {
            let tenant = stats.tenant(*token).expect("tenant present");
            assert_eq!(
                tenant.routed_packets, expected_routed[pos],
                "{shards} shards: tenant {pos} routed-count diverged"
            );
        }
        // Every routed packet was attributed to exactly one structure.
        let routing = &stats.routing;
        let attributed = routing.lut_hits
            + routing.trie_hits
            + routing.proto_hits
            + routing.catchall_hits
            + routing.residual_hits;
        assert_eq!(attributed, expected_routed.iter().sum::<u64>(), "{shards} shards");
        assert!(routing.rebuilds >= tokens.len() as u64, "{shards} shards: one rebuild per attach");
        server.shutdown().expect("shuts down");
    }
}

#[test]
fn detach_recompiles_so_later_rules_take_over() {
    let deployment = mlp_deployment();
    let server = EngineBuilder::new().build().expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let first = control
        .attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().route(RoutePredicate::DstPort(443)).flow_capacity(64),
        )
        .expect("attaches");
    let fallback = control
        .attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().route(RoutePredicate::Any).flow_capacity(64),
        )
        .expect("attaches");
    let ft = FiveTuple::new(0x0a00_0001, 0x0a0a_0a05, 40000, 443, 6);
    ingress.push(packet(ft, 0)).expect("pushes");
    control.detach(first).expect("detaches");
    ingress.push(packet(ft, 1)).expect("pushes");
    ingress.flush().expect("flushes");
    let stats = control.stats().expect("stats");
    // Packet 1 went to the specific tenant; after its detach the same flow
    // must fall through to the catch-all, exactly like a fresh scan.
    assert_eq!(stats.tenant(fallback).expect("fallback").routed_packets, 1);
    assert_eq!(stats.unrouted, 0);
    server.shutdown().expect("shuts down");
}

// --- stats never waits on the dispatcher lock ------------------------------

/// A router that parks inside `route()` — which the dispatcher calls with
/// its lock held — until released, signalling entry first. While parked,
/// the dispatcher lock stays held by the blocked `push`, exactly like a
/// push stuck on a full shard queue under backpressure.
struct ParkingRouter {
    entered: SyncSender<()>,
    release: Mutex<Receiver<()>>,
}

impl TenantRouter for ParkingRouter {
    fn route(&self, _pkt: &TracePacket, tenants: &[TenantRoute]) -> Option<TenantToken> {
        let _ = self.entered.send(());
        let _ = self.release.lock().expect("release channel poisoned").recv();
        tenants.first().map(|t| t.token)
    }
}

#[test]
fn stats_returns_while_a_push_holds_the_dispatcher_lock() {
    let (entered_tx, entered_rx) = sync_channel(1);
    let (release_tx, release_rx) = sync_channel(1);
    let server = EngineBuilder::new()
        .router(Box::new(ParkingRouter { entered: entered_tx, release: Mutex::new(release_rx) }))
        .build()
        .expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let pusher = std::thread::spawn(move || {
        let ft = FiveTuple::new(1, 2, 3, 4, 6);
        ingress.push(packet(ft, 0)).expect("push completes after release")
    });
    // Wait until the push provably holds the dispatcher lock (it is parked
    // inside the router call), then demand a stats snapshot.
    entered_rx.recv_timeout(Duration::from_secs(10)).expect("push reached the router");
    let (stats_tx, stats_rx) = sync_channel(1);
    let stats_control = control.clone();
    std::thread::spawn(move || {
        let _ = stats_tx.send(stats_control.stats());
    });
    let stats = stats_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("stats blocked behind the parked push: it must not take the dispatcher lock")
        .expect("stats succeeds");
    assert!(stats.tenants.is_empty());
    release_tx.send(()).expect("release");
    assert!(!pusher.join().expect("pusher joins"), "no tenants: the parked push routes nowhere");
    server.shutdown().expect("shuts down");
}

// --- artifact dedup and the aggregate fleet budget -------------------------

#[test]
fn identical_artifacts_are_shared_across_tenants() {
    let deployment = mlp_deployment();
    let server = EngineBuilder::new().build().expect("builds");
    let control = server.control();
    const TENANTS: u64 = 5;
    for i in 0..TENANTS {
        control
            .attach(
                deployment.engine_artifact().expect("artifact"),
                TenantConfig::new()
                    .name(&format!("dup{i}"))
                    .route(RoutePredicate::DstPort(1000 + i as u16))
                    .flow_capacity(64),
            )
            .expect("attaches");
    }
    let stats = control.stats().expect("stats");
    assert_eq!(stats.artifacts.tenants, TENANTS);
    assert_eq!(stats.artifacts.unique_artifacts, 1, "identical content must dedup to one");
    assert_eq!(stats.artifacts.naive_bytes, stats.artifacts.resident_bytes * TENANTS);
    assert!(
        stats.artifacts.resident_bytes * 2 > stats.artifacts.naive_bytes / TENANTS,
        "resident bytes at {TENANTS} duplicate tenants must stay near one artifact"
    );
    server.shutdown().expect("shuts down");
}

#[test]
fn fleet_budget_rejects_the_attach_that_overflows_it() {
    let deployment = mlp_deployment();
    const CAP: u64 = 64;
    // Room for exactly two tenants at CAP flows each, not three.
    let budget = 2 * CAP * HOST_WINDOW_STATE_BITS + HOST_WINDOW_STATE_BITS / 2;
    let server = EngineBuilder::new().fleet_state_budget_bits(budget).build().expect("builds");
    let control = server.control();
    let attach = |name: &str| {
        control.attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().name(name).flow_capacity(CAP as usize),
        )
    };
    let first = attach("a").expect("first fits");
    attach("b").expect("second fits");
    match attach("c") {
        Err(PegasusError::FleetStateBudget { needed_bits, budget_bits, tenants }) => {
            assert_eq!(budget_bits, budget);
            assert_eq!(needed_bits, 3 * CAP * HOST_WINDOW_STATE_BITS);
            assert_eq!(tenants, 2);
        }
        other => panic!("expected FleetStateBudget, got {other:?}"),
    }
    // Detach releases the reservation: the third tenant now fits.
    control.detach(first).expect("detaches");
    attach("c").expect("fits after detach freed its share");
    server.shutdown().expect("shuts down");
}

//! Sharded streaming determinism: the packet engine must produce
//! bit-identical per-flow classifications to sequential simulator replay,
//! at every shard count.
//!
//! This is the load-bearing correctness property of the engine (and of the
//! flattened-LUT runtime behind it): sharding only partitions flows across
//! workers, and the flattened representation only changes *how* the
//! compiled tables are executed — never the verdicts. The sequential
//! reference below is an independent reimplementation of the per-packet
//! path: one global `FlowTracker`, features extracted per packet, verdicts
//! from `Deployment::classify` (the switch-simulator path, not the LUTs).

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::rnn_b::RnnB;
use pegasus::core::models::{DataplaneNet, ModelData, StreamFeatures, TrainSettings};
use pegasus::core::{Deployment, Pegasus, StreamConfig};
use pegasus::datasets::{extract_views, generate_trace, peerrush, GenConfig};
use pegasus::net::{FiveTuple, FlowTracker, SeqFeatures, StatFeatures, Trace, WINDOW};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;

/// Sequential reference: replay the trace through one tracker and the
/// simulator runtime, recording per-flow classification sequences.
fn sequential_reference<M: DataplaneNet>(
    deployment: &Deployment<M>,
    trace: &Trace,
) -> HashMap<FiveTuple, Vec<usize>> {
    let features = deployment.model().stream_features();
    let mut tracker = FlowTracker::new(WINDOW);
    let mut out: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    for pkt in &trace.packets {
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes: Vec<f32> = match features {
            StreamFeatures::Stat => StatFeatures::extract(
                state,
                &obs,
                pkt.flow.protocol,
                pkt.tcp_flags,
                pkt.flow.src_port,
                pkt.flow.dst_port,
                pkt.ttl,
                pkt.payload_head.len() as u16,
            )
            .to_f32(),
            StreamFeatures::Seq => {
                SeqFeatures::extract(state).expect("window full").to_f32_interleaved()
            }
        };
        let class = deployment.classify(&codes).expect("classifies");
        out.entry(pkt.flow).or_default().push(class);
    }
    out
}

fn assert_stream_matches_sequential<M: DataplaneNet>(deployment: &Deployment<M>, trace: &Trace) {
    let reference = sequential_reference(deployment, trace);
    let total_classified: u64 = reference.values().map(|v| v.len() as u64).sum();
    assert!(total_classified > 0, "test trace too small to classify anything");

    for shards in [1usize, 2, 4] {
        let cfg = StreamConfig { shards, record_predictions: true, ..StreamConfig::default() };
        let report = deployment.stream_with(&mut trace.source(), &cfg).expect("stream runs");
        assert_eq!(report.shards.len(), shards);
        assert_eq!(report.packets, trace.packets.len() as u64, "{shards} shards");
        assert_eq!(report.classified, total_classified, "{shards} shards");
        assert_eq!(report.packets, report.classified + report.warmup);
        assert_eq!(report.flows as usize, trace.flow_count(), "{shards} shards");

        let preds = report.predictions.expect("recording was requested");
        assert_eq!(preds.len(), reference.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &reference {
            assert_eq!(
                preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged from sequential replay"
            );
        }
    }
}

fn test_trace() -> Trace {
    generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 })
}

#[test]
fn mlp_b_streaming_is_deterministic_across_shard_counts() {
    // Stateless pipeline + statistical features; inference runs through
    // the flattened LUTs, the reference through the simulator.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    assert!(
        deployment.dataplane().expect("stateless plane").flat().is_some(),
        "MLP-B should bake a flattened program at deploy time"
    );
    assert_stream_matches_sequential(&deployment, &trace);
}

#[test]
fn rnn_b_streaming_is_deterministic_across_shard_counts() {
    // Per-flow windowed sequence features (the stateful streaming path:
    // every packet updates its flow's window before classifying).
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_seq(&views.seq);
    let deployment = Pegasus::<RnnB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 4, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    assert_stream_matches_sequential(&deployment, &trace);
}

#[test]
fn stream_reports_shard_partition_consistency() {
    // Shard counters tile the totals, and every flow's packets land on the
    // shard its bidirectional hash names.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    let report = deployment.stream(&mut trace.source(), 4).expect("streams");
    assert_eq!(report.packets, report.shards.iter().map(|s| s.packets).sum::<u64>());
    assert_eq!(report.flows, report.shards.iter().map(|s| s.flows).sum::<u64>());
    let mut expected = [0u64; 4];
    for pkt in &trace.packets {
        expected[pkt.flow.shard_of(4)] += 1;
    }
    for (shard, &n) in expected.iter().enumerate() {
        assert_eq!(report.shards[shard].packets, n, "shard {shard}");
    }
    assert!(report.latency.count() == report.packets);
    assert!(report.pps() > 0.0);
}

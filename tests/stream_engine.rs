//! Sharded streaming determinism: the packet engine must produce
//! bit-identical per-flow classifications to sequential simulator replay,
//! at every shard count.
//!
//! This is the load-bearing correctness property of the engine (and of the
//! flattened-LUT runtime behind it): sharding only partitions flows across
//! workers, and the flattened representation only changes *how* the
//! compiled tables are executed — never the verdicts. The sequential
//! reference below is an independent reimplementation of the per-packet
//! path: one global `FlowTracker`, features extracted per packet, verdicts
//! from `Deployment::classify` (the switch-simulator path, not the LUTs).

use pegasus::core::compile::CompileOptions;
use pegasus::core::models::mlp_b::MlpB;
use pegasus::core::models::rnn_b::RnnB;
use pegasus::core::models::{DataplaneNet, ModelData, StreamFeatures, TrainSettings};
use pegasus::core::{
    Deployment, EngineBuilder, Pegasus, StreamConfig, StreamReport, SwapReport, TenantConfig,
};
use pegasus::datasets::{extract_views, generate_trace, iscxvpn, peerrush, GenConfig};
use pegasus::net::{
    FiveTuple, FlowTracker, RoutePredicate, SeqFeatures, StatFeatures, Trace, WINDOW,
};
use pegasus::switch::SwitchConfig;
use std::collections::HashMap;

/// Sequential reference: replay the trace through one tracker and the
/// simulator runtime, recording per-flow classification sequences.
fn sequential_reference<M: DataplaneNet>(
    deployment: &Deployment<M>,
    trace: &Trace,
) -> HashMap<FiveTuple, Vec<usize>> {
    let features = deployment.model().stream_features();
    let mut tracker = FlowTracker::new(WINDOW);
    let mut out: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    for pkt in &trace.packets {
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes: Vec<f32> = match features {
            StreamFeatures::Stat => StatFeatures::extract(
                state,
                &obs,
                pkt.flow.protocol,
                pkt.tcp_flags,
                pkt.flow.src_port,
                pkt.flow.dst_port,
                pkt.ttl,
                pkt.payload_head.len() as u16,
            )
            .to_f32(),
            StreamFeatures::Seq => {
                SeqFeatures::extract(state).expect("window full").to_f32_interleaved()
            }
        };
        let class = deployment.classify(&codes).expect("classifies");
        out.entry(pkt.flow).or_default().push(class);
    }
    out
}

fn assert_stream_matches_sequential<M: DataplaneNet>(deployment: &Deployment<M>, trace: &Trace) {
    let reference = sequential_reference(deployment, trace);
    let total_classified: u64 = reference.values().map(|v| v.len() as u64).sum();
    assert!(total_classified > 0, "test trace too small to classify anything");

    for shards in [1usize, 2, 4] {
        let cfg = StreamConfig { shards, record_predictions: true, ..StreamConfig::default() };
        let report = deployment.stream_with(&mut trace.source(), &cfg).expect("stream runs");
        assert_eq!(report.shards.len(), shards);
        assert_eq!(report.packets, trace.packets.len() as u64, "{shards} shards");
        assert_eq!(report.classified, total_classified, "{shards} shards");
        assert_eq!(report.packets, report.classified + report.warmup);
        assert_eq!(report.flows as usize, trace.flow_count(), "{shards} shards");

        let preds = report.predictions.expect("recording was requested");
        assert_eq!(preds.len(), reference.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &reference {
            assert_eq!(
                preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged from sequential replay"
            );
        }
    }
}

fn test_trace() -> Trace {
    generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 21 })
}

#[test]
fn mlp_b_streaming_is_deterministic_across_shard_counts() {
    // Stateless pipeline + statistical features; inference runs through
    // the flattened LUTs, the reference through the simulator.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    assert!(
        deployment.dataplane().expect("stateless plane").flat().is_some(),
        "MLP-B should bake a flattened program at deploy time"
    );
    assert_stream_matches_sequential(&deployment, &trace);
}

#[test]
fn rnn_b_streaming_is_deterministic_across_shard_counts() {
    // Per-flow windowed sequence features (the stateful streaming path:
    // every packet updates its flow's window before classifying).
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_seq(&views.seq);
    let deployment = Pegasus::<RnnB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 4, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    assert_stream_matches_sequential(&deployment, &trace);
}

/// Sequential reference with a mid-stream model swap: one tracker whose
/// windows survive the boundary (the engine retains them too), packets
/// before `split` classified by `old`, from `split` on by `new`.
fn sequential_reference_swap<M: DataplaneNet>(
    old: &Deployment<M>,
    new: &Deployment<M>,
    trace: &Trace,
    split: usize,
) -> HashMap<FiveTuple, Vec<usize>> {
    let features = old.model().stream_features();
    let mut tracker = FlowTracker::new(WINDOW);
    let mut out: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    for (i, pkt) in trace.packets.iter().enumerate() {
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes: Vec<f32> = match features {
            StreamFeatures::Stat => StatFeatures::extract(
                state,
                &obs,
                pkt.flow.protocol,
                pkt.tcp_flags,
                pkt.flow.src_port,
                pkt.flow.dst_port,
                pkt.ttl,
                pkt.payload_head.len() as u16,
            )
            .to_f32(),
            StreamFeatures::Seq => {
                SeqFeatures::extract(state).expect("window full").to_f32_interleaved()
            }
        };
        let model = if i < split { old } else { new };
        let class = model.classify(&codes).expect("classifies");
        out.entry(pkt.flow).or_default().push(class);
    }
    out
}

/// Quiesces a tenant: flushes buffered batches and waits until every
/// routed packet has been processed. Swaps are epoch/RCU-published and
/// apply at each shard's *next* packet boundary instead of draining
/// queues, so a test that wants an exact swap boundary quiesces first —
/// once the engine is idle, the next packet after the swap is guaranteed
/// to run under the new artifact.
fn quiesce(
    ingress: &pegasus::core::IngressHandle,
    control: &pegasus::core::ControlHandle,
    token: pegasus::core::TenantToken,
    expect_packets: u64,
) {
    ingress.flush().expect("flushes");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    loop {
        let stats = control.tenant_stats(token).expect("stats");
        if stats.report.packets >= expect_packets {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "engine failed to quiesce: {} of {expect_packets} packets processed",
            stats.report.packets
        );
        std::thread::yield_now();
    }
}

/// Streams `trace` through an [`EngineServer`], hot-swapping the tenant
/// from `old` to `new` exactly at packet index `split` (quiescing first,
/// so the epoch boundary is exact despite the stall-free apply).
fn stream_with_midrun_swap<M: DataplaneNet>(
    old: &Deployment<M>,
    new: &Deployment<M>,
    trace: &Trace,
    split: usize,
    shards: usize,
) -> (StreamReport, SwapReport) {
    let server = EngineBuilder::new().shards(shards).build().expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let token = control
        .attach(
            old.engine_artifact().expect("artifact"),
            TenantConfig::new().record_predictions(true),
        )
        .expect("attaches");
    for pkt in &trace.packets[..split] {
        ingress.push(pkt.clone()).expect("pushes");
    }
    quiesce(&ingress, &control, token, split as u64);
    let swap = control.swap(token, new.engine_artifact().expect("artifact")).expect("swaps");
    for pkt in &trace.packets[split..] {
        ingress.push(pkt.clone()).expect("pushes");
    }
    let mut report = server.shutdown().expect("shuts down");
    let tenant = report.take_tenant(token).expect("tenant report");
    assert_eq!(tenant.routed_packets, trace.packets.len() as u64);
    (tenant.result.expect("tenant served cleanly"), swap)
}

#[test]
fn hot_swap_matches_sequential_classify_around_the_epoch() {
    // Two MLP-B artifacts of the same pipeline shape but different
    // training runs — the paper's "retarget the running switch program to
    // a retrained model by rewriting table entries" scenario. Before the
    // swap epoch every verdict must match sequential classify under the
    // old model; after it, under the new model — with the flow feature
    // windows retained across the boundary, at every shard count.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let opts = CompileOptions { clustering_depth: 5, ..Default::default() };
    let old = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(opts)
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    // "Retrain" after concept drift: same features, same architecture,
    // same pipeline shape — but the class labels rotated, so the new
    // artifact provably disagrees with the old one on every flow.
    let rotated: Vec<usize> =
        views.stat.y.iter().map(|&y| (y + 1) % views.stat.classes()).collect();
    let stat_rot = pegasus::nn::Dataset::new(views.stat.x.clone(), rotated);
    let data_rot = ModelData::new().with_stat(&stat_rot);
    let new = Pegasus::<MlpB>::train(&data_rot, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data_rot)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");

    let split = trace.packets.len() / 2;
    let reference = sequential_reference_swap(&old, &new, &trace, split);
    // The swap must be observable: the retrained model disagrees with the
    // old one somewhere after the boundary (deterministic by seed).
    let old_only = sequential_reference(&old, &trace);
    assert_ne!(reference, old_only, "retrained model never disagreed; swap test is vacuous");

    for shards in [1usize, 2, 4] {
        let (report, swap) = stream_with_midrun_swap(&old, &new, &trace, split, shards);
        assert_eq!(swap.epoch, 1, "{shards} shards");
        assert!(swap.state_retained, "{shards} shards: same-shape swap must retain flow state");
        assert_eq!(report.packets, trace.packets.len() as u64, "{shards} shards");
        let preds = report.predictions.expect("recording was requested");
        assert_eq!(preds.len(), reference.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &reference {
            assert_eq!(
                preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged around the swap epoch"
            );
        }
    }
}

#[test]
fn flow_pipeline_hot_swap_transplants_registers_matching_sequential_forks() {
    // The per-flow register transplant is the headline swap mechanism:
    // CNN-L's code windows, timestamps and warm-up counters move into the
    // retrained classifier. The sequential reference mirrors the engine
    // exactly — one fresh fork per shard, packets routed by the same
    // bidirectional shard hash, and at the split index every fork is
    // replaced by a fork of the new classifier that adopts its register
    // state. Any transplant misalignment (wrong array, wrong order,
    // dropped counter) diverges the verdict stream.
    use pegasus::core::flowpipe::FlowClassifier;
    use pegasus::core::models::cnn_l::{CnnL, CnnLVariant};

    let trace = generate_trace(&iscxvpn(), &GenConfig { flows_per_class: 4, seed: 41 });
    let views = extract_views(&trace);
    let settings = TrainSettings::quick();
    let opts = CompileOptions { clustering_depth: 5, ..Default::default() };
    let data = ModelData::new().with_raw(&views.raw).with_seq(&views.seq);
    let mut old = Pegasus::new(CnnL::fit(&views.raw, &views.seq, CnnLVariant::v44(), &settings))
        .options(opts.clone())
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    // Retrained on rotated labels: same pipeline shape (window, code
    // width, hash size), provably different verdicts after the swap.
    let rot = |d: &pegasus::nn::Dataset| {
        let y: Vec<usize> = d.y.iter().map(|&y| (y + 1) % d.classes()).collect();
        pegasus::nn::Dataset::new(d.x.clone(), y)
    };
    let (raw_rot, seq_rot) = (rot(&views.raw), rot(&views.seq));
    let data_rot = ModelData::new().with_raw(&raw_rot).with_seq(&seq_rot);
    let mut new = Pegasus::new(CnnL::fit(&raw_rot, &seq_rot, CnnLVariant::v44(), &settings))
        .options(opts)
        .compile(&data_rot)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");

    // Grab fresh-state classifier replicas for the reference before the
    // engine shares the deployed planes (flow_mut needs exclusivity).
    let old_fc = old.flow_mut().expect("flow plane").fork();
    let new_fc = new.flow_mut().expect("flow plane").fork();
    assert!(new_fc.state_compatible(&old_fc), "same-shape CNN-L must be state-compatible");
    let arity = old_fc.pipeline().extractor_fields.len();
    let split = trace.packets.len() / 2;

    for shards in [1usize, 2, 4] {
        // Sequential reference with per-shard forks and adopt-at-split.
        let mut forks: Vec<FlowClassifier> = (0..shards).map(|_| old_fc.fork()).collect();
        let mut reference: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
        for (i, pkt) in trace.packets.iter().enumerate() {
            if i == split {
                for fork in forks.iter_mut() {
                    let mut fresh = new_fc.fork();
                    assert!(fresh.adopt_state(fork), "transplant must apply");
                    *fork = fresh;
                }
            }
            let codes: Vec<f32> = pkt
                .payload_head
                .iter()
                .take(arity)
                .map(|&b| f32::from(b))
                .chain(std::iter::repeat(0.0))
                .take(arity)
                .collect();
            let verdict = forks[pkt.flow.shard_of(shards)]
                .on_packet_mut(pkt.flow.dataplane_hash(), pkt.ts_micros, pkt.wire_len, &codes)
                .expect("packet");
            if let Some(class) = verdict.predicted {
                reference.entry(pkt.flow).or_default().push(class);
            }
        }
        assert!(!reference.is_empty(), "reference classified nothing");

        let (report, swap) = stream_with_midrun_swap(&old, &new, &trace, split, shards);
        assert_eq!(swap.epoch, 1, "{shards} shards");
        assert!(swap.state_retained, "{shards} shards: register files must transplant");
        let preds = report.predictions.expect("recording was requested");
        assert_eq!(preds.len(), reference.len(), "{shards} shards: flow sets differ");
        for (flow, seq) in &reference {
            assert_eq!(
                preds.get(flow),
                Some(seq),
                "{shards} shards: flow {flow:?} diverged from the forked reference"
            );
        }
    }
}

#[test]
fn detach_under_load_drops_no_surviving_tenant_packets() {
    // Two tenants split the port space; one detaches mid-run while its
    // queues still hold batches. The survivor must see every one of its
    // packets and classify them exactly as a sequential replay of its
    // share of the traffic.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");

    // Split on the median destination port so both tenants get traffic.
    let mut ports: Vec<u16> = trace.packets.iter().map(|p| p.flow.dst_port).collect();
    ports.sort_unstable();
    let pivot = ports[ports.len() / 2];
    let low = |p: &pegasus::net::TracePacket| p.flow.dst_port <= pivot;
    let n_low = trace.packets.iter().filter(|p| low(p)).count() as u64;
    let n_high = trace.packets.len() as u64 - n_low;
    assert!(n_low > 0 && n_high > 0, "pivot {pivot} did not split the traffic");

    // Survivor's reference: its tracker only ever sees its own packets.
    let mut low_trace = Trace::new();
    low_trace.packets = trace.packets.iter().filter(|p| low(p)).cloned().collect();
    let reference = sequential_reference(&deployment, &low_trace);

    let server = EngineBuilder::new().shards(2).batch(64).build().expect("builds");
    let control = server.control();
    let ingress = server.ingress();
    let survivor = control
        .attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new()
                .name("survivor")
                .route(RoutePredicate::DstPortRange { lo: 0, hi: pivot })
                .record_predictions(true),
        )
        .expect("attaches");
    let ephemeral = control
        .attach(
            deployment.engine_artifact().expect("artifact"),
            TenantConfig::new().name("ephemeral").route(RoutePredicate::Any),
        )
        .expect("attaches");

    let split = trace.packets.len() / 2;
    for pkt in &trace.packets[..split] {
        ingress.push(pkt.clone()).expect("pushes");
    }
    // Detach under load: batches for both tenants are still queued.
    let gone = control.detach(ephemeral).expect("detaches");
    let gone_report = gone.result.expect("ephemeral tenant served cleanly");
    assert_eq!(
        gone_report.packets, gone.routed_packets,
        "detach must drain the ephemeral tenant's in-flight batches"
    );
    // Its token is now dead.
    assert!(control.detach(ephemeral).is_err());

    for pkt in &trace.packets[split..] {
        ingress.push(pkt.clone()).expect("pushes");
    }
    let stats = control.stats().expect("stats");
    assert_eq!(stats.tenants.len(), 1);

    let mut report = server.shutdown().expect("shuts down");
    // After the catch-all tenant left, its share of the second half had no
    // home; the survivor's share still must not lose a single packet.
    let unrouted_expected = trace.packets[split..].iter().filter(|p| !low(p)).count() as u64;
    assert_eq!(report.unrouted, unrouted_expected);
    let tenant = report.take_tenant(survivor).expect("survivor report");
    let survivor_report = tenant.result.expect("survivor served cleanly");
    assert_eq!(tenant.routed_packets, n_low, "every low-port packet routed to the survivor");
    assert_eq!(survivor_report.packets, n_low, "no survivor packet dropped across the detach");
    let preds = survivor_report.predictions.expect("recording was requested");
    assert_eq!(preds.len(), reference.len(), "survivor flow sets differ");
    for (flow, seq) in &reference {
        assert_eq!(preds.get(flow), Some(seq), "flow {flow:?} diverged for the survivor");
    }
}

#[test]
fn stream_reports_shard_partition_consistency() {
    // Shard counters tile the totals, and every flow's packets land on the
    // shard its bidirectional hash names.
    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    let report = deployment.stream(&mut trace.source(), 4).expect("streams");
    assert_eq!(report.packets, report.shards.iter().map(|s| s.packets).sum::<u64>());
    assert_eq!(report.flows, report.shards.iter().map(|s| s.flows).sum::<u64>());
    let mut expected = [0u64; 4];
    for pkt in &trace.packets {
        expected[pkt.flow.shard_of(4)] += 1;
    }
    for (shard, &n) in expected.iter().enumerate() {
        assert_eq!(report.shards[shard].packets, n, "shard {shard}");
    }
    assert!(report.latency.count() == report.packets);
    assert!(report.pps() > 0.0);
}

/// Satellite regression for the control daemon's error mapping: every
/// control verb — `swap`, `detach`, `tenant_stats` — answers an unknown
/// tenant token with the same typed `PegasusError::UnknownTenant`, so the
/// daemon maps one error onto one wire reply instead of ad hoc cases.
/// Tokens are never reused, so a detached tenant's token is the realistic
/// "unknown tenant" an external operator can produce.
#[test]
fn control_ops_on_stale_tokens_return_unknown_tenant() {
    use pegasus::core::PegasusError;

    let trace = test_trace();
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let deployment = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");

    let server = EngineBuilder::new().shards(2).build().expect("builds");
    let control = server.control();
    let tenant = control
        .attach(deployment.engine_artifact().expect("artifact"), TenantConfig::new().name("t"))
        .expect("attaches");

    // Live token: the per-tenant snapshot addresses exactly this tenant.
    let live = control.tenant_stats(tenant).expect("live tenant has stats");
    assert_eq!(live.token, tenant);
    assert_eq!(live.name, "t");

    control.detach(tenant).expect("detaches");
    let id = tenant.id();

    // Stale token: all three verbs agree on the typed error, and swap
    // reports it even though the artifact itself would verify clean.
    assert_eq!(
        control.swap(tenant, deployment.engine_artifact().expect("artifact")).map(|_| ()),
        Err(PegasusError::UnknownTenant { tenant: id })
    );
    assert_eq!(control.detach(tenant).map(|_| ()), Err(PegasusError::UnknownTenant { tenant: id }));
    assert_eq!(
        control.tenant_stats(tenant).map(|_| ()),
        Err(PegasusError::UnknownTenant { tenant: id })
    );

    server.shutdown().expect("shuts down");
}

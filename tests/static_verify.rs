//! The static verifier's contract, end to end through the public API:
//!
//! 1. **Mutation suite** — take a clean compiled artifact, corrupt it the
//!    way a buggy compiler (or bit-rotted serialized artifact) would, and
//!    assert the exact diagnostic code fires *and* `deploy` refuses the
//!    artifact. One corruption per structural/semantic class.
//! 2. **Clean pass** — every net of the evaluation compiles to an
//!    artifact the verifier accepts with zero `Error` diagnostics, and
//!    the interval layer proves all dense-LUT accesses in bounds (no
//!    `V101`).

use pegasus::core::compile::{compile, CompileOptions, CompileTarget, CompiledPipeline};
use pegasus::core::fusion::fuse_basic;
use pegasus::core::primitives::{MapFn, PrimitiveProgram};
use pegasus::core::runtime::DataplaneModel;
use pegasus::core::verify::{verify_pipeline, Severity};
use pegasus::core::PegasusError;
use pegasus::nn::Tensor;
use pegasus::switch::{AluOp, FieldId, KeyPart, Operand, SwitchConfig};
use rand::{Rng, SeedableRng};

/// A small two-segment scorer compiled the normal way — the clean
/// baseline every mutation starts from.
fn clean_pipeline() -> CompiledPipeline {
    let mut p = PrimitiveProgram::new(4);
    let segs = p.partition_strided(p.input, 2, 2);
    let w0 = Tensor::from_vec(vec![1.0, 0.5, -0.5, 1.0], &[2, 2]);
    let w1 = Tensor::from_vec(vec![0.5, 1.0, 1.0, -0.5], &[2, 2]);
    let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.0, 1.0] });
    let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![1.0, 0.0] });
    let out = p.sum_reduce(&[m0, m1]);
    p.set_output(out);
    fuse_basic(&mut p);
    let mut rng = rand::rngs::StdRng::seed_from_u64(41);
    let train: Vec<Vec<f32>> =
        (0..1000).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect();
    compile(
        &p,
        &train,
        &CompileOptions { clustering_depth: 6, ..Default::default() },
        CompileTarget::Classify,
        "mutant",
    )
    .expect("clean pipeline compiles")
}

/// Asserts that the verifier flags `code` as an error on `p` and that
/// `deploy` rejects it with `PegasusError::Verify` carrying that code.
fn assert_rejected(p: CompiledPipeline, code: &str) {
    let report = verify_pipeline(&p, None);
    assert!(
        report.diagnostics.iter().any(|d| d.code == code && d.severity == Severity::Error),
        "expected {code} error, got:\n{report}"
    );
    match DataplaneModel::deploy(p, &SwitchConfig::tofino2()) {
        Err(PegasusError::Verify { report }) => {
            assert!(report.has_code(code), "deploy rejection must carry {code}:\n{report}");
        }
        Err(e) => panic!("expected a Verify rejection carrying {code}, got {e:?}"),
        Ok(_) => panic!("corrupted artifact ({code}) must not deploy"),
    }
}

#[test]
fn clean_artifact_deploys_and_verifies() {
    let p = clean_pipeline();
    let report = verify_pipeline(&p, Some(&SwitchConfig::tofino2()));
    assert!(report.is_clean(), "{report}");
    assert!(!report.has_code("V101"), "dense LUT accesses must be proven:\n{report}");
    DataplaneModel::deploy(p, &SwitchConfig::tofino2()).expect("clean artifact deploys");
}

#[test]
fn oob_scratch_index_is_caught_v001() {
    let mut p = clean_pipeline();
    // A compiler bug that writes to a PHV field that does not exist.
    let t = p.program.tables.iter_mut().find(|t| !t.actions.is_empty()).expect("has actions");
    for op in &mut t.actions[0].ops {
        if let AluOp::Set { dst, .. } = op {
            *dst = FieldId(9999);
            break;
        }
    }
    assert_rejected(p, "V001");
}

#[test]
fn inverted_range_is_caught_v004() {
    let mut p = clean_pipeline();
    let t = p
        .program
        .tables
        .iter_mut()
        .find(|t| {
            t.entries.iter().any(|e| e.keys.iter().any(|k| matches!(k, KeyPart::Range { .. })))
        })
        .expect("fuzzy tables use range keys");
    for e in &mut t.entries {
        for k in &mut e.keys {
            if let KeyPart::Range { lo, hi } = k {
                // Swap to an inverted range — pre-verifier, this artifact
                // panicked deep inside TCAM range expansion at deploy.
                let (l, h) = (*lo, *hi);
                if l < h {
                    *k = KeyPart::Range { lo: h, hi: l };
                    assert_rejected(p, "V004");
                    return;
                }
            }
        }
    }
    panic!("no range entry found to invert");
}

#[test]
fn range_past_field_width_is_caught_v005() {
    let mut p = clean_pipeline();
    let t = p
        .program
        .tables
        .iter_mut()
        .find(|t| {
            t.entries.iter().any(|e| e.keys.iter().any(|k| matches!(k, KeyPart::Range { .. })))
        })
        .expect("fuzzy tables use range keys");
    for e in &mut t.entries {
        for k in &mut e.keys {
            if let KeyPart::Range { hi, .. } = k {
                *hi = u64::MAX; // beyond any declared field width
                assert_rejected(p, "V005");
                return;
            }
        }
    }
    panic!("no range entry found to widen");
}

#[test]
fn dangling_action_reference_is_caught_v003() {
    let mut p = clean_pipeline();
    let t = p.program.tables.iter_mut().find(|t| !t.entries.is_empty()).expect("has entries");
    t.entries[0].action_idx = 999;
    assert_rejected(p, "V003");
}

#[test]
fn oversized_shift_is_caught_v006() {
    let mut p = clean_pipeline();
    let t = p.program.tables.iter_mut().find(|t| !t.actions.is_empty()).expect("has actions");
    let dst = p.input_fields.first().copied().unwrap_or(FieldId(0));
    t.actions[0].ops.push(AluOp::Shl { dst, a: Operand::Const(1), amount: 64 });
    assert_rejected(p, "V006");
}

#[test]
fn shadowed_entry_is_caught_v201() {
    let mut p = clean_pipeline();
    // Duplicate an existing entry with a different outcome: the copy can
    // never win (first match wins at equal priority), so a compiler
    // emitting it has mis-enumerated its rule set.
    let t = p
        .program
        .tables
        .iter_mut()
        .find(|t| !t.is_exact() && !t.keys.is_empty() && !t.entries.is_empty())
        .expect("keyed tables exist");
    let mut dup = t.entries[0].clone();
    for d in &mut dup.action_data {
        *d = d.wrapping_add(1);
    }
    t.entries.push(dup);
    assert_rejected(p, "V201");
}

#[test]
fn resource_overflow_is_reported_v204_and_deploy_rejects() {
    let p = clean_pipeline();
    let tiny = SwitchConfig {
        stages: 1,
        sram_bits_per_stage: 256,
        tcam_bits_per_stage: 256,
        ..SwitchConfig::tiny_test()
    };
    // The verifier's resource layer reports the overflow statically...
    let report = verify_pipeline(&p, Some(&tiny));
    assert!(
        report.diagnostics.iter().any(|d| d.code == "V204" && d.severity == Severity::Error),
        "expected V204, got:\n{report}"
    );
    // ...and deploy refuses the same artifact (via the switch model's own
    // typed error — resource fit stays its call).
    assert!(DataplaneModel::deploy(p, &tiny).is_err());
}

/// Every net of the evaluation must produce an artifact the verifier
/// accepts with zero errors, with all dense-LUT accesses proven in
/// bounds. (The `pegasus-verify` binary runs the same sweep against the
/// tofino2 resource model; this test pins the compile-time contract.)
#[test]
fn all_nine_nets_compile_to_verified_artifacts() {
    use pegasus::baselines::{Bos, Leo, N3ic};
    use pegasus::core::models::autoencoder::AutoEncoder;
    use pegasus::core::models::cnn_b::CnnB;
    use pegasus::core::models::cnn_l::CnnL;
    use pegasus::core::models::cnn_m::CnnM;
    use pegasus::core::models::mlp_b::MlpB;
    use pegasus::core::models::rnn_b::RnnB;
    use pegasus::core::models::{DataplaneNet, ModelData, TrainSettings};
    use pegasus::core::pipeline::{Compiled, Pegasus};
    use pegasus::datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};

    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed: 71 });
    let (train, val, _test) = split_by_flow(&trace, 71);
    let tv = extract_views(&train);
    let vv = extract_views(&val);
    let bundle = ModelData::new()
        .with_stat(&tv.stat)
        .with_seq(&tv.seq)
        .with_raw(&tv.raw)
        .with_validation(&vv.stat, &vv.seq);
    let settings = TrainSettings { epochs: 4, ..TrainSettings::quick() };

    fn check<M: DataplaneNet>(name: &str, bundle: &ModelData<'_>, settings: &TrainSettings) {
        let compiled: Compiled<M> = Pegasus::<M>::train(bundle, settings)
            .unwrap_or_else(|e| panic!("{name} trains: {e}"))
            .compile(bundle)
            .unwrap_or_else(|e| panic!("{name} compiles: {e}"));
        let report = compiled.artifact().verify(None);
        assert!(report.is_clean(), "{name} must verify clean:\n{report}");
        assert!(!report.has_code("V101"), "{name} has unproven LUT accesses:\n{report}");
    }

    check::<MlpB>("MLP-B", &bundle, &settings);
    check::<RnnB>("RNN-B", &bundle, &settings);
    check::<CnnB>("CNN-B", &bundle, &settings);
    check::<CnnM>("CNN-M", &bundle, &settings);
    check::<CnnL>("CNN-L", &bundle, &settings);
    check::<AutoEncoder>("AutoEncoder", &bundle, &settings);
    check::<Bos>("BoS", &bundle, &settings);
    check::<Leo>("Leo", &bundle, &settings);
    check::<N3ic>("N3IC", &bundle, &settings);
}

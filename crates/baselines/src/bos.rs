//! BoS \[46\]: the binary-RNN baseline — computation bypassing.
//!
//! BoS stores exhaustive input-bit-string → output-bit-string mappings:
//! full precision *inside* each table, binary activations at table
//! boundaries. For an n-bit table input that costs `2^n` entries, which is
//! what caps its input scale at ~18 bits (§2) — the limitation Pegasus's
//! fuzzy matching removes.
//!
//! The reproduction: a windowed Elman RNN over *binarized* per-packet
//! features (2 bits per packet: length and IPD sign bits), hidden state
//! binarized between steps. Deployment enumerates every `(hidden bits,
//! input bits)` combination into exact-match state-transition tables,
//! mirroring our RNN-B pipeline but with enumeration instead of clustering
//! — the head-to-head the paper's Table 5 makes.

use crate::report_for;
use pegasus_core::compile::CompileOptions;
use pegasus_core::compile::CompiledPipeline;
use pegasus_core::error::PegasusError;
use pegasus_core::models::{DataplaneNet, Lowered, ModelData, TrainSettings};
use pegasus_core::numformat::NumFormat;
use pegasus_nn::layers::{sign_pm1, Param};
use pegasus_nn::loss::softmax_cross_entropy;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::optim::{Adam, Optimizer};
use pegasus_nn::{Dataset, Tensor};
use pegasus_switch::{
    Action, AluOp, FieldId, KeyPart, MatchKind, Operand, PhvLayout, SwitchProgram, Table,
    TableEntry,
};

/// Packets per window.
pub const WINDOW: usize = 8;
/// Binary input bits per packet (len sign, IPD sign).
pub const IN_BITS: usize = 2;
/// Binary hidden-state width.
pub const HIDDEN: usize = 8;

/// Per-sample BPTT cache: pre-activations, binarized states, and inputs of
/// each window step.
type StepCache = (Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<[f32; 2]>);

/// Thresholds splitting codes into sign bits (learned as medians).
#[derive(Clone, Copy, Debug)]
pub struct BinThresholds {
    /// Length-code threshold.
    pub len: f32,
    /// IPD-code threshold.
    pub ipd: f32,
}

/// A trained BoS model.
pub struct Bos {
    wx: Param,
    wh: Param,
    bias: Param,
    head_w: Param,
    head_b: Param,
    thresholds: BinThresholds,
    classes: usize,
}

impl Bos {
    /// Trains on interleaved `[len, ipd] x 8` code rows.
    pub fn fit(train: &Dataset, epochs: usize, lr: f32, seed: u64) -> Self {
        assert_eq!(train.x.cols(), 2 * WINDOW, "BoS expects 16 sequence codes");
        let classes = train.classes();
        let mut rng = pegasus_nn::init::rng(seed);
        // Median thresholds for input binarization.
        let median = |col_stride: usize| -> f32 {
            let mut v: Vec<f32> = (0..train.len())
                .flat_map(|r| (0..WINDOW).map(move |t| train.x.at2(r, 2 * t + col_stride)))
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let thresholds = BinThresholds { len: median(0), ipd: median(1) };

        let mut m = Bos {
            wx: Param::new(pegasus_nn::init::xavier(&mut rng, &[IN_BITS, HIDDEN])),
            wh: Param::new(pegasus_nn::init::xavier(&mut rng, &[HIDDEN, HIDDEN])),
            bias: Param::new(Tensor::zeros(&[HIDDEN])),
            head_w: Param::new(pegasus_nn::init::xavier(&mut rng, &[HIDDEN, classes])),
            head_b: Param::new(Tensor::zeros(&[classes])),
            thresholds,
            classes,
        };
        let mut opt = Adam::new(lr);
        for _ in 0..epochs {
            for (xb, yb) in train.batches(64, &mut rng) {
                let (logits, caches) = m.forward_train(&xb);
                let (_loss, grad) = softmax_cross_entropy(&logits, &yb);
                m.backward(&grad, &caches);
                let mut params: Vec<&mut Param> =
                    vec![&mut m.wx, &mut m.wh, &mut m.bias, &mut m.head_w, &mut m.head_b];
                opt.step(&mut params);
                for p in params {
                    p.zero_grad();
                }
            }
        }
        m
    }

    /// Binarizes one packet's (len, ipd) codes to ±1.
    fn in_bits(&self, len_code: f32, ipd_code: f32) -> [f32; IN_BITS] {
        [
            if len_code > self.thresholds.len { 1.0 } else { -1.0 },
            if ipd_code > self.thresholds.ipd { 1.0 } else { -1.0 },
        ]
    }

    /// One full-precision step from a *binary* hidden state.
    fn step(&self, h_pm1: &[f32], x: &[f32; IN_BITS]) -> Vec<f32> {
        let mut pre = self.bias.value.data().to_vec();
        for (i, &xi) in x.iter().enumerate() {
            for (o, p) in pre.iter_mut().enumerate() {
                *p += xi * self.wx.value.at2(i, o);
            }
        }
        for (i, &hi) in h_pm1.iter().enumerate() {
            for (o, p) in pre.iter_mut().enumerate() {
                *p += hi * self.wh.value.at2(i, o);
            }
        }
        pre.iter().map(|&v| v.tanh()).collect()
    }

    /// Forward with binarized hidden state between steps (deployed
    /// semantics). Returns per-sample logits.
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let rows = x.rows();
        let mut logits = Tensor::zeros(&[rows, self.classes]);
        for r in 0..rows {
            let row = x.row(r);
            let mut h = vec![-1.0f32; HIDDEN];
            for t in 0..WINDOW {
                let xin = self.in_bits(row[2 * t], row[2 * t + 1]);
                let pre = self.step(&h, &xin);
                h = pre.iter().map(|&v| sign_pm1(v)).collect();
            }
            let out = logits.row_mut(r);
            for (o, item) in out.iter_mut().enumerate() {
                let mut acc = self.head_b.value.data()[o];
                for (i, &hi) in h.iter().enumerate() {
                    acc += hi * self.head_w.value.at2(i, o);
                }
                *item = acc;
            }
        }
        logits
    }

    /// Training-time forward with straight-through sign gradients.
    #[allow(clippy::type_complexity)]
    fn forward_train(
        &self,
        x: &Tensor,
    ) -> (Tensor, Vec<(Vec<Vec<f32>>, Vec<Vec<f32>>, Vec<[f32; 2]>)>) {
        let rows = x.rows();
        let mut logits = Tensor::zeros(&[rows, self.classes]);
        let mut caches = Vec::with_capacity(rows);
        for r in 0..rows {
            let row = x.row(r);
            let mut h = vec![-1.0f32; HIDDEN];
            let mut pres = Vec::with_capacity(WINDOW);
            let mut hs = Vec::with_capacity(WINDOW);
            let mut xs = Vec::with_capacity(WINDOW);
            for t in 0..WINDOW {
                let xin = self.in_bits(row[2 * t], row[2 * t + 1]);
                let pre = self.step(&h, &xin);
                h = pre.iter().map(|&v| sign_pm1(v)).collect();
                pres.push(pre);
                hs.push(h.clone());
                xs.push(xin);
            }
            for o in 0..self.classes {
                let mut acc = self.head_b.value.data()[o];
                for (i, &hi) in h.iter().enumerate() {
                    acc += hi * self.head_w.value.at2(i, o);
                }
                *logits.at2_mut(r, o) = acc;
            }
            caches.push((pres, hs, xs));
        }
        (logits, caches)
    }

    /// BPTT with straight-through sign estimators.
    #[allow(clippy::needless_range_loop)] // dense index math over parallel arrays
    fn backward(&mut self, grad_logits: &Tensor, caches: &[StepCache]) {
        for (r, (pres, hs, xs)) in caches.iter().enumerate() {
            // Head grads + grad into final h.
            let mut gh = vec![0.0f32; HIDDEN];
            let h_last = &hs[WINDOW - 1];
            for o in 0..self.classes {
                let g = grad_logits.at2(r, o);
                self.head_b.grad.data_mut()[o] += g;
                for i in 0..HIDDEN {
                    *self.head_w.grad.at2_mut(i, o) += g * h_last[i];
                    gh[i] += g * self.head_w.value.at2(i, o);
                }
            }
            for t in (0..WINDOW).rev() {
                // Through sign (STE, hard-tanh window) then tanh.
                let pre = &pres[t];
                let g_pre: Vec<f32> = gh
                    .iter()
                    .zip(pre.iter())
                    .map(|(&g, &p)| {
                        let ste = if p.abs() <= 1.5 { g } else { 0.0 };
                        ste * (1.0 - p.tanh() * p.tanh())
                    })
                    .collect();
                let h_prev: Vec<f32> = if t == 0 { vec![-1.0; HIDDEN] } else { hs[t - 1].clone() };
                for o in 0..HIDDEN {
                    self.bias.grad.data_mut()[o] += g_pre[o];
                    for i in 0..IN_BITS {
                        *self.wx.grad.at2_mut(i, o) += g_pre[o] * xs[t][i];
                    }
                    for i in 0..HIDDEN {
                        *self.wh.grad.at2_mut(i, o) += g_pre[o] * h_prev[i];
                    }
                }
                let mut gh_next = vec![0.0f32; HIDDEN];
                for i in 0..HIDDEN {
                    for o in 0..HIDDEN {
                        gh_next[i] += g_pre[o] * self.wh.value.at2(i, o);
                    }
                }
                gh = gh_next;
            }
        }
    }

    /// Macro metrics with deployed (binarized) semantics.
    pub fn evaluate(&self, data: &Dataset) -> PrRcF1 {
        let preds = self.forward(&data.x).argmax_rows();
        pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Input scale: binary bits consumed per inference (Table 5's 18 b is
    /// approximated by 16 here: 2 bits per packet over an 8-packet window).
    pub const fn input_bits() -> usize {
        WINDOW * IN_BITS
    }

    /// Model size in kilobits (full-precision weights live in the tables).
    pub fn size_kilobits(&self) -> f64 {
        let params = self.wx.value.len()
            + self.wh.value.len()
            + self.bias.value.len()
            + self.head_w.value.len()
            + self.head_b.value.len();
        (params * 32) as f64 / 1000.0
    }

    /// Table entries one step table needs: exhaustive enumeration.
    pub fn entries_per_step(&self) -> u64 {
        1u64 << (HIDDEN + IN_BITS)
    }

    /// Emits the exhaustive mapping-table switch program: one input
    /// binarization table, `WINDOW` chained state tables of
    /// `2^(HIDDEN + IN_BITS)` entries, and a head table holding the
    /// precomputed verdicts.
    fn emit_pipeline(&self) -> CompiledPipeline {
        let mut layout = PhvLayout::new();
        let input_fields: Vec<FieldId> =
            (0..2 * WINDOW).map(|i| layout.add_field(&format!("in{i}"), 8)).collect();
        let mut tables = Vec::new();

        // Binarization: per packet 2 range-matched bits packed in a field.
        let bit_fields: Vec<FieldId> =
            (0..WINDOW).map(|t| layout.add_field(&format!("xbits{t}"), IN_BITS as u8)).collect();
        for t in 0..WINDOW {
            for (j, thr) in [(0usize, self.thresholds.len), (1, self.thresholds.ipd)] {
                let mut tb = Table::new(
                    &format!("bos_bin_{t}_{j}"),
                    vec![(input_fields[2 * t + j], MatchKind::Range)],
                );
                let set = tb.add_action(Action::new("setbit").with(AluOp::Or {
                    dst: bit_fields[t],
                    a: Operand::Field(bit_fields[t]),
                    b: Operand::Const(1 << j),
                }));
                tb.add_entry(TableEntry {
                    keys: vec![KeyPart::Range { lo: thr.ceil() as u64 + 1, hi: 255 }],
                    priority: 0,
                    action_idx: set,
                    action_data: vec![],
                });
                tables.push(tb);
            }
        }

        // State tables: exhaustive (h_bits, x_bits) -> h_bits'.
        let mut h_field = layout.add_field("bos_h0", HIDDEN as u8);
        {
            // Initial hidden state: all -1 -> bit pattern 0.
            let mut t = Table::new("bos_init", vec![]);
            let act = Action::new("h0").with(AluOp::Set { dst: h_field, a: Operand::Const(0) });
            t.default_action = Some((t.add_action(act), vec![]));
            tables.push(t);
        }
        for (step, &step_bits) in bit_fields.iter().enumerate() {
            let next = layout.add_field(&format!("bos_h{}", step + 1), HIDDEN as u8);
            let mut t = Table::new(
                &format!("bos_step{step}"),
                vec![(h_field, MatchKind::Exact), (step_bits, MatchKind::Exact)],
            );
            let set = t.add_action(
                Action::new("next").with(AluOp::Set { dst: next, a: Operand::Param(0) }),
            );
            t.param_widths = vec![HIDDEN as u8];
            for h_pat in 0..(1u64 << HIDDEN) {
                let h_pm1: Vec<f32> =
                    (0..HIDDEN).map(|i| if (h_pat >> i) & 1 == 1 { 1.0 } else { -1.0 }).collect();
                for x_pat in 0..(1u64 << IN_BITS) {
                    let xin = [
                        if x_pat & 1 == 1 { 1.0 } else { -1.0 },
                        if (x_pat >> 1) & 1 == 1 { 1.0 } else { -1.0 },
                    ];
                    let pre = self.step(&h_pm1, &xin);
                    let mut out_pat = 0u64;
                    for (i, &v) in pre.iter().enumerate() {
                        if sign_pm1(v) > 0.0 {
                            out_pat |= 1 << i;
                        }
                    }
                    t.add_entry(TableEntry {
                        keys: vec![KeyPart::Exact(h_pat), KeyPart::Exact(x_pat)],
                        priority: 0,
                        action_idx: set,
                        action_data: vec![out_pat as i64],
                    });
                }
            }
            tables.push(t);
            h_field = next;
        }

        // Head: final h bits -> class (argmax precomputed into the table —
        // computation bypassing all the way to the verdict).
        let pred_field = layout.add_field("bos_pred", 8);
        {
            let mut t = Table::new("bos_head", vec![(h_field, MatchKind::Exact)]);
            let set = t.add_action(
                Action::new("pred").with(AluOp::Set { dst: pred_field, a: Operand::Param(0) }),
            );
            t.param_widths = vec![8];
            for h_pat in 0..(1u64 << HIDDEN) {
                let h_pm1: Vec<f32> =
                    (0..HIDDEN).map(|i| if (h_pat >> i) & 1 == 1 { 1.0 } else { -1.0 }).collect();
                let mut best = (0usize, f32::MIN);
                for o in 0..self.classes {
                    let mut acc = self.head_b.value.data()[o];
                    for (i, &hi) in h_pm1.iter().enumerate() {
                        acc += hi * self.head_w.value.at2(i, o);
                    }
                    if acc > best.1 {
                        best = (o, acc);
                    }
                }
                t.add_entry(TableEntry {
                    keys: vec![KeyPart::Exact(h_pat)],
                    priority: 0,
                    action_idx: set,
                    action_data: vec![best.0 as i64],
                });
            }
            tables.push(t);
        }

        let mut program = SwitchProgram::new("bos", layout);
        program.tables = tables;
        // Window of binarized features + timestamp (the paper reports 72).
        program.stateful_bits_per_flow = (WINDOW * IN_BITS + 16) as u64;
        program.keep_alive = vec![pred_field];
        let (_, remap) = program.compact_phv(&input_fields);
        let input_fields: Vec<FieldId> = input_fields.iter().map(|&f| remap.get(f)).collect();
        let pred_field = remap.get(pred_field);
        let report = report_for(&program);
        CompiledPipeline {
            program,
            input_fields,
            score_fields: vec![],
            score_format: NumFormat::code8(),
            predicted_field: Some(pred_field),
            report,
        }
    }
}

impl DataplaneNet for Bos {
    fn name(&self) -> &'static str {
        "BoS (binary RNN)"
    }

    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(Bos::fit(data.seq("BoS")?, settings.epochs, settings.lr, settings.seed))
    }

    /// BoS's "float" path already uses deployed (binarized) semantics.
    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.evaluate(data.seq("BoS")?))
    }

    /// Lowers to exhaustively enumerated mapping tables — computation
    /// bypassing with no clustering, the `2^n` wall of §2.
    fn lower(
        &mut self,
        _data: &ModelData<'_>,
        _opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        Ok(Lowered::Pipeline(Box::new(self.emit_pipeline())))
    }

    fn size_kilobits(&mut self) -> f64 {
        Bos::size_kilobits(self)
    }

    fn stream_features(&self) -> pegasus_core::models::StreamFeatures {
        pegasus_core::models::StreamFeatures::Seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_core::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::SwitchConfig;

    fn data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 22 });
        let (train, _v, test) = split_by_flow(&trace, 2);
        (extract_views(&train).seq, extract_views(&test).seq)
    }

    #[test]
    fn trains_above_chance() {
        let (train, test) = data();
        let m = Bos::fit(&train, 15, 0.01, 7);
        let f1 = m.evaluate(&test).f1;
        assert!(f1 > 0.45, "BoS F1 {f1}");
    }

    #[test]
    fn switch_program_matches_host_semantics() {
        let (train, test) = data();
        let m = Bos::fit(&train, 8, 0.01, 8);
        let host_preds = m.forward(&test.x).argmax_rows();
        let bundle = ModelData::new().with_seq(&train);
        let dp = Pegasus::new(m)
            .compile(&bundle)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("BoS fits");
        let mut agree = 0;
        for (r, &host) in host_preds.iter().enumerate() {
            if dp.classify(test.x.row(r)).expect("classifies") == host {
                agree += 1;
            }
        }
        assert_eq!(agree, test.len(), "exhaustive tables must be exact");
    }

    #[test]
    fn table_entries_grow_exponentially() {
        let (train, _) = data();
        let m = Bos::fit(&train, 1, 0.01, 9);
        // 2^(8+2) = 1024 entries per step — the scalability wall Pegasus
        // removes (a 21-bit input would already need 2M entries, §2).
        assert_eq!(m.entries_per_step(), 1024);
        let bundle = ModelData::new().with_seq(&train);
        let dp = Pegasus::new(m)
            .compile(&bundle)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let report = dp.resource_report();
        assert!(report.entries >= 8 * 1024);
    }

    #[test]
    fn input_scale_is_binary_window() {
        assert_eq!(Bos::input_bits(), 16);
    }
}

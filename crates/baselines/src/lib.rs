//! # pegasus-baselines — the paper's comparison systems
//!
//! From-scratch implementations of the three baselines Pegasus is evaluated
//! against (§7.1):
//!
//! * [`n3ic`] — binary MLP with XNOR+popcount MatMul (computation
//!   simplification). Bit-exact packed inference plus the 14-stage-per-
//!   popcount deployment cost model showing why it cannot fit the switch.
//! * [`bos`] — binary RNN with exhaustive input→output mapping tables
//!   (computation bypassing). Fully deployable; its `2^n`-entry tables are
//!   the input-scale wall fuzzy matching removes.
//! * [`leo`] — CART decision trees compiled to range-match verdict tables,
//!   the tree-based IDP design family.

#![warn(missing_docs)]

pub mod bos;
pub mod leo;
pub mod n3ic;

pub use bos::{Bos, BosPipeline, DeployedBos};
pub use leo::{DeployedLeo, Leo, LeoConfig, LeoPipeline};
pub use n3ic::{binarize_features, N3ic, PackedBinaryMlp};

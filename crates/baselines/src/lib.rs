//! # pegasus-baselines — the paper's comparison systems
//!
//! From-scratch implementations of the three baselines Pegasus is evaluated
//! against (§7.1), each behind the same
//! [`DataplaneNet`](pegasus_core::models::DataplaneNet) trait and
//! [`Pegasus`](pegasus_core::pipeline::Pegasus) builder as the paper's own
//! models:
//!
//! * [`n3ic`] — binary MLP with XNOR+popcount MatMul (computation
//!   simplification). Bit-exact packed inference plus the 14-stage-per-
//!   popcount deployment cost model: deploying it through the builder
//!   fails `OutOfStages`, exactly as the paper describes.
//! * [`bos`] — binary RNN with exhaustive input→output mapping tables
//!   (computation bypassing). Fully deployable; its `2^n`-entry tables are
//!   the input-scale wall fuzzy matching removes.
//! * [`leo`] — CART decision trees compiled to range-match verdict tables,
//!   the tree-based IDP design family.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bos;
pub mod leo;
pub mod n3ic;

pub use bos::Bos;
pub use leo::{Leo, LeoConfig};
pub use n3ic::{binarize_features, N3ic, PackedBinaryMlp};

use pegasus_core::compile::CompileReport;
use pegasus_switch::SwitchProgram;

/// Builds a [`CompileReport`] for a hand-emitted switch program: table,
/// entry, and keyed-lookup counts, with keyed tables split into exact
/// (all-exact keys) and fuzzy (range/ternary) groups.
pub(crate) fn report_for(program: &SwitchProgram) -> CompileReport {
    let mut report = CompileReport { tables: program.tables.len(), ..Default::default() };
    for t in &program.tables {
        report.entries += t.entries.len() as u64;
        if t.keys.is_empty() {
            continue; // action-only table
        }
        report.lookups_per_input += 1;
        if t.is_exact() {
            report.exact_tables += 1;
        } else {
            report.fuzzy_tables += 1;
        }
    }
    report
}

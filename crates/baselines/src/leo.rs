//! Leo \[22\]: the dataplane decision-tree baseline.
//!
//! Leo compiles decision trees to match-action tables; trees align naturally
//! with the MAT abstraction (§1), which is why they were the dominant IDP
//! model family before NN-based designs. This module implements CART
//! training (Gini impurity) and table compilation: every leaf becomes one
//! range-match rule over the statistical features — the same leaf-box
//! machinery Pegasus uses for fuzzy matching, with the class verdict stored
//! directly in the entry.

use crate::report_for;
use pegasus_core::compile::{CompileOptions, CompiledPipeline};
use pegasus_core::error::PegasusError;
use pegasus_core::models::{DataplaneNet, Lowered, ModelData, TrainSettings};
use pegasus_core::numformat::NumFormat;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::Dataset;
use pegasus_switch::{
    Action, AluOp, FieldId, KeyPart, MatchKind, Operand, PhvLayout, SwitchProgram, Table,
    TableEntry,
};

/// CART hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct LeoConfig {
    /// Maximum node count (the paper deploys a 1024-node Leo for the
    /// resource comparison).
    pub max_nodes: usize,
    /// Minimum samples to split a node.
    pub min_samples: usize,
    /// Maximum tree depth — one MAT level per depth on the switch.
    pub max_depth: usize,
}

impl Default for LeoConfig {
    fn default() -> Self {
        LeoConfig { max_nodes: 1024, min_samples: 4, max_depth: 12 }
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf { class: usize },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// A trained CART decision tree.
pub struct Leo {
    nodes: Vec<Node>,
    features: usize,
    classes: usize,
}

fn gini(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

impl Leo {
    /// Trains a CART tree on statistical features.
    pub fn fit(train: &Dataset, cfg: &LeoConfig) -> Self {
        let classes = train.classes();
        let features = train.x.cols();
        let mut nodes: Vec<Node> = Vec::new();
        let all: Vec<usize> = (0..train.len()).collect();
        // Breadth-first growth bounded by max_nodes.
        let mut queue: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        nodes.push(Node::Leaf { class: 0 });
        queue.push((0, all, 0));
        let mut qi = 0;
        while qi < queue.len() {
            let (slot, idx, depth) = queue[qi].clone();
            qi += 1;
            let mut counts = vec![0usize; classes];
            for &i in &idx {
                counts[train.y[i]] += 1;
            }
            let majority =
                counts.iter().enumerate().max_by_key(|(_, &c)| c).map(|(c, _)| c).unwrap_or(0);
            nodes[slot] = Node::Leaf { class: majority };
            if idx.len() < cfg.min_samples
                || counts.iter().filter(|&&c| c > 0).count() <= 1
                || nodes.len() + 2 > cfg.max_nodes
                || depth >= cfg.max_depth
            {
                continue;
            }
            // Best Gini split.
            let parent_gini = gini(&counts);
            let mut best: Option<(usize, f32, f64)> = None;
            let mut sorted = idx.clone();
            for f in 0..features {
                sorted.sort_by(|&a, &b| train.x.at2(a, f).partial_cmp(&train.x.at2(b, f)).unwrap());
                let mut left_counts = vec![0usize; classes];
                for cut in 1..sorted.len() {
                    left_counts[train.y[sorted[cut - 1]]] += 1;
                    let a = train.x.at2(sorted[cut - 1], f);
                    let b = train.x.at2(sorted[cut], f);
                    if a == b {
                        continue;
                    }
                    let right_counts: Vec<usize> =
                        counts.iter().zip(left_counts.iter()).map(|(&t, &l)| t - l).collect();
                    let nl = cut as f64;
                    let nr = (sorted.len() - cut) as f64;
                    let n = sorted.len() as f64;
                    let w = (nl / n) * gini(&left_counts) + (nr / n) * gini(&right_counts);
                    if best.is_none_or(|(_, _, bw)| w < bw) {
                        // Snap to x*8 - 1 boundaries when the snapped value
                        // still separates the two sides: boundary-aligned
                        // thresholds expand to far fewer TCAM rules once
                        // the leaves become range entries.
                        let mid = ((a + b) / 2.0).floor();
                        let snapped = (((mid + 1.0) / 8.0).round() * 8.0 - 1.0).max(0.0);
                        let thr = if snapped >= a && snapped < b { snapped } else { mid };
                        best = Some((f, thr, w));
                    }
                }
            }
            let Some((f, thr, w)) = best else { continue };
            if w >= parent_gini {
                continue; // no improvement
            }
            let (li, ri): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| train.x.at2(i, f) <= thr);
            if li.is_empty() || ri.is_empty() {
                continue;
            }
            let l_slot = nodes.len();
            nodes.push(Node::Leaf { class: majority });
            let r_slot = nodes.len();
            nodes.push(Node::Leaf { class: majority });
            nodes[slot] = Node::Split { feature: f, threshold: thr, left: l_slot, right: r_slot };
            queue.push((l_slot, li, depth + 1));
            queue.push((r_slot, ri, depth + 1));
        }
        Leo { nodes, features, classes }
    }

    /// Predicts one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { class } => return *class,
                Node::Split { feature, threshold, left, right } => {
                    cur = if x[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Macro metrics.
    pub fn evaluate(&self, data: &Dataset) -> PrRcF1 {
        let preds: Vec<usize> = (0..data.len()).map(|r| self.predict(data.x.row(r))).collect();
        pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Depth (level) of every node.
    fn node_levels(&self) -> Vec<usize> {
        let mut level = vec![0usize; self.nodes.len()];
        let mut stack = vec![(0usize, 0usize)];
        while let Some((n, d)) = stack.pop() {
            level[n] = d;
            if let Node::Split { left, right, .. } = &self.nodes[n] {
                stack.push((*left, d + 1));
                stack.push((*right, d + 1));
            }
        }
        level
    }

    /// Emits the tree level by level — Leo's actual dataplane encoding:
    /// one MAT per tree depth, keyed on the current node id plus ranges
    /// over the features (wildcard except the node's split feature, so each
    /// entry expands to a handful of TCAM rules instead of a cross
    /// product), then a final node-id → verdict table.
    fn emit_pipeline(&self) -> CompiledPipeline {
        let mut layout = PhvLayout::new();
        let input_fields: Vec<FieldId> =
            (0..self.features).map(|i| layout.add_field(&format!("in{i}"), 8)).collect();
        let node_field = layout.add_field("leo_node", 16);
        let pred_field = layout.add_field("leo_pred", 8);
        let levels = self.node_levels();
        let depth = levels
            .iter()
            .enumerate()
            .filter(|(n, _)| matches!(self.nodes[*n], Node::Split { .. }))
            .map(|(_, &d)| d)
            .max()
            .map_or(0, |d| d + 1);

        let mut tables = Vec::new();
        for lv in 0..depth {
            let mut keys = vec![(node_field, MatchKind::Exact)];
            keys.extend(input_fields.iter().map(|&f| (f, MatchKind::Range)));
            let mut t = Table::new(&format!("leo_lv{lv}"), keys);
            let step = t.add_action(
                Action::new("step").with(AluOp::Set { dst: node_field, a: Operand::Param(0) }),
            );
            t.param_widths = vec![16];
            for (n, node) in self.nodes.iter().enumerate() {
                if levels[n] != lv {
                    continue;
                }
                let Node::Split { feature, threshold, left, right } = node else { continue };
                let thr = threshold.floor().max(0.0) as u64;
                for (lo, hi, child) in
                    [(0u64, thr.min(255), *left), ((thr + 1).min(255), 255, *right)]
                {
                    if lo > hi {
                        continue;
                    }
                    let mut parts = vec![KeyPart::Exact(n as u64)];
                    for f in 0..self.features {
                        parts.push(if f == *feature {
                            KeyPart::Range { lo, hi }
                        } else {
                            KeyPart::Range { lo: 0, hi: 255 }
                        });
                    }
                    t.add_entry(TableEntry {
                        keys: parts,
                        priority: 0,
                        action_idx: step,
                        action_data: vec![child as i64],
                    });
                }
            }
            tables.push(t);
        }
        // Verdict table: any node id the walk can stop at -> its class.
        let mut vt = Table::new("leo_verdict", vec![(node_field, MatchKind::Exact)]);
        let set = vt.add_action(
            Action::new("verdict").with(AluOp::Set { dst: pred_field, a: Operand::Param(0) }),
        );
        vt.param_widths = vec![8];
        for (n, node) in self.nodes.iter().enumerate() {
            if let Node::Leaf { class } = node {
                vt.add_entry(TableEntry {
                    keys: vec![KeyPart::Exact(n as u64)],
                    priority: 0,
                    action_idx: set,
                    action_data: vec![*class as i64],
                });
            }
        }
        vt.default_action = Some((set, vec![0]));
        tables.push(vt);

        let mut program = SwitchProgram::new("leo", layout);
        program.tables = tables;
        // Per-flow stats Leo needs (min/max len/IPD + ts): 80 bits, like
        // the paper's Table 6 row.
        program.stateful_bits_per_flow = 80;
        program.keep_alive = vec![pred_field, node_field];
        let (_, remap) = program.compact_phv(&input_fields);
        let input_fields: Vec<FieldId> = input_fields.iter().map(|&f| remap.get(f)).collect();
        let pred_field = remap.get(pred_field);
        let report = report_for(&program);
        CompiledPipeline {
            program,
            input_fields,
            score_fields: vec![],
            score_format: NumFormat::code8(),
            predicted_field: Some(pred_field),
            report,
        }
    }
}

impl DataplaneNet for Leo {
    fn name(&self) -> &'static str {
        "Leo (Decision Tree)"
    }

    /// Trains with [`LeoConfig::default`]; use [`Leo::fit`] for custom tree
    /// budgets.
    fn train(data: &ModelData<'_>, _settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(Leo::fit(data.stat("Leo")?, &LeoConfig::default()))
    }

    /// Decision trees have no float/deployed gap: the host-side tree walk
    /// is the reference.
    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.evaluate(data.stat("Leo")?))
    }

    /// Lowers to one MAT per tree level plus a verdict table.
    fn lower(
        &mut self,
        _data: &ModelData<'_>,
        _opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        Ok(Lowered::Pipeline(Box::new(self.emit_pipeline())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_core::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::SwitchConfig;

    fn data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 23 });
        let (train, _v, test) = split_by_flow(&trace, 3);
        (extract_views(&train).stat, extract_views(&test).stat)
    }

    #[test]
    fn cart_learns_separable_data() {
        let (train, test) = data();
        let leo = Leo::fit(&train, &LeoConfig::default());
        let f1 = leo.evaluate(&test).f1;
        assert!(f1 > 0.7, "Leo F1 {f1}");
        assert!(leo.node_count() <= 1024);
    }

    #[test]
    fn switch_table_matches_host_tree() {
        let (train, test) = data();
        let leo =
            Leo::fit(&train, &LeoConfig { max_nodes: 127, min_samples: 8, ..Default::default() });
        let bundle = ModelData::new().with_stat(&train);
        let dp = Pegasus::new(leo)
            .compile(&bundle)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("Leo fits");
        for r in 0..test.len().min(200) {
            assert_eq!(
                dp.classify(test.x.row(r)).expect("classifies"),
                dp.model().predict(test.x.row(r)),
                "row {r} diverged"
            );
        }
    }

    #[test]
    fn node_budget_respected() {
        let (train, _) = data();
        let leo =
            Leo::fit(&train, &LeoConfig { max_nodes: 15, min_samples: 2, ..Default::default() });
        assert!(leo.node_count() <= 15);
    }

    #[test]
    fn resource_report_uses_tcam() {
        let (train, _) = data();
        let leo =
            Leo::fit(&train, &LeoConfig { max_nodes: 255, min_samples: 4, ..Default::default() });
        let bundle = ModelData::new().with_stat(&train);
        let dp = Pegasus::new(leo)
            .compile(&bundle)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let r = dp.resource_report();
        assert!(r.tcam_bits > 0);
        assert_eq!(r.stateful_bits_per_flow, 80);
        // One stage per tree level plus the verdict table.
        assert!(r.stages_used <= 13, "stages {}", r.stages_used);
    }
}

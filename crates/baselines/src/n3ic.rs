//! N3IC \[35\]: the binary-MLP baseline.
//!
//! N3IC replaces MatMul with XNOR + population count over fully binarized
//! weights *and* activations — computation simplification (§2). This module
//! reproduces both halves of the paper's treatment:
//!
//! * a trainable binary MLP (straight-through estimators) whose deployed
//!   form is evaluated **bit-exactly** with packed XNOR/popcnt words, and
//! * the deployment cost model: each popcount chain occupies 14 MAT stages
//!   on a Tofino-class pipeline (§2), which is why the paper had to
//!   evaluate its largest N3IC configuration in software — the deploy check
//!   here fails with `OutOfStages` exactly as the paper describes.

use pegasus_core::compile::{CompileOptions, CompiledPipeline};
use pegasus_core::error::PegasusError;
use pegasus_core::models::{DataplaneNet, Lowered, ModelData, TrainSettings};
use pegasus_core::numformat::NumFormat;
use pegasus_nn::layers::{sign_pm1, BinaryDense, Layer, LayerSpec, Param};
use pegasus_nn::loss::softmax_cross_entropy;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::optim::{Adam, Optimizer};
use pegasus_nn::{Dataset, Tensor};
use pegasus_switch::{PhvLayout, SwitchProgram};

/// Binary input width: the 16 statistical feature bytes as 128 sign bits.
pub const INPUT_BITS: usize = 128;
/// Hidden widths of the two binary layers.
pub const HIDDEN: [usize; 2] = [64, 32];

/// Sign activation with a hard-tanh straight-through estimator.
struct BinarySign {
    cached_input: Option<Tensor>,
}

impl Layer for BinarySign {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input = Some(x.clone());
        }
        x.map(sign_pm1)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("backward before forward");
        grad_out.zip_map(x, |g, v| if v.abs() <= 1.0 { g } else { 0.0 })
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Tanh // nearest serializable stand-in; never serialized
    }

    fn name(&self) -> &'static str {
        "BinarySign"
    }
}

/// Converts a byte-feature row into ±1 bits (MSB first per byte).
pub fn binarize_features(codes: &[f32]) -> Vec<f32> {
    let mut bits = Vec::with_capacity(codes.len() * 8);
    for &c in codes {
        let b = c.round().clamp(0.0, 255.0) as u8;
        for i in (0..8).rev() {
            bits.push(if (b >> i) & 1 == 1 { 1.0 } else { -1.0 });
        }
    }
    bits
}

/// A trained N3IC binary MLP.
pub struct N3ic {
    l1: BinaryDense,
    act1: BinarySign,
    l2: BinaryDense,
    act2: BinarySign,
    l3: BinaryDense,
    classes: usize,
}

impl N3ic {
    /// Trains on statistical features (16 byte codes per row, binarized to
    /// 128 ±1 bits internally).
    pub fn fit(train: &Dataset, epochs: usize, lr: f32, seed: u64) -> Self {
        assert_eq!(train.x.cols(), 16, "N3IC expects 16 statistical feature bytes");
        let classes = train.classes();
        let mut rng = pegasus_nn::init::rng(seed);
        let mut m = N3ic {
            l1: BinaryDense::new(&mut rng, INPUT_BITS, HIDDEN[0]),
            act1: BinarySign { cached_input: None },
            l2: BinaryDense::new(&mut rng, HIDDEN[0], HIDDEN[1]),
            act2: BinarySign { cached_input: None },
            l3: BinaryDense::new(&mut rng, HIDDEN[1], classes),
            classes,
        };
        let mut opt = Adam::new(lr);
        for _ in 0..epochs {
            for (xb, yb) in train.batches(64, &mut rng) {
                let xbits = Self::batch_bits(&xb);
                let h1 = m.act1.forward(&m.l1.forward(&xbits, true), true);
                let h2 = m.act2.forward(&m.l2.forward(&h1, true), true);
                let logits = m.l3.forward(&h2, true);
                let (_loss, grad) = softmax_cross_entropy(&logits, &yb);
                let g = m.l3.backward(&grad);
                let g = m.act2.backward(&g);
                let g = m.l2.backward(&g);
                let g = m.act1.backward(&g);
                let _ = m.l1.backward(&g);
                // Pure XNOR/popcnt has no bias term: train weights only
                // (params_mut yields [weight, bias] per layer — keep even).
                let mut params: Vec<&mut Param> = Vec::new();
                params.extend(m.l1.params_mut().into_iter().step_by(2));
                params.extend(m.l2.params_mut().into_iter().step_by(2));
                params.extend(m.l3.params_mut().into_iter().step_by(2));
                opt.step(&mut params);
                for p in params {
                    p.zero_grad();
                }
                for layer in [&mut m.l1, &mut m.l2, &mut m.l3] {
                    for p in layer.params_mut().into_iter().skip(1).step_by(2) {
                        p.zero_grad();
                    }
                }
            }
        }
        m
    }

    fn batch_bits(x: &Tensor) -> Tensor {
        let rows = x.rows();
        let mut out = Tensor::zeros(&[rows, INPUT_BITS]);
        for r in 0..rows {
            out.row_mut(r).copy_from_slice(&binarize_features(x.row(r)));
        }
        out
    }

    /// Float-path forward (binarized weights/activations via the layers).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let xbits = Self::batch_bits(x);
        let h1 = self.act1.forward(&self.l1.forward(&xbits, false), false);
        let h2 = self.act2.forward(&self.l2.forward(&h1, false), false);
        self.l3.forward(&h2, false)
    }

    /// Macro metrics via the float path.
    pub fn evaluate(&mut self, data: &Dataset) -> PrRcF1 {
        let preds = self.forward(&data.x).argmax_rows();
        pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Model size in kilobits — binary weights are 1 bit each (the paper's
    /// 24.4 Kb accounting).
    pub fn size_kilobits(&self) -> f64 {
        let bits = INPUT_BITS * HIDDEN[0] + HIDDEN[0] * HIDDEN[1] + HIDDEN[1] * self.classes;
        bits as f64 / 1000.0
    }

    /// Input scale in bits (Table 5 column).
    pub const fn input_bits() -> usize {
        INPUT_BITS
    }

    /// Extracts the packed deployed form.
    pub fn pack(&self) -> PackedBinaryMlp {
        PackedBinaryMlp {
            layers: vec![
                PackedLayer::pack(&self.l1.binary_weight(), true),
                PackedLayer::pack(&self.l2.binary_weight(), true),
                PackedLayer::pack(&self.l3.binary_weight(), false),
            ],
        }
    }
}

impl DataplaneNet for N3ic {
    fn name(&self) -> &'static str {
        "N3IC (binary MLP)"
    }

    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(N3ic::fit(data.stat("N3IC")?, settings.epochs, settings.lr, settings.seed))
    }

    /// The binarized-weights/activations path (N3IC has no full-precision
    /// variant; this is also its deployed semantics, bit-exactly).
    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.evaluate(data.stat("N3IC")?))
    }

    /// Lowers to the deployment *cost model* of §2: one popcount chain per
    /// layer at 14 MAT stages each. Deploying the result on a Tofino-class
    /// configuration fails with `OutOfStages` — by design; that is the
    /// paper's point, and the reason its largest N3IC was evaluated in
    /// software (use [`N3ic::pack`] for the bit-exact packed path).
    fn lower(
        &mut self,
        _data: &ModelData<'_>,
        _opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        // Neurons of one layer run in parallel banks, layers serialize.
        let popcnt_stage_cost = 14;
        let layer_count = 3;
        let mut program = SwitchProgram::new("n3ic", PhvLayout::new());
        program.extra_stages = popcnt_stage_cost * layer_count;
        program.stateful_bits_per_flow = 80;
        Ok(Lowered::Pipeline(Box::new(CompiledPipeline {
            program,
            input_fields: vec![],
            score_fields: vec![],
            score_format: NumFormat::code8(),
            predicted_field: None,
            report: Default::default(),
        })))
    }

    fn size_kilobits(&mut self) -> f64 {
        N3ic::size_kilobits(self)
    }
}

/// One packed binary layer: per-neuron weight masks + thresholds.
pub struct PackedLayer {
    /// Weight sign masks, one `u128` block list per output neuron.
    pub masks: Vec<Vec<u128>>,
    /// Input width in bits.
    pub in_bits: usize,
    /// Whether outputs are re-binarized (hidden layers) or left as counts.
    pub binarize_out: bool,
}

impl PackedLayer {
    fn pack(weight_pm1: &Tensor, binarize_out: bool) -> Self {
        let (in_bits, out) = (weight_pm1.shape()[0], weight_pm1.shape()[1]);
        let blocks = in_bits.div_ceil(128);
        let mut masks = vec![vec![0u128; blocks]; out];
        for (o, mask) in masks.iter_mut().enumerate() {
            for i in 0..in_bits {
                if weight_pm1.at2(i, o) > 0.0 {
                    mask[i / 128] |= 1u128 << (i % 128);
                }
            }
        }
        PackedLayer { masks, in_bits, binarize_out }
    }

    /// Evaluates the layer on packed inputs via XNOR + popcount.
    ///
    /// For ±1 algebra: `dot(x, w) = 2 * popcount(XNOR(x, w)) - n`.
    pub fn eval(&self, x: &[u128]) -> (Vec<u128>, Vec<i32>) {
        let out = self.masks.len();
        let blocks = self.in_bits.div_ceil(128);
        let mut packed = vec![0u128; out.div_ceil(128)];
        let mut raw = Vec::with_capacity(out);
        for (o, mask) in self.masks.iter().enumerate() {
            let mut cnt = 0u32;
            for b in 0..blocks {
                let mut xnor = !(x[b] ^ mask[b]);
                // Mask out padding bits beyond in_bits in the last block.
                if b == blocks - 1 && !self.in_bits.is_multiple_of(128) {
                    xnor &= (1u128 << (self.in_bits % 128)) - 1;
                }
                cnt += xnor.count_ones();
            }
            let dot = 2 * cnt as i32 - self.in_bits as i32;
            raw.push(dot);
            if dot >= 0 {
                packed[o / 128] |= 1u128 << (o % 128);
            }
        }
        (packed, raw)
    }
}

/// The fully packed deployed N3IC model.
pub struct PackedBinaryMlp {
    /// Layers in order.
    pub layers: Vec<PackedLayer>,
}

impl PackedBinaryMlp {
    /// Bit-exact XNOR/popcnt inference; returns the argmax class.
    pub fn classify_bits(&self, bits: &[f32]) -> usize {
        let blocks = bits.len().div_ceil(128);
        let mut x = vec![0u128; blocks];
        for (i, &b) in bits.iter().enumerate() {
            if b > 0.0 {
                x[i / 128] |= 1u128 << (i % 128);
            }
        }
        let mut raw: Vec<i32> = Vec::new();
        for layer in &self.layers {
            let (packed, r) = layer.eval(&x);
            x = packed;
            raw = r;
        }
        // Last-maximum tie-break, matching Tensor::argmax_rows (Iterator::
        // max_by keeps the last of equal elements).
        let mut best = (0usize, i32::MIN);
        for (i, &v) in raw.iter().enumerate() {
            if v >= best.1 {
                best = (i, v);
            }
        }
        best.0
    }

    /// Classifies a 16-byte statistical feature row.
    pub fn classify_codes(&self, codes: &[f32]) -> usize {
        self.classify_bits(&binarize_features(codes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_core::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::{DeployError, SwitchConfig};

    fn data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 21 });
        let (train, _v, test) = split_by_flow(&trace, 1);
        (extract_views(&train).stat, extract_views(&test).stat)
    }

    #[test]
    fn binarize_is_sign_of_bits() {
        let bits = binarize_features(&[0b1010_0001_u8 as f32]);
        assert_eq!(bits.len(), 8);
        assert_eq!(bits[0], 1.0); // MSB
        assert_eq!(bits[1], -1.0);
        assert_eq!(bits[7], 1.0); // LSB
    }

    #[test]
    fn trains_above_chance_and_packed_matches_float() {
        let (train, test) = data();
        let mut m = N3ic::fit(&train, 12, 0.01, 3);
        let f1 = m.evaluate(&test).f1;
        assert!(f1 > 0.45, "N3IC F1 {f1}");
        // Packed XNOR/popcnt must agree with the float binary path exactly.
        let packed = m.pack();
        let logits = m.forward(&test.x);
        let float_preds = logits.argmax_rows();
        let mut agree = 0;
        for (r, &want) in float_preds.iter().enumerate() {
            if packed.classify_codes(test.x.row(r)) == want {
                agree += 1;
            }
        }
        assert_eq!(agree, test.len(), "packed XNOR/popcnt must be bit-exact");
    }

    #[test]
    fn does_not_fit_the_switch() {
        let (train, _) = data();
        let m = N3ic::fit(&train, 1, 0.01, 4);
        let bundle = ModelData::new().with_stat(&train);
        let err = Pegasus::new(m)
            .compile(&bundle)
            .expect("cost model compiles")
            .deploy(&SwitchConfig::tofino2())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, PegasusError::Deploy(DeployError::OutOfStages { .. })), "{err:?}");
    }

    #[test]
    fn size_matches_paper_ballpark() {
        let (train, _) = data();
        let m = N3ic::fit(&train, 1, 0.01, 5);
        let kb = N3ic::size_kilobits(&m);
        assert!((5.0..30.0).contains(&kb), "{kb} Kb");
    }
}

//! # pegasus-datasets — synthetic evaluation workloads
//!
//! Seeded, reproducible stand-ins for the paper's three public traffic-
//! classification datasets (§7.1) and the attack traffic of §7.4:
//!
//! * [`catalog`]: PeerRush-like (3 P2P apps), CICIOT-like (3 IoT device
//!   states) and ISCXVPN-like (7 VPN service classes) dataset specs, tuned
//!   so the *relative* difficulty across feature families matches the
//!   paper's results (see each spec's docs);
//! * [`profile`]: the generative model behind every class — Markov packet-
//!   length states, log-normal IPDs, noisy payload signatures;
//! * [`generate`]: labeled trace synthesis;
//! * [`split`]: the paper's 75/10/15 flow-level train/val/test split;
//! * [`samples`]: aligned per-packet feature views (statistical / sequence /
//!   raw-byte) so every model sees identical sample points;
//! * [`attacks`]: the six Figure 8 attack families and 1:4 test-set
//!   injection;
//! * [`stream`]: pcap-style streaming synthesis — the same generative
//!   profiles emitting packets on demand through
//!   [`PacketSource`](pegasus_net::PacketSource), for throughput runs that
//!   should not materialize millions of packets first.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attacks;
pub mod catalog;
pub mod generate;
pub mod profile;
pub mod samples;
pub mod split;
pub mod stream;

pub use attacks::{generate_attack_trace, inject_attack, AttackKind, ATTACK_LABEL};
pub use catalog::{all_datasets, ciciot, iscxvpn, peerrush, DatasetSpec};
pub use generate::{generate_trace, GenConfig};
pub use samples::{extract_views, SampleViews};
pub use split::split_by_flow;
pub use stream::{synthesize_pcap, FrameSynthSource, SyntheticConfig, SyntheticSource};

//! Class-conditional traffic profiles.
//!
//! A [`ClassProfile`] describes how one traffic class (an application, an IoT
//! device state, a VPN service category, an attack family) emits packets:
//! packet lengths cycle through a small Markov chain of length states,
//! inter-packet delays are log-normal, and payloads carry a noisy per-class
//! byte signature. These three knobs map one-to-one onto the three feature
//! families the paper's models consume, so class separability can be tuned
//! *independently per family* — which is how the synthetic datasets mirror
//! the real ones' relative difficulty (see `catalog`).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One state of the packet-length chain: lengths near `mean` with `std`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LenState {
    /// Mean wire length in bytes.
    pub mean: f64,
    /// Standard deviation in bytes.
    pub std: f64,
}

/// Generative description of one traffic class.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClassProfile {
    /// Class name (e.g. "uTorrent", "Idle", "VoIP", "Cridex").
    pub name: String,
    /// Packet-length states, cycled in order with occasional random jumps.
    pub len_states: Vec<LenState>,
    /// Probability of jumping to a uniformly random state instead of the
    /// next one — higher values blur the temporal pattern.
    pub len_jump_prob: f64,
    /// Mean of `ln(IPD in microseconds)`.
    pub ipd_log_mean: f64,
    /// Std of `ln(IPD in microseconds)`.
    pub ipd_log_std: f64,
    /// Per-class payload signature: the "protocol header" bytes at the
    /// start of each packet's payload.
    pub payload_signature: Vec<u8>,
    /// Probability that each signature byte is replaced by uniform noise —
    /// 1.0 makes payloads pure noise (encrypted-looking).
    pub signature_noise: f64,
    /// Server port range `[lo, hi]` flows of this class use.
    pub port_range: (u16, u16),
    /// IP protocol (TCP or UDP).
    pub protocol: u8,
    /// Packets per flow range `[lo, hi]`.
    pub flow_len_range: (usize, usize),
}

impl ClassProfile {
    /// Samples a wire length for the packet at position `pos` in the flow.
    pub fn sample_len(&self, rng: &mut StdRng, state: &mut usize) -> u16 {
        if self.len_states.is_empty() {
            return 100;
        }
        if rng.gen::<f64>() < self.len_jump_prob {
            *state = rng.gen_range(0..self.len_states.len());
        } else {
            *state = (*state + 1) % self.len_states.len();
        }
        let s = self.len_states[*state];
        let v = normal(rng, s.mean, s.std);
        v.clamp(60.0, 1514.0) as u16
    }

    /// Samples an inter-packet delay in microseconds.
    pub fn sample_ipd(&self, rng: &mut StdRng) -> u64 {
        let ln = normal(rng, self.ipd_log_mean, self.ipd_log_std);
        ln.exp().clamp(1.0, 60_000_000.0) as u64
    }

    /// Samples the first `n` payload bytes: signature bytes with per-byte
    /// noise, then class-biased filler.
    pub fn sample_payload(&self, rng: &mut StdRng, n: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let byte =
                if i < self.payload_signature.len() && rng.gen::<f64>() >= self.signature_noise {
                    self.payload_signature[i]
                } else if self.signature_noise >= 1.0 {
                    // Fully encrypted payloads: uniform noise.
                    rng.gen::<u8>()
                } else {
                    // Filler correlated with the signature (checksum-like mix),
                    // so deeper bytes still carry class signal.
                    let base = self
                        .payload_signature
                        .get(i % self.payload_signature.len().max(1))
                        .copied()
                        .unwrap_or(0);
                    base.wrapping_add(rng.gen_range(0..32))
                };
            out.push(byte);
        }
        out
    }

    /// Samples the number of packets for one flow.
    pub fn sample_flow_len(&self, rng: &mut StdRng) -> usize {
        let (lo, hi) = self.flow_len_range;
        assert!(lo <= hi && lo >= 1);
        rng.gen_range(lo..=hi)
    }

    /// Samples a server port for one flow.
    pub fn sample_port(&self, rng: &mut StdRng) -> u16 {
        let (lo, hi) = self.port_range;
        rng.gen_range(lo..=hi)
    }
}

/// Gaussian sample via Box-Muller.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    mean + std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn profile() -> ClassProfile {
        ClassProfile {
            name: "test".into(),
            len_states: vec![
                LenState { mean: 100.0, std: 5.0 },
                LenState { mean: 1000.0, std: 20.0 },
            ],
            len_jump_prob: 0.0,
            ipd_log_mean: 7.0, // e^7 us ≈ 1.1 ms
            ipd_log_std: 0.5,
            payload_signature: vec![0xde, 0xad, 0xbe, 0xef],
            signature_noise: 0.1,
            port_range: (8000, 8010),
            protocol: 6,
            flow_len_range: (10, 20),
        }
    }

    #[test]
    fn lengths_cycle_through_states() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(1);
        let mut state = 0usize;
        let lens: Vec<u16> = (0..6).map(|_| p.sample_len(&mut rng, &mut state)).collect();
        // Alternates between ~1000 and ~100 (starts by advancing to state 1).
        assert!(lens[0] > 800 && lens[1] < 300 && lens[2] > 800, "{lens:?}");
    }

    #[test]
    fn lengths_clamped_to_wire_limits() {
        let mut p = profile();
        p.len_states = vec![LenState { mean: 5000.0, std: 1.0 }];
        let mut rng = StdRng::seed_from_u64(2);
        let mut state = 0;
        assert_eq!(p.sample_len(&mut rng, &mut state), 1514);
    }

    #[test]
    fn ipd_lognormal_moments() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(3);
        let mean_ln = (0..2000).map(|_| (p.sample_ipd(&mut rng) as f64).ln()).sum::<f64>() / 2000.0;
        assert!((mean_ln - 7.0).abs() < 0.1, "mean ln {mean_ln}");
    }

    #[test]
    fn payload_signature_survives_low_noise() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(4);
        let mut hits = 0;
        for _ in 0..100 {
            let pl = p.sample_payload(&mut rng, 4);
            if pl == vec![0xde, 0xad, 0xbe, 0xef] {
                hits += 1;
            }
        }
        // (0.9)^4 ≈ 65% of payloads carry the intact signature.
        assert!(hits > 40, "{hits}");
    }

    #[test]
    fn fully_noisy_payloads_lose_signature() {
        let mut p = profile();
        p.signature_noise = 1.0;
        let mut rng = StdRng::seed_from_u64(5);
        let pl = p.sample_payload(&mut rng, 1000);
        // Roughly uniform: mean near 127.
        let mean: f64 = pl.iter().map(|&b| b as f64).sum::<f64>() / 1000.0;
        assert!((mean - 127.0).abs() < 15.0, "mean {mean}");
    }

    #[test]
    fn flow_len_in_range() {
        let p = profile();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..50 {
            let n = p.sample_flow_len(&mut rng);
            assert!((10..=20).contains(&n));
        }
    }
}

//! Streaming trace synthesis — pcap-style packet generation without
//! materializing the trace.
//!
//! [`generate_trace`](crate::generate_trace) builds the whole labeled
//! [`Trace`](pegasus_net::Trace) in memory, which is fine for training-set
//! extraction but wasteful for throughput benchmarking, where the engine
//! wants millions of packets it will look at exactly once. [`SyntheticSource`]
//! implements [`PacketSource`] instead: it keeps one small generator per
//! active flow in a timestamp-ordered heap and samples each packet the
//! moment the engine asks for it — constant memory in the packet count,
//! the way a capture file is read or tcpreplay replays a pcap (§7.1).
//!
//! Generation is seeded and deterministic: the same [`SyntheticConfig`]
//! always yields the same packet stream.

use crate::catalog::DatasetSpec;
use crate::generate::make_flow_id;
use pegasus_net::wire::encode_trace_packet;
use pegasus_net::{FiveTuple, FrameSource, PacketSource, PcapWriter, RawFrame, TracePacket};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Knobs for streaming synthesis.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Flows generated per class.
    pub flows_per_class: usize,
    /// Master RNG seed; same seed, same stream.
    pub seed: u64,
    /// Payload bytes synthesized per packet. Payload sampling is one RNG
    /// draw per byte and dominates generation cost, so set 0 for
    /// throughput workloads whose models can live without payloads.
    /// Caveat: with 0, `payload_head.len()` is 0 too, which zeroes the
    /// quantized-payload-length slot of the statistical feature vector —
    /// fine for measuring packets/s (every path sees the same codes), but
    /// a trained stat model's *accuracy* on such a stream is not
    /// meaningful. Sequence models (RNN-B, CNN-B/M) truly never read
    /// payloads.
    pub payload_bytes: usize,
    /// Flow start times are staggered uniformly across this window (µs).
    pub start_window_micros: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            flows_per_class: 120,
            seed: 0xfeed,
            payload_bytes: 0,
            start_window_micros: 10_000_000,
        }
    }
}

impl SyntheticConfig {
    /// The shape of the checked-in golden capture
    /// (`tests/fixtures/golden.pcap`): small enough to commit, large
    /// enough that every class classifies. Regenerate the fixture with
    /// `PEGASUS_REGEN_FIXTURES=1 cargo test golden` after changing this
    /// (or anything in the generator).
    pub fn fixture() -> Self {
        SyntheticConfig {
            flows_per_class: 4,
            seed: 0x601d,
            payload_bytes: 12,
            start_window_micros: 500_000,
        }
    }
}

/// One flow's generator state, ordered by its next packet's timestamp.
struct FlowGen {
    next_ts: u64,
    /// Creation order — deterministic tie-break for equal timestamps.
    seq: usize,
    flow: FiveTuple,
    class: usize,
    remaining: usize,
    len_state: usize,
}

impl PartialEq for FlowGen {
    fn eq(&self, other: &Self) -> bool {
        (self.next_ts, self.seq) == (other.next_ts, other.seq)
    }
}
impl Eq for FlowGen {}
impl PartialOrd for FlowGen {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FlowGen {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest packet.
        (other.next_ts, other.seq).cmp(&(self.next_ts, self.seq))
    }
}

/// A seeded on-the-fly packet generator implementing [`PacketSource`].
pub struct SyntheticSource {
    spec: DatasetSpec,
    rng: StdRng,
    active: BinaryHeap<FlowGen>,
    labels: Vec<(FiveTuple, usize)>,
    remaining_packets: u64,
    payload_bytes: usize,
}

impl SyntheticSource {
    /// Creates a source over `spec`'s class profiles.
    ///
    /// Flow identities, start times and packet counts are drawn up front
    /// (memory is `O(flows)`); per-packet fields are sampled lazily.
    pub fn new(spec: &DatasetSpec, cfg: &SyntheticConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut next_ip: u32 = 0x0a00_0001;
        let mut active = BinaryHeap::new();
        let mut labels = Vec::new();
        let mut total: u64 = 0;
        let mut seq = 0usize;
        for (class, profile) in spec.classes.iter().enumerate() {
            for _ in 0..cfg.flows_per_class {
                let flow = make_flow_id(&mut rng, &mut next_ip, profile);
                let start = rng.gen_range(0..cfg.start_window_micros.max(1));
                let n = profile.sample_flow_len(&mut rng);
                let len_state = rng.gen_range(0..profile.len_states.len().max(1));
                total += n as u64;
                labels.push((flow, class));
                active.push(FlowGen { next_ts: start, seq, flow, class, remaining: n, len_state });
                seq += 1;
            }
        }
        SyntheticSource {
            spec: spec.clone(),
            rng,
            active,
            labels,
            remaining_packets: total,
            payload_bytes: cfg.payload_bytes,
        }
    }

    /// Ground-truth class per flow (same shape as `Trace::labels`).
    pub fn labels(&self) -> &[(FiveTuple, usize)] {
        &self.labels
    }

    /// Ground-truth class of one flow.
    pub fn class_of(&self, flow: &FiveTuple) -> Option<usize> {
        self.labels.iter().find(|(f, _)| f == flow).map(|(_, c)| *c)
    }
}

impl PacketSource for SyntheticSource {
    fn next_packet(&mut self) -> Option<TracePacket> {
        let mut gen = self.active.pop()?;
        let profile = &self.spec.classes[gen.class];
        let wire_len = profile.sample_len(&mut self.rng, &mut gen.len_state);
        let payload_head = if self.payload_bytes > 0 {
            profile.sample_payload(&mut self.rng, self.payload_bytes)
        } else {
            Vec::new()
        };
        let pkt = TracePacket {
            ts_micros: gen.next_ts,
            flow: gen.flow,
            wire_len,
            payload_head,
            tcp_flags: if profile.protocol == 6 { 0x10 } else { 0 },
            ttl: 64,
        };
        gen.remaining -= 1;
        if gen.remaining > 0 {
            gen.next_ts += profile.sample_ipd(&mut self.rng);
            self.active.push(gen);
        }
        self.remaining_packets -= 1;
        Some(pkt)
    }

    fn packets_hint(&self) -> Option<u64> {
        Some(self.remaining_packets)
    }
}

/// A seeded on-the-fly *wire frame* generator implementing
/// [`FrameSource`] — the byte-level dual of [`SyntheticSource`].
///
/// Each synthesized packet is rendered as the Ethernet/IPv4/TCP-or-UDP
/// frame a capture point would have seen
/// ([`encode_trace_packet`]):
/// the frame length equals the sampled wire length (clamped up to the
/// headers plus the payload head), the payload is the class's signature
/// bytes followed by zero fill, and checksums are correct. Frames are
/// encoded into one reused buffer, so the generation loop allocates only
/// the payload vector the underlying sampler produces.
///
/// Note the canonicalization: parsing a synthesized frame back yields a
/// [`TracePacket`] whose `payload_head` is the signature zero-extended to
/// the raw-byte window — both engine ingress paths (raw bytes and
/// parse-then-push) therefore see *identical* packets, which is what the
/// differential tests pin.
pub struct FrameSynthSource {
    inner: SyntheticSource,
    buf: Vec<u8>,
}

impl FrameSynthSource {
    /// Creates a frame source over `spec`'s class profiles (same
    /// determinism contract as [`SyntheticSource::new`]).
    pub fn new(spec: &DatasetSpec, cfg: &SyntheticConfig) -> Self {
        FrameSynthSource { inner: SyntheticSource::new(spec, cfg), buf: Vec::new() }
    }

    /// Ground-truth class per flow (same shape as `Trace::labels`).
    pub fn labels(&self) -> &[(FiveTuple, usize)] {
        self.inner.labels()
    }
}

impl FrameSource for FrameSynthSource {
    fn next_frame(&mut self) -> Option<RawFrame<'_>> {
        let pkt = self.inner.next_packet()?;
        let wire_len = encode_trace_packet(&pkt, &mut self.buf);
        Some(RawFrame { ts_micros: pkt.ts_micros, wire_len: u32::from(wire_len), bytes: &self.buf })
    }

    fn frames_hint(&self) -> Option<u64> {
        self.inner.packets_hint()
    }
}

/// Materializes one synthetic workload as a classic pcap capture —
/// how the checked-in `.pcap` fixtures are produced. Frames longer than
/// `snaplen` are truncated in the file with their original length
/// preserved, as a real capture would be.
pub fn synthesize_pcap(spec: &DatasetSpec, cfg: &SyntheticConfig, snaplen: u32) -> Vec<u8> {
    let mut source = FrameSynthSource::new(spec, cfg);
    let mut writer = PcapWriter::with_snaplen(snaplen);
    while let Some(frame) = source.next_frame() {
        writer.record_with_orig_len(frame.ts_micros, frame.bytes, frame.wire_len);
    }
    writer.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::peerrush;

    fn drain(cfg: &SyntheticConfig) -> Vec<TracePacket> {
        let mut src = SyntheticSource::new(&peerrush(), cfg);
        let mut out = Vec::new();
        while let Some(p) = src.next_packet() {
            out.push(p);
        }
        out
    }

    #[test]
    fn stream_is_deterministic() {
        let cfg = SyntheticConfig { flows_per_class: 4, seed: 9, ..Default::default() };
        assert_eq!(drain(&cfg), drain(&cfg));
    }

    #[test]
    fn hint_counts_down_to_zero() {
        let cfg = SyntheticConfig { flows_per_class: 3, seed: 1, ..Default::default() };
        let mut src = SyntheticSource::new(&peerrush(), &cfg);
        let total = src.packets_hint().unwrap();
        let mut n = 0u64;
        while src.next_packet().is_some() {
            n += 1;
        }
        assert_eq!(n, total);
        assert_eq!(src.packets_hint(), Some(0));
    }

    #[test]
    fn per_flow_timestamps_are_monotone() {
        use std::collections::HashMap;
        let cfg = SyntheticConfig { flows_per_class: 5, seed: 3, ..Default::default() };
        let mut last: HashMap<FiveTuple, u64> = HashMap::new();
        for p in drain(&cfg) {
            if let Some(&prev) = last.get(&p.flow) {
                assert!(p.ts_micros >= prev, "flow went backwards in time");
            }
            last.insert(p.flow, p.ts_micros);
        }
    }

    #[test]
    fn global_order_is_monotone() {
        let cfg = SyntheticConfig { flows_per_class: 5, seed: 4, ..Default::default() };
        let pkts = drain(&cfg);
        assert!(pkts.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
    }

    #[test]
    fn labels_cover_every_flow_and_class() {
        let cfg = SyntheticConfig { flows_per_class: 2, seed: 5, ..Default::default() };
        let src = SyntheticSource::new(&peerrush(), &cfg);
        assert_eq!(src.labels().len(), 2 * 3);
        let classes: std::collections::BTreeSet<usize> =
            src.labels().iter().map(|(_, c)| *c).collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn frames_parse_back_to_the_packet_stream() {
        use pegasus_net::wire::parse_frame;
        let cfg =
            SyntheticConfig { flows_per_class: 3, seed: 8, payload_bytes: 6, ..Default::default() };
        let mut frames = FrameSynthSource::new(&peerrush(), &cfg);
        let mut pkts = SyntheticSource::new(&peerrush(), &cfg);
        assert_eq!(frames.frames_hint(), pkts.packets_hint());
        let mut n = 0u64;
        while let Some(frame) = frames.next_frame() {
            let pkt = pkts.next_packet().expect("streams stay in lockstep");
            assert_eq!(frame.wire_len as usize, frame.bytes.len());
            let parsed = parse_frame(frame.bytes).expect("synthesized frames parse");
            assert_eq!(parsed.flow, pkt.flow);
            assert_eq!(parsed.tcp_flags, pkt.tcp_flags);
            assert_eq!(parsed.ttl, pkt.ttl);
            // Frame length is exactly the sampled wire length, clamped up
            // to fit the headers + payload head.
            let header = 14 + 20 + if pkt.flow.protocol == 6 { 20 } else { 8 };
            let min_len = (header + pkt.payload_head.len()) as u32;
            assert_eq!(frame.wire_len, u32::from(pkt.wire_len).max(min_len));
            assert_eq!(&parsed.payload[..cfg.payload_bytes], &pkt.payload_head[..]);
            n += 1;
        }
        assert!(pkts.next_packet().is_none());
        assert!(n > 100, "workload too small to mean anything: {n}");
    }

    #[test]
    fn synthesize_pcap_is_deterministic_and_readable() {
        use pegasus_net::PcapReader;
        let cfg = SyntheticConfig::fixture();
        let a = synthesize_pcap(&peerrush(), &cfg, 96);
        let b = synthesize_pcap(&peerrush(), &cfg, 96);
        assert_eq!(a, b, "same config must produce a byte-identical capture");
        let mut reader = PcapReader::new(&a).expect("header");
        assert_eq!(reader.snaplen(), 96);
        let mut records = 0u64;
        let mut snapped = 0u64;
        while let Some(rec) = reader.next_record() {
            let rec = rec.expect("well-formed");
            assert!(rec.data.len() <= 96);
            if (rec.orig_len as usize) > rec.data.len() {
                snapped += 1;
            }
            records += 1;
        }
        let total = SyntheticSource::new(&peerrush(), &cfg).packets_hint().unwrap();
        assert_eq!(records, total);
        assert!(snapped > 0, "fixture should exercise snaplen truncation");
    }

    #[test]
    fn payload_bytes_knob_controls_payload() {
        let none = SyntheticConfig { flows_per_class: 2, seed: 6, ..Default::default() };
        let some = SyntheticConfig { payload_bytes: 16, ..none };
        assert!(drain(&none).iter().all(|p| p.payload_head.is_empty()));
        assert!(drain(&some).iter().all(|p| p.payload_head.len() == 16));
    }
}

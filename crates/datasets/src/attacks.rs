//! Attack traffic for the unsupervised detection experiment (§7.4).
//!
//! The paper injects two families of *unknown* (never trained on) malicious
//! traffic into the test sets at a 1:4 attack-to-benign ratio: five malware
//! captures from USTC-TFC2016 (Cridex, Geodo, Htbot, Neris, Virut) and an
//! SSDP reflection flood from Kitsune. The synthetic profiles here encode
//! each family's characteristic transport behaviour; what matters for the
//! experiment is that their joint length/IPD distribution deviates from the
//! benign training distribution in family-specific ways — floods are
//! trivially regular (paper AUC ≈ 0.99) while Htbot's HTTP-proxy relaying
//! looks most like benign traffic (paper AUC ≈ 0.86-0.99, lowest of the six).

use crate::profile::{ClassProfile, LenState};
use pegasus_net::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The six attack families of Figure 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackKind {
    /// Banking trojan C2: small beacons on a slow regular timer.
    Cridex,
    /// Emotet/Geodo spam bot: bursts of mid-size SMTP-ish pushes.
    Geodo,
    /// HTTP proxy bot: relayed web traffic, closest to benign.
    Htbot,
    /// IRC botnet with scanning: tiny probes at high rate.
    Neris,
    /// File-infector with C2 + spreading: erratic mixture.
    Virut,
    /// SSDP reflection flood: fixed-size datagrams, microsecond spacing.
    SsdpFlood,
}

impl AttackKind {
    /// All six, in the paper's legend order (Figure 8).
    pub fn all() -> [AttackKind; 6] {
        [
            AttackKind::Htbot,
            AttackKind::SsdpFlood,
            AttackKind::Cridex,
            AttackKind::Virut,
            AttackKind::Neris,
            AttackKind::Geodo,
        ]
    }

    /// Display name matching the paper's figure legend.
    pub fn name(&self) -> &'static str {
        match self {
            AttackKind::Cridex => "Cridex",
            AttackKind::Geodo => "Geodo",
            AttackKind::Htbot => "Htbot",
            AttackKind::Neris => "Neris",
            AttackKind::Virut => "Virut",
            AttackKind::SsdpFlood => "Flood",
        }
    }

    /// The generative profile for this family.
    pub fn profile(&self) -> ClassProfile {
        match self {
            AttackKind::Cridex => ClassProfile {
                name: "Cridex".into(),
                // Beacon: identical small POST, long fixed timer.
                len_states: vec![
                    LenState { mean: 250.0, std: 10.0 },
                    LenState { mean: 610.0, std: 15.0 },
                ],
                len_jump_prob: 0.02,
                ipd_log_mean: 13.0, // ~7 min timer scale
                ipd_log_std: 0.15,
                payload_signature: vec![0x50, 0x4f, 0x53, 0x54, 0x20, 0x2f],
                signature_noise: 0.05,
                port_range: (8080, 8080),
                protocol: 6,
                flow_len_range: (10, 20),
            },
            AttackKind::Geodo => ClassProfile {
                name: "Geodo".into(),
                len_states: vec![
                    LenState { mean: 980.0, std: 60.0 },
                    LenState { mean: 1380.0, std: 40.0 },
                    LenState { mean: 120.0, std: 15.0 },
                ],
                len_jump_prob: 0.05,
                ipd_log_mean: 6.2,
                ipd_log_std: 0.4,
                payload_signature: vec![0x45, 0x48, 0x4c, 0x4f, 0x20],
                signature_noise: 0.1,
                port_range: (25, 25),
                protocol: 6,
                flow_len_range: (14, 30),
            },
            AttackKind::Htbot => ClassProfile {
                name: "Htbot".into(),
                // Proxied web browsing: broad, benign-looking mixture.
                len_states: vec![
                    LenState { mean: 580.0, std: 240.0 },
                    LenState { mean: 1180.0, std: 260.0 },
                    LenState { mean: 320.0, std: 150.0 },
                ],
                len_jump_prob: 0.4,
                ipd_log_mean: 9.2,
                ipd_log_std: 1.3,
                payload_signature: vec![0x17, 0x03, 0x03],
                signature_noise: 0.3,
                port_range: (443, 443),
                protocol: 6,
                flow_len_range: (12, 28),
            },
            AttackKind::Neris => ClassProfile {
                name: "Neris".into(),
                // Scanning + IRC: tiny packets, fast, very regular.
                len_states: vec![
                    LenState { mean: 74.0, std: 6.0 },
                    LenState { mean: 96.0, std: 8.0 },
                ],
                len_jump_prob: 0.1,
                ipd_log_mean: 5.0,
                ipd_log_std: 0.5,
                payload_signature: vec![0x4e, 0x49, 0x43, 0x4b, 0x20],
                signature_noise: 0.1,
                port_range: (6667, 6667),
                protocol: 6,
                flow_len_range: (12, 40),
            },
            AttackKind::Virut => ClassProfile {
                name: "Virut".into(),
                len_states: vec![
                    LenState { mean: 140.0, std: 90.0 },
                    LenState { mean: 900.0, std: 400.0 },
                ],
                len_jump_prob: 0.5,
                ipd_log_mean: 7.5,
                ipd_log_std: 1.6,
                payload_signature: vec![0x55, 0x53, 0x45, 0x52],
                signature_noise: 0.2,
                port_range: (65520, 65535),
                protocol: 6,
                flow_len_range: (10, 36),
            },
            AttackKind::SsdpFlood => ClassProfile {
                name: "Flood".into(),
                // Reflection flood: fixed-size response datagrams, back to
                // back — nothing benign looks like this.
                len_states: vec![LenState { mean: 310.0, std: 4.0 }],
                len_jump_prob: 0.0,
                ipd_log_mean: 2.3, // ~10 us
                ipd_log_std: 0.2,
                payload_signature: vec![
                    0x48, 0x54, 0x54, 0x50, 0x2f, 0x31, 0x2e, 0x31, 0x20, 0x32, 0x30, 0x30,
                ],
                signature_noise: 0.02,
                port_range: (1900, 1900),
                protocol: 17,
                flow_len_range: (20, 60),
            },
        }
    }
}

/// Builds an attack trace of `flows` flows, labeled with class id
/// `usize::MAX` marker replaced by caller — attack labels are carried
/// separately from benign class ids (see [`inject_attack`]).
pub fn generate_attack_trace(kind: AttackKind, flows: usize, seed: u64) -> Trace {
    let profile = kind.profile();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa77ac);
    let mut trace = Trace::new();
    let mut next_ip: u32 = 0xac10_0001; // 172.16/12 — distinct from benign space
    #[allow(clippy::explicit_counter_loop)] // next_ip also advances inside the body
    for _ in 0..flows {
        let flow = pegasus_net::FiveTuple::new(
            next_ip,
            0xc0a8_00fe,
            rng.gen_range(32768..60999u16),
            profile.sample_port(&mut rng),
            profile.protocol,
        );
        next_ip += 1;
        let start = rng.gen_range(0..10_000_000u64);
        crate::generate::generate_flow(&mut trace, &mut rng, &profile, flow, start);
        trace.labels.push((flow, ATTACK_LABEL));
    }
    trace.sort();
    trace
}

/// Sentinel class id marking attack flows in a mixed trace.
pub const ATTACK_LABEL: usize = 9999;

/// Mixes attack traffic into a benign trace at the paper's 1:4
/// attack-to-benign *flow* ratio. Returns the combined trace.
pub fn inject_attack(benign: &Trace, kind: AttackKind, seed: u64) -> Trace {
    let benign_flows = benign.flow_count();
    let attack_flows = (benign_flows / 4).max(1);
    let attack = generate_attack_trace(kind, attack_flows, seed);
    let mut mixed = benign.clone();
    mixed.merge(attack);
    mixed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::peerrush;
    use crate::generate::{generate_trace, GenConfig};

    #[test]
    fn six_attack_kinds() {
        assert_eq!(AttackKind::all().len(), 6);
        let names: Vec<&str> = AttackKind::all().iter().map(|k| k.name()).collect();
        assert!(names.contains(&"Flood"));
        assert!(names.contains(&"Htbot"));
    }

    #[test]
    fn attack_trace_is_labeled_with_sentinel() {
        let t = generate_attack_trace(AttackKind::Cridex, 5, 1);
        assert_eq!(t.labels.len(), 5);
        assert!(t.labels.iter().all(|(_, l)| *l == ATTACK_LABEL));
    }

    #[test]
    fn injection_ratio_is_one_to_four() {
        let benign = generate_trace(&peerrush(), &GenConfig { flows_per_class: 8, seed: 2 });
        let mixed = inject_attack(&benign, AttackKind::Neris, 3);
        let attacks = mixed.labels.iter().filter(|(_, l)| *l == ATTACK_LABEL).count();
        assert_eq!(attacks, 6); // 24 benign flows / 4
        assert_eq!(mixed.flow_count(), 30);
    }

    #[test]
    fn flood_is_very_regular() {
        let t = generate_attack_trace(AttackKind::SsdpFlood, 3, 4);
        let lens: Vec<u16> = t.packets.iter().map(|p| p.wire_len).collect();
        let mean: f64 = lens.iter().map(|&l| l as f64).sum::<f64>() / lens.len() as f64;
        let var: f64 =
            lens.iter().map(|&l| (l as f64 - mean).powi(2)).sum::<f64>() / lens.len() as f64;
        assert!(var.sqrt() < 10.0, "flood length std {}", var.sqrt());
    }

    #[test]
    fn attack_ips_disjoint_from_benign() {
        let benign = generate_trace(&peerrush(), &GenConfig { flows_per_class: 4, seed: 5 });
        let attack = generate_attack_trace(AttackKind::Virut, 4, 6);
        for (f, _) in &attack.labels {
            assert!(benign.labels.iter().all(|(bf, _)| bf != f));
        }
    }

    #[test]
    fn deterministic_generation() {
        let a = generate_attack_trace(AttackKind::Geodo, 4, 7);
        let b = generate_attack_trace(AttackKind::Geodo, 4, 7);
        assert_eq!(a.packets, b.packets);
    }
}

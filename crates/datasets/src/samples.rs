//! Trace → model-ready sample extraction.
//!
//! Replays a trace through a [`FlowTracker`] and emits one sample per packet
//! once the flow's window is full (the paper's packet-level evaluation
//! granularity, §7.1). Each sample point is materialized in all three
//! feature views simultaneously, so every model is evaluated on exactly the
//! same packets:
//!
//! * `stat` — 16 × 8-bit statistical features (MLP-B, N3IC, Leo);
//! * `seq`  — 8 × (len, IPD) quantized pairs, interleaved (RNN-B, CNN-B/M,
//!   BoS, AutoEncoder);
//! * `raw`  — 8 × 60 payload bytes (CNN-L).

use pegasus_net::{FlowTracker, RawBytesFeatures, SeqFeatures, StatFeatures, Trace, WINDOW};
use pegasus_nn::{Dataset, Tensor};
use std::collections::HashMap;

/// All three feature views over the same sample points.
#[derive(Clone, Debug)]
pub struct SampleViews {
    /// Statistical features `[n, 16]`.
    pub stat: Dataset,
    /// Packet-sequence features `[n, 16]` (len/IPD interleaved).
    pub seq: Dataset,
    /// Raw-byte features `[n, 480]`.
    pub raw: Dataset,
    /// Index of the sample's flow within [`SampleViews::flows`].
    pub flow_of: Vec<usize>,
    /// Distinct flows contributing samples, in first-seen order.
    pub flows: Vec<pegasus_net::FiveTuple>,
}

impl SampleViews {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.stat.len()
    }

    /// True when no samples were extracted.
    pub fn is_empty(&self) -> bool {
        self.stat.is_empty()
    }
}

/// Extracts aligned sample views from a labeled trace.
pub fn extract_views(trace: &Trace) -> SampleViews {
    // Offline dataset construction must never evict: size the (bounded)
    // tracker to the trace's own flow population, which is known up
    // front — this is a host-side pass with no SRAM budget to honor.
    let mut tracker = FlowTracker::bounded(
        WINDOW,
        pegasus_net::FlowTableConfig::with_capacity(trace.flow_count().max(1)),
    );
    let mut payload_hist: HashMap<pegasus_net::FiveTuple, Vec<Vec<u8>>> = HashMap::new();
    let mut flow_index: HashMap<pegasus_net::FiveTuple, usize> = HashMap::new();
    let mut flows = Vec::new();

    let mut stat_rows = Vec::new();
    let mut seq_rows = Vec::new();
    let mut raw_rows = Vec::new();
    let mut labels = Vec::new();
    let mut flow_of = Vec::new();

    for pkt in &trace.packets {
        let label = match trace.label_of(&pkt.flow) {
            Some(l) => l,
            None => continue, // unlabeled flows contribute no samples
        };
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        let hist = payload_hist.entry(pkt.flow).or_default();
        hist.push(pkt.payload_head.clone());
        if hist.len() > WINDOW {
            hist.remove(0);
        }
        if !state.window_full() {
            continue;
        }
        let seq = SeqFeatures::extract(state).expect("window full");
        let raw = RawBytesFeatures::from_payloads(hist).expect("window full");
        let stat = StatFeatures::extract(
            state,
            &obs,
            pkt.flow.protocol,
            pkt.tcp_flags,
            pkt.flow.src_port,
            pkt.flow.dst_port,
            pkt.ttl,
            pkt.payload_head.len() as u16,
        );
        stat_rows.push(stat.to_f32());
        seq_rows.push(seq.to_f32_interleaved());
        raw_rows.push(raw.to_f32());
        labels.push(label);
        let fi = *flow_index.entry(pkt.flow).or_insert_with(|| {
            flows.push(pkt.flow);
            flows.len() - 1
        });
        flow_of.push(fi);
    }

    let to_dataset = |rows: Vec<Vec<f32>>, width: usize| -> Dataset {
        let n = rows.len();
        let flat: Vec<f32> = rows.into_iter().flatten().collect();
        Dataset::new(Tensor::from_vec(flat, &[n, width]), labels.clone())
    };
    SampleViews {
        stat: to_dataset(stat_rows, 16),
        seq: to_dataset(seq_rows, WINDOW * 2),
        raw: to_dataset(raw_rows, WINDOW * pegasus_net::RAW_BYTES_PER_PACKET),
        flow_of,
        flows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::peerrush;
    use crate::generate::{generate_trace, GenConfig};

    fn views() -> SampleViews {
        let t = generate_trace(&peerrush(), &GenConfig { flows_per_class: 6, seed: 11 });
        extract_views(&t)
    }

    #[test]
    fn views_are_aligned() {
        let v = views();
        assert!(!v.is_empty());
        assert_eq!(v.stat.len(), v.seq.len());
        assert_eq!(v.seq.len(), v.raw.len());
        assert_eq!(v.stat.y, v.seq.y);
        assert_eq!(v.seq.y, v.raw.y);
        assert_eq!(v.flow_of.len(), v.stat.len());
    }

    #[test]
    fn widths_match_input_scales() {
        let v = views();
        assert_eq!(v.stat.x.cols(), 16);
        assert_eq!(v.seq.x.cols(), 16);
        assert_eq!(v.raw.x.cols(), 480);
    }

    #[test]
    fn warmup_packets_are_skipped() {
        // Each flow contributes (packets - WINDOW + 1) samples.
        let t = generate_trace(&peerrush(), &GenConfig { flows_per_class: 4, seed: 12 });
        let v = extract_views(&t);
        let expected: usize = t
            .labels
            .iter()
            .map(|(f, _)| {
                let n = t.packets.iter().filter(|p| p.flow == *f).count();
                n.saturating_sub(WINDOW - 1)
            })
            .sum();
        assert_eq!(v.len(), expected);
    }

    #[test]
    fn feature_values_are_byte_range() {
        let v = views();
        for &x in v.stat.x.data() {
            assert!((0.0..=255.0).contains(&x));
        }
        for &x in v.raw.x.data() {
            assert!((0.0..=255.0).contains(&x));
        }
    }

    #[test]
    fn labels_cover_all_classes() {
        let v = views();
        assert_eq!(v.stat.classes(), 3);
    }
}

//! Flow-level train/validation/test splitting.
//!
//! The paper selects 75% of flows per class for training, 10% for
//! validation and 15% for testing (§7.1). Splitting at flow granularity —
//! never at packet granularity — prevents leakage of a flow's packets
//! across splits.

use pegasus_net::{FiveTuple, Trace};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// The paper's split ratios: 75 / 10 / 15.
pub const TRAIN_FRAC: f64 = 0.75;
/// Validation fraction.
pub const VAL_FRAC: f64 = 0.10;

/// Splits a labeled trace into (train, val, test) traces by flow, stratified
/// per class.
pub fn split_by_flow(trace: &Trace, seed: u64) -> (Trace, Trace, Trace) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Group flows by class.
    let mut per_class: HashMap<usize, Vec<FiveTuple>> = HashMap::new();
    for (flow, label) in &trace.labels {
        per_class.entry(*label).or_default().push(*flow);
    }
    let mut assignment: HashMap<FiveTuple, u8> = HashMap::new();
    let mut classes: Vec<usize> = per_class.keys().copied().collect();
    classes.sort_unstable();
    for class in classes {
        let flows = per_class.get_mut(&class).expect("class exists");
        flows.sort_unstable(); // determinism independent of HashMap order
        flows.shuffle(&mut rng);
        let n = flows.len();
        let n_train = ((n as f64) * TRAIN_FRAC).round() as usize;
        let n_val = ((n as f64) * VAL_FRAC).round() as usize;
        for (i, f) in flows.iter().enumerate() {
            let bucket = if i < n_train {
                0
            } else if i < n_train + n_val {
                1
            } else {
                2
            };
            assignment.insert(*f, bucket);
        }
    }
    let mut out = [Trace::new(), Trace::new(), Trace::new()];
    for pkt in &trace.packets {
        let bucket = assignment[&pkt.flow] as usize;
        out[bucket].push(pkt.clone());
    }
    for (flow, label) in &trace.labels {
        let bucket = assignment[flow] as usize;
        out[bucket].labels.push((*flow, *label));
    }
    let [train, val, test] = out;
    (train, val, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::peerrush;
    use crate::generate::{generate_trace, GenConfig};

    fn trace() -> Trace {
        generate_trace(&peerrush(), &GenConfig { flows_per_class: 40, seed: 9 })
    }

    #[test]
    fn ratios_approximately_hold_per_class() {
        let t = trace();
        let (train, val, test) = split_by_flow(&t, 1);
        for class in 0..3 {
            let n = |tr: &Trace| tr.labels.iter().filter(|(_, l)| *l == class).count();
            assert_eq!(n(&train), 30); // 75% of 40
            assert_eq!(n(&val), 4); // 10%
            assert_eq!(n(&test), 6); // 15%
        }
    }

    #[test]
    fn no_flow_appears_in_two_splits() {
        let t = trace();
        let (train, val, test) = split_by_flow(&t, 2);
        let set = |tr: &Trace| -> Vec<FiveTuple> {
            let mut v: Vec<FiveTuple> = tr.labels.iter().map(|(f, _)| *f).collect();
            v.sort_unstable();
            v
        };
        let (a, b, c) = (set(&train), set(&val), set(&test));
        for f in &a {
            assert!(!b.contains(f) && !c.contains(f));
        }
        for f in &b {
            assert!(!c.contains(f));
        }
        assert_eq!(a.len() + b.len() + c.len(), t.flow_count());
    }

    #[test]
    fn all_packets_preserved() {
        let t = trace();
        let (train, val, test) = split_by_flow(&t, 3);
        assert_eq!(train.len() + val.len() + test.len(), t.len());
    }

    #[test]
    fn split_is_deterministic() {
        let t = trace();
        let (a1, _, _) = split_by_flow(&t, 4);
        let (a2, _, _) = split_by_flow(&t, 4);
        assert_eq!(a1.labels, a2.labels);
    }

    #[test]
    fn different_seed_changes_assignment() {
        let t = trace();
        let (a1, _, _) = split_by_flow(&t, 5);
        let (a2, _, _) = split_by_flow(&t, 6);
        assert_ne!(a1.labels, a2.labels);
    }
}

//! Trace generation from dataset specs.

use crate::catalog::DatasetSpec;
use crate::profile::ClassProfile;
use pegasus_net::{FiveTuple, Trace, TracePacket, RAW_BYTES_PER_PACKET};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation knobs.
#[derive(Clone, Copy, Debug)]
pub struct GenConfig {
    /// Flows generated per class.
    pub flows_per_class: usize,
    /// Master RNG seed; every run with the same seed yields the same trace.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { flows_per_class: 120, seed: 0xfeed }
    }
}

/// Generates a labeled trace with `flows_per_class` flows of every class,
/// interleaved in time the way a capture point would see them.
pub fn generate_trace(spec: &DatasetSpec, cfg: &GenConfig) -> Trace {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut trace = Trace::new();
    let mut next_ip: u32 = 0x0a00_0001;
    for (class_id, profile) in spec.classes.iter().enumerate() {
        for _ in 0..cfg.flows_per_class {
            let flow = make_flow_id(&mut rng, &mut next_ip, profile);
            // Stagger flow starts across a 10-second capture window.
            let start = rng.gen_range(0..10_000_000u64);
            generate_flow(&mut trace, &mut rng, profile, flow, start);
            trace.labels.push((flow, class_id));
        }
    }
    trace.sort();
    trace
}

/// Generates the packets of one flow into `trace`.
pub fn generate_flow(
    trace: &mut Trace,
    rng: &mut StdRng,
    profile: &ClassProfile,
    flow: FiveTuple,
    start_micros: u64,
) {
    let n = profile.sample_flow_len(rng);
    let mut ts = start_micros;
    let mut len_state = rng.gen_range(0..profile.len_states.len().max(1));
    for i in 0..n {
        if i > 0 {
            ts += profile.sample_ipd(rng);
        }
        let wire_len = profile.sample_len(rng, &mut len_state);
        let payload_head = profile.sample_payload(rng, RAW_BYTES_PER_PACKET);
        trace.push(TracePacket {
            ts_micros: ts,
            flow,
            wire_len,
            payload_head,
            tcp_flags: if profile.protocol == 6 { 0x10 } else { 0 },
            ttl: 64,
            // wire_len is already the full on-wire size; payload_head is a
            // feature snapshot, not the whole payload.
        });
    }
}

pub(crate) fn make_flow_id(
    rng: &mut StdRng,
    next_ip: &mut u32,
    profile: &ClassProfile,
) -> FiveTuple {
    let src_ip = *next_ip;
    *next_ip += 1;
    let dst_ip = 0xc0a8_0000 | rng.gen_range(1..250u32);
    let src_port = rng.gen_range(32768..60999u16);
    let dst_port = profile.sample_port(rng);
    FiveTuple::new(src_ip, dst_ip, src_port, dst_port, profile.protocol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::peerrush;

    #[test]
    fn generation_is_deterministic() {
        let spec = peerrush();
        let cfg = GenConfig { flows_per_class: 5, seed: 42 };
        let a = generate_trace(&spec, &cfg);
        let b = generate_trace(&spec, &cfg);
        assert_eq!(a.packets, b.packets);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = peerrush();
        let a = generate_trace(&spec, &GenConfig { flows_per_class: 5, seed: 1 });
        let b = generate_trace(&spec, &GenConfig { flows_per_class: 5, seed: 2 });
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn every_flow_is_labeled() {
        let spec = peerrush();
        let t = generate_trace(&spec, &GenConfig { flows_per_class: 4, seed: 3 });
        assert_eq!(t.labels.len(), 12);
        assert_eq!(t.flow_count(), 12);
        for p in &t.packets {
            assert!(t.label_of(&p.flow).is_some());
        }
    }

    #[test]
    fn packets_sorted_and_payloads_sized() {
        let spec = peerrush();
        let t = generate_trace(&spec, &GenConfig { flows_per_class: 3, seed: 4 });
        assert!(t.packets.windows(2).all(|w| w[0].ts_micros <= w[1].ts_micros));
        assert!(t.packets.iter().all(|p| p.payload_head.len() == RAW_BYTES_PER_PACKET));
    }

    #[test]
    fn class_balance_is_exact() {
        let spec = peerrush();
        let t = generate_trace(&spec, &GenConfig { flows_per_class: 7, seed: 5 });
        for c in 0..3 {
            let n = t.labels.iter().filter(|(_, l)| *l == c).count();
            assert_eq!(n, 7);
        }
    }
}

//! The three traffic-classification dataset specs.
//!
//! Synthetic stand-ins for the paper's public datasets (§7.1), built so the
//! *relative* structure matches what the paper's results imply:
//!
//! * **PeerRush** (P2P: eMule / uTorrent / Vuze): distinct application
//!   protocols — distinct ports, length patterns and payload headers.
//!   Every feature family separates classes well.
//! * **CICIOT** (IoT device states: Power / Idle / Interact): same devices
//!   in different states — ports overlap, lengths overlap moderately, the
//!   *temporal* pattern carries most signal. Statistical features work but
//!   trail sequence models; the paper found tree models notably weaker here.
//! * **ISCXVPN** (7 VPN-tunneled service classes): everything rides the
//!   same encrypted tunnel — identical ports/protocol, strongly overlapping
//!   length/IPD marginals (low stat-feature signal, the hardest dataset),
//!   yet record-framing byte patterns and burst shapes remain, so raw-byte
//!   models (CNN-L) excel — the paper's headline result.

use crate::profile::{ClassProfile, LenState};
use serde::{Deserialize, Serialize};

/// A named dataset: an ordered list of class profiles.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name ("PeerRush", "CICIOT", "ISCXVPN").
    pub name: String,
    /// One profile per class; class id = index.
    pub classes: Vec<ClassProfile>,
}

impl DatasetSpec {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Class names in id order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }
}

/// All three evaluation datasets, in the paper's order.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![peerrush(), ciciot(), iscxvpn()]
}

/// PeerRush-like: three P2P applications with distinct protocols.
pub fn peerrush() -> DatasetSpec {
    DatasetSpec {
        name: "PeerRush".to_string(),
        classes: vec![
            ClassProfile {
                name: "eMule".to_string(),
                len_states: vec![
                    LenState { mean: 140.0, std: 30.0 },
                    LenState { mean: 540.0, std: 60.0 },
                ],
                len_jump_prob: 0.15,
                ipd_log_mean: 9.2, // ~10 ms: chatty overlay maintenance
                ipd_log_std: 0.8,
                payload_signature: vec![0xe3, 0x9a, 0x01, 0x10, 0x4b, 0x2d, 0x00, 0x07],
                signature_noise: 0.05,
                port_range: (4660, 4680),
                protocol: 6,
                flow_len_range: (12, 40),
            },
            ClassProfile {
                name: "uTorrent".to_string(),
                len_states: vec![
                    LenState { mean: 1380.0, std: 80.0 },
                    LenState { mean: 1380.0, std: 80.0 },
                    LenState { mean: 92.0, std: 12.0 },
                ],
                len_jump_prob: 0.1,
                ipd_log_mean: 7.1, // ~1.2 ms: bulk transfer
                ipd_log_std: 0.7,
                payload_signature: vec![0x13, 0x42, 0x69, 0x74, 0x54, 0x6f, 0x72, 0x72],
                signature_noise: 0.05,
                port_range: (6881, 6999),
                protocol: 6,
                flow_len_range: (12, 40),
            },
            ClassProfile {
                name: "Vuze".to_string(),
                len_states: vec![
                    LenState { mean: 820.0, std: 90.0 },
                    LenState { mean: 300.0, std: 50.0 },
                    LenState { mean: 1100.0, std: 100.0 },
                ],
                len_jump_prob: 0.2,
                ipd_log_mean: 8.0, // ~3 ms
                ipd_log_std: 0.9,
                payload_signature: vec![0x00, 0x00, 0x40, 0x09, 0x41, 0x5a, 0x4d, 0x50],
                signature_noise: 0.05,
                port_range: (49152, 49200),
                protocol: 17,
                flow_len_range: (12, 40),
            },
        ],
    }
}

/// CICIOT-like: one device population in three working states.
pub fn ciciot() -> DatasetSpec {
    // Same MQTT-ish port space and protocol for all states: header features
    // carry little signal; the length/IPD *pattern* carries most.
    let port_range = (1883, 1890);
    DatasetSpec {
        name: "CICIOT".to_string(),
        classes: vec![
            ClassProfile {
                name: "Power".to_string(),
                // Boot chatter: bursts of mid-size packets, fast.
                len_states: vec![
                    LenState { mean: 260.0, std: 70.0 },
                    LenState { mean: 420.0, std: 90.0 },
                    LenState { mean: 180.0, std: 60.0 },
                ],
                len_jump_prob: 0.35,
                ipd_log_mean: 7.6,
                ipd_log_std: 1.1,
                payload_signature: vec![0x10, 0x1a, 0x00, 0x04],
                signature_noise: 0.35,
                port_range,
                protocol: 6,
                flow_len_range: (10, 30),
            },
            ClassProfile {
                name: "Idle".to_string(),
                // Keepalives: small packets, long regular gaps.
                len_states: vec![
                    LenState { mean: 96.0, std: 18.0 },
                    LenState { mean: 120.0, std: 25.0 },
                ],
                len_jump_prob: 0.1,
                ipd_log_mean: 11.8, // ~2 minutes-ish tail, keepalive scale
                ipd_log_std: 0.6,
                payload_signature: vec![0xc0, 0x00, 0x00, 0x00],
                signature_noise: 0.35,
                port_range,
                protocol: 6,
                flow_len_range: (10, 30),
            },
            ClassProfile {
                name: "Interact".to_string(),
                // Command/response: alternating small request, large reply.
                len_states: vec![
                    LenState { mean: 150.0, std: 40.0 },
                    LenState { mean: 900.0, std: 160.0 },
                ],
                len_jump_prob: 0.2,
                ipd_log_mean: 9.5,
                ipd_log_std: 1.0,
                payload_signature: vec![0x32, 0x21, 0x00, 0x08],
                signature_noise: 0.35,
                port_range,
                protocol: 6,
                flow_len_range: (10, 30),
            },
        ],
    }
}

/// ISCXVPN-like: seven service categories inside one encrypted VPN tunnel.
pub fn iscxvpn() -> DatasetSpec {
    // Everything shares the tunnel endpoint: same protocol, same port.
    let port_range = (443, 443);
    let proto = 17; // VPN over UDP
                    // Encrypted record framing: a short, partially stable prefix (record
                    // type + version-like bytes) then uniformly noisy ciphertext.
    let sig = |a: u8, b: u8| vec![0x17, 0x03, a, b, 0x00, 0x00];
    let mk = |name: &str,
              states: Vec<LenState>,
              jump: f64,
              ipd_m: f64,
              ipd_s: f64,
              sig_bytes: Vec<u8>| ClassProfile {
        name: name.to_string(),
        len_states: states,
        len_jump_prob: jump,
        ipd_log_mean: ipd_m,
        ipd_log_std: ipd_s,
        payload_signature: sig_bytes,
        signature_noise: 0.25,
        port_range,
        protocol: proto,
        flow_len_range: (10, 32),
    };
    DatasetSpec {
        name: "ISCXVPN".to_string(),
        classes: vec![
            mk(
                "Email",
                vec![LenState { mean: 420.0, std: 160.0 }, LenState { mean: 640.0, std: 180.0 }],
                0.4,
                10.3,
                1.2,
                sig(0x01, 0x9a),
            ),
            mk(
                "Chat",
                vec![LenState { mean: 210.0, std: 90.0 }, LenState { mean: 340.0, std: 130.0 }],
                0.4,
                10.8,
                1.3,
                sig(0x02, 0x4e),
            ),
            mk(
                "Streaming",
                vec![
                    LenState { mean: 1340.0, std: 120.0 },
                    LenState { mean: 1340.0, std: 120.0 },
                    LenState { mean: 1100.0, std: 200.0 },
                ],
                0.15,
                6.9,
                0.8,
                sig(0x03, 0xd1),
            ),
            mk(
                "FTP",
                vec![LenState { mean: 1280.0, std: 180.0 }, LenState { mean: 980.0, std: 220.0 }],
                0.25,
                7.4,
                1.0,
                sig(0x04, 0x77),
            ),
            mk(
                "VoIP",
                vec![LenState { mean: 172.0, std: 28.0 }, LenState { mean: 196.0, std: 30.0 }],
                0.2,
                6.8, // ~900 us: RTP cadence
                0.5,
                sig(0x05, 0x2c),
            ),
            mk(
                "P2P",
                vec![
                    LenState { mean: 1180.0, std: 240.0 },
                    LenState { mean: 480.0, std: 200.0 },
                    LenState { mean: 820.0, std: 240.0 },
                ],
                0.45,
                8.1,
                1.2,
                sig(0x06, 0xb8),
            ),
            mk(
                "Browsing",
                vec![
                    LenState { mean: 560.0, std: 260.0 },
                    LenState { mean: 1240.0, std: 260.0 },
                    LenState { mean: 320.0, std: 160.0 },
                ],
                0.45,
                9.4,
                1.4,
                sig(0x07, 0x63),
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts_match_paper() {
        assert_eq!(peerrush().num_classes(), 3);
        assert_eq!(ciciot().num_classes(), 3);
        assert_eq!(iscxvpn().num_classes(), 7);
    }

    #[test]
    fn vpn_classes_share_ports_and_protocol() {
        let vpn = iscxvpn();
        let first = &vpn.classes[0];
        for c in &vpn.classes {
            assert_eq!(c.port_range, first.port_range);
            assert_eq!(c.protocol, first.protocol);
        }
    }

    #[test]
    fn peerrush_classes_have_distinct_ports() {
        let pr = peerrush();
        let mut ranges: Vec<(u16, u16)> = pr.classes.iter().map(|c| c.port_range).collect();
        ranges.sort_unstable();
        ranges.dedup();
        assert_eq!(ranges.len(), 3);
    }

    #[test]
    fn all_datasets_in_paper_order() {
        let names: Vec<String> = all_datasets().into_iter().map(|d| d.name).collect();
        assert_eq!(names, vec!["PeerRush", "CICIOT", "ISCXVPN"]);
    }

    #[test]
    fn class_names_are_unique_within_dataset() {
        for ds in all_datasets() {
            let mut names = ds.class_names();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate class in {}", ds.name);
        }
    }
}

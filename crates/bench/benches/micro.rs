//! Micro-benchmarks of the hot primitives: fuzzy-tree lookup, CRC range
//! expansion, per-packet pipeline cost, full-precision forward pass, and the
//! fusion pass itself.
//!
//! Self-timed (`harness = false`) so the workspace stays free of external
//! benchmark frameworks. Run: `cargo bench -p pegasus-bench`.

use pegasus_core::fusion::fuse_basic;
use pegasus_core::fuzzy::ClusterTree;
use pegasus_core::lowering::{lower_sequential, LoweringOptions};
use pegasus_nn::init::rng;
use pegasus_nn::layers::{BatchNorm1d, Dense, NormMode, Relu};
use pegasus_nn::{Sequential, Tensor};
use pegasus_switch::{range_to_ternary, SwitchConfig};
use rand::Rng;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` adaptively (at least ~0.2 s of samples after warm-up) and
/// prints mean ns/iter.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warm-up and calibration: find an iteration count worth ~50 ms.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 30 {
            break;
        }
        iters *= 4;
    }
    // Measured runs.
    let mut best = f64::MAX;
    let mut total = 0.0;
    const RUNS: usize = 4;
    for _ in 0..RUNS {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        best = best.min(ns);
        total += ns;
    }
    println!("{name:<40} {:>12.1} ns/iter (best {best:>10.1})", total / RUNS as f64);
}

fn mlp() -> Sequential {
    let mut r = rng(1);
    let mut m = Sequential::new();
    m.add(Box::new(BatchNorm1d::new(16, NormMode::Feature)));
    m.add(Box::new(Dense::new(&mut r, 16, 20)));
    m.add(Box::new(Relu::new()));
    m.add(Box::new(Dense::new(&mut r, 20, 20)));
    m.add(Box::new(Relu::new()));
    m.add(Box::new(Dense::new(&mut r, 20, 3)));
    m
}

fn bench_fuzzy_lookup() {
    let mut r = rng(2);
    let data: Vec<Vec<f32>> =
        (0..4096).map(|_| (0..4).map(|_| r.gen_range(0..256) as f32).collect()).collect();
    let tree = ClusterTree::fit(&data, 6);
    let probe = vec![100.0f32, 50.0, 200.0, 10.0];
    bench("fuzzy_tree_lookup_depth6_dim4", || {
        black_box(tree.index_of(black_box(&probe)));
    });
}

fn bench_crc_expansion() {
    bench("crc_range_to_ternary_8bit", || {
        black_box(range_to_ternary(black_box(13), black_box(201), 8));
    });
    bench("crc_range_to_ternary_16bit", || {
        black_box(range_to_ternary(black_box(1000), black_box(48000), 16));
    });
}

fn bench_switch_pipeline() {
    // Compile a small classifier once; measure per-packet processing.
    let mut r = rng(3);
    let mut model = mlp();
    // Settle BN stats.
    for _ in 0..20 {
        let x = pegasus_nn::init::uniform(&mut r, &[64, 16], 127.0).map(|v| v + 128.0);
        let _ = model.forward(&x, true);
    }
    let spec = model.to_spec("m");
    let mut prog = lower_sequential(&spec, &LoweringOptions::default());
    fuse_basic(&mut prog);
    let train: Vec<Vec<f32>> =
        (0..2048).map(|_| (0..16).map(|_| r.gen_range(0..256) as f32).collect()).collect();
    let compiled = pegasus_core::compile::compile(
        &prog,
        &train,
        &pegasus_core::compile::CompileOptions::default(),
        pegasus_core::compile::CompileTarget::Classify,
        "bench",
    )
    .expect("compiles");
    let dp = pegasus_core::runtime::DataplaneModel::deploy(compiled, &SwitchConfig::tofino2())
        .expect("deploys");
    let sample: Vec<f32> = (0..16).map(|i| (i * 13 % 256) as f32).collect();
    bench("switch_pipeline_per_packet_mlp", || {
        black_box(dp.classify(black_box(&sample)).expect("classifies"));
    });
}

fn bench_nn_forward() {
    let mut model = mlp();
    let x = Tensor::full(&[64, 16], 0.5);
    bench("nn_forward_mlp_batch64", || {
        black_box(model.forward(black_box(&x), false));
    });
}

fn bench_fusion_pass() {
    let spec = mlp().to_spec("m");
    bench("fuse_basic_mlp", || {
        let mut prog = lower_sequential(&spec, &LoweringOptions::default());
        black_box(fuse_basic(black_box(&mut prog)));
    });
}

fn bench_tree_fit() {
    let mut r = rng(4);
    let data: Vec<Vec<f32>> =
        (0..1024).map(|_| (0..4).map(|_| r.gen_range(0..256) as f32).collect()).collect();
    bench("cluster_tree_fit_1k_dim4_depth5", || {
        black_box(ClusterTree::fit(black_box(&data), 5));
    });
}

fn main() {
    bench_fuzzy_lookup();
    bench_crc_expansion();
    bench_switch_pipeline();
    bench_nn_forward();
    bench_fusion_pass();
    bench_tree_fit();
}

//! Criterion micro-benchmarks of the hot primitives: fuzzy-tree lookup,
//! CRC range expansion, MAT lookup, pipeline per-packet cost, full-precision
//! forward pass, and the fusion pass itself.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pegasus_core::fusion::fuse_basic;
use pegasus_core::fuzzy::ClusterTree;
use pegasus_core::lowering::{lower_sequential, LoweringOptions};
use pegasus_nn::init::rng;
use pegasus_nn::layers::{BatchNorm1d, Dense, NormMode, Relu};
use pegasus_nn::{Sequential, Tensor};
use pegasus_switch::{range_to_ternary, SwitchConfig};
use rand::Rng;

fn mlp() -> Sequential {
    let mut r = rng(1);
    let mut m = Sequential::new();
    m.add(Box::new(BatchNorm1d::new(16, NormMode::Feature)));
    m.add(Box::new(Dense::new(&mut r, 16, 20)));
    m.add(Box::new(Relu::new()));
    m.add(Box::new(Dense::new(&mut r, 20, 20)));
    m.add(Box::new(Relu::new()));
    m.add(Box::new(Dense::new(&mut r, 20, 3)));
    m
}

fn bench_fuzzy_lookup(c: &mut Criterion) {
    let mut r = rng(2);
    let data: Vec<Vec<f32>> = (0..4096)
        .map(|_| (0..4).map(|_| r.gen_range(0..256) as f32).collect())
        .collect();
    let tree = ClusterTree::fit(&data, 6);
    let probe = vec![100.0f32, 50.0, 200.0, 10.0];
    c.bench_function("fuzzy_tree_lookup_depth6_dim4", |b| {
        b.iter(|| tree.index_of(black_box(&probe)))
    });
}

fn bench_crc_expansion(c: &mut Criterion) {
    c.bench_function("crc_range_to_ternary_8bit", |b| {
        b.iter(|| range_to_ternary(black_box(13), black_box(201), 8))
    });
    c.bench_function("crc_range_to_ternary_16bit", |b| {
        b.iter(|| range_to_ternary(black_box(1000), black_box(48000), 16))
    });
}

fn bench_switch_pipeline(c: &mut Criterion) {
    // Compile a small classifier once; measure per-packet processing.
    let mut r = rng(3);
    let mut model = mlp();
    // Settle BN stats.
    for _ in 0..20 {
        let x = pegasus_nn::init::uniform(&mut r, &[64, 16], 127.0).map(|v| v + 128.0);
        let _ = model.forward(&x, true);
    }
    let spec = model.to_spec("m");
    let mut prog = lower_sequential(&spec, &LoweringOptions::default());
    fuse_basic(&mut prog);
    let train: Vec<Vec<f32>> = (0..2048)
        .map(|_| (0..16).map(|_| r.gen_range(0..256) as f32).collect())
        .collect();
    let compiled = pegasus_core::compile::compile(
        &prog,
        &train,
        &pegasus_core::compile::CompileOptions::default(),
        pegasus_core::compile::CompileTarget::Classify,
        "bench",
    );
    let mut dp = pegasus_core::runtime::DataplaneModel::deploy(compiled, &SwitchConfig::tofino2())
        .expect("deploys");
    let sample: Vec<f32> = (0..16).map(|i| (i * 13 % 256) as f32).collect();
    c.bench_function("switch_pipeline_per_packet_mlp", |b| {
        b.iter(|| dp.classify(black_box(&sample)))
    });
}

fn bench_nn_forward(c: &mut Criterion) {
    let mut model = mlp();
    let x = Tensor::full(&[64, 16], 0.5);
    c.bench_function("nn_forward_mlp_batch64", |b| {
        b.iter(|| model.forward(black_box(&x), false))
    });
}

fn bench_fusion_pass(c: &mut Criterion) {
    let spec = mlp().to_spec("m");
    c.bench_function("fuse_basic_mlp", |b| {
        b.iter(|| {
            let mut prog = lower_sequential(&spec, &LoweringOptions::default());
            fuse_basic(black_box(&mut prog))
        })
    });
}

fn bench_tree_fit(c: &mut Criterion) {
    let mut r = rng(4);
    let data: Vec<Vec<f32>> = (0..1024)
        .map(|_| (0..4).map(|_| r.gen_range(0..256) as f32).collect())
        .collect();
    c.bench_function("cluster_tree_fit_1k_dim4_depth5", |b| {
        b.iter(|| ClusterTree::fit(black_box(&data), 5))
    });
}

criterion_group!(
    benches,
    bench_fuzzy_lookup,
    bench_crc_expansion,
    bench_switch_pipeline,
    bench_nn_forward,
    bench_fusion_pass,
    bench_tree_fit
);
criterion_main!(benches);

//! Uniform train → compile → deploy → evaluate drivers for all eight
//! methods of Table 5.

use crate::harness::{BenchConfig, Prepared};
use pegasus_baselines::{Bos, Leo, LeoConfig, N3ic};
use pegasus_core::compile::CompileOptions;
use pegasus_core::models::autoencoder::AutoEncoder;
use pegasus_core::models::cnn_b::CnnB;
use pegasus_core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus_core::models::cnn_m::CnnM;
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::rnn_b::RnnB;
use pegasus_core::runtime::DataplaneModel;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_switch::{ResourceReport, SwitchConfig};

/// The eight evaluated methods, in the paper's Table 5 row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Leo decision tree (baseline).
    Leo,
    /// N3IC binary MLP (baseline, software-evaluated like the paper).
    N3ic,
    /// Pegasus MLP-B.
    MlpB,
    /// BoS binary RNN (baseline).
    Bos,
    /// Pegasus RNN-B.
    RnnB,
    /// Pegasus CNN-B.
    CnnB,
    /// Pegasus CNN-M.
    CnnM,
    /// Pegasus CNN-L (44-bit variant).
    CnnL,
}

impl Method {
    /// All methods in row order.
    pub fn all() -> [Method; 8] {
        [
            Method::Leo,
            Method::N3ic,
            Method::MlpB,
            Method::Bos,
            Method::RnnB,
            Method::CnnB,
            Method::CnnM,
            Method::CnnL,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Leo => "Leo (Decision Tree)",
            Method::N3ic => "N3IC (binary MLP)",
            Method::MlpB => "MLP-B",
            Method::Bos => "BoS (binary RNN)",
            Method::RnnB => "RNN-B",
            Method::CnnB => "CNN-B",
            Method::CnnM => "CNN-M",
            Method::CnnL => "CNN-L",
        }
    }
}

/// One Table 5 row: metrics for a single (method, dataset) pair.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method display name.
    pub method: &'static str,
    /// Input scale in bits.
    pub input_bits: usize,
    /// Model size in kilobits.
    pub size_kb: f64,
    /// On-switch (deployed-semantics) macro metrics.
    pub dataplane: PrRcF1,
    /// Full-precision (CPU) macro metrics — the Figure 9 comparison.
    pub float: PrRcF1,
    /// Switch resource report when the method deploys (None for N3IC).
    pub resources: Option<ResourceReport>,
}

/// Trains, deploys and evaluates one method on one prepared dataset.
pub fn run_method(method: Method, data: &Prepared, cfg: &BenchConfig) -> MethodResult {
    let settings = cfg.train_settings();
    let opts = CompileOptions {
        clustering_depth: if cfg.quick { 5 } else { 6 },
        ..Default::default()
    };
    let switch = SwitchConfig::tofino2();
    match method {
        Method::Leo => {
            let leo = Leo::train(&data.train.stat, &LeoConfig::default());
            let float = leo.evaluate(&data.test.stat);
            let mut dp = leo.compile().deploy(&switch).expect("Leo deploys");
            let dataplane = dp.evaluate(&data.test.stat);
            MethodResult {
                method: method.name(),
                input_bits: 128,
                size_kb: f64::NAN, // trees have no weight matrix (paper: "-")
                dataplane,
                float,
                resources: Some(dp.resource_report()),
            }
        }
        Method::N3ic => {
            let mut m = N3ic::train(&data.train.stat, settings.epochs, settings.lr, settings.seed);
            let float = m.evaluate(&data.test.stat);
            // Deployed semantics: bit-exact packed XNOR/popcnt (software,
            // like the paper's evaluation of its largest configuration).
            let packed = m.pack();
            let preds: Vec<usize> = (0..data.test.stat.len())
                .map(|r| packed.classify_codes(data.test.stat.x.row(r)))
                .collect();
            let dataplane = pr_rc_f1(&data.test.stat.y, &preds, data.classes);
            MethodResult {
                method: method.name(),
                input_bits: N3ic::input_bits(),
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: None, // does not fit (see n3ic::try_deploy)
            }
        }
        Method::MlpB => {
            let mut m = MlpB::train(&data.train.stat, Some(&data.val.stat), &settings);
            let float = m.evaluate_float(&data.test.stat);
            let pipeline = m.compile(&data.train.stat, &opts, !cfg.quick);
            let mut dp = DataplaneModel::deploy(pipeline, &switch).expect("MLP-B deploys");
            let dataplane = dp.evaluate(&data.test.stat);
            MethodResult {
                method: method.name(),
                input_bits: 128,
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: Some(dp.resource_report()),
            }
        }
        Method::Bos => {
            let m = Bos::train(&data.train.seq, settings.epochs, settings.lr, settings.seed);
            let float = m.evaluate(&data.test.seq);
            let mut dp = m.compile().deploy(&switch).expect("BoS deploys");
            let dataplane = dp.evaluate(&data.test.seq);
            MethodResult {
                method: method.name(),
                input_bits: Bos::input_bits(),
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: Some(dp.resource_report()),
            }
        }
        Method::RnnB => {
            let mut m = RnnB::train(&data.train.seq, &settings);
            let float = m.evaluate_float(&data.test.seq);
            let pipeline = m.compile(&data.train.seq, &opts);
            let mut dp = DataplaneModel::deploy(pipeline, &switch).expect("RNN-B deploys");
            let dataplane = dp.evaluate(&data.test.seq);
            MethodResult {
                method: method.name(),
                input_bits: 128,
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: Some(dp.resource_report()),
            }
        }
        Method::CnnB => {
            let mut m = CnnB::train(&data.train.seq, Some(&data.val.seq), &settings);
            let float = m.evaluate_float(&data.test.seq);
            let pipeline = m.compile(&data.train.seq, &opts);
            let mut dp = DataplaneModel::deploy(pipeline, &switch).expect("CNN-B deploys");
            let dataplane = dp.evaluate(&data.test.seq);
            MethodResult {
                method: method.name(),
                input_bits: 128,
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: Some(dp.resource_report()),
            }
        }
        Method::CnnM => {
            let mut m = CnnM::train(&data.train.seq, Some(&data.val.seq), &settings);
            let float = m.evaluate_float(&data.test.seq);
            let pipeline = m.compile(&data.train.seq, &opts);
            let mut dp = DataplaneModel::deploy(pipeline, &switch).expect("CNN-M deploys");
            let dataplane = dp.evaluate(&data.test.seq);
            MethodResult {
                method: method.name(),
                input_bits: 128,
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: Some(dp.resource_report()),
            }
        }
        Method::CnnL => {
            let mut m = CnnL::train(
                &data.train.raw,
                &data.train.seq,
                CnnLVariant::v44(),
                &settings,
            );
            let float = m.evaluate_float(&data.test.raw, &data.test.seq);
            let mut dp = m
                .deploy(&data.train.raw, &data.train.seq, &opts, &switch)
                .expect("CNN-L deploys");
            let resources = dp.resource_report();
            let dataplane = CnnL::evaluate_on_trace(&mut dp, &data.test_trace);
            MethodResult {
                method: method.name(),
                input_bits: CnnL::input_bits(),
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: Some(resources),
            }
        }
    }
}

/// Trains + compiles the AutoEncoder (Table 6 / Figure 8 driver).
pub fn train_autoencoder(
    data: &Prepared,
    cfg: &BenchConfig,
) -> (AutoEncoder, DataplaneModel) {
    let mut settings = cfg.train_settings();
    settings.epochs = settings.epochs.max(30);
    let ae = AutoEncoder::train(&data.train.seq, &settings);
    let opts = CompileOptions::default();
    let pipeline = ae.compile(&data.train.seq, &opts);
    let dp = DataplaneModel::deploy(pipeline, &SwitchConfig::tofino2()).expect("AE deploys");
    (ae, dp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::prepare;
    use pegasus_datasets::peerrush;

    #[test]
    fn leo_runs_end_to_end_quick() {
        let cfg = BenchConfig { flows_per_class: 12, seed: 2, quick: true };
        let p = prepare(&peerrush(), &cfg);
        let r = run_method(Method::Leo, &p, &cfg);
        assert!(r.dataplane.f1 > 0.4, "{:?}", r.dataplane);
        assert!(r.resources.is_some());
    }

    #[test]
    fn mlp_b_runs_end_to_end_quick() {
        let cfg = BenchConfig { flows_per_class: 12, seed: 3, quick: true };
        let p = prepare(&peerrush(), &cfg);
        let r = run_method(Method::MlpB, &p, &cfg);
        assert!(r.dataplane.f1 > 0.3, "{:?}", r.dataplane);
        assert!(r.float.f1 >= r.dataplane.f1 - 0.3);
    }
}

//! Uniform train → compile → deploy → evaluate drivers for all eight
//! methods of Table 5, all through the one `DataplaneNet` trait and
//! `Pegasus` builder.

use crate::harness::{BenchConfig, Prepared};
use pegasus_baselines::{Bos, Leo, N3ic};
use pegasus_core::compile::CompileOptions;
use pegasus_core::error::PegasusError;
use pegasus_core::models::autoencoder::AutoEncoder;
use pegasus_core::models::cnn_b::CnnB;
use pegasus_core::models::cnn_l::CnnL;
use pegasus_core::models::cnn_m::CnnM;
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::rnn_b::RnnB;
use pegasus_core::models::{DataplaneNet, ModelData};
use pegasus_core::pipeline::{Deployment, Pegasus};
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::Dataset;
use pegasus_switch::{ResourceReport, SwitchConfig};

/// The eight evaluated methods, in the paper's Table 5 row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Method {
    /// Leo decision tree (baseline).
    Leo,
    /// N3IC binary MLP (baseline, software-evaluated like the paper).
    N3ic,
    /// Pegasus MLP-B.
    MlpB,
    /// BoS binary RNN (baseline).
    Bos,
    /// Pegasus RNN-B.
    RnnB,
    /// Pegasus CNN-B.
    CnnB,
    /// Pegasus CNN-M.
    CnnM,
    /// Pegasus CNN-L (44-bit variant).
    CnnL,
}

impl Method {
    /// All methods in row order.
    pub fn all() -> [Method; 8] {
        [
            Method::Leo,
            Method::N3ic,
            Method::MlpB,
            Method::Bos,
            Method::RnnB,
            Method::CnnB,
            Method::CnnM,
            Method::CnnL,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Leo => "Leo (Decision Tree)",
            Method::N3ic => "N3IC (binary MLP)",
            Method::MlpB => "MLP-B",
            Method::Bos => "BoS (binary RNN)",
            Method::RnnB => "RNN-B",
            Method::CnnB => "CNN-B",
            Method::CnnM => "CNN-M",
            Method::CnnL => "CNN-L",
        }
    }

    /// Input scale in bits (Table 5 column).
    pub fn input_bits(&self) -> usize {
        match self {
            Method::Leo | Method::MlpB | Method::RnnB | Method::CnnB | Method::CnnM => 128,
            Method::N3ic => N3ic::input_bits(),
            Method::Bos => Bos::input_bits(),
            Method::CnnL => CnnL::input_bits(),
        }
    }
}

/// One Table 5 row: metrics for a single (method, dataset) pair.
#[derive(Clone, Debug)]
pub struct MethodResult {
    /// Method display name.
    pub method: &'static str,
    /// Input scale in bits.
    pub input_bits: usize,
    /// Model size in kilobits.
    pub size_kb: f64,
    /// On-switch (deployed-semantics) macro metrics.
    pub dataplane: PrRcF1,
    /// Full-precision (CPU) macro metrics — the Figure 9 comparison.
    pub float: PrRcF1,
    /// Switch resource report when the method deploys (None for N3IC).
    pub resources: Option<ResourceReport>,
}

/// The generic train → compile → deploy → evaluate path every deployable
/// method flows through. `train` drives training and compilation; `test`
/// provides the held-out views for both the full-precision reference and
/// the dataplane evaluation (`eval` names the test view this method's
/// verdicts are scored on).
fn drive<M: DataplaneNet>(
    train: &ModelData<'_>,
    test: &ModelData<'_>,
    eval: &Dataset,
    opts: &CompileOptions,
    cfg: &BenchConfig,
    switch: &SwitchConfig,
) -> Result<MethodResult, PegasusError> {
    let settings = cfg.train_settings();
    let mut model = M::train(train, &settings)?;
    let float = model.evaluate_float(test)?;
    let size_kb = model.size_kilobits();
    let dp = Pegasus::new(model).options(opts.clone()).compile(train)?.deploy(switch)?;
    let dataplane = dp.evaluate(eval)?;
    Ok(MethodResult {
        method: dp.model().name(),
        input_bits: 0, // stamped once by run_method from Method::input_bits
        size_kb,
        dataplane,
        float,
        resources: Some(dp.resource_report()),
    })
}

/// Trains, deploys and evaluates one method on one prepared dataset.
pub fn run_method(method: Method, data: &Prepared, cfg: &BenchConfig) -> MethodResult {
    let settings = cfg.train_settings();
    let opts =
        CompileOptions { clustering_depth: if cfg.quick { 5 } else { 6 }, ..Default::default() };
    let switch = SwitchConfig::tofino2();
    let bundle = ModelData::new()
        .with_stat(&data.train.stat)
        .with_seq(&data.train.seq)
        .with_raw(&data.train.raw)
        .with_validation(&data.val.stat, &data.val.seq);
    let test_bundle = ModelData::new()
        .with_stat(&data.test.stat)
        .with_seq(&data.test.seq)
        .with_raw(&data.test.raw);
    let mut result = match method {
        Method::Leo => drive::<Leo>(&bundle, &test_bundle, &data.test.stat, &opts, cfg, &switch)
            .expect("Leo deploys"),
        Method::N3ic => {
            // N3IC does not fit the switch (OutOfStages by §2's cost
            // model); deployed semantics are the bit-exact packed
            // XNOR/popcnt path in software, like the paper's evaluation of
            // its largest configuration.
            let mut m = N3ic::train(&bundle, &settings).expect("stat view present");
            let float = m.evaluate_float(&test_bundle).expect("evaluates");
            let packed = m.pack();
            let preds: Vec<usize> = (0..data.test.stat.len())
                .map(|r| packed.classify_codes(data.test.stat.x.row(r)))
                .collect();
            let dataplane = pr_rc_f1(&data.test.stat.y, &preds, data.classes);
            MethodResult {
                method: method.name(),
                input_bits: 0,
                size_kb: m.size_kilobits(),
                dataplane,
                float,
                resources: None,
            }
        }
        Method::MlpB => {
            let opts = CompileOptions { finetune_centroids: !cfg.quick, ..opts };
            drive::<MlpB>(&bundle, &test_bundle, &data.test.stat, &opts, cfg, &switch)
                .expect("MLP-B deploys")
        }
        Method::Bos => drive::<Bos>(&bundle, &test_bundle, &data.test.seq, &opts, cfg, &switch)
            .expect("BoS deploys"),
        Method::RnnB => drive::<RnnB>(&bundle, &test_bundle, &data.test.seq, &opts, cfg, &switch)
            .expect("RNN-B deploys"),
        Method::CnnB => drive::<CnnB>(&bundle, &test_bundle, &data.test.seq, &opts, cfg, &switch)
            .expect("CNN-B deploys"),
        Method::CnnM => drive::<CnnM>(&bundle, &test_bundle, &data.test.seq, &opts, cfg, &switch)
            .expect("CNN-M deploys"),
        Method::CnnL => {
            // Per-flow pipeline: trace replay, not row evaluation.
            let mut model = CnnL::train(&bundle, &settings).expect("views present");
            let float = model.evaluate_float(&test_bundle).expect("evaluates");
            let size_kb = model.size_kilobits();
            let mut dp = Pegasus::new(model)
                .options(opts.clone())
                .compile(&bundle)
                .expect("compiles")
                .deploy(&switch)
                .expect("CNN-L deploys");
            let resources = dp.resource_report();
            let dataplane =
                CnnL::evaluate_on_trace(dp.flow_mut().expect("per-flow"), &data.test_trace)
                    .expect("replays");
            MethodResult {
                method: method.name(),
                input_bits: 0,
                size_kb,
                dataplane,
                float,
                resources: Some(resources),
            }
        }
    };
    result.input_bits = method.input_bits();
    result
}

/// Trains + compiles the AutoEncoder (Table 6 / Figure 8 driver). Returns
/// the deployment, which keeps the trained detector accessible via
/// [`Deployment::model_mut`].
pub fn train_autoencoder(data: &Prepared, cfg: &BenchConfig) -> Deployment<AutoEncoder> {
    let mut settings = cfg.train_settings();
    settings.epochs = settings.epochs.max(30);
    let bundle = ModelData::new().with_seq(&data.train.seq);
    let ae = AutoEncoder::train(&bundle, &settings).expect("seq view present");
    Pegasus::new(ae)
        .compile(&bundle)
        .expect("AE compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("AE deploys")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::prepare;
    use pegasus_datasets::peerrush;

    #[test]
    fn leo_runs_end_to_end_quick() {
        let cfg = BenchConfig {
            flows_per_class: 12,
            seed: 2,
            quick: true,
            churn_only: false,
            raw_only: false,
            raw_batch_only: false,
            routing_only: false,
            swap_only: false,
        };
        let p = prepare(&peerrush(), &cfg);
        let r = run_method(Method::Leo, &p, &cfg);
        assert!(r.dataplane.f1 > 0.4, "{:?}", r.dataplane);
        assert!(r.resources.is_some());
    }

    #[test]
    fn mlp_b_runs_end_to_end_quick() {
        let cfg = BenchConfig {
            flows_per_class: 12,
            seed: 3,
            quick: true,
            churn_only: false,
            raw_only: false,
            raw_batch_only: false,
            routing_only: false,
            swap_only: false,
        };
        let p = prepare(&peerrush(), &cfg);
        let r = run_method(Method::MlpB, &p, &cfg);
        assert!(r.dataplane.f1 > 0.3, "{:?}", r.dataplane);
        assert!(r.float.f1 >= r.dataplane.f1 - 0.3);
    }
}

//! Shared experiment plumbing: argument parsing, dataset preparation,
//! report output.

use pegasus_core::models::TrainSettings;
use pegasus_datasets::{
    extract_views, generate_trace, split_by_flow, DatasetSpec, GenConfig, SampleViews,
};
use pegasus_net::Trace;
use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// Common experiment knobs.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Flows generated per class.
    pub flows_per_class: usize,
    /// Master seed.
    pub seed: u64,
    /// Reduced-scale run.
    pub quick: bool,
    /// Run only the flow-churn section of a bench that has one (CI smoke
    /// mode; skips the full shard sweep and does not rewrite the
    /// committed results file).
    pub churn_only: bool,
    /// Run only the raw bytes-to-verdict section of a bench that has one
    /// (CI smoke mode; same skipping rules as `churn_only`).
    pub raw_only: bool,
    /// Run only the *batched* raw bytes-to-verdict section (CI smoke mode;
    /// same skipping rules as `churn_only`): exercises the fused
    /// batch sweep and asserts batched counters match the per-frame path.
    pub raw_batch_only: bool,
    /// Run only the tenant-routing section (CI smoke mode; same skipping
    /// rules as `churn_only`): attaches a 1k-tenant fleet, asserts the
    /// routed/unrouted counters and a flat per-packet dispatch-cost bound.
    pub routing_only: bool,
    /// Run only the hot-swap cost section (CI smoke mode; same skipping
    /// rules as `churn_only`): measures the epoch/RCU apply latency, the
    /// throughput dip and the adopt-on-first-touch transplant progress,
    /// and asserts the stall-free bounds (sub-millisecond apply, <5% pps
    /// dip).
    pub swap_only: bool,
}

impl BenchConfig {
    /// Training settings matched to the scale.
    pub fn train_settings(&self) -> TrainSettings {
        if self.quick {
            TrainSettings { epochs: 8, batch: 64, lr: 0.01, seed: self.seed }
        } else {
            TrainSettings { epochs: 30, batch: 64, lr: 0.005, seed: self.seed }
        }
    }
}

/// Parses the standard CLI flags (`--quick`, `--seed N`, `--flows N`,
/// `--churn-only`, `--raw-only`, `--raw-batch-only`, `--routing-only`,
/// `--swap-only`).
pub fn parse_args() -> BenchConfig {
    let args: Vec<String> = std::env::args().collect();
    let mut cfg = BenchConfig {
        flows_per_class: 120,
        seed: 7,
        quick: false,
        churn_only: false,
        raw_only: false,
        raw_batch_only: false,
        routing_only: false,
        swap_only: false,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                cfg.quick = true;
                cfg.flows_per_class = 30;
            }
            "--churn-only" => {
                cfg.churn_only = true;
            }
            "--raw-only" => {
                cfg.raw_only = true;
            }
            "--raw-batch-only" => {
                cfg.raw_batch_only = true;
            }
            "--routing-only" => {
                cfg.routing_only = true;
            }
            "--swap-only" => {
                cfg.swap_only = true;
            }
            "--seed" => {
                i += 1;
                cfg.seed = args[i].parse().expect("--seed takes a number");
            }
            "--flows" => {
                i += 1;
                cfg.flows_per_class = args[i].parse().expect("--flows takes a number");
            }
            other => panic!(
                "unknown argument {other} (try --quick / --seed N / --flows N / --churn-only / --raw-only / --raw-batch-only / --routing-only / --swap-only)"
            ),
        }
        i += 1;
    }
    assert!(
        u8::from(cfg.churn_only)
            + u8::from(cfg.raw_only)
            + u8::from(cfg.raw_batch_only)
            + u8::from(cfg.routing_only)
            + u8::from(cfg.swap_only)
            <= 1,
        "--churn-only, --raw-only, --raw-batch-only, --routing-only and --swap-only are mutually exclusive (each runs only its own section)"
    );
    cfg
}

/// A dataset prepared for evaluation: split traces plus extracted views.
pub struct Prepared {
    /// Dataset name.
    pub name: String,
    /// Class count.
    pub classes: usize,
    /// Training views (stat/seq/raw).
    pub train: SampleViews,
    /// Validation views.
    pub val: SampleViews,
    /// Test views.
    pub test: SampleViews,
    /// The raw test trace (for per-flow replay evaluation).
    pub test_trace: Trace,
    /// The raw training trace.
    pub train_trace: Trace,
}

/// Generates, splits and featurizes one dataset.
pub fn prepare(spec: &DatasetSpec, cfg: &BenchConfig) -> Prepared {
    let trace =
        generate_trace(spec, &GenConfig { flows_per_class: cfg.flows_per_class, seed: cfg.seed });
    let (train, val, test) = split_by_flow(&trace, cfg.seed);
    Prepared {
        name: spec.name.clone(),
        classes: spec.num_classes(),
        train: extract_views(&train),
        val: extract_views(&val),
        test: extract_views(&test),
        test_trace: test,
        train_trace: train,
    }
}

/// Writes a report file under `target/experiments/` (best effort) and
/// returns its path.
pub fn write_report(name: &str, content: &str) -> Option<PathBuf> {
    let dir = PathBuf::from("target/experiments");
    fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("{name}.txt"));
    let mut f = fs::File::create(&path).ok()?;
    f.write_all(content.as_bytes()).ok()?;
    Some(path)
}

/// Formats a fraction as the paper prints metrics (4 decimals).
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_datasets::peerrush;

    #[test]
    fn prepare_produces_aligned_views() {
        let cfg = BenchConfig {
            flows_per_class: 10,
            seed: 1,
            quick: true,
            churn_only: false,
            raw_only: false,
            raw_batch_only: false,
            routing_only: false,
            swap_only: false,
        };
        let p = prepare(&peerrush(), &cfg);
        assert_eq!(p.classes, 3);
        assert!(!p.train.is_empty());
        assert!(!p.test.is_empty());
        assert_eq!(p.train.stat.len(), p.train.seq.len());
    }

    #[test]
    fn write_report_creates_file() {
        let path = write_report("selftest", "hello").expect("writable target dir");
        assert!(path.exists());
    }
}

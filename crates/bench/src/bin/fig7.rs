//! Figure 7: classification accuracy vs per-flow storage for the three
//! CNN-L variants (28 / 44 / 72 stateful bits), with the SRAM cost of
//! supporting 1 M concurrent flows.
//!
//! Run: `cargo run -p pegasus-bench --bin fig7 --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::{parse_args, write_report};
use pegasus_core::compile::CompileOptions;
use pegasus_core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus_core::models::ModelData;
use pegasus_core::pipeline::Pegasus;
use pegasus_datasets::all_datasets;
use pegasus_switch::SwitchConfig;

fn main() {
    let cfg = parse_args();
    let switch = SwitchConfig::tofino2();
    let variants = [
        ("28-bit", CnnLVariant::v28()),
        ("44-bit", CnnLVariant::v44()),
        ("72-bit", CnnLVariant::v72()),
    ];

    let mut out = String::new();
    out.push_str("Figure 7: accuracy vs per-flow storage (CNN-L variants)\n\n");
    out.push_str(&format!(
        "{:<8} {:>13} {:>16} | {:>9} {:>9} {:>9}\n",
        "Variant", "bits/flow", "SRAM @1M flows", "PeerRush", "CICIOT", "ISCXVPN"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');

    let datasets: Vec<_> = all_datasets().iter().map(|s| prepare(s, &cfg)).collect();
    let settings = cfg.train_settings();
    let opts =
        CompileOptions { clustering_depth: if cfg.quick { 5 } else { 6 }, ..Default::default() };

    for (name, variant) in variants {
        let mut f1s = Vec::new();
        for data in &datasets {
            eprintln!("[fig7] CNN-L {name} on {} ...", data.name);
            let m = CnnL::fit(&data.train.raw, &data.train.seq, variant, &settings);
            let bundle = ModelData::new().with_raw(&data.train.raw).with_seq(&data.train.seq);
            let mut dp = Pegasus::new(m)
                .options(opts.clone())
                .compile(&bundle)
                .expect("compiles")
                .deploy(&switch)
                .expect("CNN-L variant deploys");
            let f1 = CnnL::evaluate_on_trace(dp.flow_mut().expect("per-flow"), &data.test_trace)
                .expect("replays")
                .f1;
            f1s.push(f1);
        }
        // Physical register bits at 1M flows (packing per footnote 2).
        let physical = switch.physical_register_bits(variant.stateful_bits()) * 1_000_000;
        let frac = physical as f64 / switch.register_bits_total as f64 * 100.0;
        out.push_str(&format!(
            "{:<8} {:>13} {:>14.1}% | {:>9.4} {:>9.4} {:>9.4}\n",
            name,
            variant.stateful_bits(),
            frac,
            f1s[0],
            f1s[1],
            f1s[2]
        ));
    }
    println!("{out}");
    if let Some(p) = write_report("fig7", &out) {
        eprintln!("[fig7] written to {}", p.display());
    }
}

//! Streaming throughput of the sharded packet engine → `BENCH_throughput.json`.
//!
//! Trains MLP-B (statistical features) and RNN-B (windowed sequence
//! features), deploys both, then streams a synthetic packet workload
//! through [`Deployment::stream`] at 1, 2 and 4 shards, reporting
//! aggregate packets/s and per-packet latency. A sequential run through
//! the *simulator* runtime (the pre-engine serving path: per-packet PHV
//! instantiation, dynamic table dispatch) is measured on the same workload
//! as the baseline the flattened-LUT hot path replaces.
//!
//! Run: `cargo run --release -p pegasus-bench --bin throughput_stream`
//! (add `--quick` for a CI-scale run). Results land in
//! `BENCH_throughput.json` in the working directory and
//! `target/experiments/throughput_stream.txt`.

use pegasus_bench::{parse_args, write_report};
use pegasus_core::compile::CompileOptions;
use pegasus_core::models::cnn_l::{CnnL, CnnLVariant};
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::rnn_b::RnnB;
use pegasus_core::models::{DataplaneNet, ModelData, StreamFeatures, TrainSettings};
use pegasus_core::pipeline::{Deployment, Pegasus};
use pegasus_core::{EngineBuilder, RawIngress, StreamReport, TenantConfig, DEFAULT_BATCH_FRAMES};
use pegasus_datasets::{
    extract_views, generate_trace, peerrush, synthesize_pcap, GenConfig, SyntheticConfig,
    SyntheticSource,
};
use pegasus_net::wire::parse_frame;
use pegasus_net::{
    CompiledRouter, FiveTuple, FlowState, FlowTableConfig, FlowTracker, FrameSource, PacketObs,
    PacketSource, PcapSource, RoutePredicate, SeqFeatures, StatFeatures, TracePacket,
    DEFAULT_SNAPLEN, WINDOW,
};
use pegasus_switch::SwitchConfig;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// Frames-per-batch sweep of the fused raw path. Includes 1 (the fused
/// machinery at no amortization), the default 32, and 64 (diminishing
/// returns past L1-resident scratch).
const BATCH_SWEEP: [usize; 4] = [1, 8, DEFAULT_BATCH_FRAMES, 64];

/// Flow-table shape of the churn experiment: a deliberately small table
/// (1024 slots ≪ workload flows) with packet-count aging, so both
/// eviction policies fire continuously.
const CHURN_CAPACITY: usize = 1024;
const CHURN_IDLE_TIMEOUT: u64 = 20_000;
/// State-byte curves are sampled at this many evenly spaced points.
const CHURN_SAMPLES: usize = 8;

/// Tenant counts of the compiled-routing dispatch sweep. The smoke run
/// (`--routing-only`) skips the intermediate point but keeps the 10k
/// endpoint — the compiled sweep costs milliseconds at any tenant count
/// (only the naive reference is O(rules), and its packet budget shrinks
/// with the rule count), so CI guards the flatness claim at fleet scale.
const ROUTING_SWEEP: [usize; 4] = [2, 1_000, 4_000, 10_000];
const ROUTING_SWEEP_SMOKE: [usize; 3] = [2, 1_000, 10_000];
/// Tenants attached to the live engine in the fleet half of the routing
/// bench (duplicate artifacts: the dedup measurement).
const ROUTING_FLEET_TENANTS: usize = 1_000;

struct ModelRow {
    model: &'static str,
    features: &'static str,
    stateful_bits_per_flow: u64,
    simulator_pps: f64,
    locked_shared_pps: f64,
    runs: Vec<(usize, StreamReport)>,
    swap: SwapCost,
}

/// Cost of one mid-run hot swap, measured on the live engine server.
struct SwapCost {
    /// The control-plane apply latency the swap call reports about
    /// itself: validation, dedup and the epoch/RCU publication. No queue
    /// is drained, so this is independent of queue depth and flow count.
    apply_micros: f64,
    pps_no_swap: f64,
    pps_with_swap: f64,
    max_latency_ns_no_swap: u64,
    max_latency_ns_with_swap: u64,
    /// Shard-side convergence: swaps actually applied at packet
    /// boundaries and the min applied epoch across shards at shutdown.
    swaps_applied: u64,
    applied_epoch: u64,
    /// Adopt-on-first-touch transplant progress (zero for stateless
    /// pipelines, which carry no per-flow register file).
    adopted_slots: u64,
    pending_slots: u64,
    transplants_completed: u64,
}

/// Table shape for reference (non-engine) measurement paths: room for the
/// workload's whole flow population, so nothing is ever evicted.
fn reference_table(
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> FlowTableConfig {
    FlowTableConfig::with_capacity((source_cfg.flows_per_class * spec.num_classes()).max(1))
}

/// Per-packet feature codes, shared by every reference path.
fn codes_for(
    features: StreamFeatures,
    state: &FlowState,
    obs: &PacketObs,
    pkt: &TracePacket,
) -> Vec<f32> {
    match features {
        StreamFeatures::Stat => StatFeatures::extract(
            state,
            obs,
            pkt.flow.protocol,
            pkt.tcp_flags,
            pkt.flow.src_port,
            pkt.flow.dst_port,
            pkt.ttl,
            pkt.payload_head.len() as u16,
        )
        .to_f32(),
        StreamFeatures::Seq => {
            SeqFeatures::extract(state).expect("window full").to_f32_interleaved()
        }
    }
}

fn main() {
    let cfg = parse_args();
    let settings = if cfg.quick {
        TrainSettings::quick()
    } else {
        TrainSettings { seed: cfg.seed, ..TrainSettings::default() }
    };
    let spec = peerrush();

    // Training data: a moderate materialized trace.
    let train_trace = generate_trace(&spec, &GenConfig { flows_per_class: 30, seed: cfg.seed });
    let views = extract_views(&train_trace);

    // Streaming workload: generated on the fly, payloads disabled. RNN-B
    // never reads them; MLP-B sees a zeroed payload-length code in every
    // path alike, which is fine for a pure throughput measurement (this
    // bench reports pps, not accuracy). Same seed per run -> identical
    // packet stream.
    let stream_flows = cfg.flows_per_class * 10;
    let source_cfg = SyntheticConfig {
        flows_per_class: stream_flows,
        seed: cfg.seed ^ 0x5eed,
        payload_bytes: 0,
        ..SyntheticConfig::default()
    };
    let workload_packets = SyntheticSource::new(&spec, &source_cfg).packets_hint().unwrap();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "workload: {workload_packets} packets over {} flows ({} classes), host cores: {cores}",
        stream_flows * spec.num_classes(),
        spec.num_classes()
    );

    println!("== MLP-B (statistical features) ==");
    let data = ModelData::new().with_stat(&views.stat);
    let mlp = Pegasus::<MlpB>::train(&data, &settings)
        .expect("trains")
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");

    let smoke =
        cfg.churn_only || cfg.raw_only || cfg.raw_batch_only || cfg.routing_only || cfg.swap_only;
    let mut rows: Vec<ModelRow> = Vec::new();
    if !smoke {
        rows.push(bench_model(&mlp, "MLP-B", "stat", &spec, &source_cfg));
        println!("== RNN-B (windowed sequence features) ==");
        let data = ModelData::new().with_seq(&views.seq);
        let deployment = Pegasus::<RnnB>::train(&data, &settings)
            .expect("trains")
            .options(CompileOptions { clustering_depth: 4, ..Default::default() })
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("deploys");
        rows.push(bench_model(&deployment, "RNN-B", "seq", &spec, &source_cfg));
    }

    let raw = if !cfg.churn_only && !cfg.routing_only && !cfg.swap_only {
        println!("== raw path (bytes -> verdict, single thread) ==");
        Some(raw_bench(&mlp, &spec, &source_cfg))
    } else {
        None
    };

    let churn = if !cfg.raw_only && !cfg.raw_batch_only && !cfg.routing_only && !cfg.swap_only {
        println!("== heavy flow churn (bounded vs unbounded flow state) ==");
        Some(churn_bench(&mlp, &spec, &source_cfg))
    } else {
        None
    };

    let routing = if !cfg.churn_only && !cfg.raw_only && !cfg.raw_batch_only && !cfg.swap_only {
        println!("== compiled tenant routing (O(1) dispatch, Arc-deduplicated artifacts) ==");
        Some(routing_bench(&mlp, cfg.routing_only || cfg.quick))
    } else {
        None
    };

    if cfg.swap_only {
        println!("== hot swap (epoch/RCU apply + adopt-on-first-touch transplant) ==");
        swap_smoke(&mlp, &views, &settings, &spec, &source_cfg);
    }

    let mut txt = String::new();
    for row in &rows {
        let _ = writeln!(
            txt,
            "{}: simulator(seq) {:.0} pps | engine {}",
            row.model,
            row.simulator_pps,
            row.runs
                .iter()
                .map(|(s, r)| format!("{s} shard(s): {:.0} pps", r.pps()))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    if let Some(raw) = &raw {
        let _ = writeln!(
            txt,
            "raw path: {} frames / {} MB pcap | parse-only {:.0} fps | bytes->verdict {:.0} pps \
             batched x{} (per-frame {:.0} pps; {:.2}x the structured single-pass {:.0} pps) | \
             sweep {} | {} parse errors",
            raw.frames,
            raw.pcap_bytes / (1024 * 1024),
            raw.parse_only_fps,
            raw.raw_pps,
            raw.batch_size,
            raw.per_frame_pps,
            raw.raw_pps / raw.structured_pps.max(1e-9),
            raw.structured_pps,
            raw.batch_sweep
                .iter()
                .map(|(b, pps)| format!("{b}:{pps:.0}"))
                .collect::<Vec<_>>()
                .join(" "),
            raw.parse_errors,
        );
    }
    if let Some(churn) = &churn {
        let _ = writeln!(
            txt,
            "churn: {} flows / {} pkts through {} slots | bounded {:.0} pps, peak {} B, \
             {} idle + {} capacity evictions | unbounded {:.0} pps, peak {} B",
            churn.flows,
            churn.packets,
            churn.capacity,
            churn.bounded_pps,
            churn.bounded_peak_bytes,
            churn.evictions_idle,
            churn.evictions_capacity,
            churn.unbounded_pps,
            churn.unbounded_peak_bytes,
        );
    }

    if let Some(routing) = &routing {
        let first = routing.sweep.first().expect("sweep has points");
        let last = routing.sweep.last().expect("sweep has points");
        let _ = writeln!(
            txt,
            "routing: {} -> {} tenants, {:.1} -> {:.1} ns/pkt compiled ({:.2}x), naive scan \
             {:.1} -> {:.1} ns/pkt | fleet {}: {} routed, {} unrouted, {} unique artifact(s), \
             {} resident B vs {} copied B",
            first.tenants,
            last.tenants,
            first.ns_per_packet,
            last.ns_per_packet,
            last.ns_per_packet / first.ns_per_packet.max(1e-9),
            first.naive_ns_per_packet,
            last.naive_ns_per_packet,
            routing.fleet.tenants,
            routing.fleet.routed,
            routing.fleet.unrouted,
            routing.fleet.unique_artifacts,
            routing.fleet.resident_bytes,
            routing.fleet.naive_bytes,
        );
    }

    if smoke {
        println!(
            "smoke mode (--churn-only / --raw-only / --raw-batch-only / --routing-only / \
             --swap-only): skipping BENCH_throughput.json rewrite"
        );
    } else {
        let json = render_json(
            &rows,
            churn.as_ref().expect("full run has churn"),
            raw.as_ref().expect("full run has raw path"),
            routing.as_ref().expect("full run has routing"),
            workload_packets,
            cores,
        );
        std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
        println!("wrote BENCH_throughput.json");
    }
    if let Some(path) = write_report("throughput_stream", &txt) {
        println!("wrote {}", path.display());
    }
    print!("{txt}");
}

/// What the raw bytes-to-verdict experiment measured.
struct RawResult {
    frames: u64,
    pcap_bytes: u64,
    /// Frames/s of `parse_frame` alone over the capture (zero-copy parse,
    /// verdict discarded) — the frontend's own ceiling.
    parse_only_fps: f64,
    /// Packets/s of the headline fused *batched* `RawIngress` pass at
    /// [`DEFAULT_BATCH_FRAMES`] frames per batch: SoA parse + hinted flow
    /// slot resolution + feature extraction + one flattened-LUT batch
    /// sweep, per-batch timing, no per-packet allocation.
    raw_pps: f64,
    /// Packets/s of the frame-at-a-time `RawIngress` loop (the
    /// pre-batching hot path, kept as the fused path's reference).
    per_frame_pps: f64,
    /// Frames per batch of the headline number.
    batch_size: usize,
    /// (frames per batch, pps) across the batch sweep; every point is
    /// asserted bit-identical to the per-frame counters before being
    /// reported.
    batch_sweep: Vec<(usize, f64)>,
    /// Packets/s of the equivalent structured single-pass loop over
    /// pre-materialized `TracePacket`s (parse cost paid up front, outside
    /// the timed region) — what the raw path is measured against.
    structured_pps: f64,
    classified: u64,
    parse_errors: u64,
    wire_gbit_per_s: f64,
}

/// Single-thread bytes-to-verdict measurement: synthesize the workload as
/// an in-memory pcap once (untimed), then time (a) the parse alone,
/// (b) the full `RawIngress` pass, and (c) the structured reference —
/// one tracker + flattened LUTs over the same packets pre-parsed into
/// owned structs. Median of three runs each.
fn raw_bench(
    deployment: &Deployment<MlpB>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> RawResult {
    let pcap = synthesize_pcap(spec, source_cfg, DEFAULT_SNAPLEN);
    let pcap_bytes = pcap.len() as u64;
    let mut source = PcapSource::from_bytes(pcap).expect("capture");
    let frames = source.records();
    let wire_bytes: u64 = {
        let mut total = 0u64;
        while let Some(frame) = source.next_frame() {
            total += u64::from(frame.wire_len);
        }
        total
    };

    let median = |mut samples: Vec<f64>| -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[samples.len() / 2]
    };

    // (a) parse alone.
    let parse_only_fps = median(
        (0..3)
            .map(|_| {
                source.rewind();
                let mut parsed = 0u64;
                let start = Instant::now();
                while let Some(frame) = source.next_frame() {
                    if parse_frame(frame.bytes).is_ok() {
                        parsed += 1;
                    }
                }
                parsed as f64 * 1e9 / start.elapsed().as_nanos() as f64
            })
            .collect(),
    );

    // Untimed warm-up: page in the artifact's LUTs and settle the branch
    // predictors before any timed pass.
    {
        source.rewind();
        let mut raw = RawIngress::with_defaults(&deployment.engine_artifact().expect("artifact"))
            .expect("raw ingress");
        raw.run(&mut source).expect("warm-up runs");
    }

    // (b) the frame-at-a-time single pass — the pre-batching hot loop,
    // kept as the fused path's reference for both throughput and counters.
    // A single pass is ~0.3 s, so these medians take 5 samples.
    let mut reference_stats = None;
    let per_frame_pps = median(
        (0..5)
            .map(|_| {
                source.rewind();
                let mut raw =
                    RawIngress::with_defaults(&deployment.engine_artifact().expect("artifact"))
                        .expect("raw ingress");
                let start = Instant::now();
                raw.run(&mut source).expect("raw path runs");
                let nanos = start.elapsed().as_nanos() as f64;
                let stats = raw.stats();
                let pps = stats.packets as f64 * 1e9 / nanos;
                reference_stats = Some(stats);
                pps
            })
            .collect(),
    );
    let reference = reference_stats.expect("per-frame pass ran");
    let classified = reference.classified;
    let parse_errors = reference.parse.total();

    // (b') the fused batched pass across the sweep. Every run must
    // reproduce the per-frame counters exactly — the bench doubles as the
    // CI smoke check (`--raw-batch-only`) for the fused path.
    let mut batch_sweep: Vec<(usize, f64)> = Vec::new();
    for batch_frames in BATCH_SWEEP {
        let pps = median(
            (0..5)
                .map(|_| {
                    source.rewind();
                    let mut raw =
                        RawIngress::with_defaults(&deployment.engine_artifact().expect("artifact"))
                            .expect("raw ingress");
                    let start = Instant::now();
                    raw.run_batched(&mut source, batch_frames).expect("batched path runs");
                    let nanos = start.elapsed().as_nanos() as f64;
                    let stats = raw.stats();
                    assert_eq!(stats.packets, reference.packets, "batch {batch_frames}: packets");
                    assert_eq!(
                        stats.classified, reference.classified,
                        "batch {batch_frames}: classified"
                    );
                    assert_eq!(stats.warmup, reference.warmup, "batch {batch_frames}: warmup");
                    assert_eq!(stats.flows, reference.flows, "batch {batch_frames}: flows");
                    assert_eq!(
                        stats.table, reference.table,
                        "batch {batch_frames}: flow-table counters"
                    );
                    assert_eq!(
                        stats.parse, reference.parse,
                        "batch {batch_frames}: parse-error buckets"
                    );
                    stats.packets as f64 * 1e9 / nanos
                })
                .collect(),
        );
        println!("  fused batch of {batch_frames}: {pps:.0} pps (counters == per-frame)");
        batch_sweep.push((batch_frames, pps));
    }
    let raw_pps = batch_sweep
        .iter()
        .find(|(b, _)| *b == DEFAULT_BATCH_FRAMES)
        .map(|&(_, pps)| pps)
        .expect("sweep contains the default batch size");

    // (c) the structured reference: identical packets, parse pre-paid.
    source.rewind();
    let mut packets: Vec<TracePacket> = Vec::with_capacity(frames as usize);
    while let Some(pkt) = PacketSource::next_packet(&mut source) {
        packets.push(pkt);
    }
    let features = deployment.model().stream_features();
    let flat = deployment
        .dataplane()
        .expect("stateless plane")
        .flat()
        .expect("register-free pipelines flatten");
    let structured_pps = median(
        (0..3)
            .map(|_| {
                let mut tracker = FlowTracker::bounded(WINDOW, FlowTableConfig::default());
                let mut scratch = flat.scratch();
                let start = Instant::now();
                for pkt in &packets {
                    let (obs, _, state) =
                        tracker.observe_admit(pkt.flow, pkt.ts_micros, pkt.wire_len);
                    if state.window_full() {
                        let codes = codes_for(features, state, &obs, pkt);
                        let _ = flat.classify(&codes, &mut scratch).expect("classifies");
                    }
                }
                packets.len() as f64 * 1e9 / start.elapsed().as_nanos() as f64
            })
            .collect(),
    );

    let result = RawResult {
        frames,
        pcap_bytes,
        parse_only_fps,
        raw_pps,
        per_frame_pps,
        batch_size: DEFAULT_BATCH_FRAMES,
        batch_sweep,
        structured_pps,
        classified,
        parse_errors,
        wire_gbit_per_s: raw_pps * (wire_bytes as f64 / frames.max(1) as f64) * 8.0 / 1e9,
    };
    println!(
        "  {} frames ({} MB pcap) | parse-only {:.0} fps | bytes->verdict {:.0} pps batched \
         ({} frames/batch; per-frame {:.0} pps) | {:.3} Gbit/s of wire traffic, \
         {:.2}x structured single-pass {:.0} pps | {} classified, {} parse errors",
        result.frames,
        result.pcap_bytes / (1024 * 1024),
        result.parse_only_fps,
        result.raw_pps,
        result.batch_size,
        result.per_frame_pps,
        result.wire_gbit_per_s,
        result.raw_pps / result.structured_pps.max(1e-9),
        result.structured_pps,
        result.classified,
        result.parse_errors,
    );
    result
}

/// What the churn experiment measured.
struct ChurnResult {
    flows: usize,
    packets: u64,
    capacity: usize,
    idle_timeout_packets: u64,
    bounded_pps: f64,
    bounded_peak_bytes: u64,
    bounded_bytes_samples: Vec<u64>,
    evictions_idle: u64,
    evictions_capacity: u64,
    final_occupancy: u64,
    peak_occupancy: u64,
    unbounded_pps: f64,
    unbounded_peak_bytes: u64,
    unbounded_bytes_samples: Vec<u64>,
    unbounded_final_flows: usize,
}

/// Estimated bytes the pre-refactor unbounded `HashMap` tracker holds for
/// `flows` live entries (per-entry struct + full feature window).
fn unbounded_bytes_estimate(flows: usize) -> u64 {
    (flows
        * (std::mem::size_of::<(FiveTuple, FlowState)>()
            + WINDOW * std::mem::size_of::<PacketObs>())) as u64
}

/// Heavy-churn workload: 4× the streaming run's flow population pushed
/// through a 1024-slot bounded table with packet-count aging, single
/// thread, flattened-LUT inference — against the same loop over an
/// effectively unbounded table. The bounded table's memory is flat at the
/// configured capacity while the unbounded baseline grows linearly with
/// the flow population; the overflow surfaces as eviction counters
/// instead.
fn churn_bench(
    deployment: &Deployment<MlpB>,
    spec: &pegasus_datasets::DatasetSpec,
    base_cfg: &SyntheticConfig,
) -> ChurnResult {
    let churn_cfg = SyntheticConfig {
        flows_per_class: base_cfg.flows_per_class * 4,
        seed: base_cfg.seed ^ 0xc0de,
        ..*base_cfg
    };
    let flows = churn_cfg.flows_per_class * spec.num_classes();
    let features = deployment.model().stream_features();
    let flat = deployment
        .dataplane()
        .expect("stateless plane")
        .flat()
        .expect("register-free pipelines flatten");
    let total = SyntheticSource::new(spec, &churn_cfg).packets_hint().expect("known size");
    let sample_every = (total / CHURN_SAMPLES as u64).max(1);

    // One closure runs both modes: only the table shape differs.
    let run = |table: FlowTableConfig, estimate_as_map: bool| {
        let mut tracker = FlowTracker::bounded(WINDOW, table);
        let mut source = SyntheticSource::new(spec, &churn_cfg);
        let mut scratch = flat.scratch();
        let mut samples: Vec<u64> = Vec::with_capacity(CHURN_SAMPLES + 1);
        let mut packets = 0u64;
        let start = Instant::now();
        while let Some(pkt) = source.next_packet() {
            let (obs, _, state) = tracker.observe_admit(pkt.flow, pkt.ts_micros, pkt.wire_len);
            if state.window_full() {
                let codes = codes_for(features, state, &obs, &pkt);
                let _ = flat.classify(&codes, &mut scratch).expect("classifies");
            }
            packets += 1;
            if packets.is_multiple_of(sample_every) {
                samples.push(if estimate_as_map {
                    unbounded_bytes_estimate(tracker.len())
                } else {
                    tracker.state_bytes()
                });
            }
        }
        let pps = packets as f64 * 1e9 / start.elapsed().as_nanos() as f64;
        (tracker, samples, pps, packets)
    };

    let bounded_table = FlowTableConfig {
        capacity: CHURN_CAPACITY,
        idle_timeout_packets: CHURN_IDLE_TIMEOUT,
        alias: false,
    };
    let (bounded, bounded_samples, bounded_pps, packets) = run(bounded_table, false);
    // "Unbounded": capacity no workload here approaches, measured as the
    // old HashMap tracker's per-entry growth.
    let (unbounded, unbounded_samples, unbounded_pps, _) =
        run(FlowTableConfig::with_capacity(16 * flows.max(1)), true);

    let stats = bounded.table_stats();
    let result = ChurnResult {
        flows,
        packets,
        capacity: CHURN_CAPACITY,
        idle_timeout_packets: CHURN_IDLE_TIMEOUT,
        bounded_pps,
        bounded_peak_bytes: bounded_samples.iter().copied().max().unwrap_or(0),
        bounded_bytes_samples: bounded_samples,
        evictions_idle: stats.evicted_idle,
        evictions_capacity: stats.evicted_capacity,
        final_occupancy: bounded.len() as u64,
        peak_occupancy: stats.peak_occupancy,
        unbounded_pps,
        unbounded_peak_bytes: unbounded_samples.iter().copied().max().unwrap_or(0),
        unbounded_bytes_samples: unbounded_samples,
        unbounded_final_flows: unbounded.len(),
    };
    println!(
        "  {} flows, {} packets | bounded[{} slots]: {:.0} pps, peak {} B, \
         evictions {} idle + {} capacity, occupancy {}/{} | unbounded: {:.0} pps, peak {} B ({} flows)",
        result.flows,
        result.packets,
        result.capacity,
        result.bounded_pps,
        result.bounded_peak_bytes,
        result.evictions_idle,
        result.evictions_capacity,
        result.final_occupancy,
        result.capacity,
        result.unbounded_pps,
        result.unbounded_peak_bytes,
        result.unbounded_final_flows,
    );
    result
}

/// One tenant count of the pure dispatch sweep.
struct RoutingPoint {
    tenants: usize,
    /// Wall-clock of `CompiledRouter::build` over the rule set.
    build_micros: f64,
    /// Heap resident size of the compiled router.
    router_heap_bytes: u64,
    /// Rules that fell back to the residual scan list.
    residual_rules: usize,
    /// Median per-packet cost of `CompiledRouter::route`.
    ns_per_packet: f64,
    /// Median per-packet cost of the naive first-match predicate scan
    /// over the same rules (measured on a subset at large tenant counts).
    naive_ns_per_packet: f64,
}

/// The live-engine fleet half: duplicate-artifact tenants on a real
/// `EngineServer`, exercising attach-time compilation and dedup.
struct FleetResult {
    tenants: usize,
    attach_total_micros: f64,
    routed: u64,
    unrouted: u64,
    unique_artifacts: u64,
    resident_bytes: u64,
    naive_bytes: u64,
}

struct RoutingResult {
    sweep: Vec<RoutingPoint>,
    fleet: FleetResult,
}

/// Synthetic rule mix for `n` tenants: mostly exact dst-ports (the LUT),
/// every 10th a /24 dst subnet (the trie), every 10th a protocol rule.
/// Every rule compiles into an O(1) structure — the sweep isolates the
/// LUT/trie/proto lattice the flatness claim is about. Residual rules are
/// a bounded fallback for inexpressible predicates, not a scaling path;
/// their cost model (early-exit scan, at most the residual-list length)
/// is pinned by the differential suite in `tests/routing_compiled.rs`.
fn routing_rules(n: usize) -> Vec<(u32, RoutePredicate)> {
    (0..n)
        .map(|i| match i % 10 {
            1 => RoutePredicate::DstSubnet { addr: 0x0a00_0000 | ((i as u32) << 8), prefix: 24 },
            9 => RoutePredicate::Protocol(1),
            _ => RoutePredicate::DstPort((1024 + (i * 37) % 60_000) as u16),
        })
        .enumerate()
        .map(|(i, p)| (i as u32, p))
        .collect()
}

/// Deterministic five-tuple stream (xorshift64): dst ports spread over
/// the LUT's assigned range, addresses outside the rule subnets — the
/// same packets hit every sweep point, so cache behavior is comparable
/// across tenant counts.
fn routing_workload(count: usize) -> Vec<FiveTuple> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let mut step = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..count)
        .map(|_| {
            let a = step();
            let b = step();
            FiveTuple::new(
                0xc0a8_0000 | (a as u32 & 0xffff),
                0xc0a8_0000 | ((a >> 16) as u32 & 0xffff),
                (b as u16) | 1,
                1024 + ((b >> 16) % 60_000) as u16,
                if b & 1 == 0 { 6 } else { 17 },
            )
        })
        .collect()
}

fn routing_bench(deployment: &Deployment<MlpB>, small: bool) -> RoutingResult {
    let packets = routing_workload(if small { 50_000 } else { 200_000 });
    let counts: &[usize] = if small { &ROUTING_SWEEP_SMOKE } else { &ROUTING_SWEEP };

    struct SweepCase {
        tenants: usize,
        rules: Vec<(u32, RoutePredicate)>,
        router: CompiledRouter,
        build_micros: f64,
    }
    let compiled: Vec<SweepCase> = counts
        .iter()
        .map(|&n| {
            let rules = routing_rules(n);
            let t0 = Instant::now();
            let router = CompiledRouter::build(&rules);
            let build_micros = t0.elapsed().as_secs_f64() * 1e6;
            SweepCase { tenants: n, rules, router, build_micros }
        })
        .collect();

    let timed = |router: &CompiledRouter, packets: &[FiveTuple]| -> f64 {
        let mut acc = 0u64;
        let start = Instant::now();
        for ft in packets {
            acc = acc.wrapping_add(u64::from(router.route(ft).payload.unwrap_or(u32::MAX)));
        }
        let nanos = start.elapsed().as_nanos() as f64;
        std::hint::black_box(acc);
        nanos / packets.len() as f64
    };

    // The routed loop is deterministic, so scheduler/interrupt noise is
    // strictly additive: the minimum over repeated passes is the least
    // contaminated estimate of the per-packet cost. Passes are
    // *interleaved* round-robin across the sweep points — on a loaded
    // shared host the noise comes in multi-millisecond phases, and timing
    // each point in its own contiguous block would let one phase inflate a
    // single point (and with it the flatness ratio) while leaving the
    // others clean.
    let mut mins = vec![f64::INFINITY; compiled.len()];
    for case in &compiled {
        timed(&case.router, &packets); // warm-up: page in the LUT and tries
    }
    for _ in 0..25 {
        for (i, case) in compiled.iter().enumerate() {
            mins[i] = mins[i].min(timed(&case.router, &packets));
        }
    }

    let mut sweep = Vec::new();
    for (i, case) in compiled.iter().enumerate() {
        let SweepCase { tenants: n, rules, router, build_micros } = case;
        let n = *n;
        let ns_per_packet = mins[i];

        // The naive first-match scan is O(rules); keep its packet count
        // bounded so the 10k point doesn't dominate the bench wall-clock.
        let naive_packets = &packets[..(packets.len() / n.max(1)).clamp(2_000, packets.len())];
        let naive_timed = |packets: &[FiveTuple]| -> f64 {
            let mut acc = 0u64;
            let start = Instant::now();
            for ft in packets {
                let payload =
                    rules.iter().find(|(_, p)| p.matches(ft)).map(|(t, _)| *t).unwrap_or(u32::MAX);
                acc = acc.wrapping_add(u64::from(payload));
            }
            let nanos = start.elapsed().as_nanos() as f64;
            std::hint::black_box(acc);
            nanos / packets.len() as f64
        };
        let naive_ns_per_packet =
            (0..3).map(|_| naive_timed(naive_packets)).fold(f64::INFINITY, f64::min);

        println!(
            "  {n} tenants: compiled {ns_per_packet:.1} ns/pkt (naive scan \
             {naive_ns_per_packet:.1} ns/pkt), build {build_micros:.0} us, {} residual rules, \
             router heap {} B",
            router.residual_rules(),
            router.heap_bytes(),
        );
        sweep.push(RoutingPoint {
            tenants: n,
            build_micros: *build_micros,
            router_heap_bytes: router.heap_bytes(),
            residual_rules: router.residual_rules(),
            ns_per_packet,
            naive_ns_per_packet,
        });
    }

    // Sanity bound, deliberately generous for noisy shared hosts: the CI
    // smoke run fails if dispatch cost grows with the tenant count in any
    // way that could not be measurement noise. The committed
    // BENCH_throughput.json records the exact ratio.
    let first = sweep.first().expect("sweep has points");
    let last = sweep.last().expect("sweep has points");
    assert!(
        last.ns_per_packet <= (first.ns_per_packet * 4.0).max(500.0),
        "per-packet dispatch cost is not flat: {} tenants at {:.1} ns vs {} tenants at {:.1} ns",
        last.tenants,
        last.ns_per_packet,
        first.tenants,
        first.ns_per_packet,
    );

    let fleet = routing_fleet(deployment);
    RoutingResult { sweep, fleet }
}

/// Attaches [`ROUTING_FLEET_TENANTS`] tenants serving the *same* artifact
/// to a live engine (one exact dst-port each), pushes a workload with a
/// known routed/unrouted split, and checks the compiled plane's counters
/// and the dedup accounting end to end.
fn routing_fleet(deployment: &Deployment<MlpB>) -> FleetResult {
    let server = EngineBuilder::new().shards(1).batch(256).build().expect("engine builds");
    let control = server.control();
    let ingress = server.ingress();

    let t0 = Instant::now();
    for i in 0..ROUTING_FLEET_TENANTS {
        control
            .attach(
                deployment.engine_artifact().expect("artifact"),
                TenantConfig::new()
                    .name(&format!("rt{i}"))
                    .route(RoutePredicate::DstPort((1024 + i) as u16))
                    .flow_capacity(8),
            )
            .expect("fleet tenant attaches");
    }
    let attach_total_micros = t0.elapsed().as_secs_f64() * 1e6;

    // 10 routed packets per 1 unrouted: ports cycle over the tenant range,
    // every 11th lands on a port no tenant claims.
    let mut routed = 0u64;
    let mut unrouted = 0u64;
    for k in 0..11_000u64 {
        let dst_port =
            if k % 11 == 10 { 63_000 } else { (1024 + k % ROUTING_FLEET_TENANTS as u64) as u16 };
        let pkt = TracePacket {
            ts_micros: k * 50,
            flow: FiveTuple::new(0xc0a8_0101, 0xc0a8_0202, 40_000, dst_port, 6),
            wire_len: 120,
            payload_head: Vec::new(),
            tcp_flags: 0x18,
            ttl: 64,
        };
        if ingress.push(pkt).expect("pushes") {
            routed += 1;
        } else {
            unrouted += 1;
        }
    }
    ingress.flush().expect("flushes");

    let stats = control.stats().expect("stats");
    assert_eq!(unrouted, 1_000, "every 11th packet misses the fleet");
    assert_eq!(stats.unrouted, unrouted, "engine unrouted counter");
    assert_eq!(stats.routing.lut_hits, routed, "exact-port fleet routes via the LUT");
    assert_eq!(stats.routing.residual_hits, 0);
    assert_eq!(stats.artifacts.tenants, ROUTING_FLEET_TENANTS as u64);
    assert_eq!(
        stats.artifacts.unique_artifacts, 1,
        "identical artifact bytes must dedup to one resident copy"
    );
    assert!(
        stats.artifacts.resident_bytes
            < 2 * (stats.artifacts.naive_bytes / ROUTING_FLEET_TENANTS as u64).max(1),
        "resident artifact bytes at {ROUTING_FLEET_TENANTS} duplicate tenants must stay under 2x \
         one artifact: resident {} vs naive {}",
        stats.artifacts.resident_bytes,
        stats.artifacts.naive_bytes,
    );
    let result = FleetResult {
        tenants: ROUTING_FLEET_TENANTS,
        attach_total_micros,
        routed,
        unrouted,
        unique_artifacts: stats.artifacts.unique_artifacts,
        resident_bytes: stats.artifacts.resident_bytes,
        naive_bytes: stats.artifacts.naive_bytes,
    };
    server.shutdown().expect("shuts down");
    println!(
        "  fleet: {} tenants attached in {:.0} ms ({:.0} us each) | {} routed / {} unrouted | \
         {} unique artifact(s), {} B resident vs {} B if copied per tenant",
        result.tenants,
        result.attach_total_micros / 1e3,
        result.attach_total_micros / result.tenants as f64,
        result.routed,
        result.unrouted,
        result.unique_artifacts,
        result.resident_bytes,
        result.naive_bytes,
    );
    result
}

fn bench_model<M: DataplaneNet>(
    deployment: &Deployment<M>,
    model: &'static str,
    features: &'static str,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> ModelRow {
    // Warm-up pass (page in tables, stabilize branch predictors).
    let mut warm = SyntheticSource::new(
        spec,
        &SyntheticConfig { flows_per_class: source_cfg.flows_per_class / 10 + 1, ..*source_cfg },
    );
    deployment.stream(&mut warm, 1).expect("warm-up streams");

    let simulator_pps = simulator_sequential_pps(deployment, spec, source_cfg);
    println!("  simulator sequential: {simulator_pps:.0} pps");
    let locked_shared_pps = locked_shared_pps(deployment, spec, source_cfg, 4);
    println!("  4 threads, one shared locked flow table: {locked_shared_pps:.0} pps");

    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        // Median of three runs over the identical packet stream — one
        // run's wall clock on a shared host is too noisy to compare shard
        // counts against each other.
        let stream_cfg = pegasus_core::StreamConfig {
            shards,
            // Large batches: on few-core hosts, dispatch context switches
            // are the engine's main overhead.
            batch: 1024,
            ..Default::default()
        };
        let mut reps: Vec<StreamReport> = (0..3)
            .map(|_| {
                let mut source = SyntheticSource::new(spec, source_cfg);
                deployment.stream_with(&mut source, &stream_cfg).expect("streams")
            })
            .collect();
        reps.sort_by(|a, b| a.pps().total_cmp(&b.pps()));
        let report = reps.swap_remove(1);
        println!(
            "  {shards} shard(s): {:.0} pps, mean {:.0} ns, p99 {} ns, {} flows",
            report.pps(),
            report.latency.mean_nanos(),
            report.latency.quantile_nanos(0.99),
            report.flows
        );
        runs.push((shards, report));
    }
    let swap = swap_cost(deployment, spec, source_cfg);
    println!(
        "  mid-run hot swap: apply {:.0} µs (epoch/RCU, no drain), pps {:.0} -> {:.0} ({:+.1}%), \
         max latency {} -> {} ns, applied epoch {} ({} shard swap(s))",
        swap.apply_micros,
        swap.pps_no_swap,
        swap.pps_with_swap,
        100.0 * (swap.pps_with_swap - swap.pps_no_swap) / swap.pps_no_swap.max(1e-9),
        swap.max_latency_ns_no_swap,
        swap.max_latency_ns_with_swap,
        swap.applied_epoch,
        swap.swaps_applied,
    );

    ModelRow {
        model,
        features,
        stateful_bits_per_flow: deployment.resource_report().stateful_bits_per_flow,
        simulator_pps,
        locked_shared_pps,
        runs,
        swap,
    }
}

/// Streams the workload through a live [`EngineBuilder`] server twice —
/// once untouched, once with a hot swap to a second artifact of the same
/// deployment at the halfway packet — and reports the swap's cost: the
/// epoch/RCU apply latency (from the swap's own report — the call never
/// drains a queue), the throughput / max-latency impact on the stream it
/// interrupted, and the shard-side convergence and adopt-on-first-touch
/// transplant counters from the final report. Median of three runs per
/// mode.
fn swap_cost<M: DataplaneNet>(
    deployment: &Deployment<M>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> SwapCost {
    let run = |do_swap: bool| -> (StreamReport, f64) {
        let server = EngineBuilder::new().shards(1).batch(1024).build().expect("engine builds");
        let control = server.control();
        let ingress = server.ingress();
        let token = control
            .attach(deployment.engine_artifact().expect("artifact"), TenantConfig::new())
            .expect("attaches");
        let mut source = SyntheticSource::new(spec, source_cfg);
        let total = source.packets_hint().expect("known size");
        let mut pushed = 0u64;
        let mut apply_micros = 0.0f64;
        while let Some(pkt) = source.next_packet() {
            ingress.push(pkt).expect("pushes");
            pushed += 1;
            if do_swap && pushed == total / 2 {
                let swap = control
                    .swap(token, deployment.engine_artifact().expect("artifact"))
                    .expect("swaps");
                apply_micros = swap.apply_micros as f64;
            }
        }
        let mut report = server.shutdown().expect("shuts down");
        (report.take_tenant(token).expect("tenant").result.expect("serves"), apply_micros)
    };
    let median = |do_swap: bool| -> (StreamReport, f64) {
        let mut reps: Vec<(StreamReport, f64)> = (0..3).map(|_| run(do_swap)).collect();
        reps.sort_by(|a, b| a.0.pps().total_cmp(&b.0.pps()));
        reps.swap_remove(1)
    };
    let (base, _) = median(false);
    let (swapped, apply_micros) = median(true);
    SwapCost {
        apply_micros,
        pps_no_swap: base.pps(),
        pps_with_swap: swapped.pps(),
        max_latency_ns_no_swap: base.latency.max_nanos(),
        max_latency_ns_with_swap: swapped.latency.max_nanos(),
        swaps_applied: swapped.swap.swaps_applied,
        applied_epoch: swapped.swap.applied_epoch,
        adopted_slots: swapped.swap.adopted_slots,
        pending_slots: swapped.swap.pending_slots,
        transplants_completed: swapped.swap.transplants_completed,
    }
}

/// The `--swap-only` CI smoke: asserts the stall-free swap bounds on the
/// stateless hot path — sub-millisecond epoch/RCU apply, <5% throughput
/// dip — then exercises the adopt-on-first-touch register transplant on
/// a per-flow CNN-L pipeline and asserts it makes progress.
fn swap_smoke(
    mlp: &Deployment<MlpB>,
    views: &pegasus_datasets::SampleViews,
    settings: &TrainSettings,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) {
    let cost = swap_cost(mlp, spec, source_cfg);
    let dip = 100.0 * (cost.pps_no_swap - cost.pps_with_swap) / cost.pps_no_swap.max(1e-9);
    println!(
        "  MLP-B: apply {:.0} µs, pps {:.0} -> {:.0} (dip {:.1}%), max latency {} -> {} ns, \
         applied epoch {}",
        cost.apply_micros,
        cost.pps_no_swap,
        cost.pps_with_swap,
        dip,
        cost.max_latency_ns_no_swap,
        cost.max_latency_ns_with_swap,
        cost.applied_epoch,
    );
    assert!(
        cost.apply_micros < 1_000.0,
        "epoch/RCU apply must be sub-millisecond, got {:.0} µs",
        cost.apply_micros
    );
    assert!(dip < 5.0, "hot swap must dip throughput by <5%, got {dip:.1}%");
    assert_eq!(cost.applied_epoch, 1, "the shard must have adopted the publication");

    println!("  training CNN-L (per-flow registers) for the transplant smoke...");
    let data = ModelData::new().with_raw(&views.raw).with_seq(&views.seq);
    let cnn = Pegasus::new(CnnL::fit(&views.raw, &views.seq, CnnLVariant::v44(), settings))
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)
        .expect("compiles")
        .deploy(&SwitchConfig::tofino2())
        .expect("deploys");
    let flow = swap_cost(&cnn, spec, source_cfg);
    println!(
        "  CNN-L: apply {:.0} µs, pps {:.0} -> {:.0}, transplant {} slot(s) adopted on first \
         touch, {} pending at shutdown, {} completed",
        flow.apply_micros,
        flow.pps_no_swap,
        flow.pps_with_swap,
        flow.adopted_slots,
        flow.pending_slots,
        flow.transplants_completed,
    );
    assert!(
        flow.apply_micros < 1_000.0,
        "flow-pipeline apply must be sub-millisecond too (the swap never walks the register \
         file), got {:.0} µs",
        flow.apply_micros
    );
    assert!(flow.adopted_slots > 0, "post-swap traffic must adopt register slots");
}

/// The design the engine's sharding removes: N worker threads over ONE
/// shared, mutex-guarded flow-state table (what a naive multithreaded port
/// of the PR-1 runtime looks like — the per-packet state lock serializes
/// every flow update). Packets are pre-partitioned by the same RSS hash
/// and pre-materialized, so relative to the engine this path is *favored*:
/// it pays no generation or dispatch cost inside the timed region. Any
/// deficit against the engine's shard-owned state is the lock.
fn locked_shared_pps<M: DataplaneNet>(
    deployment: &Deployment<M>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
    threads: usize,
) -> f64 {
    let features = deployment.model().stream_features();
    let flat = deployment
        .dataplane()
        .expect("stateless plane")
        .flat()
        .expect("register-free pipelines flatten");
    let mut shares: Vec<Vec<TracePacket>> = vec![Vec::new(); threads];
    let mut source = SyntheticSource::new(spec, source_cfg);
    while let Some(pkt) = source.next_packet() {
        shares[pkt.flow.shard_of(threads)].push(pkt);
    }
    let total: u64 = shares.iter().map(|s| s.len() as u64).sum();
    // A reference measurement must not evict: size the table to the
    // workload's whole flow population.
    let tracker = Mutex::new(FlowTracker::bounded(WINDOW, reference_table(spec, source_cfg)));
    let start = Instant::now();
    std::thread::scope(|scope| {
        let tracker = &tracker;
        for share in &shares {
            scope.spawn(move || {
                let mut scratch = flat.scratch();
                for pkt in share {
                    let codes = {
                        let mut guard = tracker.lock().expect("tracker lock");
                        let (obs, state) = guard.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
                        if !state.window_full() {
                            continue;
                        }
                        codes_for(features, state, &obs, pkt)
                    };
                    let _ = flat.classify(&codes, &mut scratch).expect("classifies");
                }
            });
        }
    });
    total as f64 * 1e9 / start.elapsed().as_nanos() as f64
}

/// The pre-engine serving path on the same workload: one thread, per-flow
/// windows, `Deployment::classify` through the switch simulator.
fn simulator_sequential_pps<M: DataplaneNet>(
    deployment: &Deployment<M>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> f64 {
    let features = deployment.model().stream_features();
    let mut source = SyntheticSource::new(spec, source_cfg);
    let mut tracker = FlowTracker::bounded(WINDOW, reference_table(spec, source_cfg));
    let mut packets = 0u64;
    let start = Instant::now();
    while let Some(pkt) = source.next_packet() {
        packets += 1;
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes = codes_for(features, state, &obs, &pkt);
        let _ = deployment.classify(&codes).expect("classifies");
    }
    packets as f64 * 1e9 / start.elapsed().as_nanos() as f64
}

fn render_json(
    rows: &[ModelRow],
    churn: &ChurnResult,
    raw: &RawResult,
    routing: &RoutingResult,
    packets: u64,
    cores: usize,
) -> String {
    let fmt_u64s = |xs: &[u64]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(", ");
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"throughput_stream\",");
    let _ = writeln!(out, "  \"dataset\": \"peerrush-like\",");
    let _ = writeln!(out, "  \"workload_packets\": {packets},");
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"note\": \"pps is wall-clock over the whole streaming pipeline (generation + dispatch + inference). Shard scaling and lock contention are only observable when host_cores >= shards; on a single-core host every thread serializes, so the engine's measured gain is the flattened-LUT hot path (see flat_engine_speedup_over_simulator) and shard_speedup_4_over_1 hovers around 1.0. reference_locked_shared_4threads_pps is the naive multithreaded design (one mutex-guarded flow table shared by 4 workers) measured WITHOUT generation/dispatch cost; with real core counts it collapses under lock contention while shard-owned state scales. p50/p99_latency_ns are the geometric midpoint of the log2 latency bucket the quantile rank falls in (max sqrt(2) relative error), clamped to the largest recorded sample — not the bucket upper bound the pre-control-plane format reported. swap measures one mid-run hot swap on a 1-shard EngineServer: swap_apply_micros is the dataplane-visible apply latency the swap call reports about itself: the dispatcher-lock commit window (budget gates + epoch/RCU publication -- artifact verification and dedup run before it outside any lock and stall nothing; no queue is drained, so the apply is independent of queue depth and flow count, where the old flush-based apply held the lock for tens of milliseconds). Each shard adopts the publication at its next packet boundary: swaps_applied/applied_epoch confirm shard-side convergence, and adopted_slots/pending_slots/transplants_completed report the adopt-on-first-touch register transplant's progress (zero for stateless pipelines, which carry no per-flow register file; the --swap-only smoke additionally exercises a per-flow CNN-L swap and asserts the transplant advances). pps_with_swap vs pps_no_swap is the throughput dip of the interrupted stream (median of 3 runs each); max_latency_ns_* bounds the worst per-packet processing latency across the swap epoch. churn pushes 4x the streaming flow population of short-lived flows (single thread, flattened LUTs) through a fixed 1024-slot flow table with packet-count aging vs an effectively unbounded table: state_bytes_samples are taken at 8 evenly spaced points of the stream -- the bounded curve is flat at the capacity (overflow surfaces as evictions_idle/evictions_capacity) while the unbounded curve (the old HashMap tracker's per-entry estimate) grows linearly with live flows. raw_path measures the single-thread bytes-to-verdict pipeline over an in-memory pcap rendering of the streaming workload: parse_only_fps is the zero-copy wire parser alone; bytes_to_verdict_pps is the fused *batched* RawIngress pass at batch_size frames per batch (structure-of-arrays parse, hinted flow-slot resolution with a per-batch flow cache, feature extraction, one flattened-LUT batch sweep per batch, per-batch timing, no per-packet allocation); per_frame_pps is the pre-batching frame-at-a-time loop kept as the reference, and batch_sweep spans 1/8/32/64 frames per batch -- every sweep point is asserted bit-identical to the per-frame counters (verdict counts, flow table, parse buckets) before being reported. structured_single_pass_pps is the same inference loop over the identical packets pre-parsed into owned TracePackets (parse cost paid outside the timed region) -- raw_over_structured is therefore the whole-frontend overhead of serving straight from wire bytes, and wire_gbit_per_s restates bytes_to_verdict_pps as wire bandwidth at the workload's mean frame size. routing measures the compiled tenant routing plane: sweep times CompiledRouter::route per packet over a synthetic rule mix (mostly exact dst-ports in the 65536-slot LUT, /24 subnets in the prefix tries, protocol rules -- every rule an O(1) structure; the residual fallback's bounded early-exit scan is pinned by tests, not this sweep) against the naive first-match predicate scan on the identical packets -- dispatch_flatness_max_over_min is the largest-over-smallest-sweep-point cost ratio, the O(1)-dispatch claim. fleet attaches 1000 tenants serving the same artifact to a live 1-shard EngineServer (one exact dst-port each), pushes a 10:1 routed:unrouted workload, and reports the content-hash dedup accounting: resident_artifact_bytes is what the fleet actually holds, naive_artifact_bytes what per-tenant copies would hold.\",");
    let _ = writeln!(out, "  \"raw_path\": {{");
    let _ = writeln!(out, "    \"frames\": {},", raw.frames);
    let _ = writeln!(out, "    \"pcap_bytes\": {},", raw.pcap_bytes);
    let _ = writeln!(out, "    \"parse_only_fps\": {:.1},", raw.parse_only_fps);
    let _ = writeln!(out, "    \"bytes_to_verdict_pps\": {:.1},", raw.raw_pps);
    let _ = writeln!(out, "    \"batch_size\": {},", raw.batch_size);
    let _ = writeln!(out, "    \"per_frame_pps\": {:.1},", raw.per_frame_pps);
    let _ = writeln!(
        out,
        "    \"batch_sweep\": [{}],",
        raw.batch_sweep
            .iter()
            .map(|(b, pps)| format!("{{\"batch_size\": {b}, \"pps\": {pps:.1}}}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(out, "    \"structured_single_pass_pps\": {:.1},", raw.structured_pps);
    let _ = writeln!(
        out,
        "    \"raw_over_structured\": {:.3},",
        raw.raw_pps / raw.structured_pps.max(1e-9)
    );
    let _ = writeln!(out, "    \"wire_gbit_per_s\": {:.3},", raw.wire_gbit_per_s);
    let _ = writeln!(out, "    \"classified\": {},", raw.classified);
    let _ = writeln!(out, "    \"parse_errors\": {}", raw.parse_errors);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"churn\": {{");
    let _ = writeln!(out, "    \"flows\": {},", churn.flows);
    let _ = writeln!(out, "    \"packets\": {},", churn.packets);
    let _ = writeln!(out, "    \"capacity_slots\": {},", churn.capacity);
    let _ = writeln!(out, "    \"idle_timeout_packets\": {},", churn.idle_timeout_packets);
    let _ = writeln!(out, "    \"bounded_pps\": {:.1},", churn.bounded_pps);
    let _ = writeln!(out, "    \"bounded_peak_state_bytes\": {},", churn.bounded_peak_bytes);
    let _ = writeln!(
        out,
        "    \"bounded_state_bytes_samples\": [{}],",
        fmt_u64s(&churn.bounded_bytes_samples)
    );
    let _ = writeln!(out, "    \"evictions_idle\": {},", churn.evictions_idle);
    let _ = writeln!(out, "    \"evictions_capacity\": {},", churn.evictions_capacity);
    let _ = writeln!(
        out,
        "    \"evictions_per_kpacket\": {:.3},",
        (churn.evictions_idle + churn.evictions_capacity) as f64 * 1000.0
            / churn.packets.max(1) as f64
    );
    let _ = writeln!(out, "    \"final_occupancy\": {},", churn.final_occupancy);
    let _ = writeln!(out, "    \"peak_occupancy\": {},", churn.peak_occupancy);
    let _ = writeln!(out, "    \"unbounded_pps\": {:.1},", churn.unbounded_pps);
    let _ = writeln!(out, "    \"unbounded_peak_state_bytes\": {},", churn.unbounded_peak_bytes);
    let _ = writeln!(
        out,
        "    \"unbounded_state_bytes_samples\": [{}],",
        fmt_u64s(&churn.unbounded_bytes_samples)
    );
    let _ = writeln!(out, "    \"unbounded_final_flows\": {}", churn.unbounded_final_flows);
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"routing\": {{");
    let _ = writeln!(out, "    \"sweep\": [");
    for (i, p) in routing.sweep.iter().enumerate() {
        let _ = writeln!(out, "      {{");
        let _ = writeln!(out, "        \"tenants\": {},", p.tenants);
        let _ = writeln!(out, "        \"ns_per_packet\": {:.2},", p.ns_per_packet);
        let _ = writeln!(out, "        \"naive_ns_per_packet\": {:.2},", p.naive_ns_per_packet);
        let _ = writeln!(out, "        \"build_micros\": {:.1},", p.build_micros);
        let _ = writeln!(out, "        \"router_heap_bytes\": {},", p.router_heap_bytes);
        let _ = writeln!(out, "        \"residual_rules\": {}", p.residual_rules);
        let _ = write!(out, "      }}");
        let _ = writeln!(out, "{}", if i + 1 < routing.sweep.len() { "," } else { "" });
    }
    let _ = writeln!(out, "    ],");
    let min_ns =
        routing.sweep.iter().map(|p| p.ns_per_packet).fold(f64::INFINITY, f64::min).max(1e-9);
    let max_ns = routing.sweep.iter().map(|p| p.ns_per_packet).fold(0.0, f64::max);
    let _ = writeln!(out, "    \"dispatch_flatness_max_over_min\": {:.3},", max_ns / min_ns);
    let _ = writeln!(out, "    \"fleet\": {{");
    let _ = writeln!(out, "      \"tenants\": {},", routing.fleet.tenants);
    let _ =
        writeln!(out, "      \"attach_total_micros\": {:.1},", routing.fleet.attach_total_micros);
    let _ = writeln!(
        out,
        "      \"attach_mean_micros\": {:.1},",
        routing.fleet.attach_total_micros / routing.fleet.tenants.max(1) as f64
    );
    let _ = writeln!(out, "      \"routed\": {},", routing.fleet.routed);
    let _ = writeln!(out, "      \"unrouted\": {},", routing.fleet.unrouted);
    let _ = writeln!(out, "      \"unique_artifacts\": {},", routing.fleet.unique_artifacts);
    let _ = writeln!(out, "      \"resident_artifact_bytes\": {},", routing.fleet.resident_bytes);
    let _ = writeln!(out, "      \"naive_artifact_bytes\": {},", routing.fleet.naive_bytes);
    let _ = writeln!(
        out,
        "      \"dedup_factor\": {:.1}",
        routing.fleet.naive_bytes as f64 / routing.fleet.resident_bytes.max(1) as f64
    );
    let _ = writeln!(out, "    }}");
    let _ = writeln!(out, "  }},");
    let _ = writeln!(out, "  \"models\": [");
    for (mi, row) in rows.iter().enumerate() {
        let pps_of = |shards: usize| {
            row.runs.iter().find(|(s, _)| *s == shards).map(|(_, r)| r.pps()).unwrap_or(0.0)
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"model\": \"{}\",", row.model);
        let _ = writeln!(out, "      \"features\": \"{}\",", row.features);
        let _ = writeln!(out, "      \"stateful_bits_per_flow\": {},", row.stateful_bits_per_flow);
        let _ = writeln!(out, "      \"simulator_sequential_pps\": {:.1},", row.simulator_pps);
        let _ = writeln!(
            out,
            "      \"flat_engine_speedup_over_simulator\": {:.2},",
            pps_of(1) / row.simulator_pps.max(1e-9)
        );
        let _ = writeln!(
            out,
            "      \"reference_locked_shared_4threads_pps\": {:.1},",
            row.locked_shared_pps
        );
        let _ = writeln!(
            out,
            "      \"shard_speedup_4_over_1\": {:.3},",
            pps_of(4) / pps_of(1).max(1e-9)
        );
        let _ = writeln!(out, "      \"swap\": {{");
        let _ = writeln!(out, "        \"swap_apply_micros\": {:.1},", row.swap.apply_micros);
        let _ = writeln!(out, "        \"pps_no_swap\": {:.1},", row.swap.pps_no_swap);
        let _ = writeln!(out, "        \"pps_with_swap\": {:.1},", row.swap.pps_with_swap);
        let _ = writeln!(
            out,
            "        \"pps_dip_pct\": {:.2},",
            100.0 * (row.swap.pps_no_swap - row.swap.pps_with_swap)
                / row.swap.pps_no_swap.max(1e-9)
        );
        let _ = writeln!(
            out,
            "        \"max_latency_ns_no_swap\": {},",
            row.swap.max_latency_ns_no_swap
        );
        let _ = writeln!(
            out,
            "        \"max_latency_ns_with_swap\": {},",
            row.swap.max_latency_ns_with_swap
        );
        let _ = writeln!(out, "        \"swaps_applied\": {},", row.swap.swaps_applied);
        let _ = writeln!(out, "        \"applied_epoch\": {},", row.swap.applied_epoch);
        let _ = writeln!(out, "        \"adopted_slots\": {},", row.swap.adopted_slots);
        let _ = writeln!(out, "        \"pending_slots\": {},", row.swap.pending_slots);
        let _ =
            writeln!(out, "        \"transplants_completed\": {}", row.swap.transplants_completed);
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"runs\": [");
        for (ri, (shards, r)) in row.runs.iter().enumerate() {
            let busy: Vec<String> =
                r.shards.iter().map(|s| format!("{:.1}", s.busy_pps())).collect();
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"shards\": {shards},");
            let _ = writeln!(out, "          \"pps\": {:.1},", r.pps());
            let _ = writeln!(out, "          \"packets\": {},", r.packets);
            let _ = writeln!(out, "          \"classified\": {},", r.classified);
            let _ = writeln!(out, "          \"flows\": {},", r.flows);
            let _ = writeln!(out, "          \"mean_latency_ns\": {:.1},", r.latency.mean_nanos());
            let _ =
                writeln!(out, "          \"p50_latency_ns\": {},", r.latency.quantile_nanos(0.5));
            let _ =
                writeln!(out, "          \"p99_latency_ns\": {},", r.latency.quantile_nanos(0.99));
            let _ = writeln!(out, "          \"flow_occupancy\": {},", r.table.occupancy);
            let _ = writeln!(out, "          \"flow_capacity\": {},", r.table.capacity);
            let _ = writeln!(out, "          \"evictions\": {},", r.table.evictions());
            let _ = writeln!(out, "          \"alias_collisions\": {},", r.table.alias_collisions);
            let _ = writeln!(out, "          \"per_shard_busy_pps\": [{}]", busy.join(", "));
            let _ = write!(out, "        }}");
            let _ = writeln!(out, "{}", if ri + 1 < row.runs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = write!(out, "    }}");
        let _ = writeln!(out, "{}", if mi + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

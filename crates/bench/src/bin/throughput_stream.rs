//! Streaming throughput of the sharded packet engine → `BENCH_throughput.json`.
//!
//! Trains MLP-B (statistical features) and RNN-B (windowed sequence
//! features), deploys both, then streams a synthetic packet workload
//! through [`Deployment::stream`] at 1, 2 and 4 shards, reporting
//! aggregate packets/s and per-packet latency. A sequential run through
//! the *simulator* runtime (the pre-engine serving path: per-packet PHV
//! instantiation, dynamic table dispatch) is measured on the same workload
//! as the baseline the flattened-LUT hot path replaces.
//!
//! Run: `cargo run --release -p pegasus-bench --bin throughput_stream`
//! (add `--quick` for a CI-scale run). Results land in
//! `BENCH_throughput.json` in the working directory and
//! `target/experiments/throughput_stream.txt`.

use pegasus_bench::{parse_args, write_report};
use pegasus_core::compile::CompileOptions;
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::rnn_b::RnnB;
use pegasus_core::models::{DataplaneNet, ModelData, StreamFeatures, TrainSettings};
use pegasus_core::pipeline::{Deployment, Pegasus};
use pegasus_core::{EngineBuilder, StreamReport, TenantConfig};
use pegasus_datasets::{
    extract_views, generate_trace, peerrush, GenConfig, SyntheticConfig, SyntheticSource,
};
use pegasus_net::{
    FlowState, FlowTracker, PacketObs, PacketSource, SeqFeatures, StatFeatures, TracePacket, WINDOW,
};
use pegasus_switch::SwitchConfig;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

struct ModelRow {
    model: &'static str,
    features: &'static str,
    stateful_bits_per_flow: u64,
    simulator_pps: f64,
    locked_shared_pps: f64,
    runs: Vec<(usize, StreamReport)>,
    swap: SwapCost,
}

/// Cost of one mid-run hot swap, measured on the live engine server.
struct SwapCost {
    /// Wall-clock of the `swap` call itself: flush, per-shard apply
    /// (including draining queued batches ahead of it), all-shard ack.
    apply_micros: f64,
    pps_no_swap: f64,
    pps_with_swap: f64,
    max_latency_ns_no_swap: u64,
    max_latency_ns_with_swap: u64,
}

/// Per-packet feature codes, shared by every reference path.
fn codes_for(
    features: StreamFeatures,
    state: &FlowState,
    obs: &PacketObs,
    pkt: &TracePacket,
) -> Vec<f32> {
    match features {
        StreamFeatures::Stat => StatFeatures::extract(
            state,
            obs,
            pkt.flow.protocol,
            pkt.tcp_flags,
            pkt.flow.src_port,
            pkt.flow.dst_port,
            pkt.ttl,
            pkt.payload_head.len() as u16,
        )
        .to_f32(),
        StreamFeatures::Seq => {
            SeqFeatures::extract(state).expect("window full").to_f32_interleaved()
        }
    }
}

fn main() {
    let cfg = parse_args();
    let settings = if cfg.quick {
        TrainSettings::quick()
    } else {
        TrainSettings { seed: cfg.seed, ..TrainSettings::default() }
    };
    let spec = peerrush();

    // Training data: a moderate materialized trace.
    let train_trace = generate_trace(&spec, &GenConfig { flows_per_class: 30, seed: cfg.seed });
    let views = extract_views(&train_trace);

    // Streaming workload: generated on the fly, payloads disabled. RNN-B
    // never reads them; MLP-B sees a zeroed payload-length code in every
    // path alike, which is fine for a pure throughput measurement (this
    // bench reports pps, not accuracy). Same seed per run -> identical
    // packet stream.
    let stream_flows = cfg.flows_per_class * 10;
    let source_cfg = SyntheticConfig {
        flows_per_class: stream_flows,
        seed: cfg.seed ^ 0x5eed,
        payload_bytes: 0,
        ..SyntheticConfig::default()
    };
    let workload_packets = SyntheticSource::new(&spec, &source_cfg).packets_hint().unwrap();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "workload: {workload_packets} packets over {} flows ({} classes), host cores: {cores}",
        stream_flows * spec.num_classes(),
        spec.num_classes()
    );

    let mut rows: Vec<ModelRow> = Vec::new();

    {
        println!("== MLP-B (statistical features) ==");
        let data = ModelData::new().with_stat(&views.stat);
        let deployment = Pegasus::<MlpB>::train(&data, &settings)
            .expect("trains")
            .options(CompileOptions { clustering_depth: 5, ..Default::default() })
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("deploys");
        rows.push(bench_model(&deployment, "MLP-B", "stat", &spec, &source_cfg));
    }
    {
        println!("== RNN-B (windowed sequence features) ==");
        let data = ModelData::new().with_seq(&views.seq);
        let deployment = Pegasus::<RnnB>::train(&data, &settings)
            .expect("trains")
            .options(CompileOptions { clustering_depth: 4, ..Default::default() })
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("deploys");
        rows.push(bench_model(&deployment, "RNN-B", "seq", &spec, &source_cfg));
    }

    let json = render_json(&rows, workload_packets, cores);
    std::fs::write("BENCH_throughput.json", &json).expect("write BENCH_throughput.json");
    println!("wrote BENCH_throughput.json");

    let mut txt = String::new();
    for row in &rows {
        let _ = writeln!(
            txt,
            "{}: simulator(seq) {:.0} pps | engine {}",
            row.model,
            row.simulator_pps,
            row.runs
                .iter()
                .map(|(s, r)| format!("{s} shard(s): {:.0} pps", r.pps()))
                .collect::<Vec<_>>()
                .join(" | ")
        );
    }
    if let Some(path) = write_report("throughput_stream", &txt) {
        println!("wrote {}", path.display());
    }
    print!("{txt}");
}

fn bench_model<M: DataplaneNet>(
    deployment: &Deployment<M>,
    model: &'static str,
    features: &'static str,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> ModelRow {
    // Warm-up pass (page in tables, stabilize branch predictors).
    let mut warm = SyntheticSource::new(
        spec,
        &SyntheticConfig { flows_per_class: source_cfg.flows_per_class / 10 + 1, ..*source_cfg },
    );
    deployment.stream(&mut warm, 1).expect("warm-up streams");

    let simulator_pps = simulator_sequential_pps(deployment, spec, source_cfg);
    println!("  simulator sequential: {simulator_pps:.0} pps");
    let locked_shared_pps = locked_shared_pps(deployment, spec, source_cfg, 4);
    println!("  4 threads, one shared locked flow table: {locked_shared_pps:.0} pps");

    let mut runs = Vec::new();
    for shards in SHARD_COUNTS {
        // Median of three runs over the identical packet stream — one
        // run's wall clock on a shared host is too noisy to compare shard
        // counts against each other.
        let stream_cfg = pegasus_core::StreamConfig {
            shards,
            // Large batches: on few-core hosts, dispatch context switches
            // are the engine's main overhead.
            batch: 1024,
            ..Default::default()
        };
        let mut reps: Vec<StreamReport> = (0..3)
            .map(|_| {
                let mut source = SyntheticSource::new(spec, source_cfg);
                deployment.stream_with(&mut source, &stream_cfg).expect("streams")
            })
            .collect();
        reps.sort_by(|a, b| a.pps().total_cmp(&b.pps()));
        let report = reps.swap_remove(1);
        println!(
            "  {shards} shard(s): {:.0} pps, mean {:.0} ns, p99 {} ns, {} flows",
            report.pps(),
            report.latency.mean_nanos(),
            report.latency.quantile_nanos(0.99),
            report.flows
        );
        runs.push((shards, report));
    }
    let swap = swap_cost(deployment, spec, source_cfg);
    println!(
        "  mid-run hot swap: apply {:.0} µs, pps {:.0} -> {:.0} ({:+.1}%), max latency {} -> {} ns",
        swap.apply_micros,
        swap.pps_no_swap,
        swap.pps_with_swap,
        100.0 * (swap.pps_with_swap - swap.pps_no_swap) / swap.pps_no_swap.max(1e-9),
        swap.max_latency_ns_no_swap,
        swap.max_latency_ns_with_swap,
    );

    ModelRow {
        model,
        features,
        stateful_bits_per_flow: deployment.resource_report().stateful_bits_per_flow,
        simulator_pps,
        locked_shared_pps,
        runs,
        swap,
    }
}

/// Streams the workload through a live [`EngineBuilder`] server twice —
/// once untouched, once with a hot swap to a second artifact of the same
/// deployment at the halfway packet — and reports the swap's cost: the
/// control-plane apply latency and the throughput / max-latency impact on
/// the stream it interrupted. Median of three runs per mode.
fn swap_cost<M: DataplaneNet>(
    deployment: &Deployment<M>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> SwapCost {
    let run = |do_swap: bool| -> (StreamReport, f64) {
        let server = EngineBuilder::new().shards(1).batch(1024).build().expect("engine builds");
        let control = server.control();
        let ingress = server.ingress();
        let token = control
            .attach(deployment.engine_artifact().expect("artifact"), TenantConfig::new())
            .expect("attaches");
        let mut source = SyntheticSource::new(spec, source_cfg);
        let total = source.packets_hint().expect("known size");
        let mut pushed = 0u64;
        let mut apply_micros = 0.0f64;
        while let Some(pkt) = source.next_packet() {
            ingress.push(pkt).expect("pushes");
            pushed += 1;
            if do_swap && pushed == total / 2 {
                let t0 = Instant::now();
                control
                    .swap(token, deployment.engine_artifact().expect("artifact"))
                    .expect("swaps");
                apply_micros = t0.elapsed().as_secs_f64() * 1e6;
            }
        }
        let mut report = server.shutdown().expect("shuts down");
        (report.take_tenant(token).expect("tenant").result.expect("serves"), apply_micros)
    };
    let median = |do_swap: bool| -> (StreamReport, f64) {
        let mut reps: Vec<(StreamReport, f64)> = (0..3).map(|_| run(do_swap)).collect();
        reps.sort_by(|a, b| a.0.pps().total_cmp(&b.0.pps()));
        reps.swap_remove(1)
    };
    let (base, _) = median(false);
    let (swapped, apply_micros) = median(true);
    SwapCost {
        apply_micros,
        pps_no_swap: base.pps(),
        pps_with_swap: swapped.pps(),
        max_latency_ns_no_swap: base.latency.max_nanos(),
        max_latency_ns_with_swap: swapped.latency.max_nanos(),
    }
}

/// The design the engine's sharding removes: N worker threads over ONE
/// shared, mutex-guarded flow-state table (what a naive multithreaded port
/// of the PR-1 runtime looks like — the per-packet state lock serializes
/// every flow update). Packets are pre-partitioned by the same RSS hash
/// and pre-materialized, so relative to the engine this path is *favored*:
/// it pays no generation or dispatch cost inside the timed region. Any
/// deficit against the engine's shard-owned state is the lock.
fn locked_shared_pps<M: DataplaneNet>(
    deployment: &Deployment<M>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
    threads: usize,
) -> f64 {
    let features = deployment.model().stream_features();
    let flat = deployment
        .dataplane()
        .expect("stateless plane")
        .flat()
        .expect("register-free pipelines flatten");
    let mut shares: Vec<Vec<TracePacket>> = vec![Vec::new(); threads];
    let mut source = SyntheticSource::new(spec, source_cfg);
    while let Some(pkt) = source.next_packet() {
        shares[pkt.flow.shard_of(threads)].push(pkt);
    }
    let total: u64 = shares.iter().map(|s| s.len() as u64).sum();
    let tracker = Mutex::new(FlowTracker::new(WINDOW));
    let start = Instant::now();
    std::thread::scope(|scope| {
        let tracker = &tracker;
        for share in &shares {
            scope.spawn(move || {
                let mut scratch = flat.scratch();
                for pkt in share {
                    let codes = {
                        let mut guard = tracker.lock().expect("tracker lock");
                        let (obs, state) = guard.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
                        if !state.window_full() {
                            continue;
                        }
                        codes_for(features, state, &obs, pkt)
                    };
                    let _ = flat.classify(&codes, &mut scratch).expect("classifies");
                }
            });
        }
    });
    total as f64 * 1e9 / start.elapsed().as_nanos() as f64
}

/// The pre-engine serving path on the same workload: one thread, per-flow
/// windows, `Deployment::classify` through the switch simulator.
fn simulator_sequential_pps<M: DataplaneNet>(
    deployment: &Deployment<M>,
    spec: &pegasus_datasets::DatasetSpec,
    source_cfg: &SyntheticConfig,
) -> f64 {
    let features = deployment.model().stream_features();
    let mut source = SyntheticSource::new(spec, source_cfg);
    let mut tracker = FlowTracker::new(WINDOW);
    let mut packets = 0u64;
    let start = Instant::now();
    while let Some(pkt) = source.next_packet() {
        packets += 1;
        let (obs, state) = tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            continue;
        }
        let codes = codes_for(features, state, &obs, &pkt);
        let _ = deployment.classify(&codes).expect("classifies");
    }
    packets as f64 * 1e9 / start.elapsed().as_nanos() as f64
}

fn render_json(rows: &[ModelRow], packets: u64, cores: usize) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"throughput_stream\",");
    let _ = writeln!(out, "  \"dataset\": \"peerrush-like\",");
    let _ = writeln!(out, "  \"workload_packets\": {packets},");
    let _ = writeln!(out, "  \"host_cores\": {cores},");
    let _ = writeln!(
        out,
        "  \"note\": \"pps is wall-clock over the whole streaming pipeline (generation + dispatch + inference). Shard scaling and lock contention are only observable when host_cores >= shards; on a single-core host every thread serializes, so the engine's measured gain is the flattened-LUT hot path (see flat_engine_speedup_over_simulator) and shard_speedup_4_over_1 hovers around 1.0. reference_locked_shared_4threads_pps is the naive multithreaded design (one mutex-guarded flow table shared by 4 workers) measured WITHOUT generation/dispatch cost; with real core counts it collapses under lock contention while shard-owned state scales. p50/p99_latency_ns are the geometric midpoint of the log2 latency bucket the quantile rank falls in (max sqrt(2) relative error), clamped to the largest recorded sample — not the bucket upper bound the pre-control-plane format reported. swap measures one mid-run hot swap on a 1-shard EngineServer: swap_apply_micros is the control-plane call latency (flush + per-shard apply behind queued batches + all-shard ack); pps_with_swap vs pps_no_swap is the throughput dip of the interrupted stream (median of 3 runs each); max_latency_ns_* bounds the worst per-packet processing latency across the swap epoch.\",");
    let _ = writeln!(out, "  \"models\": [");
    for (mi, row) in rows.iter().enumerate() {
        let pps_of = |shards: usize| {
            row.runs.iter().find(|(s, _)| *s == shards).map(|(_, r)| r.pps()).unwrap_or(0.0)
        };
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"model\": \"{}\",", row.model);
        let _ = writeln!(out, "      \"features\": \"{}\",", row.features);
        let _ = writeln!(out, "      \"stateful_bits_per_flow\": {},", row.stateful_bits_per_flow);
        let _ = writeln!(out, "      \"simulator_sequential_pps\": {:.1},", row.simulator_pps);
        let _ = writeln!(
            out,
            "      \"flat_engine_speedup_over_simulator\": {:.2},",
            pps_of(1) / row.simulator_pps.max(1e-9)
        );
        let _ = writeln!(
            out,
            "      \"reference_locked_shared_4threads_pps\": {:.1},",
            row.locked_shared_pps
        );
        let _ = writeln!(
            out,
            "      \"shard_speedup_4_over_1\": {:.3},",
            pps_of(4) / pps_of(1).max(1e-9)
        );
        let _ = writeln!(out, "      \"swap\": {{");
        let _ = writeln!(out, "        \"swap_apply_micros\": {:.1},", row.swap.apply_micros);
        let _ = writeln!(out, "        \"pps_no_swap\": {:.1},", row.swap.pps_no_swap);
        let _ = writeln!(out, "        \"pps_with_swap\": {:.1},", row.swap.pps_with_swap);
        let _ = writeln!(
            out,
            "        \"pps_dip_pct\": {:.2},",
            100.0 * (row.swap.pps_no_swap - row.swap.pps_with_swap)
                / row.swap.pps_no_swap.max(1e-9)
        );
        let _ = writeln!(
            out,
            "        \"max_latency_ns_no_swap\": {},",
            row.swap.max_latency_ns_no_swap
        );
        let _ = writeln!(
            out,
            "        \"max_latency_ns_with_swap\": {}",
            row.swap.max_latency_ns_with_swap
        );
        let _ = writeln!(out, "      }},");
        let _ = writeln!(out, "      \"runs\": [");
        for (ri, (shards, r)) in row.runs.iter().enumerate() {
            let busy: Vec<String> =
                r.shards.iter().map(|s| format!("{:.1}", s.busy_pps())).collect();
            let _ = writeln!(out, "        {{");
            let _ = writeln!(out, "          \"shards\": {shards},");
            let _ = writeln!(out, "          \"pps\": {:.1},", r.pps());
            let _ = writeln!(out, "          \"packets\": {},", r.packets);
            let _ = writeln!(out, "          \"classified\": {},", r.classified);
            let _ = writeln!(out, "          \"flows\": {},", r.flows);
            let _ = writeln!(out, "          \"mean_latency_ns\": {:.1},", r.latency.mean_nanos());
            let _ =
                writeln!(out, "          \"p50_latency_ns\": {},", r.latency.quantile_nanos(0.5));
            let _ =
                writeln!(out, "          \"p99_latency_ns\": {},", r.latency.quantile_nanos(0.99));
            let _ = writeln!(out, "          \"per_shard_busy_pps\": [{}]", busy.join(", "));
            let _ = write!(out, "        }}");
            let _ = writeln!(out, "{}", if ri + 1 < row.runs.len() { "," } else { "" });
        }
        let _ = writeln!(out, "      ]");
        let _ = write!(out, "    }}");
        let _ = writeln!(out, "{}", if mi + 1 < rows.len() { "," } else { "" });
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

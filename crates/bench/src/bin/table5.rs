//! Table 5: classification accuracy of all eight methods across the three
//! datasets, plus input scale and model size.
//!
//! Run: `cargo run -p pegasus-bench --bin table5 --release [-- --quick]`

use pegasus_bench::{parse_args, run_method, write_report, Method};
use pegasus_datasets::all_datasets;

fn main() {
    let cfg = parse_args();
    let mut out = String::new();
    out.push_str("Table 5: classification accuracy across methods\n");
    out.push_str(&format!(
        "(flows/class={}, seed={}, quick={})\n\n",
        cfg.flows_per_class, cfg.seed, cfg.quick
    ));
    out.push_str(&format!(
        "{:<22} {:>9} {:>10} | {:>23} | {:>23} | {:>23}\n",
        "Method",
        "Input(b)",
        "Size(Kb)",
        "PeerRush  PR/RC/F1",
        "CICIOT  PR/RC/F1",
        "ISCXVPN  PR/RC/F1"
    ));
    out.push_str(&"-".repeat(122));
    out.push('\n');

    let datasets: Vec<_> =
        all_datasets().iter().map(|spec| pegasus_bench::harness::prepare(spec, &cfg)).collect();

    for method in Method::all() {
        eprintln!("[table5] running {} ...", method.name());
        let mut cells = Vec::new();
        let mut input_bits = 0;
        let mut size_kb = f64::NAN;
        for data in &datasets {
            let r = run_method(method, data, &cfg);
            input_bits = r.input_bits;
            size_kb = r.size_kb;
            cells.push(format!(
                "{:.4}/{:.4}/{:.4}",
                r.dataplane.precision, r.dataplane.recall, r.dataplane.f1
            ));
        }
        let size = if size_kb.is_nan() { "-".to_string() } else { format!("{size_kb:.1}") };
        out.push_str(&format!(
            "{:<22} {:>9} {:>10} | {:>23} | {:>23} | {:>23}\n",
            method.name(),
            input_bits,
            size,
            cells[0],
            cells[1],
            cells[2]
        ));
        print!("{}", out.lines().last().map(|l| format!("{l}\n")).unwrap_or_default());
    }
    println!("\n{out}");
    if let Some(p) = write_report("table5", &out) {
        eprintln!("[table5] written to {}", p.display());
    }
}

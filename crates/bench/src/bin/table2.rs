//! Table 2 (preview): Pegasus vs prior works — accuracy improvement, model
//! size ratio and input scale ratio of CNN-L over each baseline.
//!
//! Run: `cargo run -p pegasus-bench --bin table2 --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::{parse_args, run_method, write_report, Method};
use pegasus_datasets::all_datasets;

fn main() {
    let cfg = parse_args();
    let datasets: Vec<_> = all_datasets().iter().map(|spec| prepare(spec, &cfg)).collect();

    // CNN-L is "Pegasus" in this table; baselines per the paper's rows.
    eprintln!("[table2] running CNN-L ...");
    let ours: Vec<_> = datasets.iter().map(|d| run_method(Method::CnnL, d, &cfg)).collect();
    let mut out = String::new();
    out.push_str("Table 2: Pegasus (CNN-L) vs prior works\n\n");
    out.push_str(&format!(
        "{:<24} {:>12} {:>12} {:>12}\n",
        "Prior work", "Accuracy ↑", "Model size ↑", "Input scale ↑"
    ));
    out.push_str(&"-".repeat(64));
    out.push('\n');
    for b in [Method::N3ic, Method::Bos, Method::Leo] {
        eprintln!("[table2] running {} ...", b.name());
        let theirs: Vec<_> = datasets.iter().map(|d| run_method(b, d, &cfg)).collect();
        let acc_gain: f64 = ours
            .iter()
            .zip(theirs.iter())
            .map(|(o, t)| (o.dataplane.f1 - t.dataplane.f1) * 100.0)
            .sum::<f64>()
            / ours.len() as f64;
        let size_ratio = if theirs[0].size_kb.is_nan() {
            "-".to_string()
        } else {
            format!("{:.0}x", ours[0].size_kb / theirs[0].size_kb)
        };
        let input_ratio =
            format!("{:.0}x", ours[0].input_bits as f64 / theirs[0].input_bits as f64);
        out.push_str(&format!(
            "{:<24} {:>11.1}% {:>12} {:>12}\n",
            b.name(),
            acc_gain,
            size_ratio,
            input_ratio
        ));
    }
    println!("{out}");
    if let Some(p) = write_report("table2", &out) {
        eprintln!("[table2] written to {}", p.display());
    }
}

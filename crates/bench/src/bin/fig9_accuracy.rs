//! Figure 9 (a–c): macro-F1 of every Pegasus model on the switch vs the
//! full-precision CPU/GPU implementation, per dataset.
//!
//! Run: `cargo run -p pegasus-bench --bin fig9_accuracy --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::{parse_args, run_method, write_report, Method};
use pegasus_datasets::all_datasets;

fn main() {
    let cfg = parse_args();
    let models = [Method::MlpB, Method::RnnB, Method::CnnB, Method::CnnM, Method::CnnL];
    let datasets: Vec<_> = all_datasets().iter().map(|s| prepare(s, &cfg)).collect();

    let mut out = String::new();
    out.push_str("Figure 9a-c: Pegasus (switch) vs full-precision CPU/GPU macro-F1\n\n");
    for data in &datasets {
        out.push_str(&format!("--- {} ---\n", data.name));
        out.push_str(&format!("{:<8} {:>10} {:>10} {:>8}\n", "Model", "Pegasus", "CPU/GPU", "Δ"));
        for m in models {
            eprintln!("[fig9a-c] {} on {} ...", m.name(), data.name);
            let r = run_method(m, data, &cfg);
            out.push_str(&format!(
                "{:<8} {:>10.4} {:>10.4} {:>+8.4}\n",
                r.method.split(' ').next().unwrap_or(r.method),
                r.dataplane.f1,
                r.float.f1,
                r.dataplane.f1 - r.float.f1
            ));
        }
        out.push('\n');
    }
    println!("{out}");
    if let Some(p) = write_report("fig9_accuracy", &out) {
        eprintln!("[fig9_accuracy] written to {}", p.display());
    }
}

//! Table 6: hardware resource utilization per method — stateful bits/flow,
//! SRAM %, TCAM %, action-bus % on the Tofino-2 model, plus stages used.
//!
//! The paper deploys moderate configurations for this comparison (Leo with
//! 1024 nodes, BoS with hidden size 8); the same spirit applies here.
//!
//! Run: `cargo run -p pegasus-bench --bin table6 --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::methods::train_autoencoder;
use pegasus_bench::{parse_args, run_method, write_report, Method};
use pegasus_datasets::peerrush;

fn main() {
    let cfg = parse_args();
    // Resource shape is dataset-independent; the paper reports one table.
    let data = prepare(&peerrush(), &cfg);

    let mut out = String::new();
    out.push_str("Table 6: hardware resource utilization (Tofino-2 model)\n\n");
    out.push_str(&format!(
        "{:<22} {:>14} {:>9} {:>9} {:>9} {:>8}\n",
        "Model", "Stateful b/flow", "SRAM", "TCAM", "Bus", "Stages"
    ));
    out.push_str(&"-".repeat(76));
    out.push('\n');

    for method in Method::all() {
        eprintln!("[table6] running {} ...", method.name());
        let r = run_method(method, &data, &cfg);
        match r.resources {
            Some(res) => out.push_str(&format!(
                "{:<22} {:>14} {:>8.2}% {:>8.2}% {:>8.2}% {:>8}\n",
                r.method,
                res.stateful_bits_per_flow,
                res.sram_frac * 100.0,
                res.tcam_frac * 100.0,
                res.bus_frac * 100.0,
                res.stages_used
            )),
            None => out.push_str(&format!(
                "{:<22} {:>14} {:>9} {:>9} {:>9} {:>8}\n",
                r.method, 80, "n/a", "n/a", "n/a", "no fit"
            )),
        }
    }
    // AutoEncoder row.
    eprintln!("[table6] running AutoEncoder ...");
    let dp = train_autoencoder(&data, &cfg);
    let res = dp.resource_report();
    out.push_str(&format!(
        "{:<22} {:>14} {:>8.2}% {:>8.2}% {:>8.2}% {:>8}\n",
        "AutoEncoder",
        res.stateful_bits_per_flow,
        res.sram_frac * 100.0,
        res.tcam_frac * 100.0,
        res.bus_frac * 100.0,
        res.stages_used
    ));

    println!("{out}");
    if let Some(p) = write_report("table6", &out) {
        eprintln!("[table6] written to {}", p.display());
    }
}

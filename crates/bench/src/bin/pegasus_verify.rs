//! `pegasus-verify` — static artifact verification over all nine nets.
//!
//! Trains and compiles every model of the evaluation (the six Pegasus
//! nets plus the three baselines), runs the three-layer static verifier
//! (see `pegasus_core::verify`) over each compiled artifact, and prints
//! one line per (net, analysis) pair:
//!
//! * **compile-time** — structural + interval + semantic layers, no
//!   switch model. Every net must verify with zero `Error` diagnostics:
//!   the compiler emitting a corrupt artifact is a bug, full stop.
//! * **tofino2** — the same plus the resource-accounting layer (`V204`).
//!   Every net except N3IC must fit; N3IC must *fail* with `V204`
//!   (the paper's §2 stage-wall result as a falsifiable check).
//!
//! Exit status is non-zero on any deviation, so CI can gate on it.
//! Standard flags apply (`--quick`, `--seed N`, `--flows N`).

use pegasus_baselines::{Bos, Leo, N3ic};
use pegasus_bench::harness::prepare;
use pegasus_bench::parse_args;
use pegasus_core::compile::CompileOptions;
use pegasus_core::models::autoencoder::AutoEncoder;
use pegasus_core::models::cnn_b::CnnB;
use pegasus_core::models::cnn_l::CnnL;
use pegasus_core::models::cnn_m::CnnM;
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::rnn_b::RnnB;
use pegasus_core::models::{DataplaneNet, ModelData};
use pegasus_core::pipeline::Pegasus;
use pegasus_core::verify::VerifyReport;
use pegasus_datasets::peerrush;
use pegasus_switch::SwitchConfig;

/// Verification outcome for one net.
struct NetResult {
    name: &'static str,
    compile_time: VerifyReport,
    on_switch: VerifyReport,
}

fn check<M: DataplaneNet>(
    name: &'static str,
    data: &ModelData<'_>,
    opts: &CompileOptions,
    epochs: usize,
    seed: u64,
    switch: &SwitchConfig,
) -> NetResult {
    let settings = pegasus_core::models::TrainSettings { epochs, batch: 64, lr: 0.01, seed };
    let compiled = Pegasus::<M>::train(data, &settings)
        .unwrap_or_else(|e| panic!("{name} trains: {e}"))
        .options(opts.clone())
        .compile(data)
        .unwrap_or_else(|e| panic!("{name} compiles: {e}"));
    NetResult {
        name,
        compile_time: compiled.artifact().verify(None),
        on_switch: compiled.artifact().verify(Some(switch)),
    }
}

fn summarize(r: &VerifyReport) -> String {
    let (e, w) = (r.errors().count(), r.warnings().count());
    let codes: Vec<&str> = {
        let mut c: Vec<&str> = r.diagnostics.iter().map(|d| d.code).collect();
        c.sort_unstable();
        c.dedup();
        c
    };
    if codes.is_empty() {
        "clean".to_string()
    } else {
        format!("{e} error(s), {w} warning(s) [{}]", codes.join(", "))
    }
}

fn main() -> std::process::ExitCode {
    let cfg = parse_args();
    let switch = SwitchConfig::tofino2();
    let opts =
        CompileOptions { clustering_depth: if cfg.quick { 5 } else { 6 }, ..Default::default() };
    let p = prepare(&peerrush(), &cfg);
    let bundle = ModelData::new()
        .with_stat(&p.train.stat)
        .with_seq(&p.train.seq)
        .with_raw(&p.train.raw)
        .with_validation(&p.val.stat, &p.val.seq);
    let epochs = cfg.train_settings().epochs;
    let seed = cfg.seed;

    let results = [
        check::<MlpB>("MLP-B", &bundle, &opts, epochs, seed, &switch),
        check::<RnnB>("RNN-B", &bundle, &opts, epochs, seed, &switch),
        check::<CnnB>("CNN-B", &bundle, &opts, epochs, seed, &switch),
        check::<CnnM>("CNN-M", &bundle, &opts, epochs, seed, &switch),
        check::<CnnL>("CNN-L", &bundle, &opts, epochs, seed, &switch),
        check::<AutoEncoder>("AutoEncoder", &bundle, &opts, epochs, seed, &switch),
        check::<Leo>("Leo", &bundle, &opts, epochs, seed, &switch),
        check::<Bos>("BoS", &bundle, &opts, epochs, seed, &switch),
        check::<N3ic>("N3IC", &bundle, &opts, epochs, seed, &switch),
    ];

    println!("{:<12} {:<40} tofino2", "net", "compile-time");
    let mut failed = false;
    for r in &results {
        println!("{:<12} {:<40} {}", r.name, summarize(&r.compile_time), summarize(&r.on_switch));
        if r.compile_time.has_errors() {
            eprintln!("FAIL: {} has compile-time verifier errors:\n{}", r.name, r.compile_time);
            failed = true;
        }
        if r.name == "N3IC" {
            // The paper's stage-wall result: N3IC must be rejected by the
            // resource layer, and by exactly that layer.
            if !r.on_switch.has_code("V204") {
                eprintln!("FAIL: N3IC was expected to overflow tofino2 (V204):\n{}", r.on_switch);
                failed = true;
            }
        } else if r.on_switch.has_errors() {
            eprintln!("FAIL: {} does not verify on tofino2:\n{}", r.name, r.on_switch);
            failed = true;
        }
    }
    if failed {
        return std::process::ExitCode::FAILURE;
    }
    println!("all nets verified: 8/8 clean on tofino2, N3IC rejected by V204 as expected");
    std::process::ExitCode::SUCCESS
}

//! Figure 8: ROC curves (reported as AUC) of the AutoEncoder against the
//! six attack families, per dataset. Scores are the *on-switch* MAE values.
//!
//! Run: `cargo run -p pegasus-bench --bin fig8 --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::methods::train_autoencoder;
use pegasus_bench::{parse_args, write_report};
use pegasus_datasets::{all_datasets, extract_views, inject_attack, AttackKind, ATTACK_LABEL};
use pegasus_nn::metrics::auc;

fn main() {
    let cfg = parse_args();
    let mut out = String::new();
    out.push_str("Figure 8: AutoEncoder detection AUC per attack (on-switch MAE scores)\n\n");
    out.push_str(&format!("{:<10}", "Attack"));
    let datasets: Vec<_> = all_datasets().iter().map(|s| prepare(s, &cfg)).collect();
    for d in &datasets {
        out.push_str(&format!(" {:>10}", d.name));
    }
    out.push('\n');
    out.push_str(&"-".repeat(10 + 11 * datasets.len()));
    out.push('\n');

    // Train one detector per dataset (benign-only), then sweep attacks.
    let mut detectors = Vec::new();
    for data in &datasets {
        eprintln!("[fig8] training AutoEncoder on {} ...", data.name);
        detectors.push(train_autoencoder(data, &cfg));
    }

    for kind in AttackKind::all() {
        out.push_str(&format!("{:<10}", kind.name()));
        for (data, dp) in datasets.iter().zip(detectors.iter()) {
            let mixed = inject_attack(&data.test_trace, kind, cfg.seed ^ 0x5eed);
            let views = extract_views(&mixed);
            let labels: Vec<bool> = views.seq.y.iter().map(|&l| l == ATTACK_LABEL).collect();
            let scores: Vec<f64> = (0..views.seq.len())
                .map(|r| f64::from(dp.scores(views.seq.x.row(r)).expect("scores")[0]))
                .collect();
            let a = auc(&scores, &labels);
            out.push_str(&format!(" {:>10.4}", a));
        }
        out.push('\n');
        eprintln!("[fig8] {} done", kind.name());
    }
    println!("{out}");
    if let Some(p) = write_report("fig8", &out) {
        eprintln!("[fig8] written to {}", p.display());
    }
}

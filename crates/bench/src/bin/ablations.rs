//! Ablations of the design choices DESIGN.md calls out:
//!
//! * clustering-tree depth vs accuracy and TCAM (fuzzy matching, §4.2);
//! * Basic vs Advanced fusion: lookup count and resources (§4.3);
//! * activation width (fixed-point) vs accuracy (§4.4);
//! * centroid fine-tuning on/off (§4.4);
//! * partition width vs lookups (§4.1).
//!
//! Run: `cargo run -p pegasus-bench --bin ablations --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::{parse_args, write_report};
use pegasus_core::compile::{compile, CompileOptions, CompileTarget};
use pegasus_core::fusion::{fuse_basic, strip_nonlinear};
use pegasus_core::lowering::{lower_sequential, LoweringOptions};
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::{ModelData, TrainSettings};
use pegasus_core::pipeline::Pegasus;
use pegasus_core::runtime::DataplaneModel;
use pegasus_datasets::peerrush;
use pegasus_switch::SwitchConfig;

fn main() {
    let cfg = parse_args();
    let data = prepare(&peerrush(), &cfg);
    let settings = if cfg.quick { TrainSettings::quick() } else { TrainSettings::default() };
    let switch = SwitchConfig::tofino2();
    let mut out = String::new();

    eprintln!("[ablations] training MLP-B once ...");
    let bundle = ModelData::new().with_stat(&data.train.stat);
    let mut model = MlpB::fit(&data.train.stat, Some(&data.val.stat), &settings);
    let float_f1 = model.float_metrics(&data.test.stat).f1;
    out.push_str(&format!("MLP-B float macro-F1: {float_f1:.4}\n\n"));

    // ---- 1. Tree depth sweep. -------------------------------------------
    out.push_str("Ablation 1: clustering depth (fuzzy matching granularity)\n");
    out.push_str(&format!("{:<8} {:>10} {:>12} {:>10}\n", "depth", "F1", "TCAM bits", "entries"));
    for depth in [2usize, 3, 4, 5, 6, 7] {
        let opts = CompileOptions { clustering_depth: depth, ..Default::default() };
        let dp = Pegasus::new(model)
            .options(opts)
            .compile(&bundle)
            .expect("compiles")
            .deploy(&switch)
            .expect("fits");
        let f1 = dp.evaluate(&data.test.stat).expect("evaluates").f1;
        let r = dp.resource_report();
        out.push_str(&format!("{depth:<8} {f1:>10.4} {:>12} {:>10}\n", r.tcam_bits, r.entries));
        eprintln!("[ablations] depth {depth} done");
        model = dp.into_model();
    }
    out.push('\n');

    // ---- 2. Fusion levels. -----------------------------------------------
    out.push_str("Ablation 2: primitive fusion (lookups per inference)\n");
    let spec = model.model.to_spec("MLP-B");
    let unfused = lower_sequential(&spec, &LoweringOptions { segment_width: 4 });
    let mut basic = unfused.clone();
    let stats = fuse_basic(&mut basic);
    let mut linearized = unfused.clone();
    let removed = strip_nonlinear(&mut linearized);
    out.push_str(&format!(
        "  unfused: {} maps; basic fusion: {} maps ({} rewrites); \
         nonlinearities removed (advanced ❷): {} maps ({} dropped)\n",
        unfused.map_count(),
        basic.map_count(),
        stats.rewrites,
        linearized.map_count(),
        removed
    ));
    // Accuracy cost of the linearized model.
    let opts = CompileOptions::default();
    let rows: Vec<Vec<f32>> =
        (0..data.train.stat.len()).map(|r| data.train.stat.x.row(r).to_vec()).collect();
    let pl = compile(&linearized, &rows, &opts, CompileTarget::Classify, "lin").expect("compiles");
    let dpl = DataplaneModel::deploy(pl, &switch).expect("fits");
    let lin_f1 = dpl.evaluate(&data.test.stat).expect("evaluates").f1;
    let pb = compile(&basic, &rows, &opts, CompileTarget::Classify, "bas").expect("compiles");
    let dpb = DataplaneModel::deploy(pb, &switch).expect("fits");
    let bas_f1 = dpb.evaluate(&data.test.stat).expect("evaluates").f1;
    out.push_str(&format!(
        "  accuracy: basic {bas_f1:.4} vs fully-linearized {lin_f1:.4} \
         (the paper's accuracy-for-lookups trade, §4.3)\n\n"
    ));

    // ---- 3. Activation width. ---------------------------------------------
    out.push_str("Ablation 3: fixed-point activation width\n");
    out.push_str(&format!("{:<8} {:>10}\n", "bits", "F1"));
    for bits in [6u8, 8, 10, 12, 16] {
        let opts = CompileOptions { act_bits: bits, ..Default::default() };
        let dp = Pegasus::new(model)
            .options(opts)
            .compile(&bundle)
            .expect("compiles")
            .deploy(&switch)
            .expect("fits");
        out.push_str(&format!(
            "{bits:<8} {:>10.4}\n",
            dp.evaluate(&data.test.stat).expect("evaluates").f1
        ));
        eprintln!("[ablations] act_bits {bits} done");
        model = dp.into_model();
    }
    out.push('\n');

    // ---- 4. Fine-tuning. ---------------------------------------------------
    out.push_str("Ablation 4: centroid fine-tuning (guarded, §4.4)\n");
    for depth in [2usize, 3, 4] {
        let opts = CompileOptions { clustering_depth: depth, ..Default::default() };
        let d0 = Pegasus::new(model)
            .options(opts.clone())
            .compile(&bundle)
            .expect("compiles")
            .deploy(&switch)
            .expect("fits");
        let f_off = d0.evaluate(&data.test.stat).expect("evaluates").f1;
        let d1 = Pegasus::new(d0.into_model())
            .options(CompileOptions { finetune_centroids: true, ..opts })
            .compile(&bundle)
            .expect("compiles")
            .deploy(&switch)
            .expect("fits");
        let f_on = d1.evaluate(&data.test.stat).expect("evaluates").f1;
        out.push_str(&format!("  depth {depth}: off {f_off:.4} -> on {f_on:.4}\n"));
        eprintln!("[ablations] finetune depth {depth} done");
        model = d1.into_model();
    }
    out.push('\n');

    // ---- 5. Partition width. -----------------------------------------------
    out.push_str("Ablation 5: partition width (codes per segment)\n");
    out.push_str(&format!("{:<8} {:>10} {:>10} {:>10}\n", "width", "F1", "lookups", "stages"));
    for width in [2usize, 4, 8] {
        let mut prog = lower_sequential(&spec, &LoweringOptions { segment_width: width });
        fuse_basic(&mut prog);
        // Narrow activations like the MLP-B production path, so the sweep
        // isolates the partition width.
        let opts = CompileOptions { act_bits: 10, ..Default::default() };
        let p = compile(&prog, &rows, &opts, CompileTarget::Classify, "pw").expect("compiles");
        let lookups = p.report.lookups_per_input;
        match DataplaneModel::deploy(p, &switch) {
            Ok(dp) => {
                let r = dp.resource_report();
                out.push_str(&format!(
                    "{width:<8} {:>10.4} {lookups:>10} {:>10}\n",
                    dp.evaluate(&data.test.stat).expect("evaluates").f1,
                    r.stages_used
                ));
            }
            Err(e) => {
                // A real finding: too-narrow partitions multiply parallel
                // per-segment state past the hardware (the §4.2 trade).
                out.push_str(&format!("{width:<8} {:>10} {lookups:>10} ({e})\n", "no fit"));
            }
        }
        eprintln!("[ablations] width {width} done");
    }

    println!("{out}");
    if let Some(p) = write_report("ablations", &out) {
        eprintln!("[ablations] written to {}", p.display());
    }
}

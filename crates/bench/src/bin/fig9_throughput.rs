//! Figure 9d: inference throughput (samples/s) — Pegasus at switch line
//! rate vs full-precision CPU (1 thread) and the multi-core batched stand-in
//! for the paper's GPU rig.
//!
//! Run: `cargo run -p pegasus-bench --bin fig9_throughput --release [-- --quick]`

use pegasus_bench::harness::prepare;
use pegasus_bench::throughput::{cpu_throughput, parallel_throughput, switch_line_rate};
use pegasus_bench::{parse_args, write_report};
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::models::{ModelData, TrainSettings};
use pegasus_core::pipeline::Pegasus;
use pegasus_datasets::peerrush;
use pegasus_nn::init::rng;
use pegasus_nn::layers::{Dense, Embedding, Flatten, Relu};
use pegasus_nn::{ModelSpec, Sequential, Tensor};
use pegasus_switch::SwitchConfig;

/// Full-precision stand-ins with the same compute shape per model family.
fn model_specs(classes: usize) -> Vec<(&'static str, ModelSpec, usize)> {
    let mut r = rng(1);
    let mlp = {
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 16, 20)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 20, 20)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 20, classes)));
        (("MLP-B"), m.to_spec("mlp"), 16)
    };
    let rnn_like = {
        // Dense unroll with the same MAC count as the 8-step RNN.
        let mut m = Sequential::new();
        m.add(Box::new(Embedding::new(&mut r, 256, 4)));
        m.add(Box::new(Flatten::new()));
        m.add(Box::new(Dense::new(&mut r, 64, 64)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 64, classes)));
        (("RNN-B"), m.to_spec("rnn"), 16)
    };
    let cnn_b = {
        let mut m = Sequential::new();
        m.add(Box::new(Embedding::new(&mut r, 256, 6)));
        m.add(Box::new(Flatten::new()));
        m.add(Box::new(Dense::new(&mut r, 96, 48)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 48, classes)));
        (("CNN-B"), m.to_spec("cnnb"), 16)
    };
    let cnn_m = {
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 16, 256)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 256, 256)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 256, classes)));
        (("CNN-M"), m.to_spec("cnnm"), 16)
    };
    let cnn_l = {
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 480, 192)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 192, 192)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 192, classes)));
        (("CNN-L"), m.to_spec("cnnl"), 480)
    };
    vec![mlp, rnn_like, cnn_b, cnn_m, cnn_l]
}

fn main() {
    let cfg = parse_args();
    let switch = SwitchConfig::tofino2();
    // Average packet size from the synthetic PeerRush mix.
    let data = prepare(&peerrush(), &cfg);
    let avg_pkt: f64 = data.test_trace.packets.iter().map(|p| p.wire_len as f64).sum::<f64>()
        / data.test_trace.packets.len().max(1) as f64;
    let line_rate = switch_line_rate(&switch, avg_pkt);

    let reps = if cfg.quick { 20 } else { 100 };
    let mut out = String::new();
    out.push_str("Figure 9d: throughput (samples/s)\n\n");
    out.push_str(&format!(
        "(avg packet {avg_pkt:.0} B; switch line rate {:.3e} pkts/s = samples/s)\n\n",
        line_rate
    ));
    out.push_str(&format!(
        "{:<8} {:>12} {:>12} {:>14} {:>11} {:>11}\n",
        "Model", "CPU", "GPU*", "Pegasus", "vs CPU", "vs GPU*"
    ));
    out.push_str(&"-".repeat(72));
    out.push('\n');

    for (name, spec, in_dim) in model_specs(3) {
        let x = Tensor::full(&[256, in_dim], 1.0);
        let cpu = cpu_throughput(&spec, &x, reps);
        let gpu = parallel_throughput(&spec, &x, reps);
        out.push_str(&format!(
            "{:<8} {:>12.3e} {:>12.3e} {:>14.3e} {:>10.0}x {:>10.0}x\n",
            name,
            cpu,
            gpu,
            line_rate,
            line_rate / cpu,
            line_rate / gpu
        ));
        eprintln!("[fig9d] {name} done");
    }
    out.push_str("\n(GPU* = all-core batched stand-in; see DESIGN.md substitutions)\n");

    // Transparency: the simulator's own processing rate (not a hardware claim).
    let settings = TrainSettings::quick();
    let m = MlpB::fit(&data.train.stat, None, &settings);
    let bundle = ModelData::new().with_stat(&data.train.stat);
    let dp = Pegasus::new(m).compile(&bundle).expect("compiles").deploy(&switch).expect("deploys");
    let n = data.test.stat.len().min(2000);
    let start = std::time::Instant::now();
    for r in 0..n {
        let _ = dp.classify(data.test.stat.x.row(r)).expect("classifies");
    }
    let sim_rate = n as f64 / start.elapsed().as_secs_f64();
    out.push_str(&format!(
        "(simulator executes ~{sim_rate:.0} pkts/s on this host — simulation speed, not hardware)\n"
    ));

    println!("{out}");
    if let Some(p) = write_report("fig9_throughput", &out) {
        eprintln!("[fig9_throughput] written to {}", p.display());
    }
}

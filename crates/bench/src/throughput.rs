//! Throughput measurement for Figure 9d.
//!
//! Three execution targets, as in the paper (§7.5):
//!
//! * **CPU** — single-threaded full-precision inference, features
//!   pre-loaded in memory (the paper's idealized setup);
//! * **"GPU"** — batched inference across all cores with OS threads. This
//!   stands in for the paper's 4× V100 rig: what matters for the figure's
//!   shape is a fixed parallel speedup over CPU, not CUDA itself
//!   (substitution recorded in DESIGN.md);
//! * **Switch** — line rate. PISA runs any program that fits at line rate
//!   regardless of model size (§7.5), so dataplane samples/s is packets/s:
//!   `12.8 Tb/s ÷ (avg packet + overhead)` — workload-independent.
//!
//! The simulator's own packets/s is also reported for transparency; it is a
//! *simulator* number, never a claim about hardware.

use pegasus_nn::{Sequential, Tensor};
use pegasus_switch::SwitchConfig;
use std::sync::Arc;
use std::time::Instant;

/// Samples/s of single-threaded full-precision inference.
pub fn cpu_throughput(model_spec: &pegasus_nn::ModelSpec, x: &Tensor, reps: usize) -> f64 {
    let mut model = Sequential::from_spec(model_spec);
    // Warm up once.
    let _ = model.forward(x, false);
    let start = Instant::now();
    for _ in 0..reps {
        let _ = model.forward(x, false);
    }
    let secs = start.elapsed().as_secs_f64();
    (reps * x.shape()[0]) as f64 / secs
}

/// Samples/s of multi-threaded batched inference over all cores (the GPU
/// stand-in).
pub fn parallel_throughput(model_spec: &pegasus_nn::ModelSpec, x: &Tensor, reps: usize) -> f64 {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let spec = Arc::new(model_spec.clone());
    let rows = x.shape()[0];
    let x = Arc::new(x.clone());
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let spec = Arc::clone(&spec);
            let x = Arc::clone(&x);
            std::thread::spawn(move || {
                let mut model = Sequential::from_spec(&spec);
                for _ in 0..reps {
                    let _ = model.forward(&x, false);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let secs = start.elapsed().as_secs_f64();
    (threads * reps * rows) as f64 / secs
}

/// Line-rate samples/s on the switch: one inference per packet at line rate.
pub fn switch_line_rate(cfg: &SwitchConfig, avg_packet_bytes: f64) -> f64 {
    cfg.line_rate_pps(avg_packet_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_nn::init::rng;
    use pegasus_nn::layers::{Dense, Relu};

    fn spec() -> pegasus_nn::ModelSpec {
        let mut r = rng(1);
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 16, 32)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 32, 3)));
        m.to_spec("t")
    }

    #[test]
    fn cpu_throughput_positive() {
        let x = Tensor::ones(&[64, 16]);
        let t = cpu_throughput(&spec(), &x, 10);
        assert!(t > 1000.0, "throughput {t}");
    }

    #[test]
    fn switch_line_rate_dwarfs_cpu() {
        let cfg = SwitchConfig::tofino2();
        let line = switch_line_rate(&cfg, 700.0);
        // ~2.2 G packets/s at 700 B — orders of magnitude above any CPU.
        assert!(line > 1e9);
    }
}

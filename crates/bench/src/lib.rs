//! # pegasus-bench — the experiment harness
//!
//! One binary per table/figure of the paper's evaluation (§7); see
//! DESIGN.md's experiment index. All binaries accept:
//!
//! * `--quick` — smaller traces and fewer epochs (CI-scale sanity run);
//! * `--seed N` — master seed (default 7);
//! * `--flows N` — flows per class (default 120).
//!
//! Results print as paper-style rows and are also written under
//! `target/experiments/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod methods;
pub mod throughput;

pub use harness::{parse_args, write_report, BenchConfig, Prepared};
pub use methods::{run_method, Method, MethodResult};

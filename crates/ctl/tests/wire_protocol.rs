//! The control socket faces whatever bytes a client throws at it. This
//! suite pins the protocol layer from both sides: every verb round-trips
//! bit-exactly through the framing, and every malformed input — truncated
//! length prefix, oversized frame, garbage bytes, a connection dropped
//! mid-frame — is a typed error on the client side and a survivable
//! non-event for a live daemon (it answers the next well-formed request;
//! it never panics).

use pegasus_ctl::artifact::{ArtifactError, ArtifactFile, ARTIFACT_FORMAT_VERSION, ARTIFACT_MAGIC};
use pegasus_ctl::daemon::{Daemon, DaemonConfig};
use pegasus_ctl::protocol::{
    read_frame, write_frame, ArtifactInfo, DegradedReason, ErrorKind, ErrorReply, FrameError,
    ListReply, Request, Response, TenantInfo, TenantState, WireTenantConfig, WireTenantReport,
    MAX_FRAME_BYTES,
};
use pegasus_net::{RoutePredicate, RouteSummary};
use std::io::Cursor;
use std::io::Write as _;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Framing: clean paths.
// ---------------------------------------------------------------------------

#[test]
fn frames_round_trip() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"hello").expect("write");
    write_frame(&mut wire, b"").expect("write empty");
    write_frame(&mut wire, &[0xAB; 1000]).expect("write big");

    let mut cursor = Cursor::new(wire);
    assert_eq!(read_frame(&mut cursor).expect("frame 1"), Some(b"hello".to_vec()));
    assert_eq!(read_frame(&mut cursor).expect("frame 2"), Some(Vec::new()));
    assert_eq!(read_frame(&mut cursor).expect("frame 3"), Some(vec![0xAB; 1000]));
    // Clean EOF between frames is a normal hangup, not an error.
    assert_eq!(read_frame(&mut cursor).expect("eof"), None);
}

// ---------------------------------------------------------------------------
// Framing: every hostile shape is a typed error.
// ---------------------------------------------------------------------------

#[test]
fn truncated_length_prefix_is_typed() {
    for keep in 1..4usize {
        let mut cursor = Cursor::new(vec![0x05; keep]);
        match read_frame(&mut cursor) {
            Err(FrameError::TruncatedPrefix { got }) => assert_eq!(got, keep),
            other => panic!("{keep}-byte prefix: expected TruncatedPrefix, got {other:?}"),
        }
    }
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    // A hostile length prefix claiming ~4 GiB must be refused outright.
    let mut wire = Vec::new();
    wire.extend_from_slice(&u32::MAX.to_le_bytes());
    wire.extend_from_slice(b"whatever");
    match read_frame(&mut Cursor::new(wire)) {
        Err(FrameError::Oversized { len }) => assert_eq!(len, u32::MAX as usize),
        other => panic!("expected Oversized, got {other:?}"),
    }
    // One past the cap: rejected. At the cap with no body: truncation.
    let over = (MAX_FRAME_BYTES + 1) as u32;
    let mut wire = over.to_le_bytes().to_vec();
    wire.push(0);
    assert!(matches!(
        read_frame(&mut Cursor::new(wire)),
        Err(FrameError::Oversized { len }) if len == MAX_FRAME_BYTES + 1
    ));
}

#[test]
fn connection_dropped_mid_body_is_typed() {
    let mut wire = Vec::new();
    write_frame(&mut wire, &[7u8; 100]).expect("write");
    wire.truncate(4 + 60); // peer died 60 bytes into a 100-byte body
    match read_frame(&mut Cursor::new(wire)) {
        Err(FrameError::TruncatedBody { needed: 100, got: 60 }) => {}
        other => panic!("expected TruncatedBody, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Every verb and reply round-trips bit-exactly.
// ---------------------------------------------------------------------------

fn roundtrip_request(req: &Request) {
    let bytes = serde::to_bytes(req);
    let back: Request = serde::from_bytes(&bytes).expect("request decodes");
    assert_eq!(&back, req);
    // And the re-encoding is bit-identical (canonical form).
    assert_eq!(serde::to_bytes(&back), bytes);
}

#[test]
fn every_request_verb_round_trips() {
    let requests = [
        Request::Ping,
        Request::Load { name: "mlp".into(), artifact: vec![0xDE, 0xAD, 0xBE, 0xEF] },
        Request::Attach {
            tenant: "t0".into(),
            artifact: "mlp".into(),
            config: WireTenantConfig {
                route: RoutePredicate::AllOf(vec![
                    RoutePredicate::DstPortRange { lo: 440, hi: 450 },
                    RoutePredicate::Not(Box::new(RoutePredicate::Protocol(17))),
                ]),
                record_predictions: true,
                flow_capacity: Some(4096),
                idle_timeout_packets: Some(10_000),
            },
        },
        Request::Swap { tenant: "t0".into(), artifact: "mlp-v2".into() },
        Request::Detach { tenant: "t0".into() },
        Request::List,
        Request::Stats,
        Request::IngestPcap { path: "/tmp/golden.pcap".into() },
        Request::Shutdown,
    ];
    for req in &requests {
        roundtrip_request(req);
    }
}

#[test]
fn responses_round_trip() {
    // Response carries live stats types without PartialEq; pin the
    // interesting variants field-by-field through a re-decode.
    let loaded = Response::Loaded(ArtifactInfo {
        name: "mlp".into(),
        version: 3,
        net: "mlp_b".into(),
        kind: "stateless".into(),
        bytes: 123_456,
    });
    match serde::from_bytes::<Response>(&serde::to_bytes(&loaded)).expect("decodes") {
        Response::Loaded(a) => {
            assert_eq!((a.name.as_str(), a.version, a.bytes), ("mlp", 3, 123_456));
        }
        other => panic!("expected Loaded, got {other:?}"),
    }

    let err = Response::Error(ErrorReply {
        kind: ErrorKind::UnknownTenant,
        message: "no tenant named 't9'".into(),
    });
    match serde::from_bytes::<Response>(&serde::to_bytes(&err)).expect("decodes") {
        Response::Error(e) => {
            assert_eq!(e.kind, ErrorKind::UnknownTenant);
            assert_eq!(e.message, "no tenant named 't9'");
        }
        other => panic!("expected Error, got {other:?}"),
    }

    let swapped = Response::Swapped {
        tenant: "vpn".into(),
        epoch: 4,
        state_retained: true,
        apply_micros: 87,
    };
    match serde::from_bytes::<Response>(&serde::to_bytes(&swapped)).expect("decodes") {
        Response::Swapped { tenant, epoch, state_retained, apply_micros } => {
            assert_eq!(
                (tenant.as_str(), epoch, state_retained, apply_micros),
                ("vpn", 4, true, 87)
            );
        }
        other => panic!("expected Swapped, got {other:?}"),
    }

    let listing = Response::Listing(ListReply {
        artifacts: vec![],
        tenants: vec![TenantInfo {
            name: "t0".into(),
            artifact: "mlp".into(),
            state: TenantState::Degraded { reason: DegradedReason::Verify { errors: 2 } },
            route: RouteSummary::of(&RoutePredicate::AnyOf(vec![
                RoutePredicate::DstPort(443),
                RoutePredicate::DstPortRange { lo: 8080, hi: 8081 },
            ])),
        }],
    });
    match serde::from_bytes::<Response>(&serde::to_bytes(&listing)).expect("decodes") {
        Response::Listing(l) => {
            match &l.tenants[0].state {
                TenantState::Degraded { reason: DegradedReason::Verify { errors: 2 } } => {}
                other => panic!("expected degraded/verify state, got {other:?}"),
            }
            assert_eq!(l.tenants[0].route.lut_ports, 3, "compiled route summary survives the wire");
        }
        other => panic!("expected Listing, got {other:?}"),
    }

    let detached = Response::Detached(Box::new(WireTenantReport {
        token: 4,
        name: "t0".into(),
        epoch: 2,
        routed_packets: 338,
        report: None,
        error: Some("flow state overflow".into()),
    }));
    match serde::from_bytes::<Response>(&serde::to_bytes(&detached)).expect("decodes") {
        Response::Detached(r) => {
            assert_eq!((r.token, r.epoch, r.routed_packets), (4, 2, 338));
            assert_eq!(r.error.as_deref(), Some("flow state overflow"));
        }
        other => panic!("expected Detached, got {other:?}"),
    }
}

#[test]
fn garbage_bytes_never_decode_to_a_request() {
    // A deterministic xorshift sweep: none of these blobs may panic the
    // decoder; they either decode (possible for tiny valid prefixes) or
    // fail with a typed error.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    for len in 0..200usize {
        let mut blob = Vec::with_capacity(len);
        for _ in 0..len {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            blob.push(state as u8);
        }
        let _ = serde::from_bytes::<Request>(&blob);
        let _ = serde::from_bytes::<Response>(&blob);
    }
    // A frame with a bad verb tag is a BadTag, specifically.
    match serde::from_bytes::<Request>(&[0xFF]) {
        Err(serde::DecodeError::BadTag { what: "Request", tag: 0xFF }) => {}
        other => panic!("expected BadTag, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Artifact file header (the `PEGA` magic + format version).
// ---------------------------------------------------------------------------

#[test]
fn artifact_header_mismatches_are_typed() {
    match ArtifactFile::from_bytes(b"PEG") {
        Err(ArtifactError::Truncated { len: 3 }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
    match ArtifactFile::from_bytes(b"NOPE\x01\x00\x00\x00rest") {
        Err(ArtifactError::BadMagic { found }) => assert_eq!(&found, b"NOPE"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
    let mut future = Vec::new();
    future.extend_from_slice(&ARTIFACT_MAGIC);
    future.extend_from_slice(&(ARTIFACT_FORMAT_VERSION + 1).to_le_bytes());
    match ArtifactFile::from_bytes(&future) {
        Err(ArtifactError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, ARTIFACT_FORMAT_VERSION + 1);
            assert_eq!(supported, ARTIFACT_FORMAT_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // Right header, garbage body: the serde layer's typed rejection.
    let mut garbage = Vec::new();
    garbage.extend_from_slice(&ARTIFACT_MAGIC);
    garbage.extend_from_slice(&ARTIFACT_FORMAT_VERSION.to_le_bytes());
    garbage.extend_from_slice(&[0xFF; 32]);
    assert!(matches!(ArtifactFile::from_bytes(&garbage), Err(ArtifactError::Decode(_))));
}

// ---------------------------------------------------------------------------
// A live daemon survives all of it.
// ---------------------------------------------------------------------------

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pegasus-wire-{tag}-{}", std::process::id()))
}

fn call(stream: &mut UnixStream, req: &Request) -> Response {
    write_frame(stream, &serde::to_bytes(req)).expect("send");
    let body = read_frame(stream).expect("reply frame").expect("reply present");
    serde::from_bytes(&body).expect("reply decodes")
}

#[test]
fn daemon_survives_hostile_connections() {
    let state_dir = temp_path("state");
    let socket = temp_path("sock");
    let _ = std::fs::remove_dir_all(&state_dir);
    let _ = std::fs::remove_file(&socket);

    let config =
        DaemonConfig { state_dir: state_dir.clone(), socket: socket.clone(), shards: 1, batch: 16 };
    let (daemon, recovery) = Daemon::start(&config).expect("daemon starts");
    assert!(recovery.serving.is_empty() && recovery.degraded.is_empty());
    let worker = std::thread::spawn(move || daemon.run());

    // Wait for the socket to come up.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut stream = loop {
        match UnixStream::connect(&socket) {
            Ok(s) => break s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("daemon never bound {}: {e}", socket.display()),
        }
    };
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");

    // 1. Garbage bytes inside a well-formed frame: typed bad-request
    //    reply, connection stays usable.
    write_frame(&mut stream, &[0xFF, 0x00, 0xAA, 0x55]).expect("send garbage");
    let body = read_frame(&mut stream).expect("reply").expect("present");
    match serde::from_bytes::<Response>(&body).expect("decodes") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }
    assert!(matches!(call(&mut stream, &Request::Ping), Response::Pong));

    // 2. Oversized length prefix: the daemon answers with a typed error
    //    and drops the connection (framing sync is unrecoverable).
    let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
    stream.write_all(&huge).expect("send hostile prefix");
    stream.flush().expect("flush");
    let body = read_frame(&mut stream).expect("reply").expect("present");
    match serde::from_bytes::<Response>(&body).expect("decodes") {
        Response::Error(e) => assert_eq!(e.kind, ErrorKind::BadRequest),
        other => panic!("expected BadRequest error, got {other:?}"),
    }

    // 3. Mid-frame connection drop: promise 100 bytes, send 10, hang up.
    {
        let mut dropper = UnixStream::connect(&socket).expect("connect");
        dropper.write_all(&100u32.to_le_bytes()).expect("prefix");
        dropper.write_all(&[0u8; 10]).expect("partial body");
        // dropper falls out of scope: connection dies mid-frame.
    }

    // 4. Truncated prefix then drop.
    {
        let mut dropper = UnixStream::connect(&socket).expect("connect");
        dropper.write_all(&[0x01, 0x02]).expect("half a prefix");
    }

    // After all of that the daemon still serves a fresh connection.
    let mut fresh = UnixStream::connect(&socket).expect("daemon still accepting");
    fresh.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    assert!(matches!(call(&mut fresh, &Request::Ping), Response::Pong));
    match call(&mut fresh, &Request::List) {
        Response::Listing(l) => {
            assert!(l.artifacts.is_empty());
            assert!(l.tenants.is_empty());
        }
        other => panic!("expected Listing, got {other:?}"),
    }
    assert!(matches!(call(&mut fresh, &Request::Shutdown), Response::ShuttingDown));

    worker.join().expect("daemon thread").expect("clean daemon exit");
    let _ = std::fs::remove_dir_all(&state_dir);
}

//! End-to-end daemon smoke: the full `pegasusd`/`pegasusctl` lifecycle
//! over a real Unix socket, with a real `kill -9` in the middle.
//!
//! The script mirrors an operator session:
//!
//! 1. compile MLP-B (in this test process) into an artifact file;
//! 2. start `pegasusd` on a fresh state dir; `pegasusctl load` +
//!    `attach`;
//! 3. `ingest-pcap` the golden capture; stats must show all 338 frames
//!    routed with zero parse rejections;
//! 4. `load` a retrained artifact and `swap` the tenant onto it;
//! 5. **kill -9** the daemon, restart it on the same state dir, and
//!    check the tenant came back serving the swapped artifact;
//! 6. ingest the capture again and detach: the recovered tenant's
//!    per-flow verdict sequences must be **bit-identical** to a fresh
//!    in-process engine serving the same artifact bytes.

use pegasus_core::{EngineBuilder, TenantConfig};
use pegasus_ctl::artifact::ArtifactFile;
use pegasus_ctl::build::compile_mlp_b;
use pegasus_ctl::client::CtlClient;
use pegasus_ctl::protocol::{Request, Response, TenantState};
use pegasus_net::{FiveTuple, PcapSource, RoutePredicate};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn golden_pcap() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/fixtures/golden.pcap")
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pegasus-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_daemon(state: &Path, socket: &Path) -> Child {
    Command::new(env!("CARGO_BIN_EXE_pegasusd"))
        .arg("--state-dir")
        .arg(state)
        .arg("--socket")
        .arg(socket)
        .arg("--shards")
        .arg("2")
        .stdout(Stdio::null())
        .spawn()
        .expect("pegasusd spawns")
}

fn wait_for_socket(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut client) = CtlClient::connect(socket) {
            if matches!(client.call(&Request::Ping), Ok(Response::Pong)) {
                return;
            }
        }
        assert!(Instant::now() < deadline, "daemon never answered on {}", socket.display());
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs one `pegasusctl` invocation, asserting exit success, and returns
/// its stdout.
fn ctl(socket: &Path, args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_pegasusctl"))
        .arg("--socket")
        .arg(socket)
        .args(args)
        .output()
        .expect("pegasusctl runs");
    let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
    assert!(
        output.status.success(),
        "pegasusctl {args:?} failed\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    stdout
}

/// One short-lived stats call — the daemon serves connections one at a
/// time, so pollers must not hold theirs open.
fn stats_snapshot(socket: &Path) -> pegasus_ctl::protocol::WireEngineStats {
    let mut client = CtlClient::connect(socket).expect("connect for stats");
    match client.call(&Request::Stats).expect("stats call") {
        Response::Stats(stats) => stats,
        other => panic!("expected Stats, got {other:?}"),
    }
}

/// Polls until the named tenant's worker-side packet counter reaches
/// `packets` (stats publish on a cadence and on queue drain).
fn await_tenant_packets(socket: &Path, tenant: &str, packets: u64) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = stats_snapshot(socket);
        if let Some(t) = stats.tenants.iter().find(|t| t.name == tenant) {
            if t.report.packets >= packets {
                assert_eq!(t.report.packets, packets, "tenant saw more packets than ingested");
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "tenant '{tenant}' never reached {packets} packets; stats: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// The reference: a fresh in-process engine serving the same artifact
/// bytes over the same capture, predictions recorded.
fn reference_predictions(artifact_path: &Path) -> HashMap<FiveTuple, Vec<usize>> {
    let bytes = std::fs::read(artifact_path).expect("artifact file reads");
    let file = ArtifactFile::from_bytes(&bytes).expect("artifact file decodes");
    let server = EngineBuilder::new().shards(2).build().expect("engine starts");
    let control = server.control();
    let token = control
        .attach(
            file.deploy().expect("artifact deploys"),
            TenantConfig::new()
                .name("reference")
                .route(RoutePredicate::Any)
                .record_predictions(true),
        )
        .expect("reference attaches");
    let ingress = server.ingress();
    let mut source = PcapSource::open(golden_pcap()).expect("golden capture opens");
    ingress.push_frame_source(&mut source).expect("frames push");
    ingress.flush().expect("flush");
    let report = control.detach(token).expect("reference detaches");
    let stream = report.result.expect("reference tenant healthy");
    server.shutdown().expect("reference engine stops");
    stream.predictions.expect("reference recorded predictions")
}

#[test]
fn full_lifecycle_with_kill_9_recovery() {
    let dir = temp_dir();
    let state = dir.join("state");
    let socket = dir.join("ctl.sock");
    let golden = golden_pcap();
    assert!(golden.exists(), "golden fixture missing: {}", golden.display());

    // Two artifacts from different training runs: the original and the
    // "retrained" swap target. Compiled here (test profile) rather than
    // via `pegasusctl load --net`, which would train inside the
    // lightly-optimized CLI binary.
    let art1_path = dir.join("mlp-seed7.pa");
    let art2_path = dir.join("mlp-seed8.pa");
    std::fs::write(&art1_path, compile_mlp_b(7).expect("seed-7 compiles").to_bytes())
        .expect("write artifact 1");
    std::fs::write(&art2_path, compile_mlp_b(8).expect("seed-8 compiles").to_bytes())
        .expect("write artifact 2");

    // --- First daemon life: load, attach, ingest, stats, swap. ---
    let mut daemon = spawn_daemon(&state, &socket);
    wait_for_socket(&socket);

    let out = ctl(&socket, &["load", "mlp", "--file", art1_path.to_str().expect("utf8 path")]);
    assert!(out.contains("loaded mlp v1"), "unexpected load output: {out}");

    let out = ctl(&socket, &["attach", "t0", "mlp", "--record"]);
    assert!(out.contains("attached t0"), "unexpected attach output: {out}");

    let out = ctl(&socket, &["ingest-pcap", golden.to_str().expect("utf8 path")]);
    assert!(out.contains("ingested 338 frames"), "unexpected ingest output: {out}");

    // All 338 golden frames parse, route to t0, and get processed.
    await_tenant_packets(&socket, "t0", 338);
    let stats = stats_snapshot(&socket);
    assert_eq!(stats.parse_errors.total(), 0, "golden capture must parse cleanly");
    assert_eq!(stats.unrouted, 0, "catch-all tenant must receive every frame");
    let t0 = stats.tenants.iter().find(|t| t.name == "t0").expect("t0 listed");
    assert_eq!(t0.routed_packets, 338);
    assert_eq!(t0.epoch, 0);
    assert!(!t0.failed);
    // The stats verb carries the fleet routing counters: every golden
    // frame hit the compiled catch-all slot, never the residual scan.
    assert_eq!(stats.routing.catchall_hits, 338);
    assert_eq!(stats.routing.residual_hits, 0);
    assert!(stats.routing.rebuilds >= 1, "attach must rebuild the router");
    assert_eq!(stats.artifacts.tenants, 1);
    assert_eq!(stats.artifacts.unique_artifacts, 1);

    let out = ctl(&socket, &["load", "mlp2", "--file", art2_path.to_str().expect("utf8 path")]);
    assert!(out.contains("loaded mlp2 v1"), "unexpected load output: {out}");
    let out = ctl(&socket, &["swap", "t0", "mlp2"]);
    assert!(out.contains("swapped t0 to epoch 1"), "unexpected swap output: {out}");

    // --- kill -9: no drain, no goodbye. ---
    daemon.kill().expect("SIGKILL delivered");
    daemon.wait().expect("daemon reaped");

    // --- Second daemon life: recovery from the registry alone. ---
    let mut daemon = spawn_daemon(&state, &socket);
    wait_for_socket(&socket);

    {
        let mut client = CtlClient::connect(&socket).expect("connect for list");
        match client.call(&Request::List).expect("list call") {
            Response::Listing(listing) => {
                let names: Vec<&str> = listing.artifacts.iter().map(|a| a.name.as_str()).collect();
                assert_eq!(names, ["mlp", "mlp2"], "both artifacts survive the crash");
                assert_eq!(listing.tenants.len(), 1);
                let tenant = &listing.tenants[0];
                assert_eq!(tenant.name, "t0");
                assert_eq!(tenant.artifact, "mlp2", "recovery honors the pre-crash swap");
                assert!(
                    matches!(tenant.state, TenantState::Serving { .. }),
                    "t0 must come back serving, got {:?}",
                    tenant.state
                );
                // The compiled route summary is derived from the recovered
                // registry record: the catch-all predicate survived kill -9.
                assert!(tenant.route.catch_all, "route summary lost in recovery");
                assert_eq!(tenant.route.residual, 0);
            }
            other => panic!("expected Listing, got {other:?}"),
        }
    }

    // The recovered tenant serves again...
    {
        let mut client = CtlClient::connect(&socket).expect("connect for ingest");
        match client
            .call(&Request::IngestPcap { path: golden.display().to_string() })
            .expect("ingest call")
        {
            Response::Ingested { frames } => assert_eq!(frames, 338),
            other => panic!("expected Ingested, got {other:?}"),
        }
    }
    await_tenant_packets(&socket, "t0", 338);

    // ...and its verdicts are bit-identical to a fresh engine serving
    // the same artifact bytes (the swapped-in mlp2).
    let recovered = {
        let mut client = CtlClient::connect(&socket).expect("connect for detach");
        match client.call(&Request::Detach { tenant: "t0".into() }).expect("detach call") {
            Response::Detached(report) => {
                assert!(report.error.is_none(), "recovered tenant failed: {:?}", report.error);
                let stream = report.report.expect("detach returns the final report");
                assert_eq!(stream.packets, 338);
                stream.predictions.expect("record_predictions survived recovery")
            }
            other => panic!("expected Detached, got {other:?}"),
        }
    };
    let reference = reference_predictions(&art2_path);
    assert_eq!(
        recovered, reference,
        "recovered daemon's per-flow verdict sequences diverge from the reference engine"
    );

    let out = ctl(&socket, &["shutdown"]);
    assert!(out.contains("daemon shutting down"), "unexpected shutdown output: {out}");
    let status = daemon.wait().expect("daemon exits");
    assert!(status.success(), "daemon exit status: {status:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

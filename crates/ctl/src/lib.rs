//! The operated face of the serving engine: `pegasusd` + `pegasusctl`.
//!
//! The engine's in-process control plane
//! ([`ControlHandle`](pegasus_core::engine::server::ControlHandle):
//! attach/swap/detach/stats) assumes the operator lives in the same
//! address space as the shards. Real deployments don't work like that —
//! bpfman-style management daemons own the dataplane program for its
//! whole lifetime and expose load/unload/list verbs to short-lived CLI
//! clients. This crate is that daemon for Pegasus:
//!
//! * [`daemon`] — `pegasusd`: owns an
//!   [`EngineServer`](pegasus_core::engine::server::EngineServer), serves
//!   a length-prefixed binary protocol over a Unix domain socket, and
//!   keeps a persistent tenant registry on disk. Killing the daemon —
//!   `kill -9` included — loses nothing: on restart it replays the
//!   registry, re-verifies and re-deploys every artifact, and re-attaches
//!   every tenant (tenants whose artifacts no longer verify come back in
//!   a typed *degraded* state instead of silently vanishing).
//! * [`protocol`] — the wire types and framing shared by daemon and
//!   clients. Frames are a `u32` little-endian length prefix plus a
//!   [`serde`]-encoded body; malformed frames (truncated prefix,
//!   oversized length, garbage bytes, mid-frame hangups) are typed
//!   errors, never panics.
//! * [`artifact`] — the on-disk artifact file format: a 4-byte magic and
//!   a format version stamped over the serialized pipeline + switch
//!   model, so crash recovery rejects stale or foreign state dirs with a
//!   typed error instead of deserializing garbage.
//! * [`registry`] — the state directory: versioned artifact files plus
//!   an atomically-rewritten registry of attached tenants.
//! * [`client`] — a typed client used by `pegasusctl` and the end-to-end
//!   tests.
//! * [`build`] — daemon-independent compile helpers (`pegasusctl load
//!   --net mlp-b` trains and compiles client-side, then ships the
//!   artifact file over the socket like any other `load`).

pub mod artifact;
pub mod build;
pub mod client;
pub mod daemon;
pub mod protocol;
pub mod registry;

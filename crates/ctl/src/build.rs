//! Client-side compile helpers.
//!
//! `pegasusctl load --net mlp-b` trains and compiles **in the CLI
//! process**, then ships the resulting artifact file over the socket
//! exactly like `load --file`. The daemon never trains: it only
//! verifies and deploys artifacts, which keeps the serving loop's
//! failure modes small and lets artifacts be built offline and copied
//! between hosts.

use crate::artifact::{ArtifactFile, ArtifactPayload};
use pegasus_core::compile::CompileOptions;
use pegasus_core::models::mlp_b::MlpB;
use pegasus_core::{ModelData, Pegasus, PegasusError, StreamFeatures, TrainSettings};
use pegasus_datasets::{extract_views, generate_trace, peerrush, GenConfig};
use pegasus_switch::SwitchConfig;

/// Trains MLP-B on the synthetic PeerRush workload and compiles it into
/// an artifact file for [`SwitchConfig::tofino2`]. Deterministic in
/// `seed`: the same seed always produces a bit-identical pipeline, so a
/// daemon restart can be checked against a freshly built reference.
pub fn compile_mlp_b(seed: u64) -> Result<ArtifactFile, PegasusError> {
    let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 12, seed });
    let views = extract_views(&trace);
    let data = ModelData::new().with_stat(&views.stat);
    let compiled = Pegasus::<MlpB>::train(&data, &TrainSettings::quick())?
        .options(CompileOptions { clustering_depth: 5, ..Default::default() })
        .compile(&data)?;
    let pipeline = match compiled.artifact() {
        pegasus_core::Artifact::Single(p) => (**p).clone(),
        pegasus_core::Artifact::Flow(_) => {
            unreachable!("MLP-B compiles to a stateless pipeline")
        }
    };
    Ok(ArtifactFile {
        switch: SwitchConfig::tofino2(),
        payload: ArtifactPayload::Stateless { features: StreamFeatures::Stat, pipeline },
    })
}

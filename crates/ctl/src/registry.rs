//! The daemon's persistent state directory.
//!
//! Layout:
//!
//! ```text
//! <state-dir>/
//!   registry.bin            # magic + version + serde RegistryFile
//!   artifacts/
//!     <name>-v<version>.pa  # artifact files (see `artifact`)
//! ```
//!
//! `registry.bin` is the single source of truth for what should be
//! serving: every `load`, `attach`, `swap`, and `detach` rewrites it
//! **atomically** (write to a temp file in the same directory, then
//! rename over the old one) before the verb is acknowledged, so a crash
//! at any instant leaves either the old registry or the new one — never
//! a torn file. Artifact files themselves are immutable once written;
//! re-loading a name writes a new version rather than overwriting.

use crate::artifact::ArtifactFile;
use pegasus_net::RoutePredicate;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// First four bytes of `registry.bin`.
pub const REGISTRY_MAGIC: [u8; 4] = *b"PGRG";

/// Registry format version.
pub const REGISTRY_FORMAT_VERSION: u32 = 1;

/// A registry load/store failure.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem failure, with the path involved.
    Io {
        /// What was being touched.
        path: PathBuf,
        /// The underlying error.
        error: io::Error,
    },
    /// `registry.bin` is too short for its header.
    Truncated {
        /// Bytes present.
        len: usize,
    },
    /// `registry.bin` does not start with [`REGISTRY_MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The registry header version is unsupported.
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The registry body failed serde decoding.
    Decode(serde::DecodeError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io { path, error } => {
                write!(f, "{}: {error}", path.display())
            }
            RegistryError::Truncated { len } => {
                write!(f, "registry file too short for a header ({len} bytes)")
            }
            RegistryError::BadMagic { found } => {
                write!(f, "registry has bad magic {found:?} (expected {REGISTRY_MAGIC:?})")
            }
            RegistryError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "registry format version {found} unsupported (this build reads {supported})"
                )
            }
            RegistryError::Decode(e) => write!(f, "registry body undecodable: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// One loaded artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactRecord {
    /// Registry name (the `load` name).
    pub name: String,
    /// Version, starting at 1 and bumped on each re-load of the name.
    pub version: u32,
    /// File name under `artifacts/` (not a full path — the state dir may
    /// move between boots).
    pub file: String,
    /// Compiled program name, for display.
    pub net: String,
    /// `"stateless"` or `"flow"`.
    pub kind: String,
    /// Artifact-file size in bytes.
    pub bytes: u64,
}

serde::impl_serde_struct!(ArtifactRecord { name, version, file, net, kind, bytes });

/// One attached tenant — everything needed to re-create its
/// [`TenantConfig`](pegasus_core::TenantConfig) on recovery.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantRecord {
    /// Tenant name.
    pub name: String,
    /// Artifact it serves (registry name; resolved to the current
    /// version at attach/recovery time).
    pub artifact: String,
    /// Routing predicate.
    pub route: RoutePredicate,
    /// Whether per-flow predictions are recorded.
    pub record_predictions: bool,
    /// Host flow-table capacity override.
    pub flow_capacity: Option<usize>,
    /// Idle-timeout override.
    pub idle_timeout_packets: Option<u64>,
}

serde::impl_serde_struct!(TenantRecord {
    name,
    artifact,
    route,
    record_predictions,
    flow_capacity,
    idle_timeout_packets,
});

/// The serialized registry body.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistryFile {
    /// Loaded artifacts, load order.
    pub artifacts: Vec<ArtifactRecord>,
    /// Attached tenants, attach order (recovery replays in this order).
    pub tenants: Vec<TenantRecord>,
}

serde::impl_serde_struct!(RegistryFile { artifacts, tenants });

/// The state directory, opened.
#[derive(Debug)]
pub struct Registry {
    dir: PathBuf,
    state: RegistryFile,
}

fn io_err(path: &Path, error: io::Error) -> RegistryError {
    RegistryError::Io { path: path.to_path_buf(), error }
}

impl Registry {
    /// Opens (or initializes) a state directory. A missing directory or
    /// missing `registry.bin` means a fresh, empty registry; a present
    /// but malformed `registry.bin` is a typed error — the daemon
    /// refuses to serve over state it cannot read.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, RegistryError> {
        let dir = dir.into();
        let artifacts = dir.join("artifacts");
        fs::create_dir_all(&artifacts).map_err(|e| io_err(&artifacts, e))?;
        let path = dir.join("registry.bin");
        let state = match fs::read(&path) {
            Ok(bytes) => Self::decode(&bytes)?,
            Err(e) if e.kind() == io::ErrorKind::NotFound => RegistryFile::default(),
            Err(e) => return Err(io_err(&path, e)),
        };
        Ok(Registry { dir, state })
    }

    fn decode(bytes: &[u8]) -> Result<RegistryFile, RegistryError> {
        if bytes.len() < 8 {
            return Err(RegistryError::Truncated { len: bytes.len() });
        }
        let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if magic != REGISTRY_MAGIC {
            return Err(RegistryError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != REGISTRY_FORMAT_VERSION {
            return Err(RegistryError::UnsupportedVersion {
                found: version,
                supported: REGISTRY_FORMAT_VERSION,
            });
        }
        serde::from_bytes(&bytes[8..]).map_err(RegistryError::Decode)
    }

    /// The state directory root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current registry contents.
    pub fn state(&self) -> &RegistryFile {
        &self.state
    }

    /// Full path of an artifact record's file.
    pub fn artifact_path(&self, record: &ArtifactRecord) -> PathBuf {
        self.dir.join("artifacts").join(&record.file)
    }

    /// Looks up an artifact record by registry name.
    pub fn find_artifact(&self, name: &str) -> Option<&ArtifactRecord> {
        self.state.artifacts.iter().find(|a| a.name == name)
    }

    /// Persists the registry atomically: temp file + rename.
    fn save(&self) -> Result<(), RegistryError> {
        let body = serde::to_bytes(&self.state);
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&REGISTRY_MAGIC);
        out.extend_from_slice(&REGISTRY_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        let tmp = self.dir.join("registry.bin.tmp");
        fs::write(&tmp, &out).map_err(|e| io_err(&tmp, e))?;
        let path = self.dir.join("registry.bin");
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))
    }

    /// Stores an artifact file under `name`, bumping the version if the
    /// name already exists, and persists the registry. The raw bytes are
    /// written as-is (header included) so recovery re-runs the exact
    /// format checks a fresh `load` would.
    pub fn store_artifact(
        &mut self,
        name: &str,
        bytes: &[u8],
        parsed: &ArtifactFile,
    ) -> Result<ArtifactRecord, RegistryError> {
        let version = self.find_artifact(name).map_or(1, |a| a.version + 1);
        let file = format!("{name}-v{version}.pa");
        let path = self.dir.join("artifacts").join(&file);
        fs::write(&path, bytes).map_err(|e| io_err(&path, e))?;
        let record = ArtifactRecord {
            name: name.to_string(),
            version,
            file,
            net: parsed.program_name().to_string(),
            kind: parsed.kind().to_string(),
            bytes: bytes.len() as u64,
        };
        match self.state.artifacts.iter_mut().find(|a| a.name == name) {
            Some(slot) => *slot = record.clone(),
            None => self.state.artifacts.push(record.clone()),
        }
        self.save()?;
        Ok(record)
    }

    /// Records a tenant attach and persists.
    pub fn record_attach(&mut self, record: TenantRecord) -> Result<(), RegistryError> {
        self.state.tenants.retain(|t| t.name != record.name);
        self.state.tenants.push(record);
        self.save()
    }

    /// Repoints a tenant at another artifact (swap) and persists.
    pub fn record_swap(&mut self, tenant: &str, artifact: &str) -> Result<(), RegistryError> {
        if let Some(t) = self.state.tenants.iter_mut().find(|t| t.name == tenant) {
            t.artifact = artifact.to_string();
        }
        self.save()
    }

    /// Removes a tenant (detach) and persists.
    pub fn record_detach(&mut self, tenant: &str) -> Result<(), RegistryError> {
        self.state.tenants.retain(|t| t.name != tenant);
        self.save()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pegasus-registry-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_directory_starts_empty_and_round_trips() {
        let dir = tmpdir("fresh");
        let mut reg = Registry::open(&dir).expect("open fresh");
        assert!(reg.state().artifacts.is_empty());
        assert!(reg.state().tenants.is_empty());

        reg.record_attach(TenantRecord {
            name: "t0".into(),
            artifact: "mlp".into(),
            route: RoutePredicate::DstPort(443),
            record_predictions: true,
            flow_capacity: Some(1024),
            idle_timeout_packets: None,
        })
        .expect("attach persists");

        let reopened = Registry::open(&dir).expect("reopen");
        assert_eq!(reopened.state().tenants.len(), 1);
        assert_eq!(reopened.state().tenants[0].name, "t0");
        assert_eq!(reopened.state().tenants[0].route, RoutePredicate::DstPort(443));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_registry_is_a_typed_error() {
        let dir = tmpdir("corrupt");
        fs::create_dir_all(&dir).expect("mkdir");
        fs::write(dir.join("registry.bin"), b"not a registry at all").expect("write junk");
        match Registry::open(&dir) {
            Err(RegistryError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
        fs::write(dir.join("registry.bin"), b"PG").expect("write short");
        match Registry::open(&dir) {
            Err(RegistryError::Truncated { len: 2 }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
        let mut versioned = Vec::new();
        versioned.extend_from_slice(&REGISTRY_MAGIC);
        versioned.extend_from_slice(&99u32.to_le_bytes());
        fs::write(dir.join("registry.bin"), &versioned).expect("write future version");
        match Registry::open(&dir) {
            Err(RegistryError::UnsupportedVersion { found: 99, .. }) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn detach_then_reattach_keeps_latest_config() {
        let dir = tmpdir("reattach");
        let mut reg = Registry::open(&dir).expect("open");
        let mk = |cap: Option<usize>| TenantRecord {
            name: "t".into(),
            artifact: "a".into(),
            route: RoutePredicate::Any,
            record_predictions: false,
            flow_capacity: cap,
            idle_timeout_packets: None,
        };
        reg.record_attach(mk(Some(64))).expect("attach");
        reg.record_attach(mk(Some(128))).expect("re-attach replaces");
        assert_eq!(reg.state().tenants.len(), 1);
        assert_eq!(reg.state().tenants[0].flow_capacity, Some(128));
        reg.record_detach("t").expect("detach");
        assert!(reg.state().tenants.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Wire protocol between `pegasusctl` and `pegasusd`.
//!
//! A connection carries a sequence of frames in each direction; each
//! frame is a `u32` little-endian byte length followed by exactly that
//! many body bytes, the body being one [`serde`]-encoded [`Request`] or
//! [`Response`]. One request frame yields exactly one response frame;
//! clients may pipeline several requests per connection.
//!
//! The framing layer is deliberately paranoid — it faces whatever bytes
//! land on the socket:
//!
//! * a length prefix larger than [`MAX_FRAME_BYTES`] is rejected
//!   **before** any allocation ([`FrameError::Oversized`]);
//! * a connection that ends inside the prefix or the body is a typed
//!   truncation error, not a hang or a panic;
//! * garbage body bytes fail [`serde`] decoding with a typed
//!   [`DecodeError`](serde::DecodeError), which the daemon answers with
//!   an [`ErrorReply`] (kind [`ErrorKind::BadRequest`]) when it can
//!   still write, or by closing the connection.
//!
//! `tests/wire_protocol.rs` fuzzes exactly these paths, mirroring the
//! repo's `tests/wire_parse.rs` style for packet parsing.

use pegasus_net::{RoutePredicate, RouteSummary};
use std::fmt;
use std::io::{self, Read, Write};

use pegasus_core::engine::stats::{ArtifactCounters, ParseErrorCounters, RoutingCounters};
use pegasus_core::StreamReport;

/// Hard ceiling on one frame's body size (64 MiB). Compiled artifact
/// files are a few MiB; anything near the cap is hostile or corrupt.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Why a frame could not be read off the socket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed mid-way through the 4-byte length prefix.
    TruncatedPrefix {
        /// Prefix bytes that did arrive.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The claimed body length.
        len: usize,
    },
    /// The peer closed before the promised body arrived.
    TruncatedBody {
        /// Body bytes promised by the prefix.
        needed: usize,
        /// Body bytes that did arrive.
        got: usize,
    },
    /// An I/O error underneath the framing.
    Io(String),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TruncatedPrefix { got } => {
                write!(f, "connection closed inside the length prefix ({got}/4 bytes)")
            }
            FrameError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap")
            }
            FrameError::TruncatedBody { needed, got } => {
                write!(f, "connection closed inside the frame body ({got}/{needed} bytes)")
            }
            FrameError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one length-prefixed frame.
pub fn write_frame(stream: &mut impl Write, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame body too large"))?;
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` is a clean close (the
/// peer hung up **between** frames); every other shortfall is typed.
pub fn read_frame(stream: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match stream.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(FrameError::TruncatedPrefix { got }),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::Oversized { len });
    }
    let mut body = vec![0u8; len];
    let mut have = 0;
    while have < len {
        match stream.read(&mut body[have..]) {
            Ok(0) => return Err(FrameError::TruncatedBody { needed: len, got: have }),
            Ok(n) => have += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e.to_string())),
        }
    }
    Ok(Some(body))
}

/// Tenant configuration as it travels on the wire; the daemon lowers it
/// onto [`TenantConfig`](pegasus_core::TenantConfig) at attach time.
/// `None` options keep the engine's defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct WireTenantConfig {
    /// Packets matching this predicate route to the tenant.
    pub route: RoutePredicate,
    /// Record every per-flow classification (returned on detach).
    pub record_predictions: bool,
    /// Host flow-table slots per shard.
    pub flow_capacity: Option<usize>,
    /// Idle-timeout aging, in table packets.
    pub idle_timeout_packets: Option<u64>,
}

impl Default for WireTenantConfig {
    fn default() -> Self {
        WireTenantConfig {
            route: RoutePredicate::Any,
            record_predictions: false,
            flow_capacity: None,
            idle_timeout_packets: None,
        }
    }
}

serde::impl_serde_struct!(WireTenantConfig {
    route,
    record_predictions,
    flow_capacity,
    idle_timeout_packets,
});

/// One verb, client → daemon.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store an artifact file (full bytes, header included) under `name`.
    /// The daemon re-verifies it against the embedded switch model before
    /// accepting; versions bump on re-load of the same name.
    Load {
        /// Registry name for the artifact.
        name: String,
        /// The artifact-file bytes (`PEGA` header + payload).
        artifact: Vec<u8>,
    },
    /// Attach a loaded artifact as a serving tenant.
    Attach {
        /// Tenant name (unique among live tenants).
        tenant: String,
        /// Name of a previously loaded artifact.
        artifact: String,
        /// Routing + flow-table configuration.
        config: WireTenantConfig,
    },
    /// Hot-swap a serving tenant onto another loaded artifact.
    Swap {
        /// Tenant name.
        tenant: String,
        /// Name of the replacement artifact.
        artifact: String,
    },
    /// Detach a tenant, returning its terminal report.
    Detach {
        /// Tenant name.
        tenant: String,
    },
    /// Enumerate loaded artifacts and tenants (serving and degraded).
    List,
    /// Snapshot live engine statistics.
    Stats,
    /// Replay a pcap file (daemon-side path) through the raw-frame
    /// ingress: parse, route, classify.
    IngestPcap {
        /// Path to the capture, resolved by the daemon.
        path: String,
    },
    /// Drain and stop the daemon.
    Shutdown,
}

impl serde::Serialize for Request {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            Request::Ping => w.write_u8(0),
            Request::Load { name, artifact } => {
                w.write_u8(1);
                name.serialize(w);
                artifact.serialize(w);
            }
            Request::Attach { tenant, artifact, config } => {
                w.write_u8(2);
                tenant.serialize(w);
                artifact.serialize(w);
                config.serialize(w);
            }
            Request::Swap { tenant, artifact } => {
                w.write_u8(3);
                tenant.serialize(w);
                artifact.serialize(w);
            }
            Request::Detach { tenant } => {
                w.write_u8(4);
                tenant.serialize(w);
            }
            Request::List => w.write_u8(5),
            Request::Stats => w.write_u8(6),
            Request::IngestPcap { path } => {
                w.write_u8(7);
                path.serialize(w);
            }
            Request::Shutdown => w.write_u8(8),
        }
    }
}

impl<'de> serde::Deserialize<'de> for Request {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("Request")? {
            0 => Request::Ping,
            1 => Request::Load { name: D::deserialize(r)?, artifact: D::deserialize(r)? },
            2 => Request::Attach {
                tenant: D::deserialize(r)?,
                artifact: D::deserialize(r)?,
                config: D::deserialize(r)?,
            },
            3 => Request::Swap { tenant: D::deserialize(r)?, artifact: D::deserialize(r)? },
            4 => Request::Detach { tenant: D::deserialize(r)? },
            5 => Request::List,
            6 => Request::Stats,
            7 => Request::IngestPcap { path: D::deserialize(r)? },
            8 => Request::Shutdown,
            tag => return Err(serde::DecodeError::BadTag { what: "Request", tag }),
        })
    }
}

/// Classifies an [`ErrorReply`] so clients can react without parsing the
/// message text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// The request could not be decoded or is semantically invalid.
    BadRequest,
    /// No live tenant has that name (or the engine token went stale —
    /// both surface as [`PegasusError::UnknownTenant`] internally).
    ///
    /// [`PegasusError::UnknownTenant`]: pegasus_core::PegasusError::UnknownTenant
    UnknownTenant,
    /// No loaded artifact has that name.
    UnknownArtifact,
    /// A live tenant with that name already exists.
    DuplicateTenant,
    /// The artifact file's magic or format version is wrong, or its
    /// payload does not decode.
    ArtifactFormat,
    /// The artifact decoded but failed static verification.
    Verify,
    /// The tenant's flow-state budget exceeds the switch SRAM model.
    StateBudget,
    /// The artifact is score-only; the engine serves classifiers.
    NotAClassifier,
    /// The tenant is attached but degraded (recovery failed); the verb
    /// needs a serving tenant.
    Degraded,
    /// Any other engine-side failure.
    Engine,
    /// A filesystem error (state dir, artifact file, pcap path).
    Io,
}

impl ErrorKind {
    const ALL: [ErrorKind; 11] = [
        ErrorKind::BadRequest,
        ErrorKind::UnknownTenant,
        ErrorKind::UnknownArtifact,
        ErrorKind::DuplicateTenant,
        ErrorKind::ArtifactFormat,
        ErrorKind::Verify,
        ErrorKind::StateBudget,
        ErrorKind::NotAClassifier,
        ErrorKind::Degraded,
        ErrorKind::Engine,
        ErrorKind::Io,
    ];
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::UnknownTenant => "unknown-tenant",
            ErrorKind::UnknownArtifact => "unknown-artifact",
            ErrorKind::DuplicateTenant => "duplicate-tenant",
            ErrorKind::ArtifactFormat => "artifact-format",
            ErrorKind::Verify => "verify",
            ErrorKind::StateBudget => "state-budget",
            ErrorKind::NotAClassifier => "not-a-classifier",
            ErrorKind::Degraded => "degraded",
            ErrorKind::Engine => "engine",
            ErrorKind::Io => "io",
        };
        f.write_str(s)
    }
}

impl serde::Serialize for ErrorKind {
    fn serialize(&self, w: &mut serde::Writer) {
        let tag = ErrorKind::ALL.iter().position(|k| k == self).unwrap_or(0) as u8;
        w.write_u8(tag);
    }
}

impl<'de> serde::Deserialize<'de> for ErrorKind {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        let tag = r.read_u8("ErrorKind")?;
        ErrorKind::ALL
            .get(tag as usize)
            .copied()
            .ok_or(serde::DecodeError::BadTag { what: "ErrorKind", tag })
    }
}

/// A typed error reply: every failed verb answers with one of these
/// rather than closing the connection or inventing per-verb shapes.
#[derive(Clone, Debug, PartialEq)]
pub struct ErrorReply {
    /// Machine-readable classification.
    pub kind: ErrorKind,
    /// Human-readable detail.
    pub message: String,
}

serde::impl_serde_struct!(ErrorReply { kind, message });

impl fmt::Display for ErrorReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

/// A loaded artifact as the registry sees it.
#[derive(Clone, Debug, PartialEq)]
pub struct ArtifactInfo {
    /// Registry name.
    pub name: String,
    /// Version, bumped on each re-load of the name.
    pub version: u32,
    /// The compiled program's name (e.g. `mlp_b`).
    pub net: String,
    /// `"stateless"` or `"flow"`.
    pub kind: String,
    /// Artifact-file size in bytes.
    pub bytes: u64,
}

serde::impl_serde_struct!(ArtifactInfo { name, version, net, kind, bytes });

/// Why a recovered tenant is degraded instead of serving. Typed so
/// operators (and tests) can distinguish a missing file from a
/// verification failure without string matching.
#[derive(Clone, Debug, PartialEq)]
pub enum DegradedReason {
    /// The registry references an artifact name that no longer exists.
    MissingArtifact {
        /// The dangling artifact name.
        artifact: String,
    },
    /// The artifact file is unreadable.
    Io {
        /// Filesystem detail.
        message: String,
    },
    /// The artifact file has a bad magic/version or an undecodable body.
    Format {
        /// Format detail.
        message: String,
    },
    /// The artifact decoded but static verification found errors.
    Verify {
        /// Number of error-severity diagnostics.
        errors: u64,
    },
    /// The artifact verified but deploy or attach failed.
    Attach {
        /// Engine detail.
        message: String,
    },
}

impl fmt::Display for DegradedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradedReason::MissingArtifact { artifact } => {
                write!(f, "artifact '{artifact}' is gone from the registry")
            }
            DegradedReason::Io { message } => write!(f, "artifact file unreadable: {message}"),
            DegradedReason::Format { message } => write!(f, "artifact file rejected: {message}"),
            DegradedReason::Verify { errors } => {
                write!(f, "artifact failed re-verification with {errors} error(s)")
            }
            DegradedReason::Attach { message } => write!(f, "re-attach failed: {message}"),
        }
    }
}

impl serde::Serialize for DegradedReason {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            DegradedReason::MissingArtifact { artifact } => {
                w.write_u8(0);
                artifact.serialize(w);
            }
            DegradedReason::Io { message } => {
                w.write_u8(1);
                message.serialize(w);
            }
            DegradedReason::Format { message } => {
                w.write_u8(2);
                message.serialize(w);
            }
            DegradedReason::Verify { errors } => {
                w.write_u8(3);
                errors.serialize(w);
            }
            DegradedReason::Attach { message } => {
                w.write_u8(4);
                message.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for DegradedReason {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("DegradedReason")? {
            0 => DegradedReason::MissingArtifact { artifact: D::deserialize(r)? },
            1 => DegradedReason::Io { message: D::deserialize(r)? },
            2 => DegradedReason::Format { message: D::deserialize(r)? },
            3 => DegradedReason::Verify { errors: D::deserialize(r)? },
            4 => DegradedReason::Attach { message: D::deserialize(r)? },
            tag => return Err(serde::DecodeError::BadTag { what: "DegradedReason", tag }),
        })
    }
}

/// A tenant's lifecycle state as `list` reports it.
#[derive(Clone, Debug, PartialEq)]
pub enum TenantState {
    /// Attached and routing packets.
    Serving {
        /// Engine tenant id (valid for this daemon process's lifetime).
        token: u32,
        /// Artifact epoch (swaps applied).
        epoch: u64,
    },
    /// Registered on disk but not serving: recovery rejected its
    /// artifact. Carries the typed reason.
    Degraded {
        /// Why recovery refused to serve it.
        reason: DegradedReason,
    },
}

impl serde::Serialize for TenantState {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            TenantState::Serving { token, epoch } => {
                w.write_u8(0);
                token.serialize(w);
                epoch.serialize(w);
            }
            TenantState::Degraded { reason } => {
                w.write_u8(1);
                reason.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for TenantState {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("TenantState")? {
            0 => TenantState::Serving { token: D::deserialize(r)?, epoch: D::deserialize(r)? },
            1 => TenantState::Degraded { reason: D::deserialize(r)? },
            tag => return Err(serde::DecodeError::BadTag { what: "TenantState", tag }),
        })
    }
}

/// One tenant in a `list` reply.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantInfo {
    /// Tenant name.
    pub name: String,
    /// The artifact it serves (registry name).
    pub artifact: String,
    /// Serving or degraded.
    pub state: TenantState,
    /// How the tenant's route predicate compiles into the routing plane
    /// (LUT ports / subnet tries / residual scan list).
    pub route: RouteSummary,
}

serde::impl_serde_struct!(TenantInfo { name, artifact, state, route });

/// The `list` reply.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ListReply {
    /// Loaded artifacts.
    pub artifacts: Vec<ArtifactInfo>,
    /// Registered tenants, attach order.
    pub tenants: Vec<TenantInfo>,
}

serde::impl_serde_struct!(ListReply { artifacts, tenants });

/// One tenant's live statistics on the wire (the serde mirror of
/// [`TenantStats`](pegasus_core::TenantStats), with the opaque token
/// flattened to its id).
#[derive(Clone, Debug)]
pub struct WireTenantStats {
    /// Engine tenant id.
    pub token: u32,
    /// Tenant name.
    pub name: String,
    /// Artifact epoch.
    pub epoch: u64,
    /// Packets routed to it so far.
    pub routed_packets: u64,
    /// True once any shard hit a fatal per-packet error.
    pub failed: bool,
    /// Merged per-shard counters.
    pub report: StreamReport,
    /// Why the artifact runs on the simulator fallback, if it does.
    pub flatten_skip: Option<String>,
}

serde::impl_serde_struct!(WireTenantStats {
    token,
    name,
    epoch,
    routed_packets,
    failed,
    report,
    flatten_skip,
});

/// The `stats` reply: the serde mirror of
/// [`EngineStats`](pegasus_core::EngineStats).
#[derive(Clone, Debug)]
pub struct WireEngineStats {
    /// Per-tenant snapshots, attach order.
    pub tenants: Vec<WireTenantStats>,
    /// Packets no tenant matched.
    pub unrouted: u64,
    /// Raw frames rejected at parse time, by kind.
    pub parse_errors: ParseErrorCounters,
    /// Fleet-wide compiled-routing counters (LUT/trie/residual hits,
    /// rebuilds).
    pub routing: RoutingCounters,
    /// Compiled-artifact dedup accounting across the fleet.
    pub artifacts: ArtifactCounters,
}

serde::impl_serde_struct!(WireEngineStats { tenants, unrouted, parse_errors, routing, artifacts });

/// A tenant's terminal report on the wire (the serde mirror of
/// [`TenantReport`](pegasus_core::engine::server::TenantReport), with the
/// result flattened into report/error halves).
#[derive(Clone, Debug)]
pub struct WireTenantReport {
    /// Engine tenant id (0 for tenants that never served this run).
    pub token: u32,
    /// Tenant name.
    pub name: String,
    /// Final artifact epoch.
    pub epoch: u64,
    /// Packets routed over its lifetime.
    pub routed_packets: u64,
    /// The final merged report — including recorded predictions when the
    /// tenant was attached with `record_predictions`.
    pub report: Option<StreamReport>,
    /// The first fatal per-packet error, if the tenant failed.
    pub error: Option<String>,
}

serde::impl_serde_struct!(WireTenantReport { token, name, epoch, routed_packets, report, error });

/// One verb's reply, daemon → client.
#[derive(Clone, Debug)]
pub enum Response {
    /// Liveness ack.
    Pong,
    /// The verb failed; typed reason inside.
    Error(ErrorReply),
    /// `load` accepted the artifact.
    Loaded(ArtifactInfo),
    /// `attach` registered the tenant.
    Attached {
        /// Tenant name.
        tenant: String,
        /// Engine tenant id.
        token: u32,
        /// Starting epoch (0).
        epoch: u64,
    },
    /// `swap` published the new artifact (shards adopt it at their next
    /// packet boundary — epoch/RCU, no drain).
    Swapped {
        /// Tenant name.
        tenant: String,
        /// Published epoch after the swap.
        epoch: u64,
        /// Whether per-flow state carries into the new artifact
        /// (migrated adopt-on-first-touch).
        state_retained: bool,
        /// Dataplane-visible apply latency in microseconds: the
        /// dispatcher-lock commit window (budget gates + epoch/RCU
        /// publication; no queue drain — verification runs outside it).
        apply_micros: u64,
    },
    /// `detach` drained the tenant.
    Detached(Box<WireTenantReport>),
    /// `list`.
    Listing(ListReply),
    /// `stats`.
    Stats(WireEngineStats),
    /// `ingest-pcap` pushed the capture.
    Ingested {
        /// Frames consumed from the file (parse rejects included — they
        /// land in `stats().parse_errors`).
        frames: u64,
    },
    /// `shutdown` acknowledged; the daemon exits after this reply.
    ShuttingDown,
}

impl serde::Serialize for Response {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            Response::Pong => w.write_u8(0),
            Response::Error(e) => {
                w.write_u8(1);
                e.serialize(w);
            }
            Response::Loaded(info) => {
                w.write_u8(2);
                info.serialize(w);
            }
            Response::Attached { tenant, token, epoch } => {
                w.write_u8(3);
                tenant.serialize(w);
                token.serialize(w);
                epoch.serialize(w);
            }
            Response::Swapped { tenant, epoch, state_retained, apply_micros } => {
                w.write_u8(4);
                tenant.serialize(w);
                epoch.serialize(w);
                state_retained.serialize(w);
                apply_micros.serialize(w);
            }
            Response::Detached(report) => {
                w.write_u8(5);
                report.serialize(w);
            }
            Response::Listing(listing) => {
                w.write_u8(6);
                listing.serialize(w);
            }
            Response::Stats(stats) => {
                w.write_u8(7);
                stats.serialize(w);
            }
            Response::Ingested { frames } => {
                w.write_u8(8);
                frames.serialize(w);
            }
            Response::ShuttingDown => w.write_u8(9),
        }
    }
}

impl<'de> serde::Deserialize<'de> for Response {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("Response")? {
            0 => Response::Pong,
            1 => Response::Error(D::deserialize(r)?),
            2 => Response::Loaded(D::deserialize(r)?),
            3 => Response::Attached {
                tenant: D::deserialize(r)?,
                token: D::deserialize(r)?,
                epoch: D::deserialize(r)?,
            },
            4 => Response::Swapped {
                tenant: D::deserialize(r)?,
                epoch: D::deserialize(r)?,
                state_retained: D::deserialize(r)?,
                apply_micros: D::deserialize(r)?,
            },
            5 => Response::Detached(D::deserialize(r)?),
            6 => Response::Listing(D::deserialize(r)?),
            7 => Response::Stats(D::deserialize(r)?),
            8 => Response::Ingested { frames: D::deserialize(r)? },
            9 => Response::ShuttingDown,
            tag => return Err(serde::DecodeError::BadTag { what: "Response", tag }),
        })
    }
}

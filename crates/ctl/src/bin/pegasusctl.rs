//! CLI client for `pegasusd`.
//!
//! ```text
//! pegasusctl --socket <path> <verb> [args]
//!
//! verbs:
//!   ping
//!   load <name> (--file <artifact.pa> | --net mlp-b [--seed N])
//!   attach <tenant> <artifact> [--dst-port N] [--src-port N] [--proto N]
//!          [--record] [--flow-capacity N] [--idle-timeout N]
//!   swap <tenant> <artifact>
//!   detach <tenant>
//!   list
//!   stats
//!   ingest-pcap <path>
//!   shutdown
//! ```
//!
//! Exit status: 0 on success, 1 when the daemon answered with a typed
//! error, 2 on usage errors, 3 when the daemon is unreachable.

use pegasus_ctl::build::compile_mlp_b;
use pegasus_ctl::client::{expect_ok, CtlClient};
use pegasus_ctl::protocol::{Request, Response, TenantState, WireTenantConfig};
use pegasus_net::RoutePredicate;
use std::process::ExitCode;

const USAGE: &str = "usage: pegasusctl [--socket <path>] <ping|load|attach|swap|detach|list|stats|ingest-pcap|shutdown> [args]";

struct Args {
    socket: String,
    verb: String,
    rest: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut socket = "pegasusd.sock".to_string();
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("--socket") {
        argv.next();
        socket = argv.next().ok_or_else(|| format!("--socket needs a value\n{USAGE}"))?;
    }
    let verb = argv.next().ok_or_else(|| USAGE.to_string())?;
    Ok(Args { socket, verb, rest: argv.collect() })
}

/// Pulls `--flag value` out of `rest`, leaving positionals in place.
fn take_flag(rest: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(pos) = rest.iter().position(|a| a == flag) {
        if pos + 1 >= rest.len() {
            return Err(format!("{flag} needs a value"));
        }
        let value = rest.remove(pos + 1);
        rest.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

/// Pulls a bare `--flag` out of `rest`.
fn take_switch(rest: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = rest.iter().position(|a| a == flag) {
        rest.remove(pos);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

fn build_request(verb: &str, mut rest: Vec<String>) -> Result<Request, String> {
    let request = match verb {
        "ping" => Request::Ping,
        "load" => {
            let file = take_flag(&mut rest, "--file")?;
            let net = take_flag(&mut rest, "--net")?;
            let seed = take_flag(&mut rest, "--seed")?;
            let [name] = positionals::<1>("load <name>", rest)?;
            let artifact = match (file, net) {
                (Some(path), None) => std::fs::read(&path).map_err(|e| format!("{path}: {e}"))?,
                (None, Some(net)) if net == "mlp-b" => {
                    let seed = match seed {
                        Some(s) => parse_num("--seed", &s)?,
                        None => 7,
                    };
                    eprintln!("pegasusctl: training + compiling mlp-b (seed {seed})...");
                    compile_mlp_b(seed).map_err(|e| format!("compile: {e}"))?.to_bytes()
                }
                (None, Some(net)) => return Err(format!("unknown --net '{net}' (try mlp-b)")),
                _ => return Err("load needs exactly one of --file <path> or --net mlp-b".into()),
            };
            Request::Load { name, artifact }
        }
        "attach" => {
            let mut route = RoutePredicate::Any;
            let mut clauses: Vec<RoutePredicate> = Vec::new();
            if let Some(v) = take_flag(&mut rest, "--dst-port")? {
                clauses.push(RoutePredicate::DstPort(parse_num("--dst-port", &v)?));
            }
            if let Some(v) = take_flag(&mut rest, "--src-port")? {
                clauses.push(RoutePredicate::SrcPort(parse_num("--src-port", &v)?));
            }
            if let Some(v) = take_flag(&mut rest, "--proto")? {
                clauses.push(RoutePredicate::Protocol(parse_num("--proto", &v)?));
            }
            match clauses.len() {
                0 => {}
                1 => route = clauses.pop().expect("one clause"),
                _ => route = RoutePredicate::AllOf(clauses),
            }
            let record = take_switch(&mut rest, "--record");
            let flow_capacity = take_flag(&mut rest, "--flow-capacity")?
                .map(|v| parse_num("--flow-capacity", &v))
                .transpose()?;
            let idle_timeout_packets = take_flag(&mut rest, "--idle-timeout")?
                .map(|v| parse_num("--idle-timeout", &v))
                .transpose()?;
            let [tenant, artifact] = positionals::<2>("attach <tenant> <artifact>", rest)?;
            Request::Attach {
                tenant,
                artifact,
                config: WireTenantConfig {
                    route,
                    record_predictions: record,
                    flow_capacity,
                    idle_timeout_packets,
                },
            }
        }
        "swap" => {
            let [tenant, artifact] = positionals::<2>("swap <tenant> <artifact>", rest)?;
            Request::Swap { tenant, artifact }
        }
        "detach" => {
            let [tenant] = positionals::<1>("detach <tenant>", rest)?;
            Request::Detach { tenant }
        }
        "list" => Request::List,
        "stats" => Request::Stats,
        "ingest-pcap" => {
            let [path] = positionals::<1>("ingest-pcap <path>", rest)?;
            Request::IngestPcap { path }
        }
        "shutdown" => Request::Shutdown,
        other => return Err(format!("unknown verb '{other}'\n{USAGE}")),
    };
    Ok(request)
}

fn positionals<const N: usize>(shape: &str, rest: Vec<String>) -> Result<[String; N], String> {
    <[String; N]>::try_from(rest)
        .map_err(|got| format!("expected {shape}, got {} positional argument(s)", got.len()))
}

fn print_response(response: &Response) {
    match response {
        Response::Pong => println!("pong"),
        Response::Error(e) => println!("error [{}]: {}", e.kind, e.message),
        Response::Loaded(a) => {
            println!("loaded {} v{} ({}, {}, {} bytes)", a.name, a.version, a.net, a.kind, a.bytes);
        }
        Response::Attached { tenant, token, epoch } => {
            println!("attached {tenant} (token {token}, epoch {epoch})");
        }
        Response::Swapped { tenant, epoch, state_retained, apply_micros } => {
            println!(
                "swapped {tenant} to epoch {epoch} in {apply_micros} us ({})",
                if *state_retained {
                    "flow state retained, adopted on first touch"
                } else {
                    "flows re-warm"
                }
            );
        }
        Response::Detached(report) => match (&report.report, &report.error) {
            (Some(r), _) => println!(
                "detached {}: {} routed, {} classified, {} flows",
                report.name, report.routed_packets, r.classified, r.flows
            ),
            (None, Some(e)) => println!("detached {} (was degraded: {e})", report.name),
            (None, None) => println!("detached {}", report.name),
        },
        Response::Listing(listing) => {
            println!("artifacts ({}):", listing.artifacts.len());
            for a in &listing.artifacts {
                println!("  {} v{} ({}, {}, {} bytes)", a.name, a.version, a.net, a.kind, a.bytes);
            }
            println!("tenants ({}):", listing.tenants.len());
            for t in &listing.tenants {
                let r = &t.route;
                let route = format!(
                    "route[lut {} subnets {} protos {}{} residual {}]",
                    r.lut_ports,
                    r.subnets,
                    r.protocols,
                    if r.catch_all { " catch-all" } else { "" },
                    r.residual
                );
                match &t.state {
                    TenantState::Serving { token, epoch } => println!(
                        "  {} -> {} serving (token {token}, epoch {epoch}) {route}",
                        t.name, t.artifact
                    ),
                    TenantState::Degraded { reason } => {
                        println!("  {} -> {} DEGRADED: {reason} {route}", t.name, t.artifact);
                    }
                }
            }
        }
        Response::Stats(stats) => {
            println!("unrouted {} | parse errors: {}", stats.unrouted, stats.parse_errors.total());
            let r = &stats.routing;
            println!(
                "routing: lut {} trie {} proto {} catch-all {} residual {} (scanned {}) | \
                 rebuilds {} (last {} us)",
                r.lut_hits,
                r.trie_hits,
                r.proto_hits,
                r.catchall_hits,
                r.residual_hits,
                r.residual_scans,
                r.rebuilds,
                r.last_rebuild_micros
            );
            let a = &stats.artifacts;
            println!(
                "artifacts: {} tenants share {} unique ({} resident bytes, {} if copied)",
                a.tenants, a.unique_artifacts, a.resident_bytes, a.naive_bytes
            );
            for t in &stats.tenants {
                println!(
                    "  {} (token {}, epoch {}): routed {} packets {} classified {} warmup {} flows {}{}",
                    t.name,
                    t.token,
                    t.epoch,
                    t.routed_packets,
                    t.report.packets,
                    t.report.classified,
                    t.report.warmup,
                    t.report.flows,
                    if t.failed { " FAILED" } else { "" }
                );
            }
        }
        Response::Ingested { frames } => println!("ingested {frames} frames"),
        Response::ShuttingDown => println!("daemon shutting down"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("pegasusctl: {message}");
            return ExitCode::from(2);
        }
    };
    let request = match build_request(&args.verb, args.rest) {
        Ok(request) => request,
        Err(message) => {
            eprintln!("pegasusctl: {message}");
            return ExitCode::from(2);
        }
    };
    let mut client = match CtlClient::connect(&args.socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("pegasusctl: {e}");
            return ExitCode::from(3);
        }
    };
    match client.call(&request) {
        Ok(response) => {
            let failed = matches!(response, Response::Error(_));
            print_response(&response);
            let _ = expect_ok(response);
            if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("pegasusctl: {e}");
            ExitCode::from(3)
        }
    }
}

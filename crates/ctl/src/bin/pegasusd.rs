//! The Pegasus control daemon.
//!
//! ```text
//! pegasusd --state-dir <dir> --socket <path> [--shards N] [--batch N]
//! ```
//!
//! Owns the serving engine for its whole lifetime; operated with
//! `pegasusctl` over the Unix socket. On start it replays the state
//! directory's tenant registry and prints a recovery banner; tenants
//! whose artifacts no longer pass verification come back degraded, not
//! dropped.

use pegasus_ctl::daemon::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: pegasusd --state-dir <dir> --socket <path> [--shards N] [--batch N]";

fn parse_args() -> Result<DaemonConfig, String> {
    let mut config = DaemonConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value =
            |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value\n{USAGE}"));
        match flag.as_str() {
            "--state-dir" => config.state_dir = PathBuf::from(value("--state-dir")?),
            "--socket" => config.socket = PathBuf::from(value("--socket")?),
            "--shards" => {
                config.shards = value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--batch" => {
                config.batch = value("--batch")?.parse().map_err(|e| format!("--batch: {e}"))?;
            }
            other => return Err(format!("unknown flag '{other}'\n{USAGE}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(config) => config,
        Err(message) => {
            eprintln!("pegasusd: {message}");
            return ExitCode::from(2);
        }
    };
    let (daemon, recovery) = match Daemon::start(&config) {
        Ok(started) => started,
        Err(e) => {
            eprintln!("pegasusd: {e}");
            return ExitCode::FAILURE;
        }
    };
    for name in &recovery.serving {
        println!("pegasusd: recovered tenant '{name}' (serving)");
    }
    for (name, reason) in &recovery.degraded {
        println!("pegasusd: recovered tenant '{name}' DEGRADED: {reason}");
    }
    println!(
        "pegasusd: state dir {} | listening on {}",
        config.state_dir.display(),
        config.socket.display()
    );
    match daemon.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pegasusd: {e}");
            ExitCode::FAILURE
        }
    }
}

//! A typed client for the daemon socket, used by `pegasusctl` and the
//! end-to-end tests.

use crate::protocol::{read_frame, write_frame, ErrorReply, FrameError, Request, Response};
use std::fmt;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

/// Why a call failed before a typed [`Response`] arrived. Daemon-side
/// verb failures are **not** client errors — they come back as
/// `Response::Error(ErrorReply)`; see [`expect_ok`].
#[derive(Debug)]
pub enum ClientError {
    /// Could not connect to the socket.
    Connect {
        /// Socket path.
        path: String,
        /// Connect failure.
        error: std::io::Error,
    },
    /// The request could not be written.
    Send(std::io::Error),
    /// The reply frame was unreadable.
    Frame(FrameError),
    /// The daemon closed the connection without replying.
    NoReply,
    /// The reply body did not decode as a [`Response`].
    Decode(serde::DecodeError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect { path, error } => write!(f, "cannot connect to {path}: {error}"),
            ClientError::Send(e) => write!(f, "cannot send request: {e}"),
            ClientError::Frame(e) => write!(f, "unreadable reply: {e}"),
            ClientError::NoReply => write!(f, "daemon closed the connection without replying"),
            ClientError::Decode(e) => write!(f, "undecodable reply: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a running `pegasusd`. Requests may be issued
/// back-to-back on the same connection.
pub struct CtlClient {
    stream: UnixStream,
}

impl CtlClient {
    /// Connects to the daemon socket.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Self, ClientError> {
        let path = socket.as_ref();
        let stream = UnixStream::connect(path)
            .map_err(|error| ClientError::Connect { path: path.display().to_string(), error })?;
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        Ok(CtlClient { stream })
    }

    /// Sends one request and reads its reply.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &serde::to_bytes(request)).map_err(ClientError::Send)?;
        let body = read_frame(&mut self.stream)
            .map_err(ClientError::Frame)?
            .ok_or(ClientError::NoReply)?;
        serde::from_bytes(&body).map_err(ClientError::Decode)
    }
}

/// Unwraps `Response::Error` into the typed [`ErrorReply`], passing
/// every other response through.
pub fn expect_ok(response: Response) -> Result<Response, ErrorReply> {
    match response {
        Response::Error(e) => Err(e),
        other => Ok(other),
    }
}

//! The on-disk artifact file format (`.pa`).
//!
//! An artifact file is everything `pegasusd` needs to re-deploy a tenant
//! after a crash: the compiled pipeline itself, the stream-feature kind
//! it consumes, and the switch resource model it was verified against.
//! The body is [`serde`]-encoded and prefixed with a 4-byte magic plus a
//! `u32` format version, so a daemon pointed at a stale or foreign state
//! directory rejects the file with a typed error instead of
//! deserializing garbage into a pipeline.

use pegasus_core::compile::CompiledPipeline;
use pegasus_core::flowpipe::FlowPipeline;
use pegasus_core::{Artifact, EngineArtifact, PegasusError, StreamFeatures};
use pegasus_switch::SwitchConfig;
use std::fmt;

/// First four bytes of every artifact file.
pub const ARTIFACT_MAGIC: [u8; 4] = *b"PEGA";

/// Current format version. Bump on any encoding change; old daemons
/// reject newer files (and vice versa) instead of misreading them.
pub const ARTIFACT_FORMAT_VERSION: u32 = 1;

/// Why a byte blob is not an artifact file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// Shorter than the magic + version header.
    Truncated {
        /// Bytes present.
        len: usize,
    },
    /// The first four bytes are not [`ARTIFACT_MAGIC`].
    BadMagic {
        /// What was found instead.
        found: [u8; 4],
    },
    /// The header version is not [`ARTIFACT_FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version stamped in the file.
        found: u32,
        /// Version this build understands.
        supported: u32,
    },
    /// The body failed serde decoding.
    Decode(serde::DecodeError),
}

impl fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArtifactError::Truncated { len } => {
                write!(f, "file too short for an artifact header ({len} bytes)")
            }
            ArtifactError::BadMagic { found } => {
                write!(f, "bad magic {found:?} (expected {ARTIFACT_MAGIC:?})")
            }
            ArtifactError::UnsupportedVersion { found, supported } => {
                write!(f, "format version {found} unsupported (this build reads {supported})")
            }
            ArtifactError::Decode(e) => write!(f, "artifact body undecodable: {e}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// The pipeline half of an artifact file.
#[derive(Clone)]
pub enum ArtifactPayload {
    /// A per-packet classifier plus the feature kind it consumes.
    Stateless {
        /// Stat-vector or sequence features.
        features: StreamFeatures,
        /// The compiled pipeline.
        pipeline: CompiledPipeline,
    },
    /// A flow-aware pipeline (features are implied by the extractor).
    Flow {
        /// The compiled flow pipeline.
        pipeline: FlowPipeline,
    },
}

impl serde::Serialize for ArtifactPayload {
    fn serialize(&self, w: &mut serde::Writer) {
        match self {
            ArtifactPayload::Stateless { features, pipeline } => {
                w.write_u8(0);
                features.serialize(w);
                pipeline.serialize(w);
            }
            ArtifactPayload::Flow { pipeline } => {
                w.write_u8(1);
                pipeline.serialize(w);
            }
        }
    }
}

impl<'de> serde::Deserialize<'de> for ArtifactPayload {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        use serde::Deserialize as D;
        Ok(match r.read_u8("ArtifactPayload")? {
            0 => ArtifactPayload::Stateless {
                features: D::deserialize(r)?,
                pipeline: D::deserialize(r)?,
            },
            1 => ArtifactPayload::Flow { pipeline: D::deserialize(r)? },
            tag => return Err(serde::DecodeError::BadTag { what: "ArtifactPayload", tag }),
        })
    }
}

/// A complete artifact file: the pipeline plus the switch model it must
/// verify against.
#[derive(Clone)]
pub struct ArtifactFile {
    /// Resource model the pipeline was compiled and verified for.
    pub switch: SwitchConfig,
    /// The pipeline.
    pub payload: ArtifactPayload,
}

serde::impl_serde_struct!(ArtifactFile { switch, payload });

// The pipelines inside are huge table dumps; debug-print a summary, not
// the entries. (FlowPipeline has no Debug of its own for the same
// reason.)
impl fmt::Debug for ArtifactFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ArtifactFile({} {}, switch {})",
            self.kind(),
            self.program_name(),
            self.switch.name
        )
    }
}

impl ArtifactFile {
    /// Encodes the file: magic, version, serde body.
    pub fn to_bytes(&self) -> Vec<u8> {
        let body = serde::to_bytes(self);
        let mut out = Vec::with_capacity(8 + body.len());
        out.extend_from_slice(&ARTIFACT_MAGIC);
        out.extend_from_slice(&ARTIFACT_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a file, checking the header before touching the body.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < 8 {
            return Err(ArtifactError::Truncated { len: bytes.len() });
        }
        let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
        if magic != ARTIFACT_MAGIC {
            return Err(ArtifactError::BadMagic { found: magic });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != ARTIFACT_FORMAT_VERSION {
            return Err(ArtifactError::UnsupportedVersion {
                found: version,
                supported: ARTIFACT_FORMAT_VERSION,
            });
        }
        serde::from_bytes(&bytes[8..]).map_err(ArtifactError::Decode)
    }

    /// The compiled program's name.
    pub fn program_name(&self) -> &str {
        match &self.payload {
            ArtifactPayload::Stateless { pipeline, .. } => &pipeline.program.name,
            ArtifactPayload::Flow { pipeline } => &pipeline.program.name,
        }
    }

    /// `"stateless"` or `"flow"`.
    pub fn kind(&self) -> &'static str {
        match &self.payload {
            ArtifactPayload::Stateless { .. } => "stateless",
            ArtifactPayload::Flow { .. } => "flow",
        }
    }

    /// Runs static verification against the embedded switch model and
    /// returns the number of error-severity diagnostics (0 = clean).
    pub fn verify_errors(&self) -> u64 {
        let artifact = match &self.payload {
            ArtifactPayload::Stateless { pipeline, .. } => {
                Artifact::Single(Box::new(pipeline.clone()))
            }
            ArtifactPayload::Flow { pipeline } => Artifact::Flow(Box::new(pipeline.clone())),
        };
        let report = artifact.verify(Some(&self.switch));
        report.errors().count() as u64
    }

    /// Deploys the payload into an engine-servable artifact.
    pub fn deploy(&self) -> Result<EngineArtifact, PegasusError> {
        match &self.payload {
            ArtifactPayload::Stateless { features, pipeline } => {
                EngineArtifact::from_compiled_pipeline(pipeline.clone(), *features, &self.switch)
            }
            ArtifactPayload::Flow { pipeline } => {
                EngineArtifact::from_flow_pipeline(pipeline.clone(), &self.switch)
            }
        }
    }
}

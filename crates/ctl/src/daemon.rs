//! `pegasusd`: the daemon that owns the engine.
//!
//! One daemon process owns one [`EngineServer`] plus one state directory
//! (see [`registry`](crate::registry)) and serves the
//! [`protocol`](crate::protocol) verbs over a Unix domain socket,
//! **sequentially** — one connection, one request at a time. Control
//! verbs are rare and already serialized inside the engine's dispatcher
//! lock, so a single-threaded accept loop buys freedom from daemon-side
//! locking at zero practical cost; the dataplane parallelism lives in
//! the engine's shard threads, not here.
//!
//! # Crash recovery
//!
//! Every verb persists its effect to the registry **before** it is
//! acknowledged, so the registry always describes what the operator was
//! last told. On start the daemon replays it: for each tenant record (in
//! attach order) it re-reads the artifact file, re-checks the `PEGA`
//! header, re-runs static verification against the embedded switch
//! model, re-deploys, and re-attaches under the recorded route and
//! flow-table config. A tenant whose artifact fails any of those steps
//! comes back [`Degraded`](TenantRuntime::Degraded) with a typed
//! [`DegradedReason`] — visible in `list`, refusing `swap`, and
//! clearable with `detach` — instead of silently disappearing from the
//! serving set.
//!
//! Engine tenant tokens are process-local and **renumber across
//! restarts**; the durable tenant identity is its name.

use crate::artifact::ArtifactFile;
use crate::protocol::{
    read_frame, write_frame, ArtifactInfo, DegradedReason, ErrorKind, ErrorReply, FrameError,
    ListReply, Request, Response, TenantInfo, TenantState, WireEngineStats, WireTenantConfig,
    WireTenantReport, WireTenantStats,
};
use crate::registry::{ArtifactRecord, Registry, RegistryError, TenantRecord};
use pegasus_core::engine::server::TenantReport;
use pegasus_core::{
    ControlHandle, EngineBuilder, EngineServer, EngineStats, IngressHandle, PegasusError,
    TenantConfig, TenantStats, TenantToken,
};
use pegasus_net::{PcapSource, RouteSummary};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// How long a connected client may sit silent before the daemon drops
/// the connection and serves the next one. The accept loop is
/// sequential; this bounds how long a wedged client can monopolize it.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Daemon startup configuration.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// State directory (registry + artifact files). Created if missing.
    pub state_dir: PathBuf,
    /// Unix-socket path to listen on. A stale socket file is unlinked.
    pub socket: PathBuf,
    /// Engine shard threads.
    pub shards: usize,
    /// Engine batch size (packets per shard hand-off).
    pub batch: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            state_dir: PathBuf::from("pegasus-state"),
            socket: PathBuf::from("pegasusd.sock"),
            shards: 2,
            batch: 64,
        }
    }
}

/// Why the daemon could not start.
#[derive(Debug)]
pub enum DaemonError {
    /// The state directory is unusable.
    Registry(RegistryError),
    /// The engine failed to start.
    Engine(PegasusError),
    /// The socket could not be bound.
    Bind {
        /// Socket path.
        path: PathBuf,
        /// Bind failure.
        error: std::io::Error,
    },
}

impl fmt::Display for DaemonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DaemonError::Registry(e) => write!(f, "state directory: {e}"),
            DaemonError::Engine(e) => write!(f, "engine: {e}"),
            DaemonError::Bind { path, error } => {
                write!(f, "cannot bind {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for DaemonError {}

/// A registered tenant's in-process state.
#[derive(Debug)]
pub enum TenantRuntime {
    /// Attached to the engine and routing packets.
    Serving {
        /// Engine token (process-local).
        token: TenantToken,
        /// Current artifact epoch.
        epoch: u64,
    },
    /// Registered on disk but refused at recovery.
    Degraded {
        /// The typed refusal.
        reason: DegradedReason,
    },
}

/// What recovery did, for the startup banner and tests.
#[derive(Debug, Default)]
pub struct RecoverySummary {
    /// Tenants re-attached and serving.
    pub serving: Vec<String>,
    /// Tenants that came back degraded, with reasons.
    pub degraded: Vec<(String, DegradedReason)>,
}

/// The daemon: engine + registry + runtime tenant states.
pub struct Daemon {
    registry: Registry,
    server: Option<EngineServer>,
    control: ControlHandle,
    ingress: IngressHandle,
    tenants: HashMap<String, TenantRuntime>,
    socket: PathBuf,
}

fn engine_error_kind(e: &PegasusError) -> ErrorKind {
    match e {
        PegasusError::UnknownTenant { .. } => ErrorKind::UnknownTenant,
        PegasusError::Verify { .. } => ErrorKind::Verify,
        PegasusError::StateBudget { .. } => ErrorKind::StateBudget,
        PegasusError::NotAClassifier { .. } => ErrorKind::NotAClassifier,
        PegasusError::InvalidConfig { .. } => ErrorKind::BadRequest,
        _ => ErrorKind::Engine,
    }
}

fn engine_error(e: PegasusError) -> ErrorReply {
    ErrorReply { kind: engine_error_kind(&e), message: e.to_string() }
}

fn registry_error(e: RegistryError) -> ErrorReply {
    ErrorReply { kind: ErrorKind::Io, message: format!("registry: {e}") }
}

fn wire_tenant_stats(t: &TenantStats) -> WireTenantStats {
    WireTenantStats {
        token: t.token.id(),
        name: t.name.clone(),
        epoch: t.epoch,
        routed_packets: t.routed_packets,
        failed: t.failed,
        report: t.report.clone(),
        flatten_skip: t.flatten_skip.clone(),
    }
}

fn wire_engine_stats(s: &EngineStats) -> WireEngineStats {
    WireEngineStats {
        tenants: s.tenants.iter().map(wire_tenant_stats).collect(),
        unrouted: s.unrouted,
        parse_errors: s.parse_errors,
        routing: s.routing,
        artifacts: s.artifacts,
    }
}

fn wire_tenant_report(t: TenantReport) -> WireTenantReport {
    let (report, error) = match t.result {
        Ok(r) => (Some(r), None),
        Err(e) => (None, Some(e.to_string())),
    };
    WireTenantReport {
        token: t.token.id(),
        name: t.name,
        epoch: t.epoch,
        routed_packets: t.routed_packets,
        report,
        error,
    }
}

fn artifact_info(r: &ArtifactRecord) -> ArtifactInfo {
    ArtifactInfo {
        name: r.name.clone(),
        version: r.version,
        net: r.net.clone(),
        kind: r.kind.clone(),
        bytes: r.bytes,
    }
}

fn tenant_config(record: &TenantRecord) -> TenantConfig {
    let mut cfg = TenantConfig::new()
        .name(&record.name)
        .route(record.route.clone())
        .record_predictions(record.record_predictions);
    if let Some(slots) = record.flow_capacity {
        cfg = cfg.flow_capacity(slots);
    }
    if let Some(packets) = record.idle_timeout_packets {
        cfg = cfg.idle_timeout_packets(packets);
    }
    cfg
}

impl Daemon {
    /// Opens the state directory, starts the engine, and replays the
    /// registry (see the module docs for the recovery contract).
    pub fn start(config: &DaemonConfig) -> Result<(Daemon, RecoverySummary), DaemonError> {
        let registry = Registry::open(&config.state_dir).map_err(DaemonError::Registry)?;
        let server = EngineBuilder::new()
            .shards(config.shards)
            .batch(config.batch)
            .build()
            .map_err(DaemonError::Engine)?;
        let control = server.control();
        let ingress = server.ingress();
        let mut daemon = Daemon {
            registry,
            server: Some(server),
            control,
            ingress,
            tenants: HashMap::new(),
            socket: config.socket.clone(),
        };
        let summary = daemon.recover();
        Ok((daemon, summary))
    }

    /// Replays the registry's tenants in attach order. Failures degrade
    /// the tenant; they never abort daemon startup — an operator with
    /// one bad artifact still gets every other tenant back.
    fn recover(&mut self) -> RecoverySummary {
        let mut summary = RecoverySummary::default();
        let records = self.registry.state().tenants.clone();
        for record in records {
            match self.reattach(&record) {
                Ok((token, epoch)) => {
                    summary.serving.push(record.name.clone());
                    self.tenants.insert(record.name, TenantRuntime::Serving { token, epoch });
                }
                Err(reason) => {
                    summary.degraded.push((record.name.clone(), reason.clone()));
                    self.tenants.insert(record.name, TenantRuntime::Degraded { reason });
                }
            }
        }
        summary
    }

    /// One tenant's recovery: every step that can reject gets its own
    /// typed reason.
    fn reattach(&self, record: &TenantRecord) -> Result<(TenantToken, u64), DegradedReason> {
        let Some(art) = self.registry.find_artifact(&record.artifact) else {
            return Err(DegradedReason::MissingArtifact { artifact: record.artifact.clone() });
        };
        let path = self.registry.artifact_path(art);
        let bytes = fs::read(&path)
            .map_err(|e| DegradedReason::Io { message: format!("{}: {e}", path.display()) })?;
        let file = ArtifactFile::from_bytes(&bytes)
            .map_err(|e| DegradedReason::Format { message: e.to_string() })?;
        let errors = file.verify_errors();
        if errors > 0 {
            return Err(DegradedReason::Verify { errors });
        }
        let artifact =
            file.deploy().map_err(|e| DegradedReason::Attach { message: e.to_string() })?;
        let token = self
            .control
            .attach(artifact, tenant_config(record))
            .map_err(|e| DegradedReason::Attach { message: e.to_string() })?;
        Ok((token, 0))
    }

    /// Binds the socket and serves requests until a `shutdown` verb,
    /// then drains the engine. Consumes the daemon.
    pub fn run(mut self) -> Result<(), DaemonError> {
        // A previous daemon that died hard (kill -9) leaves its socket
        // file behind; it is address, not state — safe to unlink.
        let _ = fs::remove_file(&self.socket);
        let listener = UnixListener::bind(&self.socket)
            .map_err(|error| DaemonError::Bind { path: self.socket.clone(), error })?;
        let mut quit = false;
        while !quit {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => continue,
            };
            let _ = stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT));
            quit = self.serve_connection(stream);
        }
        if let Some(server) = self.server.take() {
            let _ = server.shutdown();
        }
        let _ = fs::remove_file(&self.socket);
        Ok(())
    }

    /// Serves one connection until the peer hangs up or a frame goes
    /// bad. Returns true when a `shutdown` verb was served.
    ///
    /// Hostile input lands here, and the contract is: **never panic,
    /// never wedge**. Garbage inside an intact frame gets a typed
    /// `bad-request` reply and the connection lives on; a broken frame
    /// layer (truncated prefix/body, oversized length, timeout) gets a
    /// best-effort error reply and the connection is dropped, because
    /// framing sync is gone.
    fn serve_connection(&mut self, mut stream: UnixStream) -> bool {
        loop {
            let body = match read_frame(&mut stream) {
                Ok(Some(body)) => body,
                Ok(None) => return false,
                Err(e) => {
                    let reply = Response::Error(ErrorReply {
                        kind: ErrorKind::BadRequest,
                        message: frame_error_message(&e),
                    });
                    let _ = write_frame(&mut stream, &serde::to_bytes(&reply));
                    return false;
                }
            };
            let request = match serde::from_bytes::<Request>(&body) {
                Ok(request) => request,
                Err(e) => {
                    let reply = Response::Error(ErrorReply {
                        kind: ErrorKind::BadRequest,
                        message: format!("undecodable request: {e}"),
                    });
                    if write_frame(&mut stream, &serde::to_bytes(&reply)).is_err() {
                        return false;
                    }
                    continue;
                }
            };
            let (response, quit) = self.handle(request);
            if write_frame(&mut stream, &serde::to_bytes(&response)).is_err() {
                return quit;
            }
            if quit {
                return true;
            }
        }
    }

    /// Dispatches one verb. The bool asks the accept loop to exit.
    fn handle(&mut self, request: Request) -> (Response, bool) {
        let response = match request {
            Request::Ping => Response::Pong,
            Request::Load { name, artifact } => self.load(&name, &artifact),
            Request::Attach { tenant, artifact, config } => self.attach(&tenant, &artifact, config),
            Request::Swap { tenant, artifact } => self.swap(&tenant, &artifact),
            Request::Detach { tenant } => self.detach(&tenant),
            Request::List => self.list(),
            Request::Stats => match self.control.stats() {
                Ok(stats) => Response::Stats(wire_engine_stats(&stats)),
                Err(e) => Response::Error(engine_error(e)),
            },
            Request::IngestPcap { path } => self.ingest_pcap(&path),
            Request::Shutdown => return (Response::ShuttingDown, true),
        };
        (response, false)
    }

    fn load(&mut self, name: &str, bytes: &[u8]) -> Response {
        let file = match ArtifactFile::from_bytes(bytes) {
            Ok(file) => file,
            Err(e) => {
                return Response::Error(ErrorReply {
                    kind: ErrorKind::ArtifactFormat,
                    message: e.to_string(),
                })
            }
        };
        let errors = file.verify_errors();
        if errors > 0 {
            return Response::Error(ErrorReply {
                kind: ErrorKind::Verify,
                message: format!("artifact failed verification with {errors} error(s)"),
            });
        }
        match self.registry.store_artifact(name, bytes, &file) {
            Ok(record) => Response::Loaded(artifact_info(&record)),
            Err(e) => Response::Error(registry_error(e)),
        }
    }

    /// Reads a loaded artifact back off disk and deploys it, classifying
    /// each failure. Shared by attach and swap.
    fn deploy_named(&self, artifact: &str) -> Result<pegasus_core::EngineArtifact, ErrorReply> {
        let Some(record) = self.registry.find_artifact(artifact) else {
            return Err(ErrorReply {
                kind: ErrorKind::UnknownArtifact,
                message: format!("no loaded artifact named '{artifact}'"),
            });
        };
        let path = self.registry.artifact_path(record);
        let bytes = fs::read(&path).map_err(|e| ErrorReply {
            kind: ErrorKind::Io,
            message: format!("{}: {e}", path.display()),
        })?;
        let file = ArtifactFile::from_bytes(&bytes)
            .map_err(|e| ErrorReply { kind: ErrorKind::ArtifactFormat, message: e.to_string() })?;
        file.deploy().map_err(engine_error)
    }

    fn attach(&mut self, tenant: &str, artifact: &str, config: WireTenantConfig) -> Response {
        if self.tenants.contains_key(tenant) {
            return Response::Error(ErrorReply {
                kind: ErrorKind::DuplicateTenant,
                message: format!("tenant '{tenant}' already exists (detach it first)"),
            });
        }
        let engine_artifact = match self.deploy_named(artifact) {
            Ok(a) => a,
            Err(e) => return Response::Error(e),
        };
        let record = TenantRecord {
            name: tenant.to_string(),
            artifact: artifact.to_string(),
            route: config.route,
            record_predictions: config.record_predictions,
            flow_capacity: config.flow_capacity,
            idle_timeout_packets: config.idle_timeout_packets,
        };
        let token = match self.control.attach(engine_artifact, tenant_config(&record)) {
            Ok(token) => token,
            Err(e) => return Response::Error(engine_error(e)),
        };
        // Persist only after the engine accepted: the registry must
        // never promise recovery of a tenant that was never serving.
        if let Err(e) = self.registry.record_attach(record) {
            let _ = self.control.detach(token);
            return Response::Error(registry_error(e));
        }
        self.tenants.insert(tenant.to_string(), TenantRuntime::Serving { token, epoch: 0 });
        Response::Attached { tenant: tenant.to_string(), token: token.id(), epoch: 0 }
    }

    fn swap(&mut self, tenant: &str, artifact: &str) -> Response {
        let token = match self.tenants.get(tenant) {
            Some(TenantRuntime::Serving { token, .. }) => *token,
            Some(TenantRuntime::Degraded { reason }) => {
                return Response::Error(ErrorReply {
                    kind: ErrorKind::Degraded,
                    message: format!(
                        "tenant '{tenant}' is degraded ({reason}); detach and re-attach it"
                    ),
                })
            }
            None => {
                return Response::Error(ErrorReply {
                    kind: ErrorKind::UnknownTenant,
                    message: format!("no tenant named '{tenant}'"),
                })
            }
        };
        let engine_artifact = match self.deploy_named(artifact) {
            Ok(a) => a,
            Err(e) => return Response::Error(e),
        };
        let swap = match self.control.swap(token, engine_artifact) {
            Ok(swap) => swap,
            Err(e) => return Response::Error(engine_error(e)),
        };
        if let Err(e) = self.registry.record_swap(tenant, artifact) {
            return Response::Error(registry_error(e));
        }
        if let Some(TenantRuntime::Serving { epoch, .. }) = self.tenants.get_mut(tenant) {
            *epoch = swap.epoch;
        }
        Response::Swapped {
            tenant: tenant.to_string(),
            epoch: swap.epoch,
            state_retained: swap.state_retained,
            apply_micros: swap.apply_micros,
        }
    }

    fn detach(&mut self, tenant: &str) -> Response {
        match self.tenants.get(tenant) {
            Some(TenantRuntime::Serving { token, .. }) => {
                let token = *token;
                let report = match self.control.detach(token) {
                    Ok(report) => report,
                    Err(e) => return Response::Error(engine_error(e)),
                };
                if let Err(e) = self.registry.record_detach(tenant) {
                    return Response::Error(registry_error(e));
                }
                self.tenants.remove(tenant);
                Response::Detached(Box::new(wire_tenant_report(report)))
            }
            // Detaching a degraded tenant clears its registration — the
            // operator's path out of the degraded state.
            Some(TenantRuntime::Degraded { reason }) => {
                let error = Some(reason.to_string());
                if let Err(e) = self.registry.record_detach(tenant) {
                    return Response::Error(registry_error(e));
                }
                self.tenants.remove(tenant);
                Response::Detached(Box::new(WireTenantReport {
                    token: 0,
                    name: tenant.to_string(),
                    epoch: 0,
                    routed_packets: 0,
                    report: None,
                    error,
                }))
            }
            None => Response::Error(ErrorReply {
                kind: ErrorKind::UnknownTenant,
                message: format!("no tenant named '{tenant}'"),
            }),
        }
    }

    fn list(&self) -> Response {
        let state = self.registry.state();
        let artifacts = state.artifacts.iter().map(artifact_info).collect();
        let tenants = state
            .tenants
            .iter()
            .map(|record| {
                let state = match self.tenants.get(&record.name) {
                    Some(TenantRuntime::Serving { token, epoch }) => {
                        TenantState::Serving { token: token.id(), epoch: *epoch }
                    }
                    Some(TenantRuntime::Degraded { reason }) => {
                        TenantState::Degraded { reason: reason.clone() }
                    }
                    // Registered but unknown to the runtime: recovery
                    // never saw it, which cannot happen short of a bug —
                    // surface it as degraded rather than hide it.
                    None => TenantState::Degraded {
                        reason: DegradedReason::Attach {
                            message: "tenant missing from runtime".to_string(),
                        },
                    },
                };
                TenantInfo {
                    name: record.name.clone(),
                    artifact: record.artifact.clone(),
                    state,
                    route: RouteSummary::of(&record.route),
                }
            })
            .collect();
        Response::Listing(ListReply { artifacts, tenants })
    }

    fn ingest_pcap(&mut self, path: &str) -> Response {
        let mut source = match PcapSource::open(path) {
            Ok(source) => source,
            Err(e) => {
                return Response::Error(ErrorReply {
                    kind: ErrorKind::Io,
                    message: format!("{path}: {e}"),
                })
            }
        };
        if let Err(e) = self.ingress.push_frame_source(&mut source) {
            return Response::Error(engine_error(e));
        }
        if let Err(e) = self.ingress.flush() {
            return Response::Error(engine_error(e));
        }
        Response::Ingested { frames: source.records() }
    }
}

fn frame_error_message(e: &FrameError) -> String {
    format!("unreadable frame: {e}")
}

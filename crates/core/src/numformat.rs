//! Dataplane number representation: biased fixed point.
//!
//! The pipeline carries activations as *unsigned* integers so that range
//! matching (TCAM) and min/max ALUs see a monotone encoding:
//! `real ≈ (stored - bias) * step`. This is the paper's Adaptive Fixed-Point
//! Quantization (§4.4) with an added bias so negative activations order
//! correctly as raw bits. Addition stays exact across the encoding:
//! `Σ stored_i - (k-1)*bias` encodes `Σ real_i` at the shared `step`.

use serde::{Deserialize, Serialize};

/// An affine integer encoding of real values.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NumFormat {
    /// Real value of one integer step.
    pub step: f32,
    /// Stored value representing real zero.
    pub bias: i64,
    /// Field width in bits.
    pub bits: u8,
}

impl NumFormat {
    /// The canonical 8-bit feature-code format (quantized packet features).
    pub fn code8() -> Self {
        NumFormat { step: 1.0, bias: 0, bits: 8 }
    }

    /// Chooses a format covering `[rmin, rmax]` in `bits` bits, spending any
    /// slack on resolution. Degenerate ranges get a unit step.
    pub fn from_range(rmin: f32, rmax: f32, bits: u8) -> Self {
        assert!(rmin.is_finite() && rmax.is_finite() && rmin <= rmax);
        assert!((2..=32).contains(&bits));
        let levels = ((1u64 << bits) - 1) as f32;
        // Floor the span relative to the magnitude so constant or
        // near-constant value ranges still get a sane, non-subnormal step.
        let floor = rmin.abs().max(rmax.abs()).max(1.0) * 1e-3;
        let span = (rmax - rmin).max(floor);
        // Pad 5% on both sides so near-boundary values don't saturate.
        let step = span * 1.1 / levels;
        let bias = (-(rmin - 0.05 * span) / step).round() as i64;
        NumFormat { step, bias, bits }
    }

    /// Largest stored value.
    pub fn max_stored(&self) -> i64 {
        (1i64 << self.bits) - 1
    }

    /// Encodes a real value (round to nearest, saturate).
    pub fn to_stored(&self, real: f32) -> i64 {
        let raw = (real / self.step).round() as i64 + self.bias;
        raw.clamp(0, self.max_stored())
    }

    /// Decodes a stored value.
    pub fn to_real(&self, stored: i64) -> f32 {
        (stored - self.bias) as f32 * self.step
    }

    /// Worst-case absolute encoding error for in-range reals.
    pub fn max_error(&self) -> f32 {
        self.step / 2.0
    }
}

// --- serde (control-daemon artifact format) ----------------------------

serde::impl_serde_struct!(NumFormat { step, bias, bits });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code8_is_identity_on_bytes() {
        let f = NumFormat::code8();
        for v in [0i64, 1, 127, 255] {
            assert_eq!(f.to_stored(v as f32), v);
            assert_eq!(f.to_real(v), v as f32);
        }
    }

    #[test]
    fn round_trip_error_bounded() {
        let f = NumFormat::from_range(-10.0, 10.0, 12);
        for i in -100..=100 {
            let x = i as f32 / 10.0;
            let back = f.to_real(f.to_stored(x));
            assert!((back - x).abs() <= f.max_error() + 1e-6, "x={x} back={back}");
        }
    }

    #[test]
    fn encoding_is_monotone() {
        let f = NumFormat::from_range(-5.0, 37.0, 10);
        let mut prev = f.to_stored(-6.0);
        for i in -60..=400 {
            let s = f.to_stored(i as f32 / 10.0);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn range_endpoints_not_saturated() {
        let f = NumFormat::from_range(-3.0, 8.0, 8);
        assert!(f.to_stored(-3.0) > 0);
        assert!(f.to_stored(8.0) < f.max_stored());
    }

    #[test]
    fn sum_identity_with_bias_correction() {
        let f = NumFormat::from_range(-20.0, 20.0, 16);
        let xs = [-3.5f32, 7.25, -1.0, 2.5];
        let stored_sum: i64 = xs.iter().map(|&x| f.to_stored(x)).sum();
        let corrected = stored_sum - (xs.len() as i64 - 1) * f.bias;
        let real_sum: f32 = xs.iter().sum();
        assert!((f.to_real(corrected) - real_sum).abs() < 4.0 * f.max_error());
    }

    #[test]
    fn degenerate_range_is_usable() {
        let f = NumFormat::from_range(5.0, 5.0, 8);
        let s = f.to_stored(5.0);
        assert!((f.to_real(s) - 5.0).abs() < 0.1);
    }
}

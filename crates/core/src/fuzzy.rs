//! Fuzzy matching: the clustering tree (§4.2).
//!
//! Instead of storing an output for every possible input bit pattern,
//! Pegasus groups a segment's input space into clusters learned from
//! training data. A [`ClusterTree`] is a binary tree of
//! `feature ≤ threshold` tests; each leaf carries a *centroid* (the mean of
//! its training points) that stands in for every input landing there
//! (Figures 2 and 3).
//!
//! Construction is the paper's greedy strategy: start with all data in one
//! cluster, repeatedly split the leaf with the largest SSE on the
//! (feature, threshold) pair minimizing the children's total SSE, until the
//! target leaf count is reached. Because every test is axis-aligned, each
//! leaf is a hyper-rectangle — which is exactly what range-match TCAM rules
//! can encode ([`ClusterTree::leaf_boxes`]).

use serde::{Deserialize, Serialize};

/// One tree node.
#[derive(Clone, Debug, Serialize, Deserialize)]
enum Node {
    /// `x[feature] <= threshold` goes left, else right.
    Internal { feature: usize, threshold: f32, left: usize, right: usize },
    /// Terminal cluster; `index` is the fuzzy index (dense, 0-based).
    Leaf { index: usize },
}

/// A fitted clustering tree over `dim`-dimensional inputs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterTree {
    nodes: Vec<Node>,
    root: usize,
    dim: usize,
    /// Centroid per leaf index.
    centroids: Vec<Vec<f32>>,
}

/// An axis-aligned integer box covering one leaf's input region.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeafBox {
    /// The leaf's fuzzy index.
    pub index: usize,
    /// Inclusive `[lo, hi]` per input dimension.
    pub ranges: Vec<(u64, u64)>,
}

/// Sum of squared distances of `points` (given by indices) to their mean.
fn sse(data: &[Vec<f32>], idx: &[usize]) -> f64 {
    if idx.len() < 2 {
        return 0.0;
    }
    let dim = data[idx[0]].len();
    let n = idx.len() as f64;
    let mut total = 0.0;
    #[allow(clippy::needless_range_loop)] // d indexes into every row of `data`
    for d in 0..dim {
        let (mut s, mut s2) = (0.0f64, 0.0f64);
        for &i in idx {
            let v = data[i][d] as f64;
            s += v;
            s2 += v * v;
        }
        total += s2 - s * s / n;
    }
    total.max(0.0)
}

/// Mean vector of the points.
fn centroid(data: &[Vec<f32>], idx: &[usize]) -> Vec<f32> {
    let dim = data[idx[0]].len();
    let mut c = vec![0.0f64; dim];
    for &i in idx {
        for d in 0..dim {
            c[d] += data[i][d] as f64;
        }
    }
    c.iter().map(|&v| (v / idx.len() as f64) as f32).collect()
}

/// The best split of `idx`: `(feature, threshold, children_sse)`.
/// Thresholds are placed at integer floors of midpoints so integer-valued
/// features split deterministically. Returns `None` when no split separates
/// the points.
fn best_split(data: &[Vec<f32>], idx: &[usize]) -> Option<(usize, f32, f64)> {
    let dim = data[idx[0]].len();
    let mut best: Option<(usize, f32, f64)> = None;
    let mut sorted = idx.to_vec();
    for d in 0..dim {
        sorted.sort_by(|&a, &b| data[a][d].partial_cmp(&data[b][d]).expect("NaN feature"));
        // Prefix sums per dimension for O(1) SSE of any prefix/suffix.
        let n = sorted.len();
        let mut pre_s = vec![vec![0.0f64; n + 1]; dim];
        let mut pre_s2 = vec![vec![0.0f64; n + 1]; dim];
        for (pos, &i) in sorted.iter().enumerate() {
            for dd in 0..dim {
                let v = data[i][dd] as f64;
                pre_s[dd][pos + 1] = pre_s[dd][pos] + v;
                pre_s2[dd][pos + 1] = pre_s2[dd][pos] + v * v;
            }
        }
        let part_sse = |from: usize, to: usize| -> f64 {
            // SSE of sorted[from..to].
            let cnt = (to - from) as f64;
            if cnt < 1.0 {
                return 0.0;
            }
            let mut t = 0.0;
            for dd in 0..dim {
                let s = pre_s[dd][to] - pre_s[dd][from];
                let s2 = pre_s2[dd][to] - pre_s2[dd][from];
                t += s2 - s * s / cnt;
            }
            t.max(0.0)
        };
        for cut in 1..n {
            let a = data[sorted[cut - 1]][d];
            let b = data[sorted[cut]][d];
            if a == b {
                continue; // not a separating threshold
            }
            let threshold = ((a + b) / 2.0).floor();
            // Guard: threshold must actually separate (a <= t < b).
            if threshold < a || threshold >= b {
                continue;
            }
            let children = part_sse(0, cut) + part_sse(cut, n);
            if best.is_none_or(|(_, _, s)| children < s) {
                best = Some((d, threshold, children));
            }
        }
    }
    best
}

impl ClusterTree {
    /// Fits a tree by splitting every leaf recursively down to `depth`
    /// levels (at most `2^depth` leaves) — the paper's `clustering_depth`
    /// parameter (Figure 6). Leaves stop early when their points are
    /// inseparable. `data` must be non-empty; all points share a dimension.
    pub fn fit(data: &[Vec<f32>], depth: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit a cluster tree to no data");
        let dim = data[0].len();
        assert!(data.iter().all(|p| p.len() == dim), "inconsistent dims");

        let mut nodes: Vec<Node> = vec![Node::Leaf { index: 0 }];
        let all: Vec<usize> = (0..data.len()).collect();
        // (node slot, members) pairs of finished leaves.
        let mut done: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut frontier: Vec<(usize, Vec<usize>, usize)> = vec![(0, all, depth)];
        while let Some((slot, idx, depth_left)) = frontier.pop() {
            if depth_left == 0 || idx.len() < 2 {
                done.push((slot, idx));
                continue;
            }
            let Some((feature, threshold, _)) = best_split(data, &idx) else {
                done.push((slot, idx));
                continue;
            };
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| data[i][feature] <= threshold);
            debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
            let left_slot = nodes.len();
            nodes.push(Node::Leaf { index: 0 });
            let right_slot = nodes.len();
            nodes.push(Node::Leaf { index: 0 });
            nodes[slot] = Node::Internal { feature, threshold, left: left_slot, right: right_slot };
            frontier.push((left_slot, left_idx, depth_left - 1));
            frontier.push((right_slot, right_idx, depth_left - 1));
        }
        Self::finish(nodes, dim, data, done)
    }

    /// Fits a tree with at most `target_leaves` leaves by always splitting
    /// the leaf with the largest SSE — an unbalanced variant used by the
    /// tree-shape ablation (`ablation_tree_depth`). Not the paper's default.
    pub fn fit_leaves(data: &[Vec<f32>], target_leaves: usize) -> Self {
        assert!(!data.is_empty(), "cannot fit a cluster tree to no data");
        assert!(target_leaves >= 1);
        let dim = data[0].len();
        assert!(data.iter().all(|p| p.len() == dim), "inconsistent dims");

        let mut nodes: Vec<Node> = vec![Node::Leaf { index: 0 }];
        let all: Vec<usize> = (0..data.len()).collect();
        let root_sse = sse(data, &all);
        let mut members: Vec<(usize, Vec<usize>, f64)> = vec![(0, all, root_sse)];

        while members.len() < target_leaves {
            let pos = match members
                .iter()
                .enumerate()
                .filter(|(_, (_, m, s))| m.len() >= 2 && *s > 0.0)
                .max_by(|a, b| a.1 .2.partial_cmp(&b.1 .2).expect("NaN sse"))
            {
                Some((pos, _)) => pos,
                None => break, // nothing splittable
            };
            let (slot, idx, _) = members.swap_remove(pos);
            let Some((feature, threshold, _)) = best_split(data, &idx) else {
                members.push((slot, idx, 0.0));
                continue;
            };
            let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                idx.iter().partition(|&&i| data[i][feature] <= threshold);
            debug_assert!(!left_idx.is_empty() && !right_idx.is_empty());
            let left_slot = nodes.len();
            nodes.push(Node::Leaf { index: 0 });
            let right_slot = nodes.len();
            nodes.push(Node::Leaf { index: 0 });
            nodes[slot] = Node::Internal { feature, threshold, left: left_slot, right: right_slot };
            let ls = sse(data, &left_idx);
            let rs = sse(data, &right_idx);
            members.push((left_slot, left_idx, ls));
            members.push((right_slot, right_idx, rs));
        }
        let done = members.into_iter().map(|(slot, idx, _)| (slot, idx)).collect();
        Self::finish(nodes, dim, data, done)
    }

    fn finish(
        mut nodes: Vec<Node>,
        dim: usize,
        data: &[Vec<f32>],
        done: Vec<(usize, Vec<usize>)>,
    ) -> Self {
        let mut centroids = Vec::with_capacity(done.len());
        for (li, (slot, idx)) in done.iter().enumerate() {
            nodes[*slot] = Node::Leaf { index: li };
            centroids.push(centroid(data, idx));
        }
        ClusterTree { nodes, root: 0, dim, centroids }
    }

    /// Input dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of leaves (distinct fuzzy indexes).
    pub fn leaves(&self) -> usize {
        self.centroids.len()
    }

    /// Bits needed to store a fuzzy index.
    pub fn index_bits(&self) -> u8 {
        (usize::BITS - (self.leaves().max(1) - 1).leading_zeros()).max(1) as u8
    }

    /// The fuzzy index of an input (walks the comparison tree — what the
    /// TCAM rules implement in one lookup).
    pub fn index_of(&self, x: &[f32]) -> usize {
        assert_eq!(x.len(), self.dim, "input dim mismatch");
        let mut cur = self.root;
        loop {
            match &self.nodes[cur] {
                Node::Internal { feature, threshold, left, right } => {
                    cur = if x[*feature] <= *threshold { *left } else { *right };
                }
                Node::Leaf { index } => return *index,
            }
        }
    }

    /// The centroid standing in for input `x`.
    pub fn centroid_of(&self, x: &[f32]) -> &[f32] {
        &self.centroids[self.index_of(x)]
    }

    /// Centroid by leaf index.
    pub fn centroid(&self, index: usize) -> &[f32] {
        &self.centroids[index]
    }

    /// Mutable centroids (for backpropagation fine-tuning, §4.4).
    pub fn centroids_mut(&mut self) -> &mut [Vec<f32>] {
        &mut self.centroids
    }

    /// The axis-aligned integer box of every leaf within `domain`
    /// (inclusive `[lo, hi]` per dimension) — the input to range-rule
    /// generation. Features are assumed integer-valued (quantized codes).
    pub fn leaf_boxes(&self, domain: &[(u64, u64)]) -> Vec<LeafBox> {
        assert_eq!(domain.len(), self.dim);
        let mut out = Vec::with_capacity(self.leaves());
        let mut stack = vec![(self.root, domain.to_vec())];
        while let Some((node, box_)) = stack.pop() {
            match &self.nodes[node] {
                Node::Internal { feature, threshold, left, right } => {
                    let t = threshold.floor();
                    let t_int = if t < 0.0 { 0 } else { t as u64 };
                    let (lo, hi) = box_[*feature];
                    // Left: x <= t.
                    if t >= 0.0 && lo <= t_int.min(hi) {
                        let mut lb = box_.clone();
                        lb[*feature] = (lo, t_int.min(hi));
                        stack.push((*left, lb));
                    }
                    // Right: x > t.
                    let rlo = if t < 0.0 { lo } else { (t_int + 1).max(lo) };
                    if rlo <= hi {
                        let mut rb = box_.clone();
                        rb[*feature] = (rlo, hi);
                        stack.push((*right, rb));
                    }
                }
                Node::Leaf { index } => out.push(LeafBox { index: *index, ranges: box_ }),
            }
        }
        out.sort_by_key(|b| b.index);
        out
    }

    /// Returns a copy of the tree with every internal threshold transformed
    /// by `f(feature, threshold)` — used by the compiler to move thresholds
    /// from real space into the dataplane's stored integer space. `f` must
    /// be monotone per feature for the tree to stay equivalent.
    pub fn map_thresholds(&self, f: impl Fn(usize, f32) -> f32) -> ClusterTree {
        let nodes = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Internal { feature, threshold, left, right } => Node::Internal {
                    feature: *feature,
                    threshold: f(*feature, *threshold),
                    left: *left,
                    right: *right,
                },
                Node::Leaf { index } => Node::Leaf { index: *index },
            })
            .collect();
        ClusterTree { nodes, root: self.root, dim: self.dim, centroids: self.centroids.clone() }
    }

    /// Mean SSE per point against assigned centroids (quality diagnostic).
    pub fn quantization_error(&self, data: &[Vec<f32>]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for p in data {
            let c = self.centroid_of(p);
            total += p.iter().zip(c.iter()).map(|(&a, &b)| ((a - b) as f64).powi(2)).sum::<f64>();
        }
        total / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 3 dataset.
    fn figure3_data() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 2.0],
            vec![2.0, 2.0],
            vec![2.0, 3.0],
            vec![1.0, 7.0],
            vec![3.0, 8.0],
            vec![4.0, 9.0],
            vec![5.0, 10.0],
        ]
    }

    #[test]
    fn figure3_tree_reproduces_paper_clusters() {
        // Depth 2 reproduces Figure 3 exactly: root splits on x1 <= 5 (child
        // SSEs 1.33 and 13.75), the high side splits on x0 <= 3 (SSEs 2.5
        // and 1.0), the low side on x0 <= 1.
        let data = figure3_data();
        let tree = ClusterTree::fit(&data, 2);
        assert_eq!(tree.leaves(), 4);
        // Paper's leaves: {(1,2)}, {(2,2),(2,3)}, {(1,7),(3,8)}, {(4,9),(5,10)}.
        assert_eq!(tree.index_of(&[2.0, 2.0]), tree.index_of(&[2.0, 3.0]));
        assert_ne!(tree.index_of(&[1.0, 2.0]), tree.index_of(&[2.0, 2.0]));
        let i_mid = tree.index_of(&[1.0, 7.0]);
        assert_eq!(tree.index_of(&[3.0, 8.0]), i_mid);
        // Centroid of {(1,7),(3,8)} is (2, 7.5) — the Figure 2 table row.
        let c = tree.centroid(i_mid);
        assert!((c[0] - 2.0).abs() < 1e-6 && (c[1] - 7.5).abs() < 1e-6);
        // Centroid of {(4,9),(5,10)} is (4.5, 9.5).
        let c = tree.centroid(tree.index_of(&[4.0, 9.0]));
        assert!((c[0] - 4.5).abs() < 1e-6 && (c[1] - 9.5).abs() < 1e-6);
    }

    #[test]
    fn figure2_lookup_example() {
        // Figure 2: input (3, 7) satisfies x1 > 5, x0 <= 3 -> fuzzy index of
        // centroid (2, 7.5); Map f(x) = 0.4x + 1 yields (1.8, 4.0).
        let data = figure3_data();
        let tree = ClusterTree::fit(&data, 2);
        let c = tree.centroid_of(&[3.0, 7.0]).to_vec();
        let y: Vec<f32> = c.iter().map(|&v| 0.4 * v + 1.0).collect();
        assert!((y[0] - 1.8).abs() < 0.05, "{y:?}");
        assert!((y[1] - 4.0).abs() < 0.05, "{y:?}");
    }

    #[test]
    fn single_leaf_tree_is_global_mean() {
        let data = figure3_data();
        let tree = ClusterTree::fit(&data, 0);
        assert_eq!(tree.leaves(), 1);
        assert_eq!(tree.index_of(&[0.0, 0.0]), 0);
    }

    #[test]
    fn duplicate_points_stop_splitting() {
        let data = vec![vec![5.0, 5.0]; 10];
        let tree = ClusterTree::fit(&data, 3);
        assert_eq!(tree.leaves(), 1);
        let by_leaves = ClusterTree::fit_leaves(&data, 8);
        assert_eq!(by_leaves.leaves(), 1);
    }

    #[test]
    fn leaf_boxes_partition_the_domain() {
        let data = figure3_data();
        let tree = ClusterTree::fit(&data, 2);
        let boxes = tree.leaf_boxes(&[(0, 15), (0, 15)]);
        assert_eq!(boxes.len(), 4);
        // Every integer point maps to exactly one box, and that box's index
        // agrees with tree traversal.
        for x0 in 0..=15u64 {
            for x1 in 0..=15u64 {
                let hits: Vec<&LeafBox> = boxes
                    .iter()
                    .filter(|b| {
                        (b.ranges[0].0..=b.ranges[0].1).contains(&x0)
                            && (b.ranges[1].0..=b.ranges[1].1).contains(&x1)
                    })
                    .collect();
                assert_eq!(hits.len(), 1, "point ({x0},{x1}) hit {} boxes", hits.len());
                assert_eq!(hits[0].index, tree.index_of(&[x0 as f32, x1 as f32]));
            }
        }
    }

    #[test]
    fn deeper_trees_reduce_quantization_error() {
        let data: Vec<Vec<f32>> = (0..64).map(|i| vec![(i % 16) as f32, (i / 4) as f32]).collect();
        let e1 = ClusterTree::fit(&data, 1).quantization_error(&data);
        let e3 = ClusterTree::fit(&data, 3).quantization_error(&data);
        let e5 = ClusterTree::fit(&data, 5).quantization_error(&data);
        assert!(e1 > e3, "e1={e1} e3={e3}");
        assert!(e3 > e5, "e3={e3} e5={e5}");
    }

    #[test]
    fn index_bits() {
        let data: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32]).collect();
        let t16 = ClusterTree::fit(&data, 4);
        assert_eq!(t16.leaves(), 16);
        assert_eq!(t16.index_bits(), 4);
        let t5 = ClusterTree::fit_leaves(&data, 5);
        assert_eq!(t5.leaves(), 5);
        assert_eq!(t5.index_bits(), 3);
    }

    /// Every input maps to exactly one leaf and index_of agrees with the
    /// box cover (the DESIGN.md partition property).
    #[test]
    fn tree_partitions_space_randomized() {
        use rand::{Rng, SeedableRng};
        for seed in 0u64..24 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(8..60usize);
            let depth = rng.gen_range(1..4usize);
            let data: Vec<Vec<f32>> =
                (0..n).map(|_| (0..3).map(|_| rng.gen_range(0..=63) as f32).collect()).collect();
            let tree = ClusterTree::fit(&data, depth);
            let boxes = tree.leaf_boxes(&[(0, 63), (0, 63), (0, 63)]);
            for probe in data.iter().take(20) {
                let idx = tree.index_of(probe);
                assert!(idx < tree.leaves(), "seed {seed}");
                let hits = boxes
                    .iter()
                    .filter(|b| {
                        b.ranges
                            .iter()
                            .zip(probe.iter())
                            .all(|(&(lo, hi), &v)| (lo..=hi).contains(&(v as u64)))
                    })
                    .count();
                assert_eq!(hits, 1, "seed {seed}: probe {probe:?}");
            }
        }
    }

    /// Centroids lie within their leaf's box.
    #[test]
    fn centroids_inside_boxes_randomized() {
        use rand::{Rng, SeedableRng};
        for seed in 0u64..24 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xc0ffee);
            let n = rng.gen_range(8..40usize);
            let depth = rng.gen_range(1..3usize);
            let data: Vec<Vec<f32>> =
                (0..n).map(|_| (0..2).map(|_| rng.gen_range(0..=31) as f32).collect()).collect();
            let tree = ClusterTree::fit(&data, depth);
            for b in tree.leaf_boxes(&[(0, 31), (0, 31)]) {
                let c = tree.centroid(b.index);
                for (d, &(lo, hi)) in b.ranges.iter().enumerate() {
                    assert!(
                        c[d] >= lo as f32 - 1e-3 && c[d] <= hi as f32 + 1e-3,
                        "seed {seed}: centroid {c:?} outside box {:?}",
                        b.ranges
                    );
                }
            }
        }
    }
}

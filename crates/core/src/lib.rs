//! # pegasus-core — the Pegasus framework
//!
//! The paper's primary contribution, end to end:
//!
//! * [`primitives`] — the Partition / Map / SumReduce IR (Table 3) with a
//!   float-exact reference interpreter;
//! * [`lowering`] — DL operators → primitives (Table 4);
//! * [`fusion`] — Basic Primitive Fusion (semantics-preserving rewrites)
//!   and Advanced Primitive Fusion (model-altering collapses, §4.3);
//! * [`fuzzy`] — clustering trees for fuzzy matching (§4.2): greedy min-SSE
//!   splits, centroids, TCAM-encodable leaf boxes;
//! * [`finetune`] — centroid fine-tuning by backpropagation (§4.4);
//! * [`numformat`] / [`compile`] — adaptive fixed-point formats and the
//!   compiler from fused programs to switch tables (fuzzy + exact paths,
//!   reduction trees, tournament argmax);
//! * [`flowpipe`] — per-flow windowed pipelines: per-packet extractors,
//!   register-packed index windows, on-switch quantizers (§7.3);
//! * [`runtime`] — the concurrency-ready deployed-model runtime (`&self`
//!   inference, batched classification);
//! * [`engine`] — the sharded streaming packet engine: RSS-style flow
//!   sharding across worker threads, shard-owned per-flow state (no hot
//!   path locks), and the flattened-LUT inference representation baked at
//!   deploy time — plus [`engine::server`], the live serving control
//!   plane: a long-lived multi-tenant [`engine::EngineServer`] with
//!   push-based ingress, predicate routing, hot model swap (per-flow state
//!   retained), live stats, and drain/shutdown;
//! * [`models`] — MLP-B, RNN-B, CNN-B/M/L and the AutoEncoder (§6.3), all
//!   behind the [`models::DataplaneNet`] trait;
//! * [`pipeline`] — the staged [`Pegasus`] builder, the one
//!   compile-and-deploy path for every model and baseline;
//! * [`error`] — [`PegasusError`], the API's single error type.
//!
//! The intended entry point:
//!
//! ```no_run
//! use pegasus_core::models::{DataplaneNet, ModelData, TrainSettings};
//! use pegasus_core::models::mlp_b::MlpB;
//! use pegasus_core::pipeline::Pegasus;
//! use pegasus_core::compile::{CompileOptions, CompileTarget};
//! use pegasus_switch::SwitchConfig;
//!
//! # fn run(train: pegasus_nn::Dataset) -> Result<(), pegasus_core::error::PegasusError> {
//! let data = ModelData::new().with_stat(&train);
//! let model = MlpB::train(&data, &TrainSettings::default())?;
//! let deployed = Pegasus::new(model)
//!     .options(CompileOptions::default())
//!     .target(CompileTarget::Classify)
//!     .compile(&data)?
//!     .deploy(&SwitchConfig::tofino2())?;
//! let class = deployed.classify(&[0.0; 16])?;
//! # let _ = class;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod engine;
pub mod error;
pub mod finetune;
pub mod flowpipe;
pub mod fusion;
pub mod fuzzy;
pub mod lowering;
pub mod models;
pub mod numformat;
pub mod pipeline;
pub mod primitives;
pub mod runtime;
pub mod verify;

pub use engine::server::{
    ControlHandle, EngineArtifact, EngineBuilder, EngineReport, EngineServer, EngineStats,
    FramePush, IngressHandle, PredicateRouter, SwapReport, TenantConfig, TenantRoute, TenantRouter,
    TenantStats, TenantToken,
};
pub use engine::{
    ArtifactCounters, FlattenSkip, FlowTableCounters, ParseErrorCounters, RawIngress, RawVerdict,
    RoutingCounters, StreamConfig, StreamReport, SwapCounters, DEFAULT_BATCH_FRAMES,
    HOST_WINDOW_STATE_BITS,
};
pub use error::PegasusError;
pub use models::{DataplaneNet, Lowered, ModelData, StreamFeatures, TrainSettings};
pub use pipeline::{Artifact, Compiled, Deployment, Pegasus};
pub use verify::{
    verify_flow, verify_pipeline, verify_program, Diagnostic, Severity, VerifyReport,
};

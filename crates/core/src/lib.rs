//! # pegasus-core — the Pegasus framework
//!
//! The paper's primary contribution, end to end:
//!
//! * [`primitives`] — the Partition / Map / SumReduce IR (Table 3) with a
//!   float-exact reference interpreter;
//! * [`lowering`] — DL operators → primitives (Table 4);
//! * [`fusion`] — Basic Primitive Fusion (semantics-preserving rewrites)
//!   and Advanced Primitive Fusion (model-altering collapses, §4.3);
//! * [`fuzzy`] — clustering trees for fuzzy matching (§4.2): greedy min-SSE
//!   splits, centroids, TCAM-encodable leaf boxes;
//! * [`finetune`] — centroid fine-tuning by backpropagation (§4.4);
//! * [`numformat`] / [`compile`] — adaptive fixed-point formats and the
//!   compiler from fused programs to switch tables (fuzzy + exact paths,
//!   reduction trees, tournament argmax);
//! * [`flowpipe`] — per-flow windowed pipelines: per-packet extractors,
//!   register-packed index windows, on-switch quantizers (§7.3);
//! * [`runtime`] — deployed-model wrappers;
//! * [`models`] — MLP-B, RNN-B, CNN-B/M/L and the AutoEncoder (§6.3).

#![warn(missing_docs)]

pub mod compile;
pub mod finetune;
pub mod flowpipe;
pub mod fusion;
pub mod fuzzy;
pub mod lowering;
pub mod models;
pub mod numformat;
pub mod primitives;
pub mod runtime;

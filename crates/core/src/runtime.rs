//! Deployed-model runtime: feeding feature codes through the switch.
//!
//! [`DataplaneModel`] is concurrency-ready: every inference method takes
//! `&self` (lookup accounting is atomic, register state lives behind a
//! per-packet lock inside the loaded program), so one deployed model can be
//! shared across threads — [`classify_batch`](DataplaneModel::classify_batch)
//! fans a batch out over std threads and is the hook future sharded or
//! replicated serving builds on. Misuse returns [`PegasusError`] instead of
//! panicking.

use crate::compile::CompiledPipeline;
use crate::engine::{FlatProgram, FlattenSkip};
use crate::error::PegasusError;
use crate::primitives::{Primitive, PrimitiveProgram};
use crate::verify::verify_pipeline;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::Dataset;
use pegasus_switch::{FieldId, LoadedProgram, ResourceReport, SwitchConfig};

/// Rows below this count are classified sequentially on the calling
/// thread; batches of at least this many rows fan out across available
/// cores.
///
/// Rationale: spawning OS threads costs tens of microseconds each, while
/// one classification costs single-digit microseconds — below a few
/// hundred rows the spawn overhead exceeds the work being split. The value
/// is the crossover point measured on the repo's own pipelines (within an
/// order of magnitude it is not sensitive).
pub const BATCH_PARALLEL_THRESHOLD: usize = 256;

/// A compiled pipeline loaded onto the switch simulator, ready to classify.
pub struct DataplaneModel {
    pipeline: CompiledPipeline,
    loaded: LoadedProgram,
    /// The flattened-LUT replica of register-free pipelines, baked once at
    /// deploy time for the streaming engine's hot loop — or the typed
    /// reason flattening was skipped.
    flat: Result<FlatProgram, FlattenSkip>,
}

impl DataplaneModel {
    /// Statically verifies the pipeline, validates it against a switch
    /// configuration and loads it.
    ///
    /// The static verifier (see [`crate::verify`]) runs first: artifacts
    /// with any `Error`-severity diagnostic are rejected with
    /// [`PegasusError::Verify`] before the resource model or the flattener
    /// ever see them. Resource fit is deliberately left to the switch
    /// model's own typed [`DeployError`](pegasus_switch::DeployError)
    /// (richer than a `V204` diagnostic); the verifier's resource layer
    /// covers the same accounting when invoked with a config. Register-free
    /// pipelines are additionally baked into a [`FlatProgram`] — the
    /// contiguous-array replica the streaming engine executes (see
    /// [`flat`](DataplaneModel::flat)).
    pub fn deploy(pipeline: CompiledPipeline, cfg: &SwitchConfig) -> Result<Self, PegasusError> {
        let report = verify_pipeline(&pipeline, None);
        if report.has_errors() {
            return Err(PegasusError::Verify { report: Box::new(report) });
        }
        let loaded = pipeline.program.clone().deploy(cfg)?;
        let flat = FlatProgram::from_pipeline(&pipeline);
        Ok(DataplaneModel { pipeline, loaded, flat })
    }

    /// The compiled artifact.
    pub fn pipeline(&self) -> &CompiledPipeline {
        &self.pipeline
    }

    /// The flattened-LUT replica of this pipeline (`None` when the program
    /// keeps stateful registers). Bit-identical to
    /// [`classify`](DataplaneModel::classify) — asserted over whole traces
    /// by the engine's determinism tests.
    pub fn flat(&self) -> Option<&FlatProgram> {
        self.flat.as_ref().ok()
    }

    /// Why this pipeline was not flattened (`None` when [`flat`](DataplaneModel::flat)
    /// is available). Surfaced in engine stats so operators can see which
    /// tenants serve through the simulator fallback.
    pub fn flatten_skip(&self) -> Option<&FlattenSkip> {
        self.flat.as_ref().err()
    }

    /// Switch resource utilization (the Table 6 row).
    pub fn resource_report(&self) -> ResourceReport {
        self.loaded.resource_report()
    }

    /// The switch configuration this model was deployed against (its SRAM
    /// model bounds per-tenant flow-state budgets in the serving engine).
    pub fn switch_config(&self) -> &SwitchConfig {
        self.loaded.config()
    }

    /// Classifies one sample of feature codes (each in `[0, 255]`).
    pub fn classify(&self, codes: &[f32]) -> Result<usize, PegasusError> {
        let phv = self.process(codes)?;
        let f = self.pipeline.predicted_field.ok_or_else(|| PegasusError::NotAClassifier {
            pipeline: self.pipeline.program.name.clone(),
        })?;
        Ok(phv.get(f) as usize)
    }

    /// Classifies a batch of samples, one verdict per row.
    ///
    /// Batches smaller than [`BATCH_PARALLEL_THRESHOLD`] run sequentially
    /// on the calling thread — spawning workers for a handful of rows
    /// costs more than it saves. Larger batches are split across OS
    /// threads: the deployed model is shared by reference, the same
    /// sharing contract the sharded streaming engine relies on.
    pub fn classify_batch(&self, rows: &[Vec<f32>]) -> Vec<Result<usize, PegasusError>> {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if rows.len() < BATCH_PARALLEL_THRESHOLD || threads < 2 {
            return rows.iter().map(|r| self.classify(r)).collect();
        }
        let chunk = rows.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = rows
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || part.iter().map(|r| self.classify(r)).collect::<Vec<_>>())
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("batch worker panicked")).collect()
        })
    }

    /// Decoded output scores of one sample.
    pub fn scores(&self, codes: &[f32]) -> Result<Vec<f32>, PegasusError> {
        if self.pipeline.score_fields.is_empty() {
            return Err(PegasusError::NoScores { pipeline: self.pipeline.program.name.clone() });
        }
        let phv = self.process(codes)?;
        Ok(self
            .pipeline
            .score_fields
            .iter()
            .map(|&f| self.pipeline.score_format.to_real(phv.get(f)))
            .collect())
    }

    fn process(&self, codes: &[f32]) -> Result<pegasus_switch::Phv, PegasusError> {
        if codes.len() != self.pipeline.input_fields.len() {
            return Err(PegasusError::FeatureCount {
                expected: self.pipeline.input_fields.len(),
                got: codes.len(),
            });
        }
        let inputs: Vec<(FieldId, i64)> = self
            .pipeline
            .input_fields
            .iter()
            .zip(codes.iter())
            .map(|(&f, &v)| (f, v.round().clamp(0.0, 255.0) as i64))
            .collect();
        Ok(self.loaded.process(&inputs))
    }

    /// Evaluates classification quality over a dataset of code rows.
    ///
    /// Parallelizes like [`classify_batch`](DataplaneModel::classify_batch)
    /// but chunks row-index ranges, so no copy of the dataset is made.
    pub fn evaluate(&self, data: &Dataset) -> Result<PrRcF1, PegasusError> {
        let n = data.len();
        let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
        let preds: Vec<usize> = if n < BATCH_PARALLEL_THRESHOLD || threads < 2 {
            (0..n).map(|r| self.classify(data.x.row(r))).collect::<Result<_, _>>()?
        } else {
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..n)
                    .step_by(chunk)
                    .map(|start| {
                        scope.spawn(move || {
                            (start..(start + chunk).min(n))
                                .map(|r| self.classify(data.x.row(r)))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("evaluate worker panicked"))
                    .collect::<Result<_, _>>()
            })?
        };
        Ok(pr_rc_f1(&data.y, &preds, data.classes()))
    }

    /// Total table lookups performed so far (memory-bandwidth proxy).
    pub fn lookup_count(&self) -> u64 {
        self.loaded.lookup_count()
    }
}

/// Finds the top-level input partition of a (fused) program: the segment
/// values, offsets and lengths of the `Partition` op that consumes the
/// program input. Returns `None` when the program maps the input whole.
pub fn input_partition(prog: &PrimitiveProgram) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    prog.ops.iter().find_map(|op| match op {
        Primitive::Partition { input, offsets, lens, outputs } if *input == prog.input => {
            Some((outputs.iter().map(|v| v.0).collect(), offsets.clone(), lens.clone()))
        }
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, CompileTarget};
    use crate::fusion::fuse_basic;
    use crate::primitives::MapFn;
    use pegasus_nn::Tensor;
    use rand::Rng;
    use rand::SeedableRng;

    fn scorer() -> PrimitiveProgram {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let w0 = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let w1 = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2]);
        let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.0, 0.0] });
        let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![0.0, 0.0] });
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        p
    }

    fn inputs(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect()
    }

    #[test]
    fn deploy_and_classify() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(1500, 1),
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "rt",
        )
        .expect("compiles");
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        // Clearly separated sample: class 1 (x2+x3 dominates).
        let pred = m.classify(&[10.0, 10.0, 250.0, 250.0]).expect("classifies");
        assert_eq!(pred, 1);
        let pred = m.classify(&[250.0, 250.0, 10.0, 10.0]).expect("classifies");
        assert_eq!(pred, 0);
        assert!(m.lookup_count() > 0);
    }

    #[test]
    fn evaluate_reports_macro_f1() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let train = inputs(1500, 2);
        let c = compile(
            &prog,
            &train,
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "rt",
        )
        .expect("compiles");
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        // Labels from the reference program.
        let test = inputs(300, 3);
        let labels: Vec<usize> = test
            .iter()
            .map(|x| {
                let s = prog.eval(x);
                usize::from(s[1] > s[0])
            })
            .collect();
        let flat: Vec<f32> = test.iter().flatten().copied().collect();
        let data = Dataset::new(Tensor::from_vec(flat, &[300, 4]), labels);
        let m1 = m.evaluate(&data).expect("evaluates");
        assert!(m1.f1 > 0.9, "dataplane F1 {}", m1.f1);
    }

    #[test]
    fn resource_report_nonzero() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(800, 4),
            &CompileOptions::default(),
            CompileTarget::Classify,
            "rt",
        )
        .expect("compiles");
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let r = m.resource_report();
        assert!(r.tcam_bits > 0, "fuzzy tables should use TCAM");
        assert!(r.stages_used > 0);
    }

    #[test]
    fn input_partition_found_after_fusion() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let (values, offsets, lens) = input_partition(&prog).expect("partition exists");
        assert_eq!(offsets, vec![0, 2]);
        assert_eq!(lens, vec![2, 2]);
        assert_eq!(values.len(), 2);
    }

    #[test]
    fn wrong_feature_count_is_an_error_not_a_panic() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(500, 5),
            &CompileOptions::default(),
            CompileTarget::Classify,
            "rt",
        )
        .expect("compiles");
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let err = m.classify(&[1.0, 2.0]).unwrap_err();
        assert_eq!(err, PegasusError::FeatureCount { expected: 4, got: 2 });
    }

    #[test]
    fn scores_pipeline_rejects_class_queries() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(500, 6),
            &CompileOptions::default(),
            CompileTarget::Scores,
            "rt",
        )
        .expect("compiles");
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let err = m.classify(&[1.0, 2.0, 3.0, 4.0]).unwrap_err();
        assert!(matches!(err, PegasusError::NotAClassifier { .. }), "{err:?}");
        // Scores still work.
        assert_eq!(m.scores(&[1.0, 2.0, 3.0, 4.0]).expect("scores").len(), 2);
    }

    #[test]
    fn classify_batch_matches_sequential_and_shares_across_threads() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(1500, 7),
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "rt",
        )
        .expect("compiles");
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        // Above the parallel threshold so the threaded path actually runs.
        let rows = inputs(600, 8);
        let batch: Vec<usize> =
            m.classify_batch(&rows).into_iter().map(|r| r.expect("classifies")).collect();
        for (row, &b) in rows.iter().zip(batch.iter()) {
            assert_eq!(m.classify(row).unwrap(), b);
        }
        // A bad row yields an error without poisoning the rest.
        let mut mixed = rows[..10].to_vec();
        mixed.push(vec![1.0]);
        let verdicts = m.classify_batch(&mixed);
        assert!(verdicts[..10].iter().all(|v| v.is_ok()));
        assert!(verdicts[10].is_err());
    }

    /// A corrupted artifact must be turned away at the engine's door —
    /// both attach and swap. The corrupt `DataplaneModel` is assembled
    /// field-by-field here (this module owns the fields) because every
    /// public path already rejects it earlier; the engine's own gate is
    /// the last line, and this is the only way to exercise it.
    #[test]
    fn engine_rejects_corrupted_artifact_at_attach_and_swap() {
        use crate::engine::server::{EngineArtifact, EngineBuilder, TenantConfig};
        use crate::error::PegasusError;
        use crate::models::StreamFeatures;
        use std::sync::Arc;

        let build = || {
            let mut prog = scorer();
            fuse_basic(&mut prog);
            let c = compile(
                &prog,
                &inputs(1200, 11),
                &CompileOptions { clustering_depth: 6, ..Default::default() },
                CompileTarget::Classify,
                "corrupt",
            )
            .expect("compiles");
            DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap()
        };
        // Corrupt the pipeline description after deploy: an entry naming a
        // nonexistent action, as a bit-rotted artifact would.
        let mut dm = build();
        let t = dm
            .pipeline
            .program
            .tables
            .iter_mut()
            .find(|t| !t.entries.is_empty())
            .expect("has entries");
        t.entries[0].action_idx = 999;
        let corrupt = EngineArtifact::stateless(Arc::new(dm), StreamFeatures::Stat, "corrupt");

        let server = EngineBuilder::new().build().expect("engine starts");
        let control = server.control();
        let err = control.attach(corrupt, TenantConfig::new()).unwrap_err();
        match err {
            PegasusError::Verify { report } => {
                assert!(report.has_code("V003"), "{report}");
            }
            other => panic!("attach must reject with Verify, got {other:?}"),
        }

        // Swap: attach a clean artifact, then try to swap in a corrupt one.
        let clean = EngineArtifact::stateless(Arc::new(build()), StreamFeatures::Stat, "clean");
        let token = control.attach(clean, TenantConfig::new()).expect("clean attaches");
        let mut dm = build();
        let t = dm
            .pipeline
            .program
            .tables
            .iter_mut()
            .find(|t| !t.entries.is_empty())
            .expect("has entries");
        t.entries[0].action_idx = 999;
        let corrupt = EngineArtifact::stateless(Arc::new(dm), StreamFeatures::Stat, "corrupt");
        let err = control.swap(token, corrupt).unwrap_err();
        assert!(
            matches!(err, PegasusError::Verify { .. }),
            "swap must reject with Verify, got {err:?}"
        );
        // The engine still serves the clean artifact.
        let stats = control.stats().expect("stats");
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].epoch, 0, "failed swap must not bump the epoch");
        assert!(stats.tenants[0].flatten_skip.is_none(), "stateless scorer flattens");
        server.shutdown().expect("shuts down");
    }
}

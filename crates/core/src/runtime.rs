//! Deployed-model runtime: feeding feature codes through the switch.

use crate::compile::CompiledPipeline;
use crate::primitives::{Primitive, PrimitiveProgram};
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::Dataset;
use pegasus_switch::{DeployError, FieldId, LoadedProgram, ResourceReport, SwitchConfig};

/// A compiled pipeline loaded onto the switch simulator, ready to classify.
pub struct DataplaneModel {
    pipeline: CompiledPipeline,
    loaded: LoadedProgram,
}

impl DataplaneModel {
    /// Validates the pipeline against a switch configuration and loads it.
    pub fn deploy(pipeline: CompiledPipeline, cfg: &SwitchConfig) -> Result<Self, DeployError> {
        let loaded = pipeline.program.clone().deploy(cfg)?;
        Ok(DataplaneModel { pipeline, loaded })
    }

    /// The compiled artifact.
    pub fn pipeline(&self) -> &CompiledPipeline {
        &self.pipeline
    }

    /// Switch resource utilization (the Table 6 row).
    pub fn resource_report(&self) -> ResourceReport {
        self.loaded.resource_report()
    }

    /// Classifies one sample of feature codes (each in `[0, 255]`).
    pub fn classify(&mut self, codes: &[f32]) -> usize {
        let phv = self.process(codes);
        let f = self
            .pipeline
            .predicted_field
            .expect("classify requires a Classify-target pipeline");
        phv.get(f) as usize
    }

    /// Decoded output scores of one sample.
    pub fn scores(&mut self, codes: &[f32]) -> Vec<f32> {
        let phv = self.process(codes);
        self.pipeline
            .score_fields
            .iter()
            .map(|&f| self.pipeline.score_format.to_real(phv.get(f)))
            .collect()
    }

    fn process(&mut self, codes: &[f32]) -> pegasus_switch::Phv {
        assert_eq!(
            codes.len(),
            self.pipeline.input_fields.len(),
            "feature count mismatch"
        );
        let inputs: Vec<(FieldId, i64)> = self
            .pipeline
            .input_fields
            .iter()
            .zip(codes.iter())
            .map(|(&f, &v)| (f, v.round().clamp(0.0, 255.0) as i64))
            .collect();
        self.loaded.process(&inputs)
    }

    /// Evaluates classification quality over a dataset of code rows.
    pub fn evaluate(&mut self, data: &Dataset) -> PrRcF1 {
        let preds: Vec<usize> =
            (0..data.len()).map(|r| self.classify(data.x.row(r))).collect();
        pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Total table lookups performed so far (memory-bandwidth proxy).
    pub fn lookup_count(&self) -> u64 {
        self.loaded.lookup_count()
    }
}

/// Finds the top-level input partition of a (fused) program: the segment
/// values, offsets and lengths of the `Partition` op that consumes the
/// program input. Returns `None` when the program maps the input whole.
pub fn input_partition(prog: &PrimitiveProgram) -> Option<(Vec<usize>, Vec<usize>, Vec<usize>)> {
    prog.ops.iter().find_map(|op| match op {
        Primitive::Partition { input, offsets, lens, outputs } if *input == prog.input => Some((
            outputs.iter().map(|v| v.0).collect(),
            offsets.clone(),
            lens.clone(),
        )),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, CompileTarget};
    use crate::fusion::fuse_basic;
    use crate::primitives::MapFn;
    use pegasus_nn::Tensor;
    use rand::Rng;
    use rand::SeedableRng;

    fn scorer() -> PrimitiveProgram {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let w0 = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let w1 = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2]);
        let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.0, 0.0] });
        let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![0.0, 0.0] });
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        p
    }

    fn inputs(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect()
    }

    #[test]
    fn deploy_and_classify() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(1500, 1),
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "rt",
        );
        let mut m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        // Clearly separated sample: class 1 (x2+x3 dominates).
        let pred = m.classify(&[10.0, 10.0, 250.0, 250.0]);
        assert_eq!(pred, 1);
        let pred = m.classify(&[250.0, 250.0, 10.0, 10.0]);
        assert_eq!(pred, 0);
        assert!(m.lookup_count() > 0);
    }

    #[test]
    fn evaluate_reports_macro_f1() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let train = inputs(1500, 2);
        let c = compile(
            &prog,
            &train,
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "rt",
        );
        let mut m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        // Labels from the reference program.
        let test = inputs(300, 3);
        let labels: Vec<usize> = test
            .iter()
            .map(|x| {
                let s = prog.eval(x);
                usize::from(s[1] > s[0])
            })
            .collect();
        let flat: Vec<f32> = test.iter().flatten().copied().collect();
        let data = Dataset::new(Tensor::from_vec(flat, &[300, 4]), labels);
        let m1 = m.evaluate(&data);
        assert!(m1.f1 > 0.9, "dataplane F1 {}", m1.f1);
    }

    #[test]
    fn resource_report_nonzero() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(800, 4),
            &CompileOptions::default(),
            CompileTarget::Classify,
            "rt",
        );
        let m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let r = m.resource_report();
        assert!(r.tcam_bits > 0, "fuzzy tables should use TCAM");
        assert!(r.stages_used > 0);
    }

    #[test]
    fn input_partition_found_after_fusion() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let (values, offsets, lens) = input_partition(&prog).expect("partition exists");
        assert_eq!(offsets, vec![0, 2]);
        assert_eq!(lens, vec![2, 2]);
        assert_eq!(values.len(), 2);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn wrong_feature_count_panics() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(500, 5),
            &CompileOptions::default(),
            CompileTarget::Classify,
            "rt",
        );
        let mut m = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let _ = m.classify(&[1.0, 2.0]);
    }
}

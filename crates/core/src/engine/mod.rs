//! The streaming packet engine: multi-core, sharded, per-packet inference.
//!
//! Everything below [`Deployment::stream`](crate::pipeline::Deployment::stream)
//! lives here. The engine turns a deployed model from a one-sample-at-a-time
//! classifier into a packet-rate serving runtime, the role the physical
//! switch plays in the paper's testbed (§7.1) — and it is where the repo's
//! throughput numbers (`BENCH_throughput.json`) come from.
//!
//! # Design
//!
//! ```text
//!             ┌────────────── PacketSource ──────────────┐
//!             │ TraceSource / SyntheticSource / ...      │
//!             └──────────────────┬───────────────────────┘
//!                                │ pull, timestamp order
//!                         ┌──────▼──────┐
//!                         │ dispatcher  │ shard = hash(bidirectional
//!                         │ (RSS-style) │         five-tuple) % N
//!                         └─┬────┬────┬─┘
//!               batched     │    │    │     bounded channels
//!            ┌──────────────┘    │    └──────────────┐
//!      ┌─────▼─────┐       ┌─────▼─────┐       ┌─────▼─────┐
//!      │  shard 0  │       │  shard 1  │  ...  │ shard N-1 │
//!      │ FlowState │       │ FlowState │       │ FlowState │
//!      │ FlatLUTs  │       │ FlatLUTs  │       │ FlatLUTs  │
//!      └───────────┘       └───────────┘       └───────────┘
//! ```
//!
//! Three properties fall out of hashing flows to shards by their
//! *bidirectional* five-tuple key ([`FiveTuple::shard_of`]):
//!
//! * **No locks on the hot path.** All per-flow state — host-side windows
//!   ([`FlowTracker`]) for pipelines that consume extracted features, and
//!   the per-flow *registers* of windowed flow pipelines (each shard owns a
//!   [`fork`](crate::flowpipe::FlowClassifier::fork) of the classifier) —
//!   is owned by exactly one shard. The per-packet register lock the shared
//!   runtime takes ([`LoadedProgram::process`](pegasus_switch::LoadedProgram::process))
//!   disappears: shards go through the `&mut self` lock-free paths.
//! * **Per-flow determinism.** A flow's packets are processed by one worker
//!   in arrival order, so for stateless pipelines (host flow state keyed
//!   exactly by five-tuple) streaming results are bit-identical to a
//!   sequential replay regardless of the shard count (asserted by
//!   `tests/stream_engine.rs`). Per-flow *register* pipelines inherit the
//!   hardware's hash-slot aliasing: colliding flows' verdicts depend on
//!   which flows share a register file, so they can differ across shard
//!   counts (more shards, fewer collisions).
//! * **Linear scaling.** Shards share nothing; on a machine with enough
//!   cores, throughput scales with the shard count until dispatch or the
//!   source becomes the bottleneck.
//!
//! Inference itself runs through the [`flat`] module's flattened-LUT
//! representation of the compiled pipeline — contiguous arrays baked at
//! deploy time — instead of the allocation-heavy switch simulator; see
//! [`FlatProgram`] for the exact guarantees.

pub mod flat;
pub mod stats;

pub use flat::{FlatProgram, FlatScratch};
pub use stats::{LatencyHistogram, ShardStats, StreamReport};

use crate::error::PegasusError;
use crate::flowpipe::FlowClassifier;
use crate::models::StreamFeatures;
use crate::runtime::DataplaneModel;
use pegasus_net::{
    quantize_ipd, quantize_len, FiveTuple, FlowTracker, PacketSource, StatFeatures, TracePacket,
    WINDOW,
};
use std::collections::HashMap;
use std::sync::mpsc::sync_channel;
use std::time::Instant;

/// Streaming-run configuration.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Worker shards (clamped to at least 1).
    pub shards: usize,
    /// Record every per-flow classification in the report (costs one
    /// `Vec<usize>` per flow; used by determinism tests and accuracy
    /// evaluation, off for pure throughput runs).
    pub record_predictions: bool,
    /// Packets per dispatch batch. Batching amortizes channel overhead;
    /// per-flow ordering is unaffected (clamped to at least 1).
    pub batch: usize,
    /// Bounded per-shard queue depth, in batches (backpressure; clamped to
    /// at least 1).
    pub queue_batches: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { shards: 1, record_predictions: false, batch: 256, queue_batches: 8 }
    }
}

/// Per-shard packet processing: one instance per worker, exclusively owned.
pub(crate) trait ShardProcessor: Send {
    /// Processes one packet of this shard's flows. `Ok(Some(class))` when
    /// the packet was classified, `Ok(None)` during per-flow warm-up.
    fn process(&mut self, pkt: &TracePacket) -> Result<Option<usize>, PegasusError>;

    /// Distinct flows this shard has seen.
    fn flows(&self) -> u64;
}

/// Shard worker for stateless compiled pipelines (MLP-B, RNN-B, the
/// baselines): a shard-local [`FlowTracker`] mirrors the switch's per-flow
/// feature state, and inference goes through the flattened LUTs.
pub(crate) struct StatelessShard<'a> {
    dp: &'a DataplaneModel,
    flat: Option<(&'a FlatProgram, FlatScratch)>,
    features: StreamFeatures,
    tracker: FlowTracker,
    codes: Vec<f32>,
}

impl<'a> StatelessShard<'a> {
    pub(crate) fn new(dp: &'a DataplaneModel, features: StreamFeatures) -> Self {
        StatelessShard {
            dp,
            flat: dp.flat().map(|f| (f, f.scratch())),
            features,
            tracker: FlowTracker::new(WINDOW),
            codes: Vec::with_capacity(2 * WINDOW),
        }
    }
}

impl ShardProcessor for StatelessShard<'_> {
    fn process(&mut self, pkt: &TracePacket) -> Result<Option<usize>, PegasusError> {
        let (obs, state) = self.tracker.observe(pkt.flow, pkt.ts_micros, pkt.wire_len);
        if !state.window_full() {
            return Ok(None);
        }
        self.codes.clear();
        match self.features {
            StreamFeatures::Stat => {
                let stat = StatFeatures::extract(
                    state,
                    &obs,
                    pkt.flow.protocol,
                    pkt.tcp_flags,
                    pkt.flow.src_port,
                    pkt.flow.dst_port,
                    pkt.ttl,
                    pkt.payload_head.len() as u16,
                );
                self.codes.extend(stat.0.iter().map(|&b| f32::from(b)));
            }
            StreamFeatures::Seq => {
                // Interleaved (len, IPD) codes, oldest first — identical to
                // `SeqFeatures::extract(..).to_f32_interleaved()` without
                // the per-packet allocations.
                let tail = &state.window[state.window.len() - WINDOW..];
                for o in tail {
                    self.codes.push(f32::from(quantize_len(o.wire_len)));
                    self.codes.push(f32::from(quantize_ipd(o.ipd_micros)));
                }
            }
        }
        let class = match &mut self.flat {
            Some((flat, scratch)) => flat.classify(&self.codes, scratch)?,
            None => self.dp.classify(&self.codes)?,
        };
        Ok(Some(class))
    }

    fn flows(&self) -> u64 {
        self.tracker.len() as u64
    }
}

/// Shard worker for per-flow windowed pipelines (CNN-L): owns a fresh-state
/// [`fork`](FlowClassifier::fork) of the classifier, so per-flow register
/// RMWs run through the lock-free `&mut` path.
pub(crate) struct FlowShard {
    fc: FlowClassifier,
    arity: usize,
    codes: Vec<f32>,
    flows: std::collections::HashSet<FiveTuple>,
}

impl FlowShard {
    pub(crate) fn new(fc: FlowClassifier) -> Self {
        let arity = fc.pipeline().extractor_fields.len();
        FlowShard { fc, arity, codes: Vec::with_capacity(arity), flows: Default::default() }
    }
}

impl ShardProcessor for FlowShard {
    fn process(&mut self, pkt: &TracePacket) -> Result<Option<usize>, PegasusError> {
        self.codes.clear();
        self.codes.extend(
            pkt.payload_head
                .iter()
                .take(self.arity)
                .map(|&b| f32::from(b))
                .chain(std::iter::repeat(0.0))
                .take(self.arity),
        );
        self.flows.insert(pkt.flow);
        let verdict = self.fc.on_packet_mut(
            pkt.flow.dataplane_hash(),
            pkt.ts_micros,
            pkt.wire_len,
            &self.codes,
        )?;
        Ok(verdict.predicted)
    }

    fn flows(&self) -> u64 {
        self.flows.len() as u64
    }
}

struct WorkerOut {
    stats: ShardStats,
    preds: HashMap<FiveTuple, Vec<usize>>,
    err: Option<PegasusError>,
}

/// Drives a source through `shards` worker threads (see module docs).
///
/// The wall clock starts before the first packet is pulled, so source
/// generation cost is part of the measured pipeline — like a replay server
/// feeding a switch.
pub(crate) fn run_stream<P, F>(
    source: &mut dyn PacketSource,
    cfg: &StreamConfig,
    mut make: F,
) -> Result<StreamReport, PegasusError>
where
    P: ShardProcessor,
    F: FnMut(usize) -> P,
{
    let shards = cfg.shards.max(1);
    let batch = cfg.batch.max(1);
    let record = cfg.record_predictions;
    let mut processors: Vec<P> = (0..shards).map(&mut make).collect();

    let start = Instant::now();
    let outs: Vec<WorkerOut> = std::thread::scope(|scope| {
        let mut txs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (shard, mut proc_) in processors.drain(..).enumerate() {
            let (tx, rx) = sync_channel::<Vec<TracePacket>>(cfg.queue_batches.max(1));
            txs.push(tx);
            handles.push(scope.spawn(move || {
                let mut stats = ShardStats::new(shard);
                let mut preds: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
                let mut err = None;
                'drain: while let Ok(batch) = rx.recv() {
                    for pkt in &batch {
                        let t0 = Instant::now();
                        let verdict = proc_.process(pkt);
                        let nanos = t0.elapsed().as_nanos() as u64;
                        stats.busy_nanos += nanos;
                        stats.latency.record(nanos);
                        stats.packets += 1;
                        match verdict {
                            Ok(Some(class)) => {
                                stats.classified += 1;
                                if record {
                                    preds.entry(pkt.flow).or_default().push(class);
                                }
                            }
                            Ok(None) => stats.warmup += 1,
                            Err(e) => {
                                err = Some(e);
                                break 'drain;
                            }
                        }
                    }
                }
                stats.flows = proc_.flows();
                WorkerOut { stats, preds, err }
            }));
        }

        // Dispatch on the calling thread: RSS-style flow sharding with
        // batched sends. A closed channel means its worker died on an
        // error; stop feeding everyone, the error surfaces after join.
        let mut pending: Vec<Vec<TracePacket>> = vec![Vec::with_capacity(batch); shards];
        'dispatch: while let Some(pkt) = source.next_packet() {
            let shard = pkt.flow.shard_of(shards);
            pending[shard].push(pkt);
            if pending[shard].len() == batch {
                let full = std::mem::replace(&mut pending[shard], Vec::with_capacity(batch));
                if txs[shard].send(full).is_err() {
                    break 'dispatch;
                }
            }
        }
        for (shard, rest) in pending.into_iter().enumerate() {
            if !rest.is_empty() {
                let _ = txs[shard].send(rest);
            }
        }
        drop(txs);
        handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
    });
    let elapsed_nanos = start.elapsed().as_nanos() as u64;

    let mut shards_stats = Vec::with_capacity(shards);
    let mut latency = LatencyHistogram::default();
    let mut predictions: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    let (mut packets, mut classified, mut warmup, mut flows) = (0u64, 0u64, 0u64, 0u64);
    let mut first_err = None;
    for out in outs {
        if let Some(e) = out.err {
            first_err.get_or_insert(e);
        }
        packets += out.stats.packets;
        classified += out.stats.classified;
        warmup += out.stats.warmup;
        flows += out.stats.flows;
        latency.merge(&out.stats.latency);
        // Flows are shard-partitioned: no key collisions across workers.
        predictions.extend(out.preds);
        shards_stats.push(out.stats);
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok(StreamReport {
        shards: shards_stats,
        packets,
        classified,
        warmup,
        flows,
        elapsed_nanos,
        latency,
        predictions: record.then_some(predictions),
    })
}

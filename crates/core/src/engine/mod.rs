//! The streaming packet engine: multi-core, sharded, per-packet inference.
//!
//! The engine turns deployed models from one-sample-at-a-time classifiers
//! into a packet-rate serving runtime, the role the physical switch plays
//! in the paper's testbed (§7.1) — and it is where the repo's throughput
//! numbers (`BENCH_throughput.json`) come from. Since the control-plane
//! redesign it is a *long-lived service*: the [`server`] module hosts the
//! [`EngineServer`], whose worker shards run
//! persistently, serve multiple tenants concurrently, and hot-swap
//! artifacts without draining traffic —
//! [`Deployment::stream`](crate::pipeline::Deployment::stream) is now a
//! thin one-tenant wrapper over it.
//!
//! # Design
//!
//! ```text
//!     IngressHandle.push(pkt)          ControlHandle
//!             │                  attach / swap / detach / stats
//!      ┌──────▼──────┐                  │
//!      │ dispatcher  │◄─────────────────┘   in-band control msgs,
//!      │ route tenant│    shard = hash(bidirectional
//!      │ (RSS-style) │            five-tuple) % N
//!      └─┬────┬────┬─┘
//!  batched  │    │    │     bounded channels (backpressure)
//!  ┌────────┘    │    └────────┐
//! ┌▼─────────┐ ┌─▼────────┐ ┌──▼───────┐
//! │ shard 0  │ │ shard 1  │ │ shard N-1│   each shard: one exec +
//! │ T1 T2 …  │ │ T1 T2 …  │ │ T1 T2 …  │   FlowState per *tenant*
//! └──────────┘ └──────────┘ └──────────┘
//! ```
//!
//! Three properties fall out of hashing flows to shards by their
//! *bidirectional* five-tuple key ([`pegasus_net::FiveTuple::shard_of`]):
//!
//! * **No locks on the hot path.** All per-flow state — host-side windows
//!   ([`FlowTracker`]) for pipelines that consume extracted features, and
//!   the per-flow *registers* of windowed flow pipelines (each shard owns a
//!   [`fork`](crate::flowpipe::FlowClassifier::fork) of the classifier) —
//!   is owned by exactly one shard. The per-packet register lock the shared
//!   runtime takes ([`LoadedProgram::process`](pegasus_switch::LoadedProgram::process))
//!   disappears: shards go through the `&mut self` lock-free paths.
//! * **Per-flow determinism.** A flow's packets are processed by one worker
//!   in arrival order, so for stateless pipelines (host flow state keyed
//!   exactly by five-tuple) streaming results are bit-identical to a
//!   sequential replay regardless of the shard count (asserted by
//!   `tests/stream_engine.rs`). Per-flow *register* pipelines inherit the
//!   hardware's hash-slot aliasing: colliding flows' verdicts depend on
//!   which flows share a register file, so they can differ across shard
//!   counts (more shards, fewer collisions).
//! * **Linear scaling.** Shards share nothing; on a machine with enough
//!   cores, throughput scales with the shard count until dispatch or the
//!   source becomes the bottleneck.
//!
//! Inference itself runs through the [`flat`] module's flattened-LUT
//! representation of the compiled pipeline — contiguous arrays baked at
//! deploy time — instead of the allocation-heavy switch simulator; see
//! [`FlatProgram`] for the exact guarantees.

pub mod flat;
pub mod raw;
pub mod server;
pub mod stats;

pub use flat::{FlatBatchScratch, FlatProgram, FlatScratch, FlattenSkip};
pub use raw::{RawIngress, RawVerdict, DEFAULT_BATCH_FRAMES};
pub use server::{
    ControlHandle, EngineArtifact, EngineBuilder, EngineReport, EngineServer, EngineStats,
    FramePush, IngressHandle, PredicateRouter, SwapReport, TenantConfig, TenantRoute, TenantRouter,
    TenantStats, TenantToken,
};
pub use stats::{
    ArtifactCounters, FlowTableCounters, LatencyHistogram, ParseErrorCounters, RoutingCounters,
    ShardStats, StreamReport, SwapCounters,
};

use crate::error::PegasusError;
use crate::flowpipe::FlowClassifier;
use crate::models::StreamFeatures;
use crate::runtime::DataplaneModel;
use pegasus_net::{
    quantize_ipd, quantize_len, FiveTuple, FlowState, FlowTable, FlowTableConfig, FlowTracker,
    FrameBatch, PacketObs, StatFeatures, TracePacket, WINDOW,
};
use std::sync::Arc;

/// Per-flow stateful bits a *stateless* (register-free) pipeline's host
/// flow table models on the switch: `WINDOW` packets times a 16-bit
/// (length code, IPD code) pair, plus a 32-bit truncated timestamp and
/// the 8-bit warm-up counter. This is the switch-side equivalent of what
/// [`FlowTracker`] feeds the model, and what per-tenant state budgets are
/// priced in (per-flow *register* pipelines use their real per-slot SRAM
/// instead).
pub const HOST_WINDOW_STATE_BITS: u64 = (WINDOW as u64) * 16 + 32 + 8;

/// Streaming-run configuration of the legacy one-shot wrappers
/// ([`Deployment::stream_with`](crate::pipeline::Deployment::stream_with)).
///
/// Out-of-domain values are silently *clamped* to 1 by those wrappers —
/// the behavior the pre-server API always had, kept for compatibility.
/// The server path's [`EngineBuilder`] instead
/// rejects them with [`PegasusError::InvalidConfig`].
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    /// Worker shards (legacy path: clamped to at least 1).
    pub shards: usize,
    /// Record every per-flow classification in the report (costs one
    /// `Vec<usize>` per flow; used by determinism tests and accuracy
    /// evaluation, off for pure throughput runs).
    pub record_predictions: bool,
    /// Packets per dispatch batch. Batching amortizes channel overhead;
    /// per-flow ordering is unaffected (legacy path: clamped to at least 1).
    pub batch: usize,
    /// Bounded per-shard queue depth, in batches (backpressure; legacy
    /// path: clamped to at least 1).
    pub queue_batches: usize,
    /// Per-shard flow-table shape for host flow state (capacity, aging,
    /// alias mode). Every shard owns a full table of this capacity, the
    /// same way every shard forks a full register file. The default
    /// (4096 slots, no aging) matches the pre-bounded behavior for any
    /// workload under that many concurrent flows per shard.
    pub flow_table: FlowTableConfig,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            record_predictions: false,
            batch: 256,
            queue_batches: 8,
            flow_table: FlowTableConfig::default(),
        }
    }
}

/// Shard-owned execution state for stateless compiled pipelines (MLP-B,
/// RNN-B, the baselines): a shard-local [`FlowTracker`] mirrors the
/// switch's per-flow feature state, and inference goes through the
/// flattened LUTs. Owned by a server worker for the tenant's lifetime —
/// across [`swap`](StatelessShard::swap)s the tracker (the flow feature
/// windows) is retained, so established flows keep classifying under the
/// new artifact without re-warming.
pub(crate) struct StatelessShard {
    dp: Arc<DataplaneModel>,
    scratch: Option<FlatScratch>,
    features: StreamFeatures,
    tracker: FlowTracker,
    codes: Vec<f32>,
    /// Batched-path state (all reused across batches, allocation-free in
    /// steady state): lane-major code slab of the batch's full-window
    /// packets, their batch positions, the classes the LUT sweep produced,
    /// the batch execution scratch, and the per-batch flow → slot cache
    /// that turns repeat packets of one flow into hinted O(1) admissions.
    batch_scratch: Option<FlatBatchScratch>,
    batch_codes: Vec<f32>,
    batch_rows: Vec<usize>,
    batch_classes: Vec<usize>,
    slot_cache: Vec<(FiveTuple, usize)>,
}

impl StatelessShard {
    pub(crate) fn new(
        dp: Arc<DataplaneModel>,
        features: StreamFeatures,
        table: FlowTableConfig,
    ) -> Self {
        StatelessShard {
            scratch: dp.flat().map(|f| f.scratch()),
            batch_scratch: dp.flat().map(|f| f.batch_scratch(0)),
            dp,
            features,
            tracker: FlowTracker::bounded(WINDOW, table),
            codes: Vec::with_capacity(2 * WINDOW),
            batch_codes: Vec::new(),
            batch_rows: Vec::new(),
            batch_classes: Vec::new(),
            slot_cache: Vec::new(),
        }
    }

    /// Swaps the executed artifact, retaining the flow feature windows —
    /// host flow state is keyed by five-tuple alone, so it is valid under
    /// any stateless artifact (the paper's table-entry-rewrite story).
    pub(crate) fn swap(&mut self, dp: Arc<DataplaneModel>, features: StreamFeatures) {
        self.scratch = dp.flat().map(|f| f.scratch());
        self.batch_scratch = dp.flat().map(|f| f.batch_scratch(0));
        self.dp = dp;
        self.features = features;
    }

    pub(crate) fn process(&mut self, pkt: &TracePacket) -> Result<Option<usize>, PegasusError> {
        self.process_parts(
            pkt.flow,
            pkt.ts_micros,
            pkt.wire_len,
            pkt.tcp_flags,
            pkt.ttl,
            pkt.payload_head.len() as u16,
        )
    }

    /// The same hot path fed from disaggregated header fields — what the
    /// zero-copy raw ingress extracts straight from frame bytes, with no
    /// [`TracePacket`] materialized in between.
    pub(crate) fn process_parts(
        &mut self,
        flow: pegasus_net::FiveTuple,
        ts_micros: u64,
        wire_len: u16,
        tcp_flags: u8,
        ttl: u8,
        payload_len: u16,
    ) -> Result<Option<usize>, PegasusError> {
        let (obs, _, state) = self.tracker.observe_admit(flow, ts_micros, wire_len);
        if !state.window_full() {
            return Ok(None);
        }
        self.codes.clear();
        Self::extend_codes(
            self.features,
            state,
            &obs,
            flow,
            tcp_flags,
            ttl,
            payload_len,
            &mut self.codes,
        );
        let class = match (self.dp.flat(), &mut self.scratch) {
            (Some(flat), Some(scratch)) => flat.classify(&self.codes, scratch)?,
            _ => self.dp.classify(&self.codes)?,
        };
        Ok(Some(class))
    }

    /// Appends one packet's feature codes to `out` — the single definition
    /// of the codes layout shared by the per-packet and batched paths (an
    /// associated fn so callers can hold the tracker's `state` borrow while
    /// writing into a disjoint buffer field).
    #[allow(clippy::too_many_arguments)]
    fn extend_codes(
        features: StreamFeatures,
        state: &FlowState,
        obs: &PacketObs,
        flow: FiveTuple,
        tcp_flags: u8,
        ttl: u8,
        payload_len: u16,
        out: &mut Vec<f32>,
    ) {
        match features {
            StreamFeatures::Stat => {
                let stat = StatFeatures::extract(
                    state,
                    obs,
                    flow.protocol,
                    tcp_flags,
                    flow.src_port,
                    flow.dst_port,
                    ttl,
                    payload_len,
                );
                out.extend(stat.0.iter().map(|&b| f32::from(b)));
            }
            StreamFeatures::Seq => {
                // Interleaved (len, IPD) codes, oldest first — identical to
                // `SeqFeatures::extract(..).to_f32_interleaved()` without
                // the per-packet allocations.
                let tail = &state.window[state.window.len() - WINDOW..];
                for o in tail {
                    out.push(f32::from(quantize_len(o.wire_len)));
                    out.push(f32::from(quantize_ipd(o.ipd_micros)));
                }
            }
        }
    }

    /// The fused batched hot path: resolves every frame's flow slot
    /// sequentially (per-packet admission clock semantics are part of the
    /// bit-identity contract), using a per-batch flow → slot cache so
    /// repeat packets of one flow skip the probe chain, then defers all
    /// full-window classifications to one [`FlatProgram::classify_batch`]
    /// sweep. `verdicts[i]` is the verdict for `batch` frame `i` — `None`
    /// while the flow is still warming up.
    ///
    /// Classification is pure (flow state was already updated during slot
    /// resolution), so deferring it is observationally identical to the
    /// per-packet path — the differential suite in `tests/raw_path.rs`
    /// holds this to bit-identical verdicts *and* flow-table counters.
    pub(crate) fn process_batch(
        &mut self,
        batch: &FrameBatch,
        verdicts: &mut Vec<Option<usize>>,
    ) -> Result<(), PegasusError> {
        verdicts.clear();
        verdicts.resize(batch.len(), None);
        self.batch_codes.clear();
        self.batch_rows.clear();
        self.slot_cache.clear();
        let flows = batch.flows();
        let ts = batch.ts_micros();
        let wires = batch.wire_lens();
        let flags = batch.tcp_flags();
        let ttls = batch.ttls();
        let plens = batch.payload_lens();
        for i in 0..batch.len() {
            let flow = flows[i];
            let cached = self.slot_cache.iter().position(|(f, _)| *f == flow);
            let hint = cached.map(|p| self.slot_cache[p].1);
            let (obs, _, idx, state) =
                self.tracker.observe_admit_hinted(flow, ts[i], wires[i], hint);
            match cached {
                Some(p) => self.slot_cache[p].1 = idx,
                None => self.slot_cache.push((flow, idx)),
            }
            if !state.window_full() {
                continue;
            }
            Self::extend_codes(
                self.features,
                state,
                &obs,
                flow,
                flags[i],
                ttls[i],
                plens[i],
                &mut self.batch_codes,
            );
            self.batch_rows.push(i);
        }
        let lanes = self.batch_rows.len();
        if lanes == 0 {
            return Ok(());
        }
        match (self.dp.flat(), &mut self.batch_scratch) {
            (Some(flat), Some(scratch)) => {
                flat.classify_batch(&self.batch_codes, lanes, scratch, &mut self.batch_classes)?;
            }
            _ => {
                self.batch_classes.clear();
                let arity = self.batch_codes.len() / lanes;
                for row in self.batch_codes.chunks_exact(arity) {
                    self.batch_classes.push(self.dp.classify(row)?);
                }
            }
        }
        for (j, &i) in self.batch_rows.iter().enumerate() {
            verdicts[i] = Some(self.batch_classes[j]);
        }
        Ok(())
    }

    pub(crate) fn table_counters(&self) -> FlowTableCounters {
        let s = self.tracker.table_stats();
        FlowTableCounters {
            occupancy: self.tracker.len() as u64,
            capacity: self.tracker.capacity() as u64,
            evictions_idle: s.evicted_idle,
            evictions_capacity: s.evicted_capacity,
            alias_collisions: s.alias_collisions,
            state_bytes: self.tracker.state_bytes(),
        }
    }
}

/// An in-flight adopt-on-first-touch register transplant: the outgoing
/// classifier's detached register file plus a bitmap of which flow slots
/// have already been migrated into the new fork.
///
/// [`FlowShard::swap`] starts one of these instead of cloning the whole
/// register file under the swap (the old stop-the-world transplant); each
/// flow's slot is then copied the first time that flow is touched under
/// the new epoch, so the apply itself is O(1) in flows and the copy cost
/// is amortized across the packets that actually need the state. The old
/// file — the ≤ 2× register-SRAM memory bound — is dropped as soon as
/// every slot has been adopted, or early when the optional packet-count
/// grace window runs out (remaining flows then re-warm from zeroed
/// registers, exactly as a state-incompatible swap would force).
struct PendingTransplant {
    old: pegasus_switch::RegFile,
    migrated: Vec<bool>,
    remaining: usize,
    grace_left: Option<u64>,
}

/// Shard-owned execution state for per-flow windowed pipelines (CNN-L):
/// owns a fresh-state [`fork`](FlowClassifier::fork) of the classifier, so
/// per-flow register RMWs run through the lock-free `&mut` path. Across
/// [`swap`](FlowShard::swap)s to a state-compatible artifact the per-flow
/// register file (code windows, timestamps, warm-up counters) is
/// transplanted into the new classifier slot by slot, on each flow's
/// first touch under the new artifact (see [`PendingTransplant`]).
///
/// Occupancy is accounted by a [`FlowTable`] in alias mode sized exactly
/// like the classifier's register files (one slot per hash index): it
/// mirrors, slot for slot, which flow currently owns each register entry,
/// so `flows` is the *hardware-faithful* count — hash-colliding flows
/// share a slot and count once — and every ownership change surfaces as an
/// `alias_collisions` tick. The old code kept an unbounded
/// `HashSet<FiveTuple>` here, which both lied about the hardware (it
/// counted flows the registers had already aliased together) and grew
/// without bound under churn.
pub(crate) struct FlowShard {
    fc: FlowClassifier,
    arity: usize,
    codes: Vec<f32>,
    slots: FlowTable<()>,
    transplant: Option<PendingTransplant>,
    adopted_slots: u64,
    transplants_completed: u64,
    transplants_expired: u64,
}

impl FlowShard {
    pub(crate) fn new(fc: FlowClassifier) -> Self {
        let arity = fc.pipeline().extractor_fields.len();
        let slots = FlowTable::new(FlowTableConfig::aliased(fc.flow_slots()));
        FlowShard {
            fc,
            arity,
            codes: Vec::with_capacity(arity),
            slots,
            transplant: None,
            adopted_slots: 0,
            transplants_completed: 0,
            transplants_expired: 0,
        }
    }

    /// Swaps in a fork of `source`. When the pipelines are
    /// state-compatible the old register file is *detached* and adopted
    /// slot by slot as flows are touched (see [`PendingTransplant`]) —
    /// the swap itself never walks the register file, so the apply is
    /// O(1) regardless of flow count. Returns whether state was retained
    /// (`false` means flows re-warm under the new artifact — the
    /// slot-occupancy metric resets with them, matching a from-scratch
    /// rebuild).
    ///
    /// `grace_packets` bounds how many packets the detached file may
    /// outlive the swap (0 = until drained). At most one transplant is
    /// pending at a time: a chained swap first completes the previous
    /// one eagerly (O(slots), and only on back-to-back swaps), so the
    /// memory bound stays ≤ 2× register SRAM.
    pub(crate) fn swap(&mut self, source: &FlowClassifier, grace_packets: u64) -> bool {
        let fresh = source.fork();
        let retained = fresh.state_compatible(&self.fc);
        self.arity = fresh.pipeline().extractor_fields.len();
        if !retained {
            self.slots = FlowTable::new(FlowTableConfig::aliased(fresh.flow_slots()));
            self.transplant = None;
            self.fc = fresh;
            return false;
        }
        self.complete_transplant();
        let old = self.fc.take_registers();
        let slots = self.fc.flow_slots();
        self.fc = fresh;
        self.transplant = Some(PendingTransplant {
            old,
            migrated: vec![false; slots],
            remaining: slots,
            grace_left: (grace_packets > 0).then_some(grace_packets),
        });
        retained
    }

    /// Eagerly migrates every not-yet-adopted slot of the pending
    /// transplant into the current classifier, then drops the old file.
    fn complete_transplant(&mut self) {
        if let Some(t) = self.transplant.take() {
            for slot in 0..t.migrated.len() {
                if !t.migrated[slot] {
                    self.fc.adopt_slot(&t.old, slot);
                    self.adopted_slots += 1;
                }
            }
            self.transplants_completed += 1;
        }
    }

    /// The adopt-on-first-touch step, run before each packet while a
    /// transplant is pending: migrate this flow's slot if it still holds
    /// pre-swap state, then retire the transplant once drained or once
    /// the grace window expires.
    fn adopt_on_touch(&mut self, flow_hash: u32) {
        let Some(t) = self.transplant.as_mut() else { return };
        let slot = self.fc.flow_slot(flow_hash);
        if !t.migrated[slot] {
            t.migrated[slot] = true;
            t.remaining -= 1;
            self.fc.adopt_slot(&t.old, slot);
            self.adopted_slots += 1;
        }
        let t = self.transplant.as_mut().expect("transplant checked above");
        if t.remaining == 0 {
            self.transplants_completed += 1;
            self.transplant = None;
        } else if let Some(g) = t.grace_left.as_mut() {
            *g -= 1;
            if *g == 0 {
                self.transplants_expired += 1;
                self.transplant = None;
            }
        }
    }

    pub(crate) fn swap_counters(&self, swap: &mut SwapCounters) {
        swap.adopted_slots = self.adopted_slots;
        swap.pending_slots = self.transplant.as_ref().map_or(0, |t| t.remaining as u64);
        swap.transplants_completed = self.transplants_completed;
        swap.transplants_expired = self.transplants_expired;
    }

    pub(crate) fn process(&mut self, pkt: &TracePacket) -> Result<Option<usize>, PegasusError> {
        self.process_parts(pkt.flow, pkt.ts_micros, pkt.wire_len, &pkt.payload_head)
    }

    /// The same hot path fed from a borrowed payload slice — the raw
    /// ingress hands the parsed frame's payload sub-slice directly, no
    /// copy into an owned `payload_head` needed.
    pub(crate) fn process_parts(
        &mut self,
        flow: pegasus_net::FiveTuple,
        ts_micros: u64,
        wire_len: u16,
        payload: &[u8],
    ) -> Result<Option<usize>, PegasusError> {
        self.codes.clear();
        self.codes.extend(
            payload
                .iter()
                .take(self.arity)
                .map(|&b| f32::from(b))
                .chain(std::iter::repeat(0.0))
                .take(self.arity),
        );
        let hash = flow.dataplane_hash();
        if self.transplant.is_some() {
            self.adopt_on_touch(hash);
        }
        self.slots.admit(flow, || ());
        let verdict = self.fc.on_packet_mut(hash, ts_micros, wire_len, &self.codes)?;
        Ok(verdict.predicted)
    }

    /// Batched entry point over a pre-parsed [`FrameBatch`]. Per-flow
    /// register pipelines are RMW-sequential by construction (each packet's
    /// verdict depends on the register file the previous packet of the
    /// same flow left behind), so the win here is the amortized parse and
    /// per-batch timing, not fused execution — the loop stays packet-at-a-
    /// time and therefore trivially bit-identical.
    pub(crate) fn process_batch(
        &mut self,
        batch: &FrameBatch,
        verdicts: &mut Vec<Option<usize>>,
    ) -> Result<(), PegasusError> {
        verdicts.clear();
        let flows = batch.flows();
        let ts = batch.ts_micros();
        let wires = batch.wire_lens();
        for i in 0..batch.len() {
            let v = self.process_parts(flows[i], ts[i], wires[i], batch.payload_head(i))?;
            verdicts.push(v);
        }
        Ok(())
    }

    pub(crate) fn table_counters(&self) -> FlowTableCounters {
        FlowTableCounters {
            occupancy: self.slots.len() as u64,
            capacity: self.slots.capacity() as u64,
            evictions_idle: 0,
            evictions_capacity: 0,
            alias_collisions: self.slots.stats().alias_collisions,
            // The bytes that matter here are the register SRAM the slots
            // model on the switch, not the host-side bookkeeping.
            state_bytes: self.fc.register_state_bits() / 8,
        }
    }
}

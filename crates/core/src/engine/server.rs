//! The live serving control plane: a long-lived, multi-tenant engine.
//!
//! Pegasus's production claim is runtime reconfigurability: once the P4
//! program is on the switch, the control plane retargets it to a new model
//! by rewriting table entries — no recompile, no traffic drain. This module
//! is that claim as an API. An [`EngineServer`] is built once
//! ([`EngineBuilder`]) and its shard workers run persistently; packets
//! arrive through a push-based, bounded, backpressured [`IngressHandle`];
//! and a [`ControlHandle`] drives the dataplane while it serves:
//!
//! * [`attach`](ControlHandle::attach) registers a model under a routing
//!   predicate — multiple tenants serve concurrently, packets steered to
//!   one of them by a *compiled* routing plane: every attach/detach
//!   recompiles the live tenant set into an immutable
//!   [`CompiledRouter`] (dst-port LUT, src/dst prefix tries, protocol
//!   filter, residual scan) published to the dispatcher as an `Arc`
//!   swap, so per-packet steering cost is independent of the tenant
//!   count and rebuilds never stall ingress. Identical artifacts are
//!   content-hash deduplicated across tenants, and an optional
//!   fleet-wide SRAM ceiling ([`EngineBuilder::fleet_state_budget_bits`])
//!   bounds aggregate state. A custom [`TenantRouter`] can replace the
//!   compiled plane entirely (first-match [`PredicateRouter`] is the
//!   reference implementation);
//! * [`swap`](ControlHandle::swap) hot-swaps a tenant's compiled artifact
//!   via epoch/RCU publication — the control plane validates, commits the
//!   new `Arc` into the tenant entry, and returns without draining a
//!   single queue; each shard adopts the new epoch at its next packet
//!   boundary. Flow feature windows and per-flow register files are
//!   *retained* across swaps of compatible pipelines — migrated slot by
//!   slot as flows are touched under the new epoch — so established flows
//!   keep classifying without re-warming (the table-entry-rewrite story);
//! * [`detach`](ControlHandle::detach) drains a tenant's in-flight batches
//!   and returns its final report without disturbing other tenants;
//! * [`stats`](ControlHandle::stats) snapshots live per-tenant/per-shard
//!   [`StreamReport`]s from worker-published counters without stopping the
//!   engine;
//! * [`EngineServer::shutdown`] drains every queue, joins the workers, and
//!   returns the terminal per-tenant reports.
//!
//! # Ordering guarantees
//!
//! `attach` and `detach` are serialized with ingress through the
//! dispatcher: their control messages travel in-band on each shard's FIFO
//! channel, so a detach takes effect after every packet pushed before the
//! call and before every packet pushed after it.
//!
//! `swap` is deliberately weaker — and therefore stall-free. The new
//! artifact is published epoch/RCU-style into the tenant entry (an atomic
//! epoch hint plus a mutex-guarded `(epoch, Arc)` slot); each shard
//! compares the hint against its locally applied epoch at every packet
//! boundary and adopts the publication when they differ. The guarantee
//! is one-sided: every packet pushed *after* `swap` returns is processed
//! under the new artifact, while packets pushed before the call but
//! still queued may land on either side of the boundary (the flip can
//! only move *earlier*, never later). No queue is drained and the
//! dispatcher lock is held only for the O(1) validate-and-commit, so
//! apply latency is microseconds regardless of queue depth. Callers that
//! need the old exact boundary (the equivalence tests in
//! `tests/stream_engine.rs`) quiesce first: flush, wait for the packet
//! counters to settle, then swap.
//!
//! Per-flow register state survives a state-compatible swap without a
//! stop-the-world transplant: the outgoing register file is detached and
//! each flow's slot is copied into the new fork the first time that flow
//! is touched under the new epoch (see `SwapCounters` for the progress
//! counters and the grace-window memory bound).
//!
//! The legacy one-shot [`Deployment::stream`](crate::pipeline::Deployment::stream) /
//! [`stream_with`](crate::pipeline::Deployment::stream_with) calls are thin
//! wrappers over this server: build, attach one catch-all tenant, feed the
//! source, shut down.

use crate::engine::stats::{
    ArtifactCounters, LatencyHistogram, ParseErrorCounters, RoutingCounters, ShardStats,
    StreamReport, SwapCounters,
};
use crate::engine::{FlattenSkip, FlowShard, StatelessShard, HOST_WINDOW_STATE_BITS};
use crate::error::PegasusError;
use crate::flowpipe::FlowClassifier;
use crate::models::StreamFeatures;
use crate::runtime::DataplaneModel;
use pegasus_net::wire::parse_frame;
use pegasus_net::{
    CompiledRouter, FiveTuple, FlowTableConfig, FrameSource, PacketSource, ParseError, RawFrame,
    RouteHit, RoutePredicate, TracePacket,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// A compiled-and-deployed model in the form the serving engine executes:
/// the switch-side artifact (flattened LUTs or a per-flow register
/// pipeline) plus its streaming feature family, detached from the trained
/// float model. Obtained from
/// [`Deployment::engine_artifact`](crate::pipeline::Deployment::engine_artifact);
/// attach one per tenant, or hand a fresh one to
/// [`ControlHandle::swap`].
pub struct EngineArtifact {
    pub(crate) plane: ArtifactPlane,
    pub(crate) features: StreamFeatures,
    pub(crate) name: String,
    /// Stateful bits one flow-table slot costs under this artifact:
    /// real per-slot register SRAM for per-flow pipelines,
    /// [`HOST_WINDOW_STATE_BITS`] (the switch-side window mirror) for
    /// register-free ones.
    pub(crate) state_bits_per_flow: u64,
    /// The stateful-SRAM budget of the switch model this artifact was
    /// deployed against (`register_bits_total`) — the ceiling per-tenant
    /// state budgets are validated under.
    pub(crate) state_budget_bits: u64,
}

pub(crate) enum ArtifactPlane {
    Stateless(Arc<DataplaneModel>),
    Flow(Arc<FlowClassifier>),
}

impl EngineArtifact {
    pub(crate) fn stateless(dp: Arc<DataplaneModel>, features: StreamFeatures, name: &str) -> Self {
        let budget = dp.switch_config().register_bits_total;
        EngineArtifact {
            plane: ArtifactPlane::Stateless(dp),
            features,
            name: name.to_string(),
            state_bits_per_flow: HOST_WINDOW_STATE_BITS,
            state_budget_bits: budget,
        }
    }

    pub(crate) fn flow(fc: Arc<FlowClassifier>, name: &str) -> Self {
        let (bits, budget) = (fc.state_bits_per_slot(), fc.switch_config().register_bits_total);
        // Flow pipelines consume raw packets; the feature tag is unused.
        EngineArtifact {
            plane: ArtifactPlane::Flow(fc),
            features: StreamFeatures::Seq,
            name: name.to_string(),
            state_bits_per_flow: bits,
            state_budget_bits: budget,
        }
    }

    /// Builds a servable artifact straight from a compiled stateless
    /// pipeline by deploying it against `switch` — the path the control
    /// daemon takes when it revives a persisted artifact file (there is
    /// no live [`Deployment`](crate::pipeline::Deployment) to call
    /// [`engine_artifact`](crate::pipeline::Deployment::engine_artifact)
    /// on). Same gates as the builder path: deployment re-verifies the
    /// pipeline, and score-only pipelines are rejected with
    /// [`PegasusError::NotAClassifier`].
    pub fn from_compiled_pipeline(
        pipeline: crate::compile::CompiledPipeline,
        features: StreamFeatures,
        switch: &pegasus_switch::SwitchConfig,
    ) -> Result<Self, PegasusError> {
        if pipeline.predicted_field.is_none() {
            return Err(PegasusError::NotAClassifier { pipeline: pipeline.program.name.clone() });
        }
        let name = pipeline.program.name.clone();
        let dp = DataplaneModel::deploy(pipeline, switch)?;
        Ok(EngineArtifact::stateless(Arc::new(dp), features, &name))
    }

    /// Builds a servable artifact from a per-flow windowed pipeline by
    /// deploying it against `switch` — the flow-plane counterpart of
    /// [`from_compiled_pipeline`](EngineArtifact::from_compiled_pipeline).
    pub fn from_flow_pipeline(
        pipeline: crate::flowpipe::FlowPipeline,
        switch: &pegasus_switch::SwitchConfig,
    ) -> Result<Self, PegasusError> {
        if pipeline.predicted_field.is_none() {
            return Err(PegasusError::NotAClassifier { pipeline: pipeline.program.name.clone() });
        }
        let name = pipeline.program.name.clone();
        let fc = FlowClassifier::deploy(pipeline, switch)?;
        Ok(EngineArtifact::flow(Arc::new(fc), &name))
    }

    /// The compiled program's name (diagnostics, default tenant name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Stateful bits one tracked flow (one table slot) costs under this
    /// artifact — per-slot register SRAM for per-flow pipelines, the
    /// host window mirror for register-free ones.
    pub fn state_bits_per_flow(&self) -> u64 {
        self.state_bits_per_flow
    }

    /// Per-flow register slots baked into the artifact (`None` for
    /// register-free pipelines, whose capacity is the tenant's host
    /// flow-table choice instead).
    pub fn flow_slots(&self) -> Option<usize> {
        match &self.plane {
            ArtifactPlane::Flow(fc) => Some(fc.flow_slots()),
            ArtifactPlane::Stateless(_) => None,
        }
    }

    /// The per-tenant flow-state capacity this artifact serves with under
    /// `table`: its own register slot count for per-flow pipelines, the
    /// configured host-table capacity otherwise.
    fn effective_capacity(&self, table: &FlowTableConfig) -> u64 {
        self.flow_slots().unwrap_or(table.capacity) as u64
    }

    /// Rejects a tenant flow-table configuration whose state cost exceeds
    /// the switch model's stateful-SRAM budget — the Figure 7 constraint
    /// as an attach-time check: `capacity × bits-per-flow` must fit
    /// `register_bits_total`. Shared with the single-pass
    /// [`RawIngress`](crate::engine::raw::RawIngress) constructor.
    pub(crate) fn validate_state_budget(
        &self,
        table: &FlowTableConfig,
    ) -> Result<(), PegasusError> {
        if table.capacity == 0 {
            return Err(PegasusError::InvalidConfig {
                field: "flow_capacity",
                reason: "must be at least 1",
            });
        }
        let needed = self.effective_capacity(table).saturating_mul(self.state_bits_per_flow);
        if needed > self.state_budget_bits {
            return Err(PegasusError::StateBudget {
                needed_bits: needed,
                budget_bits: self.state_budget_bits,
            });
        }
        Ok(())
    }

    /// Re-runs the static verifier over the artifact against the switch
    /// configuration it was deployed on. Attach and swap call this so a
    /// corrupt artifact — however it was produced — never reaches a
    /// serving shard.
    pub fn verify_report(&self) -> crate::verify::VerifyReport {
        match &self.plane {
            ArtifactPlane::Stateless(dp) => {
                crate::verify::verify_pipeline(dp.pipeline(), Some(dp.switch_config()))
            }
            ArtifactPlane::Flow(fc) => {
                crate::verify::verify_flow(fc.pipeline(), Some(fc.switch_config()))
            }
        }
    }

    /// Why this artifact does not run on the flattened-LUT hot path, if it
    /// doesn't: per-flow pipelines keep register state by design, and a
    /// stateless pipeline can carry stateful ops that force the simulator
    /// fallback. `None` means the tenant streams through flattened LUTs.
    pub fn flatten_skip(&self) -> Option<String> {
        match &self.plane {
            ArtifactPlane::Stateless(dp) => dp.flatten_skip().map(ToString::to_string),
            ArtifactPlane::Flow(fc) => Some(
                FlattenSkip::StatefulRegisters { registers: fc.pipeline().program.registers.len() }
                    .to_string(),
            ),
        }
    }

    /// The artifact's content identity for cross-tenant dedup: the
    /// serialized compiled pipeline plus the switch model and feature
    /// family it serves under. Two artifacts with equal content bytes are
    /// interchangeable on every shard, so the engine shares one `Arc`
    /// between their tenants (per-tenant flow tables and stats stay
    /// separate — each worker forks its own execution state from the
    /// shared program).
    fn content_bytes(&self) -> Vec<u8> {
        let mut w = serde::Writer::new();
        match &self.plane {
            ArtifactPlane::Stateless(dp) => {
                w.write_u8(0);
                serde::Serialize::serialize(dp.pipeline(), &mut w);
                serde::Serialize::serialize(dp.switch_config(), &mut w);
                serde::Serialize::serialize(&self.features, &mut w);
            }
            ArtifactPlane::Flow(fc) => {
                w.write_u8(1);
                serde::Serialize::serialize(fc.pipeline(), &mut w);
                serde::Serialize::serialize(fc.switch_config(), &mut w);
            }
        }
        w.into_bytes()
    }

    /// The aggregate-budget cost of serving this artifact under `table`:
    /// the same `capacity × bits-per-flow` product the per-tenant check
    /// validates, summed across the fleet by the engine.
    fn state_cost_bits(&self, table: &FlowTableConfig) -> u64 {
        self.effective_capacity(table).saturating_mul(self.state_bits_per_flow)
    }
}

/// FNV-1a over an artifact's content bytes — the dedup cache key. Hash
/// collisions are survivable (the cache confirms hits by comparing the
/// full content bytes), so a small fast non-cryptographic hash is enough.
fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-worker, per-tenant execution state: the shard-owned processor for
/// whichever artifact kind the tenant currently runs.
enum TenantExec {
    Stateless(Box<StatelessShard>),
    Flow(Box<FlowShard>),
}

impl TenantExec {
    fn new(artifact: &EngineArtifact, table: FlowTableConfig) -> TenantExec {
        match &artifact.plane {
            ArtifactPlane::Stateless(dp) => TenantExec::Stateless(Box::new(StatelessShard::new(
                dp.clone(),
                artifact.features,
                table,
            ))),
            ArtifactPlane::Flow(fc) => TenantExec::Flow(Box::new(FlowShard::new(fc.fork()))),
        }
    }

    /// Applies a hot swap; returns whether per-flow state was retained.
    /// For per-flow pipelines the apply is O(1): register state migrates
    /// adopt-on-first-touch afterwards, with `grace_packets` bounding how
    /// long the detached old file may live (0 = until drained).
    fn swap(&mut self, artifact: &EngineArtifact, table: FlowTableConfig, grace: u64) -> bool {
        match (&mut *self, &artifact.plane) {
            (TenantExec::Stateless(shard), ArtifactPlane::Stateless(dp)) => {
                // Host feature windows are keyed by five-tuple alone:
                // always valid under the new stateless artifact.
                shard.swap(dp.clone(), artifact.features);
                true
            }
            (TenantExec::Flow(shard), ArtifactPlane::Flow(fc)) => shard.swap(fc, grace),
            // Kind change: rebuild from scratch, state cannot carry over.
            (slot, _) => {
                *slot = TenantExec::new(artifact, table);
                false
            }
        }
    }

    fn process(&mut self, pkt: &TracePacket) -> Result<Option<usize>, PegasusError> {
        match self {
            TenantExec::Stateless(s) => s.process(pkt),
            TenantExec::Flow(s) => s.process(pkt),
        }
    }

    fn table_counters(&self) -> crate::engine::stats::FlowTableCounters {
        match self {
            TenantExec::Stateless(s) => s.table_counters(),
            TenantExec::Flow(s) => s.table_counters(),
        }
    }

    /// Refreshes the transplant-progress gauges (apply-side counters are
    /// maintained by the worker that performed the apply).
    fn swap_counters(&self, swap: &mut SwapCounters) {
        match self {
            TenantExec::Stateless(_) => {}
            TenantExec::Flow(s) => s.swap_counters(swap),
        }
    }
}

/// Whether swapping `old` for `new` carries per-flow state across, decided
/// control-plane-side so [`SwapReport::state_retained`] never waits on a
/// shard: stateless pipelines always keep their host feature windows
/// (keyed by five-tuple alone), per-flow pipelines keep register files
/// exactly when the shapes are [`state_compatible`]
/// (every shard applies the same deterministic check), and a kind change
/// rebuilds from scratch.
///
/// [`state_compatible`]: FlowClassifier::state_compatible
fn swap_retains_state(old: &EngineArtifact, new: &EngineArtifact) -> bool {
    match (&old.plane, &new.plane) {
        (ArtifactPlane::Stateless(_), ArtifactPlane::Stateless(_)) => true,
        (ArtifactPlane::Flow(old_fc), ArtifactPlane::Flow(new_fc)) => {
            new_fc.state_compatible(old_fc)
        }
        _ => false,
    }
}

/// An opaque handle naming one attached tenant. Returned by
/// [`ControlHandle::attach`]; required by `swap` and `detach`. Tokens are
/// never reused within one engine's lifetime, so a detached tenant's token
/// fails later calls with [`PegasusError::UnknownTenant`] instead of
/// aliasing a newer tenant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TenantToken(pub(crate) u32);

impl TenantToken {
    /// The numeric tenant id (stable for the engine's lifetime).
    pub fn id(&self) -> u32 {
        self.0
    }
}

/// Per-tenant attach-time configuration.
#[derive(Clone, Debug)]
pub struct TenantConfig {
    name: Option<String>,
    route: RoutePredicate,
    record_predictions: bool,
    flow_table: FlowTableConfig,
    swap_grace_packets: u64,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            name: None,
            route: RoutePredicate::Any,
            record_predictions: false,
            flow_table: FlowTableConfig::default(),
            swap_grace_packets: 0,
        }
    }
}

impl TenantConfig {
    /// A default configuration: catch-all route, predictions not recorded,
    /// tenant named after its artifact, default flow-table shape
    /// ([`pegasus_net::DEFAULT_FLOW_SLOTS`] slots per shard, no aging).
    pub fn new() -> Self {
        TenantConfig::default()
    }

    /// Names the tenant (reports and stats; defaults to the artifact name).
    pub fn name(mut self, name: &str) -> Self {
        self.name = Some(name.to_string());
        self
    }

    /// Routes matching packets to this tenant (default:
    /// [`RoutePredicate::Any`]). With the default router, tenants match in
    /// attach order — attach the most specific predicates first.
    pub fn route(mut self, route: RoutePredicate) -> Self {
        self.route = route;
        self
    }

    /// Records every per-flow classification in the tenant's reports.
    pub fn record_predictions(mut self, record: bool) -> Self {
        self.record_predictions = record;
        self
    }

    /// The tenant's whole flow-table shape in one call (capacity, idle
    /// timeout, alias mode). Applies to the host flow state of
    /// register-free pipelines; per-flow register pipelines carry their
    /// capacity in the artifact (`2^flow_slots_log2` slots) and ignore
    /// everything here but the budget check.
    pub fn flow_table(mut self, table: FlowTableConfig) -> Self {
        self.flow_table = table;
        self
    }

    /// Caps the tenant's host flow state at `slots` per shard (every
    /// shard owns a full table, the same way every shard forks a full
    /// register file). [`attach`](ControlHandle::attach) rejects
    /// capacities whose state cost exceeds the switch model's SRAM budget
    /// with [`PegasusError::StateBudget`].
    pub fn flow_capacity(mut self, slots: usize) -> Self {
        self.flow_table.capacity = slots;
        self
    }

    /// Ages resident flows out after this many table packets without
    /// traffic (a packet-count clock — no wall time on the dataplane).
    /// `0` disables aging.
    pub fn idle_timeout_packets(mut self, packets: u64) -> Self {
        self.flow_table.idle_timeout_packets = packets;
        self
    }

    /// Bounds, per shard, how many packets the *old* register file may
    /// outlive a state-compatible swap while its slots migrate
    /// adopt-on-first-touch into the new artifact. `0` (the default)
    /// keeps it until every slot has been adopted — memory stays bounded
    /// at ≤ 2× register SRAM either way, since at most one transplant is
    /// pending per shard — while a positive count trades completeness
    /// for promptness: slots not touched within the window are dropped
    /// and those flows re-warm from zeroed registers.
    pub fn swap_grace_packets(mut self, packets: u64) -> Self {
        self.swap_grace_packets = packets;
        self
    }
}

/// One tenant's routing registration, as routers see it.
pub struct TenantRoute {
    /// The tenant.
    pub token: TenantToken,
    /// Its attach-time predicate.
    pub predicate: RoutePredicate,
}

/// Steers each ingress packet to at most one tenant.
///
/// Implementations are called once per pushed packet with the tenants in
/// attach order; returning `None` drops the packet (counted as unrouted).
/// The default [`PredicateRouter`] mimics a switch's model-selection
/// table: first tenant whose [`RoutePredicate`] matches wins.
pub trait TenantRouter: Send + Sync {
    /// Chooses the tenant for one packet.
    fn route(&self, pkt: &TracePacket, tenants: &[TenantRoute]) -> Option<TenantToken>;
}

/// The default first-match router over attach-time [`RoutePredicate`]s.
#[derive(Clone, Copy, Debug, Default)]
pub struct PredicateRouter;

impl TenantRouter for PredicateRouter {
    fn route(&self, pkt: &TracePacket, tenants: &[TenantRoute]) -> Option<TenantToken> {
        tenants.iter().find(|t| t.predicate.matches(&pkt.flow)).map(|t| t.token)
    }
}

/// What [`IngressHandle::push_frame`] did with one raw frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FramePush {
    /// The frame parsed and a tenant matched its flow.
    Routed,
    /// The frame parsed but no tenant matched (counted as unrouted).
    Unrouted,
    /// The wire parser rejected the frame (counted in the engine's
    /// parse-error buckets and dropped).
    Rejected(ParseError),
}

/// What one swap did.
#[derive(Clone, Copy, Debug)]
pub struct SwapReport {
    /// The tenant's published artifact epoch after the swap (attach =
    /// epoch 0; each swap increments it). Shards adopt the publication at
    /// their next packet boundary — watch the merged
    /// [`SwapCounters::applied_epoch`] catch up to this value.
    pub epoch: u64,
    /// Whether per-flow state (feature windows / register files) carries
    /// into the new artifact: `true` when the pipelines are
    /// state-compatible, in which case each shard migrates register slots
    /// adopt-on-first-touch under the new epoch. `false` means flows
    /// re-warm.
    pub state_retained: bool,
    /// Wall-clock microseconds of the dataplane-visible apply: the
    /// dispatcher-lock commit window — budget gates, tenant-entry
    /// update, epoch/RCU publication. Artifact verification and dedup
    /// run before it, outside any lock, and stall nothing. No queue is
    /// drained, so this is independent of queue depth and flow count
    /// (the old flush-based apply held the lock for tens of
    /// milliseconds).
    pub apply_micros: u64,
}

/// A live per-tenant statistics snapshot.
#[derive(Clone, Debug)]
pub struct TenantStats {
    /// The tenant.
    pub token: TenantToken,
    /// Its display name.
    pub name: String,
    /// Artifact epoch (number of swaps applied).
    pub epoch: u64,
    /// Packets the dispatcher has routed to this tenant so far.
    pub routed_packets: u64,
    /// True once any shard hit a fatal per-packet error for this tenant.
    /// A failed tenant's later packets are discarded (its counters
    /// freeze); `detach` it to receive the error and its final report.
    pub failed: bool,
    /// Merged per-shard counters (predictions are never included in live
    /// snapshots; detach or shutdown returns them).
    pub report: StreamReport,
    /// Why this tenant's artifact runs on the simulator fallback instead
    /// of the flattened-LUT hot path (`None` when it flattened). See
    /// [`FlattenSkip`].
    pub flatten_skip: Option<String>,
}

/// A live engine-wide statistics snapshot.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Per-tenant snapshots, in attach order.
    pub tenants: Vec<TenantStats>,
    /// Packets no tenant matched (dropped at ingress).
    pub unrouted: u64,
    /// Raw frames [`IngressHandle::push_frame`] rejected at parse time,
    /// bucketed by error kind (pre-routing: a frame with no parseable
    /// flow belongs to no tenant).
    pub parse_errors: ParseErrorCounters,
    /// Compiled-routing-plane counters: which structure resolved each
    /// packet, residual-scan work, rebuild activity. All zero when a
    /// custom [`TenantRouter`] bypasses the compiled plane.
    pub routing: RoutingCounters,
    /// Fleet-wide compiled-artifact accounting (content-hash dedup).
    pub artifacts: ArtifactCounters,
}

impl EngineStats {
    /// The snapshot for one tenant.
    pub fn tenant(&self, token: TenantToken) -> Option<&TenantStats> {
        self.tenants.iter().find(|t| t.token == token)
    }
}

/// One tenant's terminal report (detach or shutdown).
#[derive(Debug)]
pub struct TenantReport {
    /// The tenant.
    pub token: TenantToken,
    /// Its display name.
    pub name: String,
    /// Artifact epoch at the end of its life.
    pub epoch: u64,
    /// Packets the dispatcher routed to it over its lifetime.
    pub routed_packets: u64,
    /// The final merged report, or the first per-packet error a shard hit.
    pub result: Result<StreamReport, PegasusError>,
}

/// Everything a shut-down engine served.
#[derive(Debug)]
pub struct EngineReport {
    /// Terminal reports for the tenants still attached at shutdown, in
    /// attach order.
    pub tenants: Vec<TenantReport>,
    /// Packets no tenant matched over the engine's lifetime.
    pub unrouted: u64,
    /// Raw frames rejected at parse time over the engine's lifetime.
    pub parse_errors: ParseErrorCounters,
}

impl EngineReport {
    /// The report for one tenant.
    pub fn tenant(&self, token: TenantToken) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.token == token)
    }

    /// Removes and returns one tenant's report.
    pub fn take_tenant(&mut self, token: TenantToken) -> Option<TenantReport> {
        let pos = self.tenants.iter().position(|t| t.token == token)?;
        Some(self.tenants.remove(pos))
    }
}

// ---------------------------------------------------------------------------
// Internal plumbing.
// ---------------------------------------------------------------------------

struct Routed {
    tenant: u32,
    pkt: TracePacket,
}

/// What one shard returns for one tenant when it ends (detach/shutdown).
struct TenantShardOut {
    stats: ShardStats,
    preds: HashMap<FiveTuple, Vec<usize>>,
    err: Option<PegasusError>,
}

enum ShardMsg {
    Batch(Vec<Routed>),
    Attach {
        tenant: u32,
        artifact: Arc<EngineArtifact>,
        record: bool,
        table: FlowTableConfig,
        /// The tenant's epoch/RCU publication cell — how every later swap
        /// reaches this worker. Swaps send no shard message at all.
        cell: Arc<SwapCell>,
        grace: u64,
    },
    Detach {
        tenant: u32,
        ack: SyncSender<TenantShardOut>,
    },
}

/// A tenant's epoch/RCU artifact publication, shared between the control
/// plane (writer) and every shard worker (readers).
///
/// The atomic `epoch` is the fast-path hint: each worker compares it
/// against its locally applied epoch once per packet boundary — one
/// `Acquire` load on the hot path — and only when they differ takes the
/// mutex to read the authoritative `(epoch, Arc)` pair. The workspace
/// forbids `unsafe`, so this hint-plus-mutex pair is the safe-Rust RCU:
/// the slot lock is contended only during the one boundary crossing that
/// actually applies a swap, never in steady state.
///
/// Publication order matters: the control plane commits the slot first,
/// then stores the epoch hint with `Release`, so a worker whose `Acquire`
/// load observes the new epoch is guaranteed to find (at least) that
/// publication in the slot.
struct SwapCell {
    epoch: AtomicU64,
    slot: Mutex<SwapSlot>,
}

struct SwapSlot {
    epoch: u64,
    artifact: Arc<EngineArtifact>,
}

/// One worker's per-tenant serving state.
struct WorkerTenant {
    exec: TenantExec,
    stats: ShardStats,
    record: bool,
    /// Attach-time flow-table shape, kept for kind-changing swaps (the
    /// rebuilt exec keeps the tenant's configured bounds).
    table: FlowTableConfig,
    /// The tenant's epoch/RCU publication cell (shared with the control
    /// plane and the other shards).
    cell: Arc<SwapCell>,
    /// The publication epoch this worker's exec currently runs.
    applied_epoch: u64,
    /// Attach-time transplant grace window (see
    /// [`TenantConfig::swap_grace_packets`]).
    grace: u64,
    preds: HashMap<FiveTuple, Vec<usize>>,
    err: Option<PegasusError>,
}

impl WorkerTenant {
    /// The per-packet-boundary RCU check: one `Acquire` load against the
    /// locally applied epoch; on mismatch, adopt the published artifact.
    /// The apply is O(1) in flows — per-flow register state migrates
    /// adopt-on-first-touch afterwards.
    fn maybe_apply_swap(&mut self) {
        if self.cell.epoch.load(Ordering::Acquire) == self.applied_epoch {
            return;
        }
        let (epoch, artifact) = {
            let slot = self.cell.slot.lock().expect("swap cell poisoned");
            (slot.epoch, Arc::clone(&slot.artifact))
        };
        if epoch == self.applied_epoch {
            return;
        }
        let t0 = Instant::now();
        self.exec.swap(&artifact, self.table, self.grace);
        self.applied_epoch = epoch;
        self.stats.swap.applied_epoch = epoch;
        self.stats.swap.swaps_applied += 1;
        self.stats.swap.last_apply_nanos = t0.elapsed().as_nanos() as u64;
    }

    fn finalize(mut self) -> TenantShardOut {
        self.stats.table = self.exec.table_counters();
        // The flows metric IS the table's occupancy — one source of truth.
        self.stats.flows = self.stats.table.occupancy;
        self.exec.swap_counters(&mut self.stats.swap);
        TenantShardOut { stats: self.stats, preds: self.preds, err: self.err }
    }
}

/// One worker-published per-tenant snapshot cell.
#[derive(Clone)]
struct BoardEntry {
    stats: ShardStats,
    /// The tenant hit a fatal per-packet error on this shard (its later
    /// packets are discarded; the error itself comes back on detach or
    /// shutdown).
    failed: bool,
}

/// Worker-published per-tenant counters, read lock-free(ish) by `stats()`.
type ShardBoard = HashMap<u32, BoardEntry>;

/// The slow-changing identity of one attached tenant, shared between the
/// dispatcher (which owns the authoritative [`TenantEntry`]) and the
/// lock-free stats path (which reads a directory of these). Counters are
/// relaxed atomics: the dispatcher writes them under its own lock, stats
/// snapshots them without taking that lock.
struct TenantMeta {
    token: TenantToken,
    name: String,
    attached: Instant,
    routed_packets: AtomicU64,
    /// The tenant's artifact identity as one consistently published
    /// value: epoch, dedup key, content size and flatten-skip reason
    /// change *together* under this mutex on every swap, so a stats/list
    /// snapshot can never pair the new epoch with the old artifact's key
    /// or byte size. (These used to be independent relaxed atomics, and a
    /// snapshot racing a swap could mix generations.) Touched only at
    /// attach/swap and on stats reads — never on the packet path.
    published: Mutex<PublishedArtifact>,
}

/// The swap-published portion of a tenant's identity — see
/// [`TenantMeta::published`].
struct PublishedArtifact {
    /// Artifact epoch (attach = 0; each swap increments it).
    epoch: u64,
    /// Content hash of the tenant's artifact — tenants with equal keys
    /// share one `Arc` (the dedup invariant the cache enforces).
    artifact_key: u64,
    /// Serialized size of the tenant's artifact content, for dedup
    /// accounting.
    artifact_bytes: u64,
    /// Why the current artifact runs on the simulator fallback.
    flatten_skip: Option<String>,
}

struct TenantEntry {
    meta: Arc<TenantMeta>,
    predicate: RoutePredicate,
    record: bool,
    /// Attach-time flow-table shape; swaps re-validate the incoming
    /// artifact's state cost against it.
    table: FlowTableConfig,
    /// The current artifact `Arc` (possibly shared with other tenants via
    /// dedup) — the control plane's authoritative copy, used to decide
    /// state retention and budget deltas on the next swap.
    artifact: Arc<EngineArtifact>,
    /// The epoch/RCU cell every shard worker polls; swaps publish the new
    /// artifact here instead of broadcasting shard messages.
    cell: Arc<SwapCell>,
    /// This tenant's contribution to the aggregate fleet SRAM ledger.
    state_cost_bits: u64,
}

impl TenantEntry {
    fn token(&self) -> TenantToken {
        self.meta.token
    }
}

/// One slot of the artifact dedup cache: a content hash plus a weak
/// reference to the live artifact carrying it. Weak, so a fully detached
/// artifact's memory is reclaimed instead of pinned by the cache.
struct CachedArtifact {
    hash: u64,
    artifact: Weak<EngineArtifact>,
}

struct Dispatch {
    /// `None` once the engine has shut down.
    txs: Option<Vec<SyncSender<ShardMsg>>>,
    pending: Vec<Vec<Routed>>,
    /// A user-supplied router, overriding the compiled plane entirely.
    custom_router: Option<Box<dyn TenantRouter>>,
    /// The compiled routing plane over the live tenant set. Immutable once
    /// built; attach/detach publish a freshly compiled replacement (see
    /// `ControlHandle::publish_router`).
    compiled: Arc<CompiledRouter>,
    /// Bumped on every route-set change; a compile whose snapshot
    /// generation is stale is discarded and redone.
    route_gen: u64,
    tenants: Vec<TenantEntry>,
    routes: Vec<TenantRoute>,
    /// Token id → position in `tenants`, so the per-packet routed-counter
    /// update is O(1) instead of a scan.
    index: HashMap<u32, usize>,
    /// Aggregate stateful-SRAM bits currently reserved across all tenants.
    fleet_used_bits: u64,
    next_id: u32,
}

impl Dispatch {
    fn txs(&self) -> Result<&[SyncSender<ShardMsg>], PegasusError> {
        self.txs.as_deref().ok_or(PegasusError::EngineStopped)
    }

    /// Sends every buffered partial batch, preserving push order ahead of
    /// any control message the caller is about to enqueue.
    fn flush(&mut self) -> Result<(), PegasusError> {
        let txs = self.txs.as_deref().ok_or(PegasusError::EngineStopped)?;
        for (shard, buf) in self.pending.iter_mut().enumerate() {
            if !buf.is_empty() {
                let batch = std::mem::take(buf);
                txs[shard].send(ShardMsg::Batch(batch)).map_err(|_| PegasusError::EngineStopped)?;
            }
        }
        Ok(())
    }

    /// Rebuilds the custom-router view and the token index after the
    /// tenant list changed.
    fn reindex(&mut self) {
        self.routes = self
            .tenants
            .iter()
            .map(|e| TenantRoute { token: e.token(), predicate: e.predicate.clone() })
            .collect();
        self.index = self.tenants.iter().enumerate().map(|(i, e)| (e.token().0, i)).collect();
    }

    /// The prioritized rule list the compiled router is built from:
    /// attach order, one rule per tenant, payload = token id.
    fn route_rules(&self) -> Vec<(u32, RoutePredicate)> {
        self.tenants.iter().map(|e| (e.token().0, e.predicate.clone())).collect()
    }

    fn entry_index(&self, token: TenantToken) -> Result<usize, PegasusError> {
        self.index.get(&token.0).copied().ok_or(PegasusError::UnknownTenant { tenant: token.0 })
    }

    fn entry_mut(&mut self, token: TenantToken) -> Result<&mut TenantEntry, PegasusError> {
        let pos = self.entry_index(token)?;
        Ok(&mut self.tenants[pos])
    }
}

/// Engine-wide counters read by the lock-free stats path and written from
/// the hot push path (which already holds the dispatcher lock — the
/// atomics are for the readers, not the writers; all accesses relaxed).
#[derive(Default)]
struct SharedCounters {
    unrouted: AtomicU64,
    lut_hits: AtomicU64,
    trie_hits: AtomicU64,
    proto_hits: AtomicU64,
    catchall_hits: AtomicU64,
    residual_hits: AtomicU64,
    residual_scans: AtomicU64,
    rebuilds: AtomicU64,
    last_rebuild_micros: AtomicU64,
    parse_truncated: AtomicU64,
    parse_checksum: AtomicU64,
    parse_malformed: AtomicU64,
    parse_unsupported: AtomicU64,
}

impl SharedCounters {
    fn record_parse(&self, kind: pegasus_net::ParseErrorKind) {
        use pegasus_net::ParseErrorKind as K;
        let cell = match kind {
            K::Truncated => &self.parse_truncated,
            K::Checksum => &self.parse_checksum,
            K::Malformed => &self.parse_malformed,
            K::Unsupported => &self.parse_unsupported,
        };
        cell.fetch_add(1, Ordering::Relaxed);
    }

    fn parse(&self) -> ParseErrorCounters {
        ParseErrorCounters {
            truncated: self.parse_truncated.load(Ordering::Relaxed),
            checksum: self.parse_checksum.load(Ordering::Relaxed),
            malformed: self.parse_malformed.load(Ordering::Relaxed),
            unsupported: self.parse_unsupported.load(Ordering::Relaxed),
        }
    }

    fn routing(&self) -> RoutingCounters {
        RoutingCounters {
            lut_hits: self.lut_hits.load(Ordering::Relaxed),
            trie_hits: self.trie_hits.load(Ordering::Relaxed),
            proto_hits: self.proto_hits.load(Ordering::Relaxed),
            catchall_hits: self.catchall_hits.load(Ordering::Relaxed),
            residual_hits: self.residual_hits.load(Ordering::Relaxed),
            residual_scans: self.residual_scans.load(Ordering::Relaxed),
            unrouted: self.unrouted.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
            last_rebuild_micros: self.last_rebuild_micros.load(Ordering::Relaxed),
        }
    }
}

struct EngineShared {
    shards: usize,
    batch: usize,
    dispatch: Mutex<Dispatch>,
    boards: Vec<Mutex<ShardBoard>>,
    /// The stats-path tenant directory: one `Arc<TenantMeta>` per attached
    /// tenant, in attach order. Locked only for brief push/remove/clone
    /// operations — never while a shard channel send is in flight — so
    /// `stats()` cannot block behind a backpressured push.
    directory: Mutex<Vec<Arc<TenantMeta>>>,
    /// Engine-wide routing/parse counters (see [`SharedCounters`]).
    counters: SharedCounters,
    /// Content-hash → live artifact, for cross-tenant dedup at attach and
    /// swap time.
    artifact_cache: Mutex<Vec<CachedArtifact>>,
    /// The aggregate stateful-SRAM ceiling across all tenants, when set.
    fleet_budget_bits: Option<u64>,
    /// Flipped by `shutdown` so lock-free paths (stats, frame-reject
    /// accounting) report [`PegasusError::EngineStopped`] without
    /// consulting the dispatcher.
    stopped: AtomicBool,
    /// Set by a worker the moment any tenant hits a fatal per-packet
    /// error. Feeders that have nothing to gain from pushing into a dead
    /// tenant (the one-shot `stream_with` wrapper) poll it to abort early;
    /// the error itself still surfaces through detach/shutdown.
    tenant_failed: AtomicBool,
}

impl EngineShared {
    fn lock_dispatch(&self) -> std::sync::MutexGuard<'_, Dispatch> {
        self.dispatch.lock().expect("engine dispatcher poisoned")
    }

    fn lock_directory(&self) -> std::sync::MutexGuard<'_, Vec<Arc<TenantMeta>>> {
        self.directory.lock().expect("tenant directory poisoned")
    }

    /// Deduplicates an incoming artifact against every live one: equal
    /// content bytes yield the existing `Arc` (tenants then share one
    /// compiled program; their flow tables and stats stay per-tenant).
    /// Returns the canonical `Arc`, the content hash, and the content
    /// size in bytes.
    fn dedup_artifact(&self, artifact: EngineArtifact) -> (Arc<EngineArtifact>, u64, u64) {
        let bytes = artifact.content_bytes();
        let hash = content_hash(&bytes);
        let len = bytes.len() as u64;
        let mut cache = self.artifact_cache.lock().expect("artifact cache poisoned");
        cache.retain(|c| c.artifact.strong_count() > 0);
        for cached in cache.iter() {
            if cached.hash != hash {
                continue;
            }
            if let Some(existing) = cached.artifact.upgrade() {
                // Hash match is a hint; equality is decided on the bytes.
                if existing.content_bytes() == bytes {
                    return (existing, hash, len);
                }
            }
        }
        let arc = Arc::new(artifact);
        cache.push(CachedArtifact { hash, artifact: Arc::downgrade(&arc) });
        (arc, hash, len)
    }
}

// ---------------------------------------------------------------------------
// Builder.
// ---------------------------------------------------------------------------

/// Configures and builds an [`EngineServer`].
///
/// Unlike the legacy [`StreamConfig`](crate::engine::StreamConfig) path
/// (which clamps), out-of-domain values are rejected at
/// [`build`](EngineBuilder::build) with [`PegasusError::InvalidConfig`].
///
/// ```no_run
/// use pegasus_core::engine::server::{EngineBuilder, TenantConfig};
/// use pegasus_net::RoutePredicate;
///
/// # fn run(
/// #     web: pegasus_core::Deployment<pegasus_core::models::mlp_b::MlpB>,
/// #     dns: pegasus_core::Deployment<pegasus_core::models::rnn_b::RnnB>,
/// # ) -> Result<(), pegasus_core::PegasusError> {
/// let server = EngineBuilder::new().shards(4).batch(256).queue_batches(8).build()?;
/// let control = server.control();
/// // Two models serve side by side, selected per packet by dst port.
/// let t_web = control.attach(
///     web.engine_artifact()?,
///     TenantConfig::new().name("web").route(RoutePredicate::DstPort(443)),
/// )?;
/// let t_dns = control.attach(
///     dns.engine_artifact()?,
///     TenantConfig::new().name("dns").route(RoutePredicate::DstPort(53)),
/// )?;
/// # let (_, _) = (t_web, t_dns);
/// let report = server.shutdown()?;
/// # let _ = report;
/// # Ok(())
/// # }
/// ```
pub struct EngineBuilder {
    shards: usize,
    batch: usize,
    queue_batches: usize,
    stats_cadence: usize,
    router: Option<Box<dyn TenantRouter>>,
    fleet_state_budget_bits: Option<u64>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder::new()
    }
}

impl EngineBuilder {
    /// Engine defaults: 1 shard, 256-packet batches, 8-batch queues,
    /// 1024-packet stats cadence, compiled predicate routing, no aggregate
    /// state budget.
    pub fn new() -> Self {
        EngineBuilder {
            shards: 1,
            batch: 256,
            queue_batches: 8,
            stats_cadence: 1024,
            router: None,
            fleet_state_budget_bits: None,
        }
    }

    /// Worker shards (must be ≥ 1).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Packets per dispatch batch (must be ≥ 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Bounded per-shard queue depth, in batches (must be ≥ 1) — the
    /// ingress backpressure window.
    pub fn queue_batches(mut self, queue_batches: usize) -> Self {
        self.queue_batches = queue_batches;
        self
    }

    /// How many packets a shard processes between publications of its live
    /// counters (must be ≥ 1). Workers additionally publish whenever they
    /// go idle and after every control message, so [`ControlHandle::stats`]
    /// is at most `stats_cadence` packets stale on a busy shard and exact
    /// on an idle one.
    pub fn stats_cadence(mut self, packets: usize) -> Self {
        self.stats_cadence = packets;
        self
    }

    /// Replaces the compiled routing plane with a custom [`TenantRouter`]
    /// (called per packet with the tenants in attach order, like the
    /// reference [`PredicateRouter`]). Custom routers bypass the compiled
    /// structures, so the engine's routing counters stay zero.
    pub fn router(mut self, router: Box<dyn TenantRouter>) -> Self {
        self.router = Some(router);
        self
    }

    /// Caps the *aggregate* stateful-SRAM bits reserved across all
    /// tenants — the fleet-level companion of the per-tenant
    /// `capacity × bits-per-flow` check. An attach (or a swap to a
    /// hungrier artifact) that would push the fleet total past this
    /// ceiling is rejected with [`PegasusError::FleetStateBudget`] before
    /// any shard allocates a slab. Unset means unlimited (per-tenant
    /// budgets still apply).
    pub fn fleet_state_budget_bits(mut self, bits: u64) -> Self {
        self.fleet_state_budget_bits = Some(bits);
        self
    }

    /// Validates the configuration, spawns the shard workers, and returns
    /// the running (initially tenant-less) server.
    pub fn build(self) -> Result<EngineServer, PegasusError> {
        for (field, value) in [
            ("shards", self.shards),
            ("batch", self.batch),
            ("queue_batches", self.queue_batches),
            ("stats_cadence", self.stats_cadence),
        ] {
            if value == 0 {
                return Err(PegasusError::InvalidConfig { field, reason: "must be at least 1" });
            }
        }
        let mut txs = Vec::with_capacity(self.shards);
        let mut boards = Vec::with_capacity(self.shards);
        let mut rxs = Vec::with_capacity(self.shards);
        for _ in 0..self.shards {
            let (tx, rx) = sync_channel::<ShardMsg>(self.queue_batches);
            txs.push(tx);
            rxs.push(rx);
            boards.push(Mutex::new(ShardBoard::new()));
        }
        let shared = Arc::new(EngineShared {
            shards: self.shards,
            batch: self.batch,
            dispatch: Mutex::new(Dispatch {
                txs: Some(txs),
                pending: (0..self.shards).map(|_| Vec::new()).collect(),
                custom_router: self.router,
                compiled: Arc::new(CompiledRouter::default()),
                route_gen: 0,
                tenants: Vec::new(),
                routes: Vec::new(),
                index: HashMap::new(),
                fleet_used_bits: 0,
                next_id: 0,
            }),
            boards,
            directory: Mutex::new(Vec::new()),
            counters: SharedCounters::default(),
            artifact_cache: Mutex::new(Vec::new()),
            fleet_budget_bits: self.fleet_state_budget_bits,
            stopped: AtomicBool::new(false),
            tenant_failed: AtomicBool::new(false),
        });
        let cadence = self.stats_cadence as u64;
        let workers = rxs
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(shard, rx, &shared, cadence))
            })
            .collect();
        Ok(EngineServer { shared, workers })
    }
}

// ---------------------------------------------------------------------------
// Worker.
// ---------------------------------------------------------------------------

fn publish(shard: usize, shared: &EngineShared, tenants: &HashMap<u32, WorkerTenant>) {
    let mut board = shared.boards[shard].lock().expect("stats board poisoned");
    board.clear();
    for (&id, wt) in tenants {
        let mut stats = wt.stats.clone();
        stats.table = wt.exec.table_counters();
        stats.flows = stats.table.occupancy;
        wt.exec.swap_counters(&mut stats.swap);
        board.insert(id, BoardEntry { stats, failed: wt.err.is_some() });
    }
}

fn worker_loop(
    shard: usize,
    rx: Receiver<ShardMsg>,
    shared: &EngineShared,
    cadence: u64,
) -> Vec<(u32, TenantShardOut)> {
    let mut tenants: HashMap<u32, WorkerTenant> = HashMap::new();
    let mut since_publish = 0u64;
    loop {
        // Publish live counters whenever the queue runs dry, so an idle
        // engine's stats() is exact; under load, every `cadence` packets.
        let msg = match rx.try_recv() {
            Ok(m) => m,
            Err(TryRecvError::Empty) => {
                // An idle shard adopts pending swap publications eagerly:
                // a quiesced engine converges to the published epoch
                // without waiting for the next packet.
                for wt in tenants.values_mut() {
                    if wt.err.is_none() {
                        wt.maybe_apply_swap();
                    }
                }
                publish(shard, shared, &tenants);
                since_publish = 0;
                match rx.recv() {
                    Ok(m) => m,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        match msg {
            ShardMsg::Batch(batch) => {
                for routed in &batch {
                    let Some(wt) = tenants.get_mut(&routed.tenant) else { continue };
                    if wt.err.is_some() {
                        continue;
                    }
                    wt.maybe_apply_swap();
                    let t0 = Instant::now();
                    let verdict = wt.exec.process(&routed.pkt);
                    let nanos = t0.elapsed().as_nanos() as u64;
                    wt.stats.busy_nanos += nanos;
                    wt.stats.latency.record(nanos);
                    wt.stats.packets += 1;
                    match verdict {
                        Ok(Some(class)) => {
                            wt.stats.classified += 1;
                            if wt.record {
                                wt.preds.entry(routed.pkt.flow).or_default().push(class);
                            }
                        }
                        Ok(None) => wt.stats.warmup += 1,
                        Err(e) => {
                            wt.err = Some(e);
                            shared.tenant_failed.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                    since_publish += 1;
                    if since_publish >= cadence {
                        publish(shard, shared, &tenants);
                        since_publish = 0;
                    }
                }
            }
            ShardMsg::Attach { tenant, artifact, record, table, cell, grace } => {
                // The cell may already carry swaps published after this
                // attach was enqueued; start from the artifact the attach
                // shipped and let the first boundary check catch up.
                tenants.insert(
                    tenant,
                    WorkerTenant {
                        exec: TenantExec::new(&artifact, table),
                        stats: ShardStats::new(shard),
                        record,
                        table,
                        cell,
                        applied_epoch: 0,
                        grace,
                        preds: HashMap::new(),
                        err: None,
                    },
                );
                publish(shard, shared, &tenants);
            }
            ShardMsg::Detach { tenant, ack } => {
                let out = match tenants.remove(&tenant) {
                    Some(wt) => wt.finalize(),
                    None => TenantShardOut {
                        stats: ShardStats::new(shard),
                        preds: HashMap::new(),
                        err: None,
                    },
                };
                publish(shard, shared, &tenants);
                let _ = ack.send(out);
            }
        }
    }
    tenants.into_iter().map(|(id, wt)| (id, wt.finalize())).collect()
}

/// Broadcasts one control message per shard, all-or-nothing: if a send
/// fails partway (a worker's receiver is gone), every shard already
/// reached is sent the `undo` message best-effort and the whole operation
/// fails — no shard is left carrying state the control plane never
/// committed, and no two shards end up on different sides of the change.
fn broadcast_all_or_nothing(
    txs: &[SyncSender<ShardMsg>],
    mut msg: impl FnMut() -> ShardMsg,
    mut undo: impl FnMut() -> ShardMsg,
) -> Result<(), PegasusError> {
    for (reached, tx) in txs.iter().enumerate() {
        if tx.send(msg()).is_err() {
            for prev in &txs[..reached] {
                let _ = prev.send(undo());
            }
            return Err(PegasusError::EngineStopped);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Handles.
// ---------------------------------------------------------------------------

/// The push-based packet entry point of a running [`EngineServer`].
///
/// Cloneable; pushes from any thread. Bounded per-shard queues apply
/// backpressure: `push` blocks once the destination shard is
/// `queue_batches` full batches behind — and because ingress and control
/// share the ordering dispatcher, control-plane calls issued during that
/// window wait behind the blocked push.
#[derive(Clone)]
pub struct IngressHandle {
    shared: Arc<EngineShared>,
}

impl IngressHandle {
    /// Routes one packet to its tenant and enqueues it on the shard that
    /// owns its flow. Returns `Ok(true)` when a tenant matched, `Ok(false)`
    /// when no tenant did (the packet is dropped and counted as unrouted),
    /// and [`PegasusError::EngineStopped`] after shutdown.
    pub fn push(&self, pkt: TracePacket) -> Result<bool, PegasusError> {
        let counters = &self.shared.counters;
        let mut d = self.shared.lock_dispatch();
        d.txs()?;
        let token = if let Some(router) = &d.custom_router {
            match router.route(&pkt, &d.routes) {
                Some(token) => token,
                None => {
                    counters.unrouted.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
            }
        } else {
            let decision = d.compiled.route(&pkt.flow);
            if decision.residual_scanned > 0 {
                counters
                    .residual_scans
                    .fetch_add(u64::from(decision.residual_scanned), Ordering::Relaxed);
            }
            match decision.payload {
                Some(id) => {
                    let cell = match decision.hit {
                        RouteHit::Lut => &counters.lut_hits,
                        RouteHit::Trie => &counters.trie_hits,
                        RouteHit::Proto => &counters.proto_hits,
                        RouteHit::CatchAll => &counters.catchall_hits,
                        RouteHit::Residual => &counters.residual_hits,
                    };
                    cell.fetch_add(1, Ordering::Relaxed);
                    TenantToken(id)
                }
                None => {
                    counters.unrouted.fetch_add(1, Ordering::Relaxed);
                    return Ok(false);
                }
            }
        };
        let pos = d.entry_index(token)?;
        d.tenants[pos].meta.routed_packets.fetch_add(1, Ordering::Relaxed);
        let shard = pkt.flow.shard_of(self.shared.shards);
        d.pending[shard].push(Routed { tenant: token.0, pkt });
        if d.pending[shard].len() >= self.shared.batch {
            let batch =
                std::mem::replace(&mut d.pending[shard], Vec::with_capacity(self.shared.batch));
            d.txs()?[shard]
                .send(ShardMsg::Batch(batch))
                .map_err(|_| PegasusError::EngineStopped)?;
        }
        Ok(true)
    }

    /// Pushes a whole source to exhaustion; returns how many packets a
    /// tenant accepted.
    pub fn push_source(&self, source: &mut dyn PacketSource) -> Result<u64, PegasusError> {
        let mut routed = 0u64;
        while let Some(pkt) = source.next_packet() {
            if self.push(pkt)? {
                routed += 1;
            }
        }
        Ok(routed)
    }

    /// The raw-frame dual of [`push`](IngressHandle::push): parses the
    /// frame's bytes in-line (zero-copy, panic-free) and routes the result
    /// like any structured packet. Frames the wire parser rejects are
    /// counted in the engine's parse-error buckets
    /// ([`EngineStats::parse_errors`]) and dropped — returned as
    /// [`FramePush::Rejected`] with the typed [`ParseError`], never as an
    /// `Err` (a bad packet on the wire is workload, not engine failure).
    pub fn push_frame(&self, frame: RawFrame<'_>) -> Result<FramePush, PegasusError> {
        match parse_frame(frame.bytes) {
            Ok(parsed) => {
                let pkt = parsed.to_trace_packet(frame.ts_micros, frame.wire_len_u16());
                Ok(if self.push(pkt)? { FramePush::Routed } else { FramePush::Unrouted })
            }
            Err(e) => {
                // A rejected frame names no flow, so it never touches the
                // dispatcher: account it in the shared counters directly.
                if self.shared.stopped.load(Ordering::Acquire) {
                    return Err(PegasusError::EngineStopped);
                }
                self.shared.counters.record_parse(e.kind());
                Ok(FramePush::Rejected(e))
            }
        }
    }

    /// Pushes a whole frame source to exhaustion; returns how many frames
    /// a tenant accepted (parse rejections and unrouted frames are
    /// counted in the engine's statistics, not here).
    pub fn push_frame_source(&self, source: &mut dyn FrameSource) -> Result<u64, PegasusError> {
        let mut routed = 0u64;
        while let Some(frame) = source.next_frame() {
            if matches!(self.push_frame(frame)?, FramePush::Routed) {
                routed += 1;
            }
        }
        Ok(routed)
    }

    /// Hands every buffered partial batch to its shard. Control operations
    /// flush implicitly; call this when pausing a push loop so trailing
    /// packets are not held back by batching.
    pub fn flush(&self) -> Result<(), PegasusError> {
        self.shared.lock_dispatch().flush()
    }
}

/// The control plane of a running [`EngineServer`]: attach, hot-swap,
/// detach, observe. Cloneable; drive it from any thread while ingress
/// keeps flowing.
#[derive(Clone)]
pub struct ControlHandle {
    shared: Arc<EngineShared>,
}

impl ControlHandle {
    /// Registers a tenant: its artifact starts serving on every shard, and
    /// packets matching `cfg`'s route are steered to it from the next
    /// `push` on. Returns the token that names the tenant to
    /// [`swap`](ControlHandle::swap) and [`detach`](ControlHandle::detach).
    ///
    /// The tenant's flow-state budget is validated against the switch
    /// model the artifact was deployed on: `capacity × bits-per-flow`
    /// (host window mirror for register-free pipelines, real per-slot
    /// register SRAM for per-flow ones) must fit the model's
    /// `register_bits_total`, or the attach is rejected with
    /// [`PegasusError::StateBudget`] before any shard allocates a slab.
    /// When the engine carries an aggregate ceiling
    /// ([`EngineBuilder::fleet_state_budget_bits`]), the fleet-wide sum of
    /// those costs is checked too, rejecting with
    /// [`PegasusError::FleetStateBudget`].
    ///
    /// The artifact is content-hashed and deduplicated against every live
    /// tenant's: attaching the same compiled program a thousand times
    /// keeps one copy resident (the tenants share one `Arc`; their flow
    /// tables, routes, and stats stay separate).
    pub fn attach(
        &self,
        artifact: EngineArtifact,
        cfg: TenantConfig,
    ) -> Result<TenantToken, PegasusError> {
        // The artifact re-verifies against its own switch model before it
        // reaches any shard: a corrupt pipeline is a control-plane error,
        // never a dataplane surprise.
        let report = artifact.verify_report();
        if report.has_errors() {
            return Err(PegasusError::Verify { report: Box::new(report) });
        }
        artifact.validate_state_budget(&cfg.flow_table)?;
        let state_cost = artifact.state_cost_bits(&cfg.flow_table);
        let (artifact, key, bytes) = self.shared.dedup_artifact(artifact);
        let name = cfg.name.unwrap_or_else(|| artifact.name.clone());
        let token = {
            let mut d = self.shared.lock_dispatch();
            d.txs()?;
            if let Some(budget) = self.shared.fleet_budget_bits {
                let needed = d.fleet_used_bits.saturating_add(state_cost);
                if needed > budget {
                    return Err(PegasusError::FleetStateBudget {
                        needed_bits: needed,
                        budget_bits: budget,
                        tenants: d.tenants.len(),
                    });
                }
            }
            let token = TenantToken(d.next_id);
            d.next_id += 1;
            let cell = Arc::new(SwapCell {
                epoch: AtomicU64::new(0),
                slot: Mutex::new(SwapSlot { epoch: 0, artifact: Arc::clone(&artifact) }),
            });
            // All-or-nothing: a partial broadcast is rolled back with
            // best-effort detaches so no shard keeps a tenant the control
            // plane never committed.
            broadcast_all_or_nothing(
                d.txs()?,
                || ShardMsg::Attach {
                    tenant: token.0,
                    artifact: Arc::clone(&artifact),
                    record: cfg.record_predictions,
                    table: cfg.flow_table,
                    cell: Arc::clone(&cell),
                    grace: cfg.swap_grace_packets,
                },
                || {
                    // The rollback's ack receiver is dropped immediately:
                    // workers send their detach ack best-effort.
                    let (ack, _) = sync_channel::<TenantShardOut>(1);
                    ShardMsg::Detach { tenant: token.0, ack }
                },
            )?;
            let meta = Arc::new(TenantMeta {
                token,
                name,
                attached: Instant::now(),
                routed_packets: AtomicU64::new(0),
                published: Mutex::new(PublishedArtifact {
                    epoch: 0,
                    artifact_key: key,
                    artifact_bytes: bytes,
                    flatten_skip: artifact.flatten_skip(),
                }),
            });
            d.fleet_used_bits = d.fleet_used_bits.saturating_add(state_cost);
            d.tenants.push(TenantEntry {
                meta: Arc::clone(&meta),
                predicate: cfg.route,
                record: cfg.record_predictions,
                table: cfg.flow_table,
                artifact,
                cell,
                state_cost_bits: state_cost,
            });
            d.reindex();
            d.route_gen += 1;
            self.shared.lock_directory().push(meta);
            token
        };
        // Compile the new route set outside the dispatcher lock and
        // publish it; the tenant serves from the moment this returns.
        self.publish_router()?;
        Ok(token)
    }

    /// Recompiles the routing plane from the live tenant set *outside*
    /// the dispatcher lock and publishes the result, retrying if the
    /// route set changed mid-compile (another attach racing this one).
    /// Ingress keeps flowing on the previous compiled router throughout —
    /// rebuilds never stall the push path.
    fn publish_router(&self) -> Result<(), PegasusError> {
        loop {
            let (gen, rules) = {
                let d = self.shared.lock_dispatch();
                d.txs()?;
                (d.route_gen, d.route_rules())
            };
            let t0 = Instant::now();
            let compiled = Arc::new(CompiledRouter::build(&rules));
            let micros = t0.elapsed().as_micros() as u64;
            let mut d = self.shared.lock_dispatch();
            d.txs()?;
            if d.route_gen == gen {
                d.compiled = compiled;
                self.shared.counters.rebuilds.fetch_add(1, Ordering::Relaxed);
                self.shared.counters.last_rebuild_micros.store(micros, Ordering::Relaxed);
                return Ok(());
            }
        }
    }

    /// Hot-swaps a tenant's artifact via epoch/RCU publication: the new
    /// `Arc` is committed into the tenant entry with a bumped epoch and
    /// each shard adopts it at its next packet boundary. Nothing is
    /// drained and no shard is signalled — the dispatcher lock is held
    /// only for the O(1) validate-and-commit, so ingress pushes proceed
    /// concurrently and apply latency ([`SwapReport::apply_micros`]) is
    /// microseconds regardless of queue depth.
    ///
    /// Every validation gate (artifact verification, per-tenant state
    /// budget, fleet budget) runs *before* anything is mutated: a
    /// rejected swap is free — no queue drained, no state touched.
    ///
    /// The ordering guarantee is one-sided (see the [module
    /// docs](self#ordering-guarantees)): packets pushed after this call
    /// returns classify under the new artifact; packets already queued
    /// may land on either side of the boundary. Per-flow state (feature
    /// windows, register files) survives when the artifacts are
    /// state-compatible (same pipeline shape — e.g. a retrained model),
    /// migrated slot by slot as flows are touched under the new epoch;
    /// otherwise the tenant's flows re-warm, reported via
    /// [`SwapReport::state_retained`].
    ///
    /// ```no_run
    /// use pegasus_core::engine::server::TenantConfig;
    /// # fn run(
    /// #     server: pegasus_core::engine::server::EngineServer,
    /// #     old: pegasus_core::Deployment<pegasus_core::models::mlp_b::MlpB>,
    /// #     retrained: pegasus_core::Deployment<pegasus_core::models::mlp_b::MlpB>,
    /// # ) -> Result<(), pegasus_core::PegasusError> {
    /// let control = server.control();
    /// let tenant = control.attach(old.engine_artifact()?, TenantConfig::new())?;
    /// // ... traffic flows ...
    /// let swap = control.swap(tenant, retrained.engine_artifact()?)?;
    /// assert!(swap.state_retained, "same pipeline shape keeps all flow state");
    /// # let _ = swap; Ok(())
    /// # }
    /// ```
    pub fn swap(
        &self,
        token: TenantToken,
        artifact: EngineArtifact,
    ) -> Result<SwapReport, PegasusError> {
        // Unknown tenants fail with the same typed error regardless of
        // what artifact they were handed: check the token before paying
        // for (or reporting) artifact verification.
        {
            let d = self.shared.lock_dispatch();
            d.txs()?;
            d.entry_index(token)?;
        }
        // Same gate as attach: the replacement artifact must verify clean
        // before it can be published to any shard. Runs outside the
        // dispatcher lock — verification cost never stalls ingress, and
        // is excluded from `apply_micros`, which times only the
        // dataplane-visible commit window below.
        let report = artifact.verify_report();
        if report.has_errors() {
            return Err(PegasusError::Verify { report: Box::new(report) });
        }
        let (artifact, key, bytes) = self.shared.dedup_artifact(artifact);
        let t0 = Instant::now();
        let mut d = self.shared.lock_dispatch();
        d.txs()?;
        let fleet_used = d.fleet_used_bits;
        let tenant_count = d.tenants.len();
        let entry = d.entry_mut(token)?;
        // Remaining gates, still before any mutation: the incoming
        // artifact must fit the tenant's state budget just like the
        // original attach did (a swap to a hungrier pipeline shape must
        // not sneak past the SRAM model), and the fleet ledger must
        // absorb the cost delta. A swap rejected here has touched
        // nothing — no queue drained, no entry mutated.
        artifact.validate_state_budget(&entry.table)?;
        let new_cost = artifact.state_cost_bits(&entry.table);
        if let Some(budget) = self.shared.fleet_budget_bits {
            let needed = fleet_used.saturating_sub(entry.state_cost_bits).saturating_add(new_cost);
            if needed > budget {
                return Err(PegasusError::FleetStateBudget {
                    needed_bits: needed,
                    budget_bits: budget,
                    tenants: tenant_count,
                });
            }
        }
        // Commit. State retention is decided here, against the artifact
        // being replaced — the same deterministic shape check every shard
        // applies — so the report never waits on a shard.
        let state_retained = swap_retains_state(&entry.artifact, &artifact);
        entry.artifact = Arc::clone(&artifact);
        let old_cost = entry.state_cost_bits;
        entry.state_cost_bits = new_cost;
        let epoch = {
            let mut p = entry.meta.published.lock().expect("tenant publication poisoned");
            p.epoch += 1;
            p.artifact_key = key;
            p.artifact_bytes = bytes;
            p.flatten_skip = artifact.flatten_skip();
            p.epoch
        };
        // The RCU publication proper: authoritative slot first, epoch
        // hint second (Release), so a worker that observes the new hint
        // is guaranteed to find the new artifact in the slot.
        {
            let mut slot = entry.cell.slot.lock().expect("swap cell poisoned");
            slot.epoch = epoch;
            slot.artifact = Arc::clone(&artifact);
        }
        entry.cell.epoch.store(epoch, Ordering::Release);
        d.fleet_used_bits = fleet_used.saturating_sub(old_cost).saturating_add(new_cost);
        drop(d);
        Ok(SwapReport { epoch, state_retained, apply_micros: t0.elapsed().as_micros() as u64 })
    }

    /// Unregisters a tenant: routing stops immediately, its in-flight
    /// batches drain, and its final report (with recorded predictions, if
    /// enabled) comes back. Other tenants are untouched.
    ///
    /// Unlike attach, the routing plane is recompiled *synchronously*
    /// under the dispatcher lock: a detached tenant must stop receiving
    /// packets the moment this call commits, and later rules must fall
    /// through exactly as a fresh first-match scan would.
    pub fn detach(&self, token: TenantToken) -> Result<TenantReport, PegasusError> {
        let (ack_tx, ack_rx) = sync_channel::<TenantShardOut>(self.shared.shards);
        let entry = {
            let mut d = self.shared.lock_dispatch();
            let pos = d.entry_index(token)?;
            d.flush()?;
            let entry = d.tenants.remove(pos);
            d.reindex();
            d.route_gen += 1;
            let t0 = Instant::now();
            d.compiled = Arc::new(CompiledRouter::build(&d.route_rules()));
            self.shared.counters.rebuilds.fetch_add(1, Ordering::Relaxed);
            self.shared
                .counters
                .last_rebuild_micros
                .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);
            d.fleet_used_bits = d.fleet_used_bits.saturating_sub(entry.state_cost_bits);
            self.shared.lock_directory().retain(|m| m.token != token);
            for tx in d.txs()? {
                tx.send(ShardMsg::Detach { tenant: token.0, ack: ack_tx.clone() })
                    .map_err(|_| PegasusError::EngineStopped)?;
            }
            entry
        };
        drop(ack_tx);
        let mut outs = Vec::with_capacity(self.shared.shards);
        for _ in 0..self.shared.shards {
            outs.push(ack_rx.recv().map_err(|_| PegasusError::EngineStopped)?);
        }
        Ok(tenant_report(entry, outs))
    }

    /// Snapshots live per-tenant/per-shard counters without stopping or
    /// signalling the workers: shards publish their counters every
    /// [`stats_cadence`](EngineBuilder::stats_cadence) packets and when
    /// idle, and this call merges the latest publications — it never
    /// enqueues behind packet batches, and it never takes the dispatcher
    /// lock. Reads come from the worker-published boards, the tenant
    /// directory, and the shared atomic counters, so `stats` returns
    /// promptly even while a `push` is blocked on a full shard queue
    /// (backpressure) with the dispatcher lock held.
    pub fn stats(&self) -> Result<EngineStats, PegasusError> {
        if self.shared.stopped.load(Ordering::Acquire) {
            return Err(PegasusError::EngineStopped);
        }
        let metas: Vec<Arc<TenantMeta>> = self.shared.lock_directory().clone();
        let mut tenants = Vec::with_capacity(metas.len());
        let mut artifacts = ArtifactCounters::default();
        let mut seen_keys: Vec<u64> = Vec::new();
        for meta in &metas {
            let mut shards: Vec<ShardStats> = Vec::with_capacity(self.shared.shards);
            let mut failed = false;
            for (shard, board) in self.shared.boards.iter().enumerate() {
                let board = board.lock().expect("stats board poisoned");
                match board.get(&meta.token.0) {
                    Some(cell) => {
                        failed |= cell.failed;
                        shards.push(cell.stats.clone());
                    }
                    None => shards.push(ShardStats::new(shard)),
                }
            }
            // One lock, one generation: epoch, key, bytes and the
            // flatten-skip reason are snapshotted together, so a swap
            // racing this read can never yield a mixed view (new epoch
            // with the old artifact's key/size).
            let (epoch, key, bytes, flatten_skip) = {
                let p = meta.published.lock().expect("tenant publication poisoned");
                (p.epoch, p.artifact_key, p.artifact_bytes, p.flatten_skip.clone())
            };
            artifacts.tenants += 1;
            artifacts.naive_bytes += bytes;
            if !seen_keys.contains(&key) {
                seen_keys.push(key);
                artifacts.unique_artifacts += 1;
                artifacts.resident_bytes += bytes;
            }
            tenants.push(TenantStats {
                token: meta.token,
                name: meta.name.clone(),
                epoch,
                routed_packets: meta.routed_packets.load(Ordering::Relaxed),
                failed,
                report: merge_report(shards, meta.attached.elapsed().as_nanos() as u64, None),
                flatten_skip,
            });
        }
        let routing = self.shared.counters.routing();
        Ok(EngineStats {
            tenants,
            unrouted: routing.unrouted,
            parse_errors: self.shared.counters.parse(),
            routing,
            artifacts,
        })
    }

    /// The live snapshot of one tenant, failing with
    /// [`PegasusError::UnknownTenant`] for tokens that were never attached
    /// (or have been detached) — the same typed error [`swap`] and
    /// [`detach`] return, so callers like the control daemon map every
    /// unknown-tenant path onto one wire reply.
    ///
    /// [`swap`]: ControlHandle::swap
    /// [`detach`]: ControlHandle::detach
    pub fn tenant_stats(&self, token: TenantToken) -> Result<TenantStats, PegasusError> {
        let stats = self.stats()?;
        stats
            .tenants
            .into_iter()
            .find(|t| t.token == token)
            .ok_or(PegasusError::UnknownTenant { tenant: token.0 })
    }
}

fn merge_report(
    shards: Vec<ShardStats>,
    elapsed_nanos: u64,
    predictions: Option<HashMap<FiveTuple, Vec<usize>>>,
) -> StreamReport {
    let mut latency = LatencyHistogram::default();
    let mut table = crate::engine::stats::FlowTableCounters::default();
    let mut parse = ParseErrorCounters::default();
    // Seed the epoch at MAX so the min-merge reflects the slowest shard;
    // an empty shard list degrades to 0.
    let mut swap = SwapCounters { applied_epoch: u64::MAX, ..SwapCounters::default() };
    let (mut packets, mut classified, mut warmup, mut flows) = (0u64, 0u64, 0u64, 0u64);
    for s in &shards {
        packets += s.packets;
        classified += s.classified;
        warmup += s.warmup;
        flows += s.flows;
        latency.merge(&s.latency);
        table.merge(&s.table);
        parse.merge(&s.parse);
        swap.merge(&s.swap);
    }
    if swap.applied_epoch == u64::MAX {
        swap.applied_epoch = 0;
    }
    StreamReport {
        shards,
        packets,
        classified,
        warmup,
        flows,
        elapsed_nanos,
        latency,
        table,
        swap,
        parse,
        predictions,
    }
}

fn tenant_report(entry: TenantEntry, outs: Vec<TenantShardOut>) -> TenantReport {
    let elapsed_nanos = entry.meta.attached.elapsed().as_nanos() as u64;
    let mut shards = Vec::with_capacity(outs.len());
    let mut preds: HashMap<FiveTuple, Vec<usize>> = HashMap::new();
    let mut first_err = None;
    for out in outs {
        if let Some(e) = out.err {
            first_err.get_or_insert(e);
        }
        // Flows are shard-partitioned: no key collisions across workers.
        preds.extend(out.preds);
        shards.push(out.stats);
    }
    shards.sort_by_key(|s| s.shard);
    let result = match first_err {
        Some(e) => Err(e),
        None => Ok(merge_report(shards, elapsed_nanos, entry.record.then_some(preds))),
    };
    TenantReport {
        token: entry.meta.token,
        name: entry.meta.name.clone(),
        epoch: entry.meta.published.lock().expect("tenant publication poisoned").epoch,
        routed_packets: entry.meta.routed_packets.load(Ordering::Relaxed),
        result,
    }
}

// ---------------------------------------------------------------------------
// Server.
// ---------------------------------------------------------------------------

/// A long-lived, multi-tenant serving engine (see the [module docs](self)).
///
/// Built by [`EngineBuilder::build`]; hand out [`ingress`](EngineServer::ingress)
/// and [`control`](EngineServer::control) handles, then
/// [`shutdown`](EngineServer::shutdown) to drain and join.
pub struct EngineServer {
    shared: Arc<EngineShared>,
    workers: Vec<JoinHandle<Vec<(u32, TenantShardOut)>>>,
}

impl EngineServer {
    /// A new ingress handle (cloneable, thread-safe).
    pub fn ingress(&self) -> IngressHandle {
        IngressHandle { shared: Arc::clone(&self.shared) }
    }

    /// A new control handle (cloneable, thread-safe).
    pub fn control(&self) -> ControlHandle {
        ControlHandle { shared: Arc::clone(&self.shared) }
    }

    /// Worker shards this engine runs.
    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    /// True once any tenant has hit a fatal per-packet error (the error
    /// itself surfaces through detach/shutdown). The one-shot wrappers
    /// poll this to stop feeding a stream whose only tenant is dead.
    pub(crate) fn tenant_failed(&self) -> bool {
        self.shared.tenant_failed.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drains every queue, joins the workers, and returns terminal reports
    /// for all tenants still attached. Handles created from this server
    /// return [`PegasusError::EngineStopped`] afterwards.
    pub fn shutdown(self) -> Result<EngineReport, PegasusError> {
        let entries = {
            let mut d = self.shared.lock_dispatch();
            d.flush()?;
            // Dropping the senders closes each shard's channel; workers
            // drain what is queued and exit with their tenants' final state.
            d.txs = None;
            // Flip the lock-free stop flag inside the dispatch critical
            // section so stats/push observers agree on the boundary.
            self.shared.stopped.store(true, Ordering::Release);
            self.shared.lock_directory().clear();
            std::mem::take(&mut d.tenants)
        };
        let unrouted = self.shared.counters.unrouted.load(Ordering::Relaxed);
        let parse_errors = self.shared.counters.parse();
        let mut by_tenant: HashMap<u32, Vec<TenantShardOut>> = HashMap::new();
        for handle in self.workers {
            for (id, out) in handle.join().expect("shard worker panicked") {
                by_tenant.entry(id).or_default().push(out);
            }
        }
        let tenants = entries
            .into_iter()
            .map(|e| {
                let outs = by_tenant.remove(&e.token().0).unwrap_or_default();
                tenant_report(e, outs)
            })
            .collect();
        Ok(EngineReport { tenants, unrouted, parse_errors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_zero_parameters() {
        for (build, field) in [
            (EngineBuilder::new().shards(0).build(), "shards"),
            (EngineBuilder::new().batch(0).build(), "batch"),
            (EngineBuilder::new().queue_batches(0).build(), "queue_batches"),
            (EngineBuilder::new().stats_cadence(0).build(), "stats_cadence"),
        ] {
            match build {
                Err(PegasusError::InvalidConfig { field: f, .. }) => assert_eq!(f, field),
                other => panic!("{field}: expected InvalidConfig, got {:?}", other.is_ok()),
            }
        }
    }

    #[test]
    fn empty_server_builds_and_shuts_down() {
        let server = EngineBuilder::new().shards(3).build().expect("builds");
        assert_eq!(server.shards(), 3);
        let control = server.control();
        let stats = control.stats().expect("stats");
        assert!(stats.tenants.is_empty());
        let report = server.shutdown().expect("shuts down");
        assert!(report.tenants.is_empty());
        assert_eq!(report.unrouted, 0);
        // Handles outlive the server but report it stopped — including
        // ingress pushes, which must not be silently counted as unrouted.
        assert_eq!(control.stats().map(|_| ()), Err(PegasusError::EngineStopped));
    }

    #[test]
    fn push_after_shutdown_errors_instead_of_dropping() {
        let server = EngineBuilder::new().build().expect("builds");
        let ingress = server.ingress();
        server.shutdown().expect("shuts down");
        let pkt = TracePacket {
            ts_micros: 0,
            flow: FiveTuple::new(1, 2, 3, 4, 6),
            wire_len: 64,
            payload_head: Vec::new(),
            tcp_flags: 0,
            ttl: 64,
        };
        assert_eq!(ingress.push(pkt), Err(PegasusError::EngineStopped));
        assert_eq!(ingress.flush().unwrap_err(), PegasusError::EngineStopped);
    }

    #[test]
    fn partial_broadcast_rolls_back_reached_shards() {
        let (tx0, rx0) = sync_channel::<ShardMsg>(4);
        let (tx1, rx1) = sync_channel::<ShardMsg>(4);
        let (tx2, rx2) = sync_channel::<ShardMsg>(4);
        // Shard 1's worker is gone: the mid-loop send must fail, and the
        // control message shard 0 already received must be undone so the
        // shards never diverge.
        drop(rx1);
        let txs = vec![tx0, tx1, tx2];
        let mk = || {
            let (ack, _) = sync_channel::<TenantShardOut>(1);
            ShardMsg::Detach { tenant: 7, ack }
        };
        let err = broadcast_all_or_nothing(&txs, mk, mk).unwrap_err();
        assert_eq!(err, PegasusError::EngineStopped);
        // Shard 0 (reached before the failure) got the message plus its
        // undo; shard 2 (past the failure) was never touched.
        assert_eq!(rx0.try_iter().count(), 2);
        assert_eq!(rx2.try_iter().count(), 0);
    }

    #[test]
    fn control_ops_on_unknown_tenants_fail_cleanly() {
        let server = EngineBuilder::new().build().expect("builds");
        let control = server.control();
        let bogus = TenantToken(99);
        assert_eq!(
            control.detach(bogus).map(|_| ()),
            Err(PegasusError::UnknownTenant { tenant: 99 })
        );
        assert_eq!(
            control.tenant_stats(bogus).map(|_| ()),
            Err(PegasusError::UnknownTenant { tenant: 99 })
        );
        server.shutdown().expect("shuts down");
    }
}

//! Per-shard and aggregate streaming statistics.
//!
//! The engine reports throughput the way a packet benchmark does: aggregate
//! packets/s over wall-clock time, plus per-shard busy time and a
//! log₂-bucketed per-packet latency histogram (constant memory, mergeable
//! across shards, good enough for mean/p50/p99 reporting without storing
//! per-packet samples).

use pegasus_net::{FiveTuple, ParseErrorKind};
use std::collections::HashMap;

/// Counters of wire-format frames the raw ingress rejected, bucketed by
/// [`ParseErrorKind`]. Mergeable across shards / the dispatcher by
/// field-wise summation. A frame that fails to parse never reaches a
/// tenant: it is counted here and dropped, the way a switch parser's
/// no-match verdict sends a packet down the default path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParseErrorCounters {
    /// Headers (or required options) ran past the end of the capture.
    pub truncated: u64,
    /// IPv4 header checksum mismatches.
    pub checksum: u64,
    /// Structurally invalid fields (bad IHL, bad version, nested VLAN…).
    pub malformed: u64,
    /// Layers the parser does not speak (ARP, ICMP, QinQ-free exotica).
    pub unsupported: u64,
}

impl ParseErrorCounters {
    /// Counts one rejected frame.
    pub fn record(&mut self, kind: ParseErrorKind) {
        match kind {
            ParseErrorKind::Truncated => self.truncated += 1,
            ParseErrorKind::Checksum => self.checksum += 1,
            ParseErrorKind::Malformed => self.malformed += 1,
            ParseErrorKind::Unsupported => self.unsupported += 1,
        }
    }

    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &ParseErrorCounters) {
        self.truncated += other.truncated;
        self.checksum += other.checksum;
        self.malformed += other.malformed;
        self.unsupported += other.unsupported;
    }

    /// All rejected frames.
    pub fn total(&self) -> u64 {
        self.truncated + self.checksum + self.malformed + self.unsupported
    }
}

/// Counters of the engine's compiled routing plane: which structure
/// resolved each packet, residual-scan work, and rebuild activity.
/// Mergeable by field-wise summation except `last_rebuild_micros`, which
/// is a gauge (most recent compile time).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RoutingCounters {
    /// Packets resolved by the dense destination-port LUT.
    pub lut_hits: u64,
    /// Packets resolved by the src/dst prefix tries.
    pub trie_hits: u64,
    /// Packets resolved by the protocol filter.
    pub proto_hits: u64,
    /// Packets resolved by a catch-all rule.
    pub catchall_hits: u64,
    /// Packets resolved by the residual predicate scan.
    pub residual_hits: u64,
    /// Total residual predicates evaluated across all lookups (scan work
    /// actually done — stays near zero when every rule compiles).
    pub residual_scans: u64,
    /// Packets no tenant rule matched.
    pub unrouted: u64,
    /// Compiled-router rebuilds (attach/swap/detach recompiles).
    pub rebuilds: u64,
    /// Wall-clock microseconds the most recent rebuild took.
    pub last_rebuild_micros: u64,
}

/// Fleet-wide compiled-artifact accounting: how many tenants share how
/// many distinct artifacts, and what content-hash dedup saves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArtifactCounters {
    /// Tenants currently attached.
    pub tenants: u64,
    /// Distinct compiled artifacts among them (by content hash).
    pub unique_artifacts: u64,
    /// Bytes of compiled-artifact payload actually resident (each
    /// distinct artifact counted once).
    pub resident_bytes: u64,
    /// Bytes that would be resident without dedup (each tenant's artifact
    /// counted separately).
    pub naive_bytes: u64,
}

/// A log₂-bucketed latency histogram over nanoseconds.
///
/// Bucket `i` holds samples whose value has its highest set bit at
/// position `i` (i.e. `[2^i, 2^(i+1))`); quantiles are resolved to the
/// bucket's *geometric midpoint* (`2^i·√2`), the minimum-relative-error
/// point estimate for a log-bucketed sample, so reported p50/p99 carry at
/// most √2 relative error instead of the up-to-2× bias the old
/// upper-bound convention had (p50 used to read as exactly 4096 ns in
/// `BENCH_throughput.json` whenever the median fell anywhere in the
/// `[2048, 4096)` bucket).
#[derive(Clone, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_nanos: u64,
    max_nanos: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; 64], count: 0, sum_nanos: 0, max_nanos: 0 }
    }
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&mut self, nanos: u64) {
        let bucket = 63 - (nanos | 1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum_nanos += nanos;
        self.max_nanos = self.max_nanos.max(nanos);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_nanos += other.sum_nanos;
        self.max_nanos = self.max_nanos.max(other.max_nanos);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_nanos(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / self.count as f64
        }
    }

    /// Largest sample seen.
    pub fn max_nanos(&self) -> u64 {
        self.max_nanos
    }

    /// The `q`-quantile (`0.0..=1.0`) as the geometric midpoint of the
    /// log₂ bucket the rank falls in (`2^i·√2` for bucket `[2^i, 2^(i+1))`),
    /// clamped to the largest sample actually recorded.
    pub fn quantile_nanos(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target.max(1) {
                let midpoint = ((1u64 << i) as f64 * std::f64::consts::SQRT_2).round() as u64;
                return midpoint.min(self.max_nanos.max(1));
            }
        }
        self.max_nanos
    }
}

/// Occupancy and eviction counters of one bounded flow table (a shard's
/// host tracker, or the hardware-faithful alias view of a per-flow
/// register file). Mergeable across shards by field-wise summation —
/// capacity sums too, because every shard owns its own table (the forked
/// register-file model).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlowTableCounters {
    /// Slots currently occupied (the shard's resident flows).
    pub occupancy: u64,
    /// Fixed slot capacity.
    pub capacity: u64,
    /// Entries reclaimed by idle-timeout aging (incl. in-place re-warms).
    pub evictions_idle: u64,
    /// Entries replaced under capacity pressure (table full).
    pub evictions_capacity: u64,
    /// Alias-mode slot-ownership changes — packets of a flow whose
    /// register slot was owned by a different flow (hash collisions).
    pub alias_collisions: u64,
    /// Flow-state bytes in use: the flat preallocated slab plus bounded
    /// per-flow window heap (host tables), or the register SRAM the slots
    /// model (alias views). Flat in the flow count by construction.
    pub state_bytes: u64,
}

impl FlowTableCounters {
    /// Folds another table's counters into this one.
    pub fn merge(&mut self, other: &FlowTableCounters) {
        self.occupancy += other.occupancy;
        self.capacity += other.capacity;
        self.evictions_idle += other.evictions_idle;
        self.evictions_capacity += other.evictions_capacity;
        self.alias_collisions += other.alias_collisions;
        self.state_bytes += other.state_bytes;
    }

    /// All evictions (idle + capacity).
    pub fn evictions(&self) -> u64 {
        self.evictions_idle + self.evictions_capacity
    }
}

/// Hot-swap application and adopt-on-first-touch transplant progress for
/// one shard (or, merged, a whole tenant).
///
/// Swaps are published epoch/RCU-style: the control plane stores the new
/// artifact in the tenant entry and each shard picks it up at its next
/// packet/batch boundary, so these counters are how an operator watches an
/// apply land — `applied_epoch` catching up to the control plane's epoch,
/// then `pending_slots` draining to zero as flows are touched under the
/// new artifact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SwapCounters {
    /// Artifact epoch this shard last applied. In a merged report this is
    /// the *minimum* across shards — the epoch every shard has reached —
    /// so one lagging shard keeps the tenant's reported epoch honest.
    pub applied_epoch: u64,
    /// Swap publications this shard picked up at a packet/batch boundary.
    pub swaps_applied: u64,
    /// Nanoseconds the most recent apply took on this shard: the fork and
    /// register detach only — the transplant itself is amortized over
    /// subsequent packets. Merged reports keep the max across shards.
    pub last_apply_nanos: u64,
    /// Flow slots whose register state was migrated old→new, either on a
    /// flow's first touch under the new epoch or by the eager completion
    /// a chained swap forces.
    pub adopted_slots: u64,
    /// Slots still awaiting adoption (gauge). The outgoing register file
    /// stays alive — bounding swap memory at ≤ 2× register SRAM — exactly
    /// while this is non-zero.
    pub pending_slots: u64,
    /// Transplants that completed by draining every slot.
    pub transplants_completed: u64,
    /// Transplants cut short by the packet-count grace window; their
    /// remaining flows re-warm from zeroed registers.
    pub transplants_expired: u64,
}

impl SwapCounters {
    /// Folds another shard's swap counters into this one (see the field
    /// docs for per-field merge semantics). Start the fold from the first
    /// shard's counters, not `default()`, so the `applied_epoch` minimum
    /// is taken over real values.
    pub fn merge(&mut self, other: &SwapCounters) {
        self.applied_epoch = self.applied_epoch.min(other.applied_epoch);
        self.swaps_applied += other.swaps_applied;
        self.last_apply_nanos = self.last_apply_nanos.max(other.last_apply_nanos);
        self.adopted_slots += other.adopted_slots;
        self.pending_slots += other.pending_slots;
        self.transplants_completed += other.transplants_completed;
        self.transplants_expired += other.transplants_expired;
    }
}

/// One shard worker's counters.
#[derive(Clone, Debug)]
pub struct ShardStats {
    /// Shard index (`0..shards`).
    pub shard: usize,
    /// Packets this shard consumed.
    pub packets: u64,
    /// Packets that produced a classification (flow window full).
    pub classified: u64,
    /// Packets swallowed by per-flow warm-up (window not yet full).
    pub warmup: u64,
    /// Flows resident on this shard — occupied flow-table slots. For
    /// per-flow register pipelines this is the hardware-faithful count
    /// (hash-colliding flows share a slot and count once).
    pub flows: u64,
    /// Nanoseconds spent inside packet processing (excludes queue waits).
    pub busy_nanos: u64,
    /// Per-packet processing latency.
    pub latency: LatencyHistogram,
    /// Occupancy/eviction/collision counters of this shard's flow table.
    pub table: FlowTableCounters,
    /// Hot-swap apply and transplant-progress counters.
    pub swap: SwapCounters,
    /// Raw frames this execution context rejected at parse time. Always
    /// zero for server shard workers (the dispatcher parses before
    /// routing — see `EngineStats::parse_errors`); populated by the
    /// single-pass [`RawIngress`](crate::engine::raw::RawIngress) path,
    /// which owns its whole bytes-to-verdict pipeline.
    pub parse: ParseErrorCounters,
}

impl ShardStats {
    pub(crate) fn new(shard: usize) -> Self {
        ShardStats {
            shard,
            packets: 0,
            classified: 0,
            warmup: 0,
            flows: 0,
            busy_nanos: 0,
            latency: LatencyHistogram::default(),
            table: FlowTableCounters::default(),
            swap: SwapCounters::default(),
            parse: ParseErrorCounters::default(),
        }
    }

    /// This shard's busy-time throughput in packets/s (its serving
    /// capacity, independent of how evenly the dispatcher fed it).
    pub fn busy_pps(&self) -> f64 {
        if self.busy_nanos == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.busy_nanos as f64
        }
    }
}

/// What one streaming run produced: aggregate counters, per-shard stats,
/// and (when requested) every per-flow classification.
#[derive(Clone, Debug)]
pub struct StreamReport {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ShardStats>,
    /// Packets consumed from the source.
    pub packets: u64,
    /// Packets that produced a classification.
    pub classified: u64,
    /// Packets consumed during per-flow warm-up.
    pub warmup: u64,
    /// Distinct flows across shards.
    pub flows: u64,
    /// Wall-clock duration of the run in nanoseconds (dispatch + drain).
    pub elapsed_nanos: u64,
    /// Merged per-packet latency across shards.
    pub latency: LatencyHistogram,
    /// Merged flow-table counters across shards (capacity sums: each
    /// shard owns a full table, the forked register-file model).
    pub table: FlowTableCounters,
    /// Merged hot-swap apply/transplant counters (`applied_epoch` is the
    /// minimum across shards, counts sum, `last_apply_nanos` is the max).
    pub swap: SwapCounters,
    /// Frames the raw (bytes-to-verdict) ingress rejected at parse time:
    /// shard-side rejections plus, for reports produced by the frame
    /// wrappers (`Deployment::stream_frames*`), the dispatcher's. Always
    /// zero for structured-packet runs.
    pub parse: ParseErrorCounters,
    /// Per-flow classification sequences, in per-flow packet order
    /// (`Some` only when `StreamConfig::record_predictions` was set).
    pub predictions: Option<HashMap<FiveTuple, Vec<usize>>>,
}

impl StreamReport {
    /// Aggregate wall-clock throughput in packets per second.
    pub fn pps(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.packets as f64 * 1e9 / self.elapsed_nanos as f64
        }
    }

    /// Majority-vote class per flow (ties to the smaller class id), when
    /// predictions were recorded.
    pub fn flow_verdicts(&self) -> Option<HashMap<FiveTuple, usize>> {
        let preds = self.predictions.as_ref()?;
        let mut out = HashMap::with_capacity(preds.len());
        for (flow, seq) in preds {
            let mut counts: HashMap<usize, usize> = HashMap::new();
            for &c in seq {
                *counts.entry(c).or_insert(0) += 1;
            }
            if let Some((&class, _)) =
                counts.iter().max_by_key(|(&class, &n)| (n, std::cmp::Reverse(class)))
            {
                out.insert(*flow, class);
            }
        }
        Some(out)
    }
}

// --- serde (control-daemon wire format) --------------------------------
//
// The histogram's buckets are private, so its impl lives here with the
// rest of the stats family; everything round-trips bit-exactly so the
// daemon's `stats` verb reports the same numbers an in-process
// `ControlHandle::stats` call would.

serde::impl_serde_struct!(ParseErrorCounters { truncated, checksum, malformed, unsupported });
serde::impl_serde_struct!(RoutingCounters {
    lut_hits,
    trie_hits,
    proto_hits,
    catchall_hits,
    residual_hits,
    residual_scans,
    unrouted,
    rebuilds,
    last_rebuild_micros,
});
serde::impl_serde_struct!(ArtifactCounters {
    tenants,
    unique_artifacts,
    resident_bytes,
    naive_bytes
});
serde::impl_serde_struct!(LatencyHistogram { buckets, count, sum_nanos, max_nanos });
serde::impl_serde_struct!(FlowTableCounters {
    occupancy,
    capacity,
    evictions_idle,
    evictions_capacity,
    alias_collisions,
    state_bytes,
});
serde::impl_serde_struct!(SwapCounters {
    applied_epoch,
    swaps_applied,
    last_apply_nanos,
    adopted_slots,
    pending_slots,
    transplants_completed,
    transplants_expired,
});
serde::impl_serde_struct!(ShardStats {
    shard,
    packets,
    classified,
    warmup,
    flows,
    busy_nanos,
    latency,
    table,
    swap,
    parse,
});
serde::impl_serde_struct!(StreamReport {
    shards,
    packets,
    classified,
    warmup,
    flows,
    elapsed_nanos,
    latency,
    table,
    swap,
    parse,
    predictions,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_mean_and_quantiles_bracket_samples() {
        let mut h = LatencyHistogram::default();
        for v in [100u64, 200, 400, 800, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.mean_nanos() - 20_300.0).abs() < 1.0);
        assert_eq!(h.max_nanos(), 100_000);
        // p50 rank lands on the 400 ns sample, whose bucket is [256, 512):
        // the geometric midpoint is 256·√2 ≈ 362 — inside the bucket, not
        // the old upper bound of 512.
        assert_eq!(h.quantile_nanos(0.5), 362);
        assert!(h.quantile_nanos(0.5) >= 256 && h.quantile_nanos(0.5) < 512);
        // p100 lands in the 100_000 bucket [65536, 131072); the midpoint
        // ≈ 92682 stays within that bucket and below the recorded max.
        let p100 = h.quantile_nanos(1.0);
        assert!(p100 >= 65_536 && p100 <= h.max_nanos(), "{p100}");
    }

    #[test]
    fn quantile_midpoint_clamps_to_max_sample() {
        // One sample: every quantile must report a value no larger than it.
        let mut h = LatencyHistogram::default();
        h.record(1000); // bucket [512, 1024), midpoint ≈ 724
        assert_eq!(h.quantile_nanos(0.5), 724);
        let mut tiny = LatencyHistogram::default();
        tiny.record(520); // midpoint 724 exceeds the max sample -> clamp
        assert_eq!(tiny.quantile_nanos(0.99), 520);
    }

    #[test]
    fn histogram_merge_sums_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        a.record(10);
        b.record(1000);
        b.record(2000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_nanos(), 2000);
    }

    #[test]
    fn flow_verdicts_majority_votes() {
        let flow = FiveTuple::new(1, 2, 3, 4, 6);
        let mut preds = HashMap::new();
        preds.insert(flow, vec![0, 1, 1, 2, 1]);
        let report = StreamReport {
            shards: vec![],
            packets: 5,
            classified: 5,
            warmup: 0,
            flows: 1,
            elapsed_nanos: 1,
            latency: LatencyHistogram::default(),
            table: FlowTableCounters::default(),
            swap: SwapCounters::default(),
            parse: ParseErrorCounters::default(),
            predictions: Some(preds),
        };
        assert_eq!(report.flow_verdicts().unwrap()[&flow], 1);
    }
}

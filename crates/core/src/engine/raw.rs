//! The single-pass bytes-to-verdict path: wire frame in, class out.
//!
//! [`RawIngress`] is the hot loop the paper's switch actually runs — parse
//! the frame, update the flow's state, extract features, hit the compiled
//! tables — collapsed into one host-side pass with zero per-packet
//! allocation:
//!
//! * the parse is zero-copy ([`parse_frame`] borrows the frame buffer);
//! * per-flow state lives in the same bounded [`FlowTracker`](pegasus_net::FlowTracker)/register
//!   structures the sharded server uses;
//! * feature codes land in a reused scratch vector and inference runs
//!   through the preallocated [`FlatScratch`](crate::engine::FlatScratch)
//!   — nothing is allocated after warm-up, and no [`TracePacket`](pegasus_net::TracePacket)
//!   envelope is materialized in between.
//!
//! Frames the parser rejects are counted in the ingress's
//! [`ShardStats::parse`] buckets and dropped, exactly like the server's
//! dispatcher-side counters — `tests/raw_path.rs` proves the two paths
//! produce bit-identical verdicts and flow-table counters.
//!
//! This is the engine the single-thread raw-path benchmark measures
//! (`BENCH_throughput.json`, `raw_path` section); for multi-shard serving
//! push frames at a running server via
//! [`IngressHandle::push_frame`](crate::engine::IngressHandle::push_frame)
//! instead.

use crate::engine::server::{ArtifactPlane, EngineArtifact};
use crate::engine::stats::ShardStats;
use crate::engine::{FlowShard, StatelessShard};
use crate::error::PegasusError;
use pegasus_net::wire::parse_frame;
use pegasus_net::{
    FlowTableConfig, FrameBatch, FrameSource, ParseError, RawFrame, RAW_BYTES_PER_PACKET,
};
use std::time::Instant;

/// What one frame produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RawVerdict {
    /// The flow's window was full: the pipeline classified the packet.
    Classified(usize),
    /// The packet was absorbed into per-flow warm-up state.
    Warmup,
    /// The wire parser rejected the frame (counted, dropped).
    Rejected(ParseError),
}

/// The per-shard execution core, shared with the server's workers.
enum RawExec {
    Stateless(Box<StatelessShard>),
    Flow(Box<FlowShard>),
}

/// A single-threaded, allocation-free bytes-to-verdict executor over one
/// deployed artifact — one shard's worth of the raw path, owned inline
/// instead of behind channels. See the [module docs](self).
pub struct RawIngress {
    exec: RawExec,
    stats: ShardStats,
    /// Build-time flow-table shape, kept for kind-changing swaps (the
    /// rebuilt exec keeps the configured bounds).
    table: FlowTableConfig,
    /// Reused verdict buffer for the batched path.
    verdicts: Vec<Option<usize>>,
}

/// Default frames-per-batch for [`RawIngress::run_batched`] — big enough to
/// amortize per-batch timing and LUT-load overhead, small enough that the
/// structure-of-arrays scratch stays L1-resident.
pub const DEFAULT_BATCH_FRAMES: usize = 32;

impl RawIngress {
    /// Builds the raw path over `artifact` with the given host flow-table
    /// shape (validated against the artifact's state budget exactly like
    /// [`ControlHandle::attach`](crate::engine::ControlHandle::attach)).
    pub fn new(artifact: &EngineArtifact, table: FlowTableConfig) -> Result<Self, PegasusError> {
        artifact.validate_state_budget(&table)?;
        let exec = match &artifact.plane {
            ArtifactPlane::Stateless(dp) => RawExec::Stateless(Box::new(StatelessShard::new(
                dp.clone(),
                artifact.features,
                table,
            ))),
            ArtifactPlane::Flow(fc) => RawExec::Flow(Box::new(FlowShard::new(fc.fork()))),
        };
        Ok(RawIngress { exec, stats: ShardStats::new(0), table, verdicts: Vec::new() })
    }

    /// [`RawIngress::new`] with the default flow-table shape.
    pub fn with_defaults(artifact: &EngineArtifact) -> Result<Self, PegasusError> {
        RawIngress::new(artifact, FlowTableConfig::default())
    }

    /// Hot-swaps the executing artifact between frames (or batches) —
    /// the raw path's equivalent of the server's epoch/RCU apply, with
    /// the same boundary semantics: every frame processed before this
    /// call ran under the old artifact, every frame after it runs under
    /// the new one, and per-flow register state migrates
    /// adopt-on-first-touch under the same `grace_packets` contract as
    /// [`TenantConfig::swap_grace_packets`]. The incoming artifact is
    /// validated against the build-time flow-table shape exactly like
    /// [`ControlHandle::swap`]; a rejected swap changes nothing. Returns
    /// whether per-flow state carried over.
    ///
    /// [`ControlHandle::swap`]: crate::engine::ControlHandle::swap
    /// [`TenantConfig::swap_grace_packets`]: crate::engine::TenantConfig::swap_grace_packets
    pub fn swap(
        &mut self,
        artifact: &EngineArtifact,
        grace_packets: u64,
    ) -> Result<bool, PegasusError> {
        artifact.validate_state_budget(&self.table)?;
        let t0 = Instant::now();
        let retained = match (&mut self.exec, &artifact.plane) {
            (RawExec::Stateless(shard), ArtifactPlane::Stateless(dp)) => {
                shard.swap(dp.clone(), artifact.features);
                true
            }
            (RawExec::Flow(shard), ArtifactPlane::Flow(fc)) => shard.swap(fc, grace_packets),
            (exec, ArtifactPlane::Stateless(dp)) => {
                *exec = RawExec::Stateless(Box::new(StatelessShard::new(
                    dp.clone(),
                    artifact.features,
                    self.table,
                )));
                false
            }
            (exec, ArtifactPlane::Flow(fc)) => {
                *exec = RawExec::Flow(Box::new(FlowShard::new(fc.fork())));
                false
            }
        };
        self.stats.swap.applied_epoch += 1;
        self.stats.swap.swaps_applied += 1;
        self.stats.swap.last_apply_nanos = t0.elapsed().as_nanos() as u64;
        Ok(retained)
    }

    /// Processes one raw frame: parse, flow update, features, verdict —
    /// one pass, no allocation. Parse rejections are counted and returned
    /// as [`RawVerdict::Rejected`]; only pipeline-level failures (wrong
    /// arity etc.) surface as `Err`.
    pub fn process(&mut self, frame: RawFrame<'_>) -> Result<RawVerdict, PegasusError> {
        let t0 = Instant::now();
        let parsed = match parse_frame(frame.bytes) {
            Ok(p) => p,
            Err(e) => {
                self.stats.parse.record(e.kind());
                return Ok(RawVerdict::Rejected(e));
            }
        };
        let verdict = match &mut self.exec {
            RawExec::Stateless(shard) => shard.process_parts(
                parsed.flow,
                frame.ts_micros,
                frame.wire_len_u16(),
                parsed.tcp_flags,
                parsed.ttl,
                parsed.payload_head_len(),
            )?,
            RawExec::Flow(shard) => shard.process_parts(
                parsed.flow,
                frame.ts_micros,
                frame.wire_len_u16(),
                // Bounded exactly like a TracePacket's payload head, so
                // verdicts match the structured path bit for bit.
                &parsed.payload[..parsed.payload.len().min(RAW_BYTES_PER_PACKET)],
            )?,
        };
        let nanos = t0.elapsed().as_nanos() as u64;
        self.stats.busy_nanos += nanos;
        self.stats.latency.record(nanos);
        self.stats.packets += 1;
        Ok(match verdict {
            Some(class) => {
                self.stats.classified += 1;
                RawVerdict::Classified(class)
            }
            None => {
                self.stats.warmup += 1;
                RawVerdict::Warmup
            }
        })
    }

    /// Convenience: processes a complete (un-snapped) frame.
    pub fn process_frame(
        &mut self,
        ts_micros: u64,
        bytes: &[u8],
    ) -> Result<RawVerdict, PegasusError> {
        self.process(RawFrame::new(ts_micros, bytes))
    }

    /// Drains a frame source to exhaustion.
    pub fn run(&mut self, source: &mut dyn FrameSource) -> Result<(), PegasusError> {
        while let Some(frame) = source.next_frame() {
            self.process(frame)?;
        }
        Ok(())
    }

    /// Parses `frame` into `batch` for a later
    /// [`process_batch`](RawIngress::process_batch) call. Rejected frames consume no batch
    /// slot; they are counted in this ingress's parse buckets exactly like
    /// [`process`](RawIngress::process) and reported back as
    /// `Some(ParseError)`.
    ///
    /// # Panics
    /// Panics if `batch` is already full — flush it with
    /// [`process_batch`](RawIngress::process_batch) first.
    pub fn push_batch_frame(
        &mut self,
        batch: &mut FrameBatch,
        frame: RawFrame<'_>,
    ) -> Option<ParseError> {
        match batch.push(&frame) {
            Ok(()) => None,
            Err(e) => {
                self.stats.parse.record(e.kind());
                Some(e)
            }
        }
    }

    /// Executes one pre-parsed batch through the fused
    /// parse → slot-resolution → features → LUT pipeline and returns the
    /// per-frame verdicts (`None` = warm-up). Bit-identical to feeding the
    /// same frames through [`process`](RawIngress::process) one at a time —
    /// verdicts *and* flow-table counters; only the latency accounting
    /// differs (batch wall time is attributed evenly across its frames).
    pub fn process_batch(&mut self, batch: &FrameBatch) -> Result<&[Option<usize>], PegasusError> {
        if batch.is_empty() {
            self.verdicts.clear();
            return Ok(&self.verdicts);
        }
        let t0 = Instant::now();
        match &mut self.exec {
            RawExec::Stateless(shard) => shard.process_batch(batch, &mut self.verdicts)?,
            RawExec::Flow(shard) => shard.process_batch(batch, &mut self.verdicts)?,
        }
        let nanos = t0.elapsed().as_nanos() as u64;
        let n = batch.len() as u64;
        self.stats.busy_nanos += nanos;
        let per_frame = nanos / n;
        for v in &self.verdicts {
            self.stats.latency.record(per_frame);
            self.stats.packets += 1;
            match v {
                Some(_) => self.stats.classified += 1,
                None => self.stats.warmup += 1,
            }
        }
        Ok(&self.verdicts)
    }

    /// Drains a frame source to exhaustion through the batched path,
    /// `batch_frames` frames at a time (the final batch may be partial).
    /// Equivalent to [`run`](RawIngress::run) up to latency attribution.
    pub fn run_batched(
        &mut self,
        source: &mut dyn FrameSource,
        batch_frames: usize,
    ) -> Result<(), PegasusError> {
        let mut batch = FrameBatch::with_capacity(batch_frames.max(1));
        while let Some(frame) = source.next_frame() {
            self.push_batch_frame(&mut batch, frame);
            if batch.is_full() {
                self.process_batch(&batch)?;
                batch.clear();
            }
        }
        if !batch.is_empty() {
            self.process_batch(&batch)?;
        }
        Ok(())
    }

    /// This ingress's counters, finalized the way a server worker reports
    /// them: flow-table occupancy/eviction counters attached and `flows`
    /// equal to the table's occupied slots.
    pub fn stats(&self) -> ShardStats {
        let mut stats = self.stats.clone();
        stats.table = match &self.exec {
            RawExec::Stateless(s) => s.table_counters(),
            RawExec::Flow(s) => s.table_counters(),
        };
        if let RawExec::Flow(s) = &self.exec {
            s.swap_counters(&mut stats.swap);
        }
        stats.flows = stats.table.occupancy;
        stats
    }
}

//! The flattened-LUT inference path: a compiled pipeline baked into
//! contiguous arrays for the streaming hot loop.
//!
//! The switch simulator ([`LoadedProgram`](pegasus_switch::LoadedProgram))
//! is built for *fidelity*: per packet it instantiates a fresh PHV (cloning
//! the named layout), walks heap-allocated table objects and dispatches
//! boxed match kinds — exactly what you want for resource modeling, and
//! exactly what you do not want between two packets of a 10 Gb/s stream.
//!
//! [`FlatProgram`] is the same pipeline flattened at deploy time:
//!
//! * the PHV becomes a plain `Vec<i64>` scratch with a parallel
//!   `(bits, signed)` table — no names, no per-packet allocation;
//! * every fused Partition/Map table whose key domain is small (≤ 2¹⁶
//!   points — the input-segment and index tables fuzzy matching produces)
//!   is **enumerated into a dense LUT**: one contiguous `Vec<u32>` indexed
//!   by the packed quantized feature codes, one load per lookup;
//! * wider fuzzy tables keep their range boxes, but flattened into
//!   contiguous bound arrays scanned without pointer chasing (with an
//!   early-exit for the common uniform-priority case the simulator's
//!   generic `max_by_key` scan cannot take);
//! * actions become fixed micro-op arrays over scratch indices, executed
//!   without cloning.
//!
//! The flattening is **semantics-preserving by construction**: entries,
//! match order, priority resolution, ALU wrapping and field truncation are
//! reproduced bit for bit, and the engine's determinism test asserts
//! equality against the simulator over whole traces. Programs with
//! stateful registers do not flatten (their per-flow state lives in the
//! register file); [`FlatProgram::from_pipeline`] returns a typed
//! [`FlattenSkip`] reason and the engine falls back to the simulator path.

use crate::compile::CompiledPipeline;
use crate::error::PegasusError;
use crate::numformat::NumFormat;
use pegasus_switch::{mask_of, truncate, AluOp, KeyPart, Operand, Table};
use std::fmt;

/// Largest key domain (in points) enumerated into a dense LUT. 2¹⁶ `u32`
/// slots = 256 KiB per table, comfortably cache-resident.
const DENSE_MAX_POINTS: u64 = 1 << 16;

/// Why a compiled pipeline could not be flattened into a [`FlatProgram`].
///
/// Not an error: pipelines that do not flatten serve through the simulator
/// path instead. The reason is surfaced as a `V301` `Info` diagnostic in
/// [`VerifyReport`](crate::verify::VerifyReport)s and in per-tenant engine
/// stats ([`TenantStats::flatten_skip`](crate::engine::server::TenantStats::flatten_skip)),
/// so an operator can see *why* a tenant is on the slow path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlattenSkip {
    /// The program declares stateful register arrays; per-flow state
    /// cannot be baked into a stateless LUT.
    StatefulRegisters {
        /// Number of register arrays the program keeps.
        registers: usize,
    },
    /// An action of the named table performs a stateful (register) op.
    StatefulOp {
        /// The table whose action touches registers.
        table: String,
    },
}

impl fmt::Display for FlattenSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenSkip::StatefulRegisters { registers } => {
                write!(f, "{registers} stateful register array(s) keep per-flow state")
            }
            FlattenSkip::StatefulOp { table } => {
                write!(f, "table '{table}' has an action with a stateful register op")
            }
        }
    }
}

#[derive(Clone, Copy)]
pub(crate) struct FieldMeta {
    pub(crate) bits: u8,
    pub(crate) signed: bool,
}

/// A flattened ALU operand.
#[derive(Clone, Copy)]
pub(crate) enum Src {
    Field(usize),
    Const(i64),
    Param(usize),
}

/// A flattened ALU op over scratch indices (stateless subset of
/// [`AluOp`]).
#[derive(Clone, Copy)]
pub(crate) enum FlatOp {
    Set { dst: usize, a: Src },
    Add { dst: usize, a: Src, b: Src },
    Sub { dst: usize, a: Src, b: Src },
    Shl { dst: usize, a: Src, amount: u8 },
    Shr { dst: usize, a: Src, amount: u8 },
    Min { dst: usize, a: Src, b: Src },
    Max { dst: usize, a: Src, b: Src },
    And { dst: usize, a: Src, b: Src },
    Or { dst: usize, a: Src, b: Src },
    Xor { dst: usize, a: Src, b: Src },
    Popcnt { dst: usize, a: Src },
}

/// One flattened key pattern (mirrors [`KeyPart`] without heap layout).
#[derive(Clone, Copy)]
pub(crate) enum FlatPart {
    Exact(u64),
    Mask { value: u64, mask: u64 },
    Range { lo: u64, hi: u64 },
}

impl FlatPart {
    #[inline]
    fn matches(&self, raw: u64) -> bool {
        match *self {
            FlatPart::Exact(v) => raw == v,
            FlatPart::Mask { value, mask } => raw & mask == value,
            FlatPart::Range { lo, hi } => raw >= lo && raw <= hi,
        }
    }
}

/// How a flattened table finds its winning entry.
pub(crate) enum Matcher {
    /// No keys: the default action always runs.
    Always,
    /// Dense LUT over the packed key codes; slot = entry index + 1, 0 = no
    /// entry (default).
    Dense(Vec<u32>),
    /// Flattened linear scan: `parts` holds `entries × keys` patterns
    /// row-major; `uniform_priority` enables first-match early exit.
    Scan { parts: Vec<FlatPart>, priorities: Vec<i32>, uniform_priority: bool },
}

pub(crate) struct FlatTable {
    /// Key fields as `(scratch index, bits)`.
    pub(crate) keys: Vec<(usize, u8)>,
    pub(crate) matcher: Matcher,
    /// Per-entry action index / slice into `data`.
    pub(crate) entry_action: Vec<u32>,
    pub(crate) entry_data: Vec<(u32, u32)>, // (offset, len)
    /// Contiguous action-data pool (entries first, then the default's).
    pub(crate) data: Vec<i64>,
    pub(crate) default_entry: Option<(u32, (u32, u32))>,
    /// Flattened micro-ops per action.
    pub(crate) actions: Vec<Vec<FlatOp>>,
}

/// Reusable per-worker scratch for [`FlatProgram`] execution.
///
/// One per thread: the engine allocates it once per shard, so the per-packet
/// path performs no heap allocation at all.
pub struct FlatScratch {
    vals: Vec<i64>,
}

/// Reusable scratch for **batched** [`FlatProgram`] execution
/// ([`classify_batch`](FlatProgram::classify_batch)): every lane's field
/// row lives in one contiguous lane-major matrix, plus a per-lane match
/// buffer that carries each table's winners from the batch-wide match
/// sweep to the action sweep. Grows to the largest batch ever executed
/// and is reused thereafter — the steady-state hot loop performs no
/// allocation.
pub struct FlatBatchScratch {
    /// Lane-major scratch rows (`lanes × fields`).
    vals: Vec<i64>,
    /// Per-lane winning entry + 1 for the table being executed (0 = none).
    hits: Vec<u32>,
}

/// A stateless compiled pipeline flattened for the streaming hot path.
///
/// Built by [`FlatProgram::from_pipeline`] (the runtime does this at deploy
/// time); executed via [`classify`](FlatProgram::classify) /
/// [`scores`](FlatProgram::scores) with a caller-owned [`FlatScratch`].
pub struct FlatProgram {
    name: String,
    fields: Vec<FieldMeta>,
    tables: Vec<FlatTable>,
    input_fields: Vec<usize>,
    predicted_field: Option<usize>,
    score_fields: Vec<usize>,
    score_format: NumFormat,
    dense_tables: usize,
    scan_tables: usize,
}

impl FlatProgram {
    /// Flattens a compiled pipeline. Returns a typed [`FlattenSkip`]
    /// reason when the program keeps stateful registers (per-flow state
    /// cannot be baked into a LUT) — callers fall back to the simulator
    /// runtime and surface the reason in stats and verify reports.
    pub fn from_pipeline(p: &CompiledPipeline) -> Result<FlatProgram, FlattenSkip> {
        if !p.program.registers.is_empty() {
            return Err(FlattenSkip::StatefulRegisters { registers: p.program.registers.len() });
        }
        let fields: Vec<FieldMeta> = p
            .program
            .layout
            .iter()
            .map(|(_, d)| FieldMeta { bits: d.bits, signed: d.signed })
            .collect();
        let mut tables = Vec::with_capacity(p.program.tables.len());
        let mut dense_tables = 0;
        let mut scan_tables = 0;
        for t in &p.program.tables {
            let flat = flatten_table(t, &fields)
                .ok_or_else(|| FlattenSkip::StatefulOp { table: t.name.clone() })?;
            match flat.matcher {
                Matcher::Dense(_) => dense_tables += 1,
                Matcher::Scan { .. } => scan_tables += 1,
                Matcher::Always => {}
            }
            tables.push(flat);
        }
        Ok(FlatProgram {
            name: p.program.name.clone(),
            fields,
            tables,
            input_fields: p.input_fields.iter().map(|f| f.0).collect(),
            predicted_field: p.predicted_field.map(|f| f.0),
            score_fields: p.score_fields.iter().map(|f| f.0).collect(),
            score_format: p.score_format,
            dense_tables,
            scan_tables,
        })
    }

    /// A zeroed scratch sized for this program.
    pub fn scratch(&self) -> FlatScratch {
        FlatScratch { vals: vec![0; self.fields.len()] }
    }

    /// A zeroed batch scratch pre-sized for `lanes` samples (it grows on
    /// demand if a larger batch is ever executed).
    pub fn batch_scratch(&self, lanes: usize) -> FlatBatchScratch {
        FlatBatchScratch { vals: vec![0; lanes * self.fields.len()], hits: vec![0; lanes] }
    }

    /// Tables enumerated into dense LUTs.
    pub fn dense_tables(&self) -> usize {
        self.dense_tables
    }

    /// Tables kept as flattened range/ternary scans.
    pub fn scan_tables(&self) -> usize {
        self.scan_tables
    }

    /// Scratch-field metadata, in scratch-index order (verifier
    /// introspection).
    pub(crate) fn fields_meta(&self) -> &[FieldMeta] {
        &self.fields
    }

    /// The flattened tables, in execution order (verifier introspection).
    pub(crate) fn flat_tables(&self) -> &[FlatTable] {
        &self.tables
    }

    /// Scratch indices the input feature codes are stored into (verifier
    /// introspection: these seed the `[0, 255]` input intervals).
    pub(crate) fn input_scratch(&self) -> &[usize] {
        &self.input_fields
    }

    /// Classifies one sample of feature codes (each in `[0, 255]`),
    /// bit-identical to [`DataplaneModel::classify`](crate::runtime::DataplaneModel::classify).
    pub fn classify(&self, codes: &[f32], s: &mut FlatScratch) -> Result<usize, PegasusError> {
        let pf = self
            .predicted_field
            .ok_or_else(|| PegasusError::NotAClassifier { pipeline: self.name.clone() })?;
        self.run(codes, s)?;
        Ok(s.vals[pf] as usize)
    }

    /// Classifies `lanes` samples in one table-major sweep, bit-identical
    /// to calling [`classify`](FlatProgram::classify) on each row of
    /// `codes` (row-major, `lanes × arity`) in order.
    ///
    /// Per-sample execution walks every table once per packet, so a
    /// pipeline with several dense LUTs (up to 256 KiB each) re-touches
    /// all of them between any two packets. The batched form runs each
    /// table's *match* phase across the whole batch before any action
    /// fires: one table's LUT / flattened bound arrays stay hot while they
    /// are swept `lanes` times in a straight-line loop, then the next
    /// table's. Match resolution and action execution go through the exact
    /// same row helpers as the per-sample path (including the verifier's
    /// `V001`/`V002`/`V003`/`V101` debug_assert mirrors), so divergence is
    /// impossible by construction — `tests/raw_path.rs` additionally
    /// proves it end to end against the structured engine.
    pub fn classify_batch(
        &self,
        codes: &[f32],
        lanes: usize,
        s: &mut FlatBatchScratch,
        out: &mut Vec<usize>,
    ) -> Result<(), PegasusError> {
        let pf = self
            .predicted_field
            .ok_or_else(|| PegasusError::NotAClassifier { pipeline: self.name.clone() })?;
        self.run_batch(codes, lanes, s)?;
        let nf = self.fields.len();
        out.clear();
        out.extend((0..lanes).map(|l| s.vals[l * nf + pf] as usize));
        Ok(())
    }

    fn run_batch(
        &self,
        codes: &[f32],
        lanes: usize,
        s: &mut FlatBatchScratch,
    ) -> Result<(), PegasusError> {
        let arity = self.input_fields.len();
        if codes.len() != lanes * arity {
            return Err(PegasusError::FeatureCount { expected: lanes * arity, got: codes.len() });
        }
        let nf = self.fields.len();
        if s.vals.len() < lanes * nf {
            s.vals.resize(lanes * nf, 0);
        }
        if s.hits.len() < lanes {
            s.hits.resize(lanes, 0);
        }
        let FlatBatchScratch { vals, hits } = s;
        let vals = &mut vals[..lanes * nf];
        vals.fill(0);
        for (l, row) in vals.chunks_exact_mut(nf).enumerate() {
            let lane_codes = &codes[l * arity..(l + 1) * arity];
            for (&f, &v) in self.input_fields.iter().zip(lane_codes) {
                self.store(row, f, v.round().clamp(0.0, 255.0) as i64);
            }
        }
        for t in &self.tables {
            // Match phase: sweep this table's LUT/bound arrays over every
            // lane while they are cache-hot (winner encoded as entry + 1,
            // 0 = default — the dense-LUT slot encoding).
            for (l, row) in vals.chunks_exact(nf).enumerate() {
                hits[l] = match self.match_entry(t, row) {
                    Some(e) => e as u32 + 1,
                    None => 0,
                };
            }
            // Act phase: run each lane's winning (or default) entry.
            for (l, row) in vals.chunks_exact_mut(nf).enumerate() {
                let hit = match hits[l] {
                    0 => None,
                    e => Some(e as usize - 1),
                };
                self.apply_entry(t, hit, row);
            }
        }
        Ok(())
    }

    /// Decoded output scores of one sample.
    pub fn scores(&self, codes: &[f32], s: &mut FlatScratch) -> Result<Vec<f32>, PegasusError> {
        if self.score_fields.is_empty() {
            return Err(PegasusError::NoScores { pipeline: self.name.clone() });
        }
        self.run(codes, s)?;
        Ok(self.score_fields.iter().map(|&f| self.score_format.to_real(s.vals[f])).collect())
    }

    fn run(&self, codes: &[f32], s: &mut FlatScratch) -> Result<(), PegasusError> {
        if codes.len() != self.input_fields.len() {
            return Err(PegasusError::FeatureCount {
                expected: self.input_fields.len(),
                got: codes.len(),
            });
        }
        s.vals.fill(0);
        for (&f, &v) in self.input_fields.iter().zip(codes.iter()) {
            self.store(&mut s.vals, f, v.round().clamp(0.0, 255.0) as i64);
        }
        for t in &self.tables {
            let hit = self.match_entry(t, &s.vals);
            self.apply_entry(t, hit, &mut s.vals);
        }
        Ok(())
    }

    #[inline]
    fn store(&self, vals: &mut [i64], dst: usize, v: i64) {
        // Verifier invariant V001: every op dst scratch index in bounds.
        debug_assert!(dst < self.fields.len(), "V001: dst scratch index {dst} out of bounds");
        let m = self.fields[dst];
        vals[dst] = truncate(v, m.bits, m.signed);
    }

    #[inline]
    fn raw(&self, vals: &[i64], f: usize, bits: u8) -> u64 {
        (vals[f] as u64) & mask_of(bits)
    }

    /// Resolves one table's winning entry over one scratch row — the match
    /// half of table execution, shared verbatim by the per-sample and
    /// batched paths (so the two cannot diverge).
    fn match_entry(&self, t: &FlatTable, vals: &[i64]) -> Option<usize> {
        match &t.matcher {
            Matcher::Always => None,
            Matcher::Dense(lut) => {
                let mut idx = 0usize;
                for &(f, bits) in &t.keys {
                    // Verifier invariant V001: key scratch index in bounds.
                    debug_assert!(f < vals.len(), "V001: key scratch index {f} out of bounds");
                    idx = (idx << bits) | self.raw(vals, f, bits) as usize;
                }
                // Verifier invariant V101: the packed key code lands inside
                // the LUT (proved statically by interval analysis).
                debug_assert!(idx < lut.len(), "V101: packed LUT key {idx} >= {}", lut.len());
                match lut[idx] {
                    0 => None,
                    // Verifier invariant V002: a non-zero slot names a real
                    // entry (slot encoding is entry index + 1).
                    e => {
                        debug_assert!(
                            (e as usize) <= t.entry_action.len(),
                            "V002: dangling LUT slot {e}"
                        );
                        Some(e as usize - 1)
                    }
                }
            }
            Matcher::Scan { parts, priorities, uniform_priority } => {
                let k = t.keys.len();
                let mut best: Option<usize> = None;
                'entries: for e in 0..priorities.len() {
                    for (j, &(f, bits)) in t.keys.iter().enumerate() {
                        if !parts[e * k + j].matches(self.raw(vals, f, bits)) {
                            continue 'entries;
                        }
                    }
                    match best {
                        // First match wins among equal priorities.
                        Some(b) if priorities[e] <= priorities[b] => {}
                        _ => best = Some(e),
                    }
                    if *uniform_priority {
                        break;
                    }
                }
                best
            }
        }
    }

    /// Runs the winning (or default) entry's action over one scratch row —
    /// the action half of table execution, shared by both paths.
    fn apply_entry(&self, t: &FlatTable, hit: Option<usize>, vals: &mut [i64]) {
        let (action, (off, len)) = match hit {
            Some(e) => (t.entry_action[e], t.entry_data[e]),
            None => match t.default_entry {
                Some(d) => d,
                None => return,
            },
        };
        // Verifier invariant V003: action index and data slice in bounds.
        debug_assert!(
            (action as usize) < t.actions.len(),
            "V003: action index {action} out of bounds"
        );
        debug_assert!(
            (off as usize + len as usize) <= t.data.len(),
            "V003: entry data [{off}, +{len}) outside pool of {}",
            t.data.len()
        );
        let params = &t.data[off as usize..(off + len) as usize];
        for op in &t.actions[action as usize] {
            self.exec_op(op, params, vals);
        }
    }

    #[inline]
    fn read(&self, vals: &[i64], src: Src, params: &[i64]) -> i64 {
        match src {
            Src::Field(f) => {
                // Verifier invariant V001: source scratch index in bounds.
                debug_assert!(f < vals.len(), "V001: src scratch index {f} out of bounds");
                vals[f]
            }
            Src::Const(c) => c,
            Src::Param(i) => {
                // Verifier invariant V003: param slot inside the entry data.
                debug_assert!(i < params.len(), "V003: param index {i} >= {}", params.len());
                params[i]
            }
        }
    }

    fn exec_op(&self, op: &FlatOp, params: &[i64], vals: &mut [i64]) {
        match *op {
            FlatOp::Set { dst, a } => {
                let v = self.read(vals, a, params);
                self.store(vals, dst, v);
            }
            FlatOp::Add { dst, a, b } => {
                let v = self.read(vals, a, params).wrapping_add(self.read(vals, b, params));
                self.store(vals, dst, v);
            }
            FlatOp::Sub { dst, a, b } => {
                let v = self.read(vals, a, params).wrapping_sub(self.read(vals, b, params));
                self.store(vals, dst, v);
            }
            FlatOp::Shl { dst, a, amount } => {
                let v = self.read(vals, a, params) << amount;
                self.store(vals, dst, v);
            }
            FlatOp::Shr { dst, a, amount } => {
                let v = self.read(vals, a, params) >> amount;
                self.store(vals, dst, v);
            }
            FlatOp::Min { dst, a, b } => {
                let v = self.read(vals, a, params).min(self.read(vals, b, params));
                self.store(vals, dst, v);
            }
            FlatOp::Max { dst, a, b } => {
                let v = self.read(vals, a, params).max(self.read(vals, b, params));
                self.store(vals, dst, v);
            }
            FlatOp::And { dst, a, b } => {
                let v = self.read(vals, a, params) & self.read(vals, b, params);
                self.store(vals, dst, v);
            }
            FlatOp::Or { dst, a, b } => {
                let v = self.read(vals, a, params) | self.read(vals, b, params);
                self.store(vals, dst, v);
            }
            FlatOp::Xor { dst, a, b } => {
                let v = self.read(vals, a, params) ^ self.read(vals, b, params);
                self.store(vals, dst, v);
            }
            FlatOp::Popcnt { dst, a } => {
                let v = (self.read(vals, a, params) as u64).count_ones() as i64;
                self.store(vals, dst, v);
            }
        }
    }
}

fn flatten_src(op: &Operand) -> Src {
    match op {
        Operand::Field(f) => Src::Field(f.0),
        Operand::Const(c) => Src::Const(*c),
        Operand::Param(i) => Src::Param(*i),
    }
}

/// Flattens one action; `None` when it touches registers (stateful).
fn flatten_action(ops: &[AluOp]) -> Option<Vec<FlatOp>> {
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        let flat = match op {
            AluOp::Set { dst, a } => FlatOp::Set { dst: dst.0, a: flatten_src(a) },
            AluOp::Add { dst, a, b } => {
                FlatOp::Add { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::Sub { dst, a, b } => {
                FlatOp::Sub { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::Shl { dst, a, amount } => {
                FlatOp::Shl { dst: dst.0, a: flatten_src(a), amount: *amount }
            }
            AluOp::Shr { dst, a, amount } => {
                FlatOp::Shr { dst: dst.0, a: flatten_src(a), amount: *amount }
            }
            AluOp::Min { dst, a, b } => {
                FlatOp::Min { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::Max { dst, a, b } => {
                FlatOp::Max { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::And { dst, a, b } => {
                FlatOp::And { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::Or { dst, a, b } => {
                FlatOp::Or { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::Xor { dst, a, b } => {
                FlatOp::Xor { dst: dst.0, a: flatten_src(a), b: flatten_src(b) }
            }
            AluOp::Popcnt { dst, a } => FlatOp::Popcnt { dst: dst.0, a: flatten_src(a) },
            AluOp::RegRead { .. }
            | AluOp::RegWrite { .. }
            | AluOp::RegReadWrite { .. }
            | AluOp::RegIncrSat { .. }
            | AluOp::RegShiftInsert { .. } => return None,
        };
        out.push(flat);
    }
    Some(out)
}

fn flatten_part(p: &KeyPart) -> FlatPart {
    match p {
        KeyPart::Exact(v) => FlatPart::Exact(*v),
        KeyPart::Ternary(t) => FlatPart::Mask { value: t.value, mask: t.mask },
        KeyPart::Range { lo, hi } => FlatPart::Range { lo: *lo, hi: *hi },
    }
}

fn flatten_table(t: &Table, fields: &[FieldMeta]) -> Option<FlatTable> {
    let keys: Vec<(usize, u8)> = t.keys.iter().map(|&(f, _)| (f.0, fields[f.0].bits)).collect();
    let actions: Vec<Vec<FlatOp>> =
        t.actions.iter().map(|a| flatten_action(&a.ops)).collect::<Option<_>>()?;

    let mut data: Vec<i64> = Vec::new();
    let mut entry_action = Vec::with_capacity(t.entries.len());
    let mut entry_data = Vec::with_capacity(t.entries.len());
    for e in &t.entries {
        entry_action.push(e.action_idx as u32);
        entry_data.push((data.len() as u32, e.action_data.len() as u32));
        data.extend_from_slice(&e.action_data);
    }
    let default_entry = t.default_action.as_ref().map(|(idx, d)| {
        let off = data.len() as u32;
        data.extend_from_slice(d);
        (*idx as u32, (off, d.len() as u32))
    });

    let parts: Vec<FlatPart> =
        t.entries.iter().flat_map(|e| e.keys.iter().map(flatten_part)).collect();
    let priorities: Vec<i32> = t.entries.iter().map(|e| e.priority).collect();
    let uniform_priority = priorities.windows(2).all(|w| w[0] == w[1]);

    let domain: u64 =
        keys.iter().fold(1u64, |acc, &(_, bits)| acc.saturating_mul(1u64 << bits.min(63)));
    let matcher = if keys.is_empty() {
        Matcher::Always
    } else if domain <= DENSE_MAX_POINTS && !t.entries.is_empty() {
        // Enumerate the whole key domain through the same match-resolution
        // rule the simulator applies (highest priority, earliest entry).
        let k = keys.len();
        let mut lut = vec![0u32; domain as usize];
        let mut raws = vec![0u64; k];
        for (slot, val) in lut.iter_mut().enumerate() {
            let mut rem = slot;
            for (j, &(_, bits)) in keys.iter().enumerate().rev() {
                raws[j] = (rem & ((1usize << bits) - 1)) as u64;
                rem >>= bits;
            }
            let mut best: Option<usize> = None;
            for e in 0..t.entries.len() {
                if raws.iter().enumerate().all(|(j, &r)| parts[e * k + j].matches(r)) {
                    match best {
                        Some(b) if priorities[e] <= priorities[b] => {}
                        _ => best = Some(e),
                    }
                    if uniform_priority {
                        break;
                    }
                }
            }
            if let Some(e) = best {
                *val = e as u32 + 1;
            }
        }
        Matcher::Dense(lut)
    } else {
        Matcher::Scan { parts, priorities, uniform_priority }
    };

    Some(FlatTable { keys, matcher, entry_action, entry_data, data, default_entry, actions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, CompileTarget};
    use crate::fusion::fuse_basic;
    use crate::primitives::{MapFn, PrimitiveProgram};
    use crate::runtime::DataplaneModel;
    use pegasus_nn::Tensor;
    use pegasus_switch::SwitchConfig;
    use rand::Rng;
    use rand::SeedableRng;

    fn scorer() -> PrimitiveProgram {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let w0 = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let w1 = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2]);
        let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.0, 0.0] });
        let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![0.0, 0.0] });
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        p
    }

    fn inputs(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect()
    }

    #[test]
    fn flat_classify_matches_simulator_exhaustively() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(1500, 11),
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "flat",
        )
        .expect("compiles");
        let dp = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let flat = FlatProgram::from_pipeline(dp.pipeline()).expect("stateless flattens");
        let mut s = flat.scratch();
        for row in inputs(500, 12) {
            assert_eq!(
                flat.classify(&row, &mut s).unwrap(),
                dp.classify(&row).unwrap(),
                "row {row:?}"
            );
        }
        // Segment tables over 2x8-bit codes must have become dense LUTs.
        assert!(flat.dense_tables() >= 2, "dense {}", flat.dense_tables());
    }

    #[test]
    fn flat_scores_match_simulator() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(1000, 13),
            &CompileOptions::default(),
            CompileTarget::Scores,
            "flat_s",
        )
        .expect("compiles");
        let dp = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let flat = FlatProgram::from_pipeline(dp.pipeline()).expect("flattens");
        let mut s = flat.scratch();
        for row in inputs(200, 14) {
            assert_eq!(flat.scores(&row, &mut s).unwrap(), dp.scores(&row).unwrap());
        }
        // Classify on a Scores pipeline is the same typed error.
        assert!(matches!(
            flat.classify(&[0.0; 4], &mut s),
            Err(PegasusError::NotAClassifier { .. })
        ));
    }

    #[test]
    fn batched_classify_matches_per_sample_classify() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(1500, 11),
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "flat_b",
        )
        .expect("compiles");
        let dp = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let flat = FlatProgram::from_pipeline(dp.pipeline()).expect("flattens");
        let mut scalar = flat.scratch();
        let mut batch = flat.batch_scratch(8);
        let mut out = Vec::new();
        let rows = inputs(509, 16); // deliberately not a multiple of any batch
        for lanes in [1usize, 7, 8, 64, 509] {
            for chunk in rows.chunks(lanes) {
                let codes: Vec<f32> = chunk.iter().flatten().copied().collect();
                // Ragged final chunk exercises partial batches (and scratch
                // growth past the 8 lanes it was presized for).
                flat.classify_batch(&codes, chunk.len(), &mut batch, &mut out).unwrap();
                assert_eq!(out.len(), chunk.len());
                for (row, &got) in chunk.iter().zip(&out) {
                    assert_eq!(
                        got,
                        flat.classify(row, &mut scalar).unwrap(),
                        "lanes {lanes}, row {row:?}"
                    );
                }
            }
        }
        // Empty batch is a no-op, not an error.
        flat.classify_batch(&[], 0, &mut batch, &mut out).unwrap();
        assert!(out.is_empty());
        // Ragged code slab is the same typed error as the scalar path.
        assert_eq!(
            flat.classify_batch(&[1.0; 7], 2, &mut batch, &mut out).unwrap_err(),
            PegasusError::FeatureCount { expected: 8, got: 7 }
        );
    }

    #[test]
    fn flat_rejects_wrong_arity_like_runtime() {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        let c = compile(
            &prog,
            &inputs(500, 15),
            &CompileOptions::default(),
            CompileTarget::Classify,
            "flat_e",
        )
        .expect("compiles");
        let dp = DataplaneModel::deploy(c, &SwitchConfig::tofino2()).unwrap();
        let flat = FlatProgram::from_pipeline(dp.pipeline()).expect("flattens");
        let mut s = flat.scratch();
        assert_eq!(
            flat.classify(&[1.0, 2.0], &mut s).unwrap_err(),
            PegasusError::FeatureCount { expected: 4, got: 2 }
        );
    }
}

//! CNN-M: the medium model in Neural-Additive form — Advanced Primitive
//! Fusion ❸ (Reduction of SumReduce, §4.3).
//!
//! Each input segment gets a private deep subnet; only the *final* Sum
//! survives. The entire subnet — arbitrarily many parameters — collapses
//! into a single mapping table per segment, which is why CNN-M is bigger
//! than CNN-B yet uses *fewer* switch resources (the paper's Table 6
//! observation this reproduction must preserve).

use super::{dataset_rows, DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::compile::CompileOptions;
use crate::error::PegasusError;
use crate::fusion::{fuse_basic, is_nam_form};
use crate::primitives::{MapFn, PrimitiveProgram, ValueId};
use pegasus_nn::layers::{
    BatchNorm1d, Combine, Dense, Layer, LayerSpec, NormMode, Parallel, Relu, SliceCols,
};
use pegasus_nn::metrics::PrRcF1;
use pegasus_nn::optim::Adam;
use pegasus_nn::train::{flat, predict_classes, train_classifier, TrainConfig};
use pegasus_nn::{Dataset, Sequential};

/// Sequence length.
pub const SEQ_LEN: usize = 16;
/// Codes per NAM segment.
pub const SEG_WIDTH: usize = 4;
/// Subnet hidden width (the "medium" scale).
pub const HIDDEN: usize = 64;

/// A trained CNN-M.
pub struct CnnM {
    /// The trained float model (NAM over 4 segments).
    pub model: Sequential,
    classes: usize,
}

impl CnnM {
    /// Trains CNN-M on interleaved sequence codes.
    pub fn fit(train: &Dataset, val: Option<&Dataset>, settings: &TrainSettings) -> Self {
        assert_eq!(train.x.cols(), SEQ_LEN, "CNN-M expects 16 sequence codes");
        let classes = train.classes();
        let mut rng = settings.rng();
        let branches: Vec<Vec<Box<dyn Layer>>> = (0..SEQ_LEN / SEG_WIDTH)
            .map(|i| {
                let chain: Vec<Box<dyn Layer>> = vec![
                    Box::new(SliceCols::new(i * SEG_WIDTH, SEG_WIDTH)),
                    Box::new(BatchNorm1d::new(SEG_WIDTH, NormMode::Feature)),
                    Box::new(Dense::new(&mut rng, SEG_WIDTH, HIDDEN)),
                    Box::new(Relu::new()),
                    Box::new(Dense::new(&mut rng, HIDDEN, HIDDEN)),
                    Box::new(Relu::new()),
                    Box::new(Dense::new(&mut rng, HIDDEN, classes)),
                ];
                chain
            })
            .collect();
        let mut m = Sequential::new();
        m.add(Box::new(Parallel::with_combine(branches, Combine::Sum)));

        let mut opt = Adam::new(settings.lr);
        let cfg =
            TrainConfig { epochs: settings.epochs, batch_size: settings.batch, verbose: false };
        train_classifier(&mut m, train, val, &mut opt, &cfg, &mut rng, &flat);
        CnnM { model: m, classes }
    }

    /// Full-precision macro metrics.
    pub fn float_metrics(&mut self, data: &Dataset) -> PrRcF1 {
        let preds = predict_classes(&mut self.model, &data.x, &flat);
        pegasus_nn::metrics::pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Builds the NAM-form primitive program (one Map per segment).
    pub fn to_primitives(&self) -> PrimitiveProgram {
        let spec = self.model.to_spec("CNN-M");
        let branches = match &spec.layers[0] {
            LayerSpec::Parallel { branches, .. } => branches.clone(),
            other => panic!("expected parallel NAM, got {}", other.name()),
        };
        let mut p = PrimitiveProgram::new(SEQ_LEN);
        let segs = p.partition_strided(p.input, SEG_WIDTH, SEG_WIDTH);
        let mut mapped: Vec<ValueId> = Vec::new();
        for (chain, &seg) in branches.iter().zip(segs.iter()) {
            // chain = [SliceCols, BN, Dense, Relu, Dense, Relu, Dense]
            let mut fns: Vec<MapFn> = Vec::new();
            for layer in &chain[1..] {
                match layer {
                    LayerSpec::BatchNorm1d {
                        gamma, beta, running_mean, running_var, eps, ..
                    } => {
                        let dim = gamma.len();
                        let mut scale = Vec::with_capacity(dim);
                        let mut shift = Vec::with_capacity(dim);
                        for i in 0..dim {
                            let inv = 1.0 / (running_var.data()[i] + eps).sqrt();
                            let s = gamma.data()[i] * inv;
                            scale.push(s);
                            shift.push(beta.data()[i] - s * running_mean.data()[i]);
                        }
                        fns.push(MapFn::Affine { scale, shift });
                    }
                    LayerSpec::Dense { weight, bias } => fns
                        .push(MapFn::MatVec { weight: weight.clone(), bias: bias.data().to_vec() }),
                    LayerSpec::Relu => fns.push(MapFn::Relu),
                    other => panic!("unexpected NAM layer {}", other.name()),
                }
            }
            mapped.push(p.map(seg, MapFn::Chain(fns)));
        }
        let out = p.sum_reduce(&mapped);
        p.set_output(out);
        debug_assert!(is_nam_form(&p));
        p
    }
}

impl DataplaneNet for CnnM {
    fn name(&self) -> &'static str {
        "CNN-M"
    }

    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(CnnM::fit(data.seq("CNN-M")?, data.val_seq(), settings))
    }

    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.float_metrics(data.seq("CNN-M")?))
    }

    fn calibration_inputs(&self, data: &ModelData<'_>) -> Result<Vec<Vec<f32>>, PegasusError> {
        Ok(dataset_rows(data.seq("CNN-M")?))
    }

    /// Lowers the NAM form — by construction already maximally fused (one
    /// lookup per segment).
    fn lower(
        &mut self,
        _data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        let mut prog = self.to_primitives();
        fuse_basic(&mut prog); // no-op on NAM form; kept for uniformity
        Ok(Lowered::Primitives {
            program: prog,
            tree_overrides: std::collections::HashMap::new(),
            opts: opts.clone(),
            // Same per-flow window storage as CNN-B (Table 6: 72 bits).
            stateful_bits_per_flow: 72,
        })
    }

    /// Model size in kilobits — large, and it does not matter on the
    /// switch: the subnets live inside table entries.
    fn size_kilobits(&mut self) -> f64 {
        self.model.to_spec("CNN-M").size_kilobits()
    }

    fn stream_features(&self) -> super::StreamFeatures {
        super::StreamFeatures::Seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_nn::Tensor;
    use pegasus_switch::SwitchConfig;

    fn small_data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 8 });
        let (train, _val, test) = split_by_flow(&trace, 4);
        (extract_views(&train).seq, extract_views(&test).seq)
    }

    #[test]
    fn reference_program_matches_float_model() {
        let (train, _) = small_data();
        let mut m = CnnM::fit(&train, None, &TrainSettings::quick());
        let prog = m.to_primitives();
        for r in [0usize, 9] {
            let x = train.x.row(r).to_vec();
            let want = m.model.forward(&Tensor::from_vec(x.clone(), &[1, SEQ_LEN]), false);
            let got = prog.eval(&x);
            for (a, b) in want.row(0).iter().zip(got.iter()) {
                assert!((a - b).abs() < 1e-2, "row {r}: {:?} vs {:?}", want.row(0), got);
            }
        }
    }

    #[test]
    fn is_nam_and_uses_few_tables() {
        let (train, _) = small_data();
        let m = CnnM::fit(&train, None, &TrainSettings::quick());
        let prog = m.to_primitives();
        assert!(is_nam_form(&prog));
        assert_eq!(prog.map_count(), 4); // one lookup per segment
        let data = ModelData::new().with_seq(&train);
        let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
        let compiled = Pegasus::new(m).options(opts).compile(&data).expect("compiles");
        assert_eq!(compiled.report().fuzzy_tables, 4);
    }

    #[test]
    fn bigger_model_lower_overhead_than_cnn_b() {
        // The Table 6 shape: CNN-M is larger in parameters but uses less
        // TCAM/bus than CNN-B.
        let (train, _) = small_data();
        let mut mb = super::super::cnn_b::CnnB::fit(&train, None, &TrainSettings::quick());
        let mut mm = CnnM::fit(&train, None, &TrainSettings::quick());
        assert!(mm.size_kilobits() > mb.size_kilobits() * 5.0);
        let data = ModelData::new().with_seq(&train);
        let opts = CompileOptions { clustering_depth: 5, ..Default::default() };
        let db = Pegasus::new(mb)
            .options(opts.clone())
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let dm = Pegasus::new(mm)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let rb = db.resource_report();
        let rm = dm.resource_report();
        assert!(
            rm.tcam_bits < rb.tcam_bits,
            "CNN-M TCAM {} should undercut CNN-B {}",
            rm.tcam_bits,
            rb.tcam_bits
        );
    }

    #[test]
    fn trains_and_classifies_on_switch() {
        let (train, test) = small_data();
        let mut m = CnnM::fit(&train, None, &TrainSettings::quick());
        let float_f1 = m.float_metrics(&test).f1;
        assert!(float_f1 > 0.55, "float F1 {float_f1}");
        let data = ModelData::new().with_seq(&train);
        let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
        let dp = Pegasus::new(m)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let dp_f1 = dp.evaluate(&test).expect("evaluates").f1;
        assert!(dp_f1 > float_f1 - 0.25, "dataplane {dp_f1} vs float {float_f1}");
    }
}

//! MLP-B: the basic multi-layer perceptron on statistical features (§6.3).
//!
//! Three hidden layers, each a Batch Normalization → fully connected → ReLU
//! sandwich, on the 16-byte statistical feature vector. Lowers through the
//! standard lowering + Basic Primitive Fusion path, with optional centroid
//! fine-tuning of the input-layer cluster trees (§4.4) via
//! [`CompileOptions::finetune_centroids`].

use super::{dataset_rows, DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::compile::CompileOptions;
use crate::error::PegasusError;
use crate::finetune::{finetune_centroids_guarded, fit_segment_trees, FinetuneConfig};
use crate::fusion::fuse_basic;
use crate::lowering::{lower_sequential, LoweringOptions};
use crate::runtime::input_partition;
use pegasus_nn::layers::{BatchNorm1d, Dense, NormMode, Relu};
use pegasus_nn::metrics::PrRcF1;
use pegasus_nn::optim::Adam;
use pegasus_nn::train::{evaluate_classifier, flat, train_classifier, TrainConfig};
use pegasus_nn::{Dataset, Sequential};
use std::collections::HashMap;

/// Hidden width of every MLP-B layer.
pub const HIDDEN: usize = 20;
/// Statistical feature count (128-bit input scale).
pub const INPUT_DIM: usize = 16;

/// A trained MLP-B.
pub struct MlpB {
    /// The trained float model (the CPU/GPU baseline of Figure 9).
    pub model: Sequential,
    classes: usize,
}

impl MlpB {
    /// Trains MLP-B on statistical-feature samples.
    pub fn fit(train: &Dataset, val: Option<&Dataset>, settings: &TrainSettings) -> Self {
        assert_eq!(train.x.cols(), INPUT_DIM, "MLP-B expects 16 statistical features");
        let classes = train.classes();
        let mut rng = settings.rng();
        let mut m = Sequential::new();
        m.add(Box::new(BatchNorm1d::new(INPUT_DIM, NormMode::Feature)));
        m.add(Box::new(Dense::new(&mut rng, INPUT_DIM, HIDDEN)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(BatchNorm1d::new(HIDDEN, NormMode::Feature)));
        m.add(Box::new(Dense::new(&mut rng, HIDDEN, HIDDEN)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(BatchNorm1d::new(HIDDEN, NormMode::Feature)));
        m.add(Box::new(Dense::new(&mut rng, HIDDEN, HIDDEN)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut rng, HIDDEN, classes)));

        let mut opt = Adam::new(settings.lr);
        let cfg =
            TrainConfig { epochs: settings.epochs, batch_size: settings.batch, verbose: false };
        train_classifier(&mut m, train, val, &mut opt, &cfg, &mut rng, &flat);
        MlpB { model: m, classes }
    }

    /// Full-precision macro metrics (the control-plane baseline).
    pub fn float_metrics(&mut self, data: &Dataset) -> PrRcF1 {
        evaluate_classifier(&mut self.model, data, &flat)
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }
}

impl DataplaneNet for MlpB {
    fn name(&self) -> &'static str {
        "MLP-B"
    }

    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(MlpB::fit(data.stat("MLP-B")?, data.val_stat(), settings))
    }

    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.float_metrics(data.stat("MLP-B")?))
    }

    fn calibration_inputs(&self, data: &ModelData<'_>) -> Result<Vec<Vec<f32>>, PegasusError> {
        Ok(dataset_rows(data.stat("MLP-B")?))
    }

    /// Lowers through standard lowering + Basic Primitive Fusion. When
    /// [`CompileOptions::finetune_centroids`] is set, input-layer centroids
    /// are fine-tuned by backpropagation before table emission.
    fn lower(
        &mut self,
        data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        let train = data.stat("MLP-B")?;
        let spec = self.model.to_spec("MLP-B");
        let mut prog = lower_sequential(&spec, &LoweringOptions { segment_width: 4 });
        fuse_basic(&mut prog);

        let mut overrides = HashMap::new();
        if opts.finetune_centroids {
            if let Some((values, offsets, lens)) = input_partition(&prog) {
                let mut trees = fit_segment_trees(&train.x, &offsets, &lens, opts.clustering_depth);
                finetune_centroids_guarded(
                    &mut trees,
                    &mut self.model,
                    train,
                    &FinetuneConfig::default(),
                );
                for (vid, st) in values.into_iter().zip(trees) {
                    overrides.insert(vid, st.tree);
                }
            }
        }
        // 10-bit activations: five segment maps each fetch hidden-width
        // action data per stage; at 10 bits all five stay under the
        // 1024-bit action bus and every block keeps its 3-stage budget
        // (the paper's MLP-B is likewise the heaviest bus user, Table 6).
        let opts = CompileOptions { act_bits: opts.act_bits.min(10), ..opts.clone() };
        Ok(Lowered::Primitives {
            program: prog,
            tree_overrides: overrides,
            opts,
            // Per-flow statistical features the switch must maintain:
            // min/max packet length and IPD (4 x 16-bit running registers)
            // plus the 16-bit previous-packet timestamp — 80 stateful bits
            // (Table 6 row).
            stateful_bits_per_flow: 80,
        })
    }

    fn size_kilobits(&mut self) -> f64 {
        self.model.to_spec("MLP-B").size_kilobits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::CompileOptions;
    use crate::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::SwitchConfig;

    fn small_data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 30, seed: 5 });
        let (train, _val, test) = split_by_flow(&trace, 1);
        (extract_views(&train).stat, extract_views(&test).stat)
    }

    #[test]
    fn trains_to_useful_accuracy_and_compiles() {
        let (train, test) = small_data();
        let data = ModelData::new().with_stat(&train);
        let mut m = MlpB::train(&data, &TrainSettings::quick()).expect("trains");
        let float_f1 = m.float_metrics(&test).f1;
        assert!(float_f1 > 0.6, "float F1 {float_f1}");

        let opts = CompileOptions { clustering_depth: 5, ..Default::default() };
        let dp = Pegasus::new(m)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("fits");
        let dp_f1 = dp.evaluate(&test).expect("evaluates").f1;
        // Dataplane accuracy within a reasonable envelope of float accuracy.
        assert!(dp_f1 > float_f1 - 0.2, "dataplane F1 {dp_f1} too far below float {float_f1}");
        let report = dp.resource_report();
        assert!(report.stages_used <= 20, "stages {}", report.stages_used);
        assert_eq!(report.stateful_bits_per_flow, 80);
    }

    #[test]
    fn finetuned_compile_not_worse() {
        let (train, test) = small_data();
        let data = ModelData::new().with_stat(&train);
        let m = MlpB::train(&data, &TrainSettings::quick()).expect("trains");
        let opts = CompileOptions { clustering_depth: 4, ..Default::default() };
        let tuned_opts = CompileOptions { finetune_centroids: true, ..opts.clone() };
        let dp_base = Pegasus::new(m)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let m2 = MlpB::train(&data, &TrainSettings::quick()).expect("trains");
        let dp_tuned = Pegasus::new(m2)
            .options(tuned_opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .unwrap();
        let f_base = dp_base.evaluate(&test).unwrap().f1;
        let f_tuned = dp_tuned.evaluate(&test).unwrap().f1;
        assert!(f_tuned >= f_base - 0.05, "fine-tuning collapsed accuracy: {f_base} -> {f_tuned}");
    }

    #[test]
    fn model_size_in_expected_band() {
        let (train, _) = small_data();
        let mut m = MlpB::fit(&train, None, &TrainSettings::quick());
        let kb = m.size_kilobits();
        // ~1.2k params x 32 bits: tens of kilobits, like the paper's 34.3 Kb.
        assert!((10.0..100.0).contains(&kb), "size {kb} Kb");
    }
}

//! CNN-B: the basic 1-D textcnn on packet sequences (§6.3).
//!
//! Training side: embedding over the 16 sequence codes, then parallel
//! convolutions of widths 3/4/5 (the textcnn of Zhang & Wallace), global
//! max pooling, and a dense head.
//!
//! Dataplane side: each convolution position is one Map over the window of
//! codes it covers (`Chain[Embed, MatVec, Relu]` — weighted aggregation per
//! Table 4), pooling is a Max reduction, and the head is a partitioned
//! dense block. All lowered through the standard compiler with Basic
//! Primitive Fusion.

use super::{dataset_rows, DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::compile::CompileOptions;
use crate::error::PegasusError;
use crate::fusion::fuse_basic;
use crate::primitives::{MapFn, PrimitiveProgram, ValueId};
use pegasus_nn::layers::{
    Conv1d, Dense, Embedding, GlobalMaxPool1d, Layer, LayerSpec, Parallel, Relu, Transpose12,
};
use pegasus_nn::metrics::PrRcF1;
use pegasus_nn::optim::Adam;
use pegasus_nn::train::{predict_classes, train_classifier, TrainConfig};
use pegasus_nn::{Dataset, Sequential, Tensor};

/// Sequence length (16 codes: 8 packets x len/ipd).
pub const SEQ_LEN: usize = 16;
/// Embedding dimension.
pub const EMB_DIM: usize = 6;
/// Channels per convolution branch.
pub const CHANNELS: usize = 4;
/// Convolution widths.
pub const KERNELS: [usize; 3] = [3, 4, 5];

/// A trained CNN-B.
pub struct CnnB {
    /// The trained float model.
    pub model: Sequential,
    classes: usize,
}

fn reshape_tokens(x: &Tensor) -> Tensor {
    // [batch, 16] codes pass straight through; Embedding consumes 2-D.
    x.clone()
}

impl CnnB {
    /// Trains CNN-B on interleaved sequence codes.
    pub fn fit(train: &Dataset, val: Option<&Dataset>, settings: &TrainSettings) -> Self {
        assert_eq!(train.x.cols(), SEQ_LEN, "CNN-B expects 16 sequence codes");
        let classes = train.classes();
        let mut rng = settings.rng();
        let mut m = Sequential::new();
        m.add(Box::new(Embedding::new(&mut rng, 256, EMB_DIM)));
        m.add(Box::new(Transpose12::new()));
        let branches: Vec<Vec<Box<dyn Layer>>> = KERNELS
            .iter()
            .map(|&k| {
                let chain: Vec<Box<dyn Layer>> = vec![
                    Box::new(Conv1d::new(&mut rng, EMB_DIM, CHANNELS, k, 1, 0)),
                    Box::new(Relu::new()),
                    Box::new(GlobalMaxPool1d::new()),
                ];
                chain
            })
            .collect();
        m.add(Box::new(Parallel::new(branches)));
        m.add(Box::new(Dense::new(&mut rng, KERNELS.len() * CHANNELS, classes)));

        let mut opt = Adam::new(settings.lr);
        let cfg =
            TrainConfig { epochs: settings.epochs, batch_size: settings.batch, verbose: false };
        train_classifier(&mut m, train, val, &mut opt, &cfg, &mut rng, &reshape_tokens);
        CnnB { model: m, classes }
    }

    /// Full-precision macro metrics.
    pub fn float_metrics(&mut self, data: &Dataset) -> PrRcF1 {
        let preds = predict_classes(&mut self.model, &data.x, &reshape_tokens);
        pegasus_nn::metrics::pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Builds the primitive program from the trained weights.
    pub fn to_primitives(&self) -> PrimitiveProgram {
        let spec = self.model.to_spec("CNN-B");
        let emb_table = match &spec.layers[0] {
            LayerSpec::Embedding { table } => table.clone(),
            other => panic!("expected embedding first, got {}", other.name()),
        };
        let branches = match &spec.layers[2] {
            LayerSpec::Parallel { branches, .. } => branches.clone(),
            other => panic!("expected parallel convs, got {}", other.name()),
        };
        let (head_w, head_b) = match &spec.layers[3] {
            LayerSpec::Dense { weight, bias } => (weight.clone(), bias.data().to_vec()),
            other => panic!("expected dense head, got {}", other.name()),
        };

        let mut p = PrimitiveProgram::new(SEQ_LEN);
        let mut branch_outs: Vec<ValueId> = Vec::new();
        for chain in &branches {
            let (kernel, bias) = match &chain[0] {
                LayerSpec::Conv1d { kernel, bias, .. } => (kernel.clone(), bias.data().to_vec()),
                other => panic!("expected conv in branch, got {}", other.name()),
            };
            let k = kernel.shape()[2];
            // Conv at position p over tokens [p, p+k): emb then matvec.
            // Embed output for the window is token-major: [tok0_d0..tok0_dE, tok1_d0..].
            let mut w = Tensor::zeros(&[k * EMB_DIM, CHANNELS]);
            for o in 0..CHANNELS {
                for c in 0..EMB_DIM {
                    for j in 0..k {
                        *w.at2_mut(j * EMB_DIM + c, o) = kernel.at3(o, c, j);
                    }
                }
            }
            let segs = p.partition_strided(p.input, k, 1);
            let mapped: Vec<ValueId> = segs
                .iter()
                .map(|&s| {
                    p.map(
                        s,
                        MapFn::Chain(vec![
                            MapFn::Embed { table: emb_table.clone() },
                            MapFn::MatVec { weight: w.clone(), bias: bias.clone() },
                            MapFn::Relu,
                        ]),
                    )
                })
                .collect();
            branch_outs.push(p.max_reduce(&mapped));
        }
        let feats = p.concat(&branch_outs);
        // Dense head, partitioned by branch blocks (8 wide).
        let segs = p.partition_strided(feats, CHANNELS, CHANNELS);
        let mapped: Vec<ValueId> = segs
            .iter()
            .enumerate()
            .map(|(si, &s)| {
                let mut w = Tensor::zeros(&[CHANNELS, self.classes]);
                for r in 0..CHANNELS {
                    for c in 0..self.classes {
                        *w.at2_mut(r, c) = head_w.at2(si * CHANNELS + r, c);
                    }
                }
                let b = if si == 0 { head_b.clone() } else { vec![0.0; self.classes] };
                p.map(s, MapFn::MatVec { weight: w, bias: b })
            })
            .collect();
        let out = p.sum_reduce(&mapped);
        p.set_output(out);
        p
    }
}

impl DataplaneNet for CnnB {
    fn name(&self) -> &'static str {
        "CNN-B"
    }

    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(CnnB::fit(data.seq("CNN-B")?, data.val_seq(), settings))
    }

    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.float_metrics(data.seq("CNN-B")?))
    }

    fn calibration_inputs(&self, data: &ModelData<'_>) -> Result<Vec<Vec<f32>>, PegasusError> {
        Ok(dataset_rows(data.seq("CNN-B")?))
    }

    /// Lowers with Basic Primitive Fusion.
    ///
    /// Activations narrow to 12 bits: all 39 convolution positions are live
    /// simultaneously before pooling, and 12-bit codes keep that inside the
    /// PHV while costing < 0.1% accuracy against 16-bit (see the
    /// quantization ablation bench).
    fn lower(
        &mut self,
        _data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        let mut prog = self.to_primitives();
        fuse_basic(&mut prog);
        let opts = CompileOptions { act_bits: opts.act_bits.min(12), ..opts.clone() };
        Ok(Lowered::Primitives {
            program: prog,
            tree_overrides: std::collections::HashMap::new(),
            opts,
            // 7 history packets x 8-bit len code = 56 + 16-bit timestamp =
            // 72 stateful bits per flow (matching the paper's CNN-B row).
            stateful_bits_per_flow: 72,
        })
    }

    fn size_kilobits(&mut self) -> f64 {
        self.model.to_spec("CNN-B").size_kilobits()
    }

    fn stream_features(&self) -> super::StreamFeatures {
        super::StreamFeatures::Seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::SwitchConfig;

    fn small_data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 7 });
        let (train, _val, test) = split_by_flow(&trace, 3);
        (extract_views(&train).seq, extract_views(&test).seq)
    }

    #[test]
    fn reference_program_matches_float_model() {
        let (train, _) = small_data();
        let mut m = CnnB::fit(&train, None, &TrainSettings::quick());
        let prog = m.to_primitives();
        for r in [0usize, 5, 17] {
            let x = train.x.row(r).to_vec();
            let want = m.model.forward(&Tensor::from_vec(x.clone(), &[1, SEQ_LEN]), false);
            let got = prog.eval(&x);
            for (a, b) in want.row(0).iter().zip(got.iter()) {
                assert!((a - b).abs() < 1e-3, "row {r}: {:?} vs {:?}", want.row(0), got);
            }
        }
    }

    #[test]
    fn trains_and_compiles() {
        let (train, test) = small_data();
        let mut m = CnnB::fit(&train, None, &TrainSettings::quick());
        let float_f1 = m.float_metrics(&test).f1;
        assert!(float_f1 > 0.55, "float F1 {float_f1}");

        let data = ModelData::new().with_seq(&train);
        let opts = CompileOptions { clustering_depth: 5, ..Default::default() };
        let dp = Pegasus::new(m)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("fits");
        let report = dp.resource_report();
        assert!(report.stages_used <= 20, "stages {}", report.stages_used);
        assert!(report.tcam_bits > 0);
        let dp_f1 = dp.evaluate(&test).expect("evaluates").f1;
        assert!(dp_f1 > float_f1 - 0.25, "dataplane F1 {dp_f1} too far below float {float_f1}");
    }
}

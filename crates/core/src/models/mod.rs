//! The six neural models of §6.3 behind the one [`DataplaneNet`] trait.
//!
//! | model        | features (input scale)        | fusion level          |
//! |--------------|-------------------------------|-----------------------|
//! | MLP-B        | statistical, 128 b            | basic                 |
//! | RNN-B        | packet sequence, 128 b        | basic (state tables)  |
//! | CNN-B        | packet sequence, 128 b        | basic                 |
//! | CNN-M        | packet sequence, 128 b        | advanced (NAM form)   |
//! | CNN-L        | raw bytes, 3840 b             | advanced + per-flow   |
//! | AutoEncoder  | packet sequence, 128 b        | basic (Scores + MAE)  |
//!
//! Every model (and every baseline in `pegasus-baselines`) implements
//! [`DataplaneNet`]: train on a [`ModelData`] bundle, evaluate at full
//! precision, and [`lower`](DataplaneNet::lower) into a [`Lowered`] artifact
//! the [`Pegasus`](crate::pipeline::Pegasus) builder compiles and deploys.
//! There are no per-model `compile` methods — the builder is the single
//! compile-and-deploy path.

pub mod autoencoder;
pub mod cnn_b;
pub mod cnn_l;
pub mod cnn_m;
pub mod mlp_b;
pub mod rnn_b;

use crate::compile::{CompileOptions, CompileTarget, CompiledPipeline};
use crate::error::PegasusError;
use crate::flowpipe::FlowPipeline;
use crate::fuzzy::ClusterTree;
use crate::primitives::PrimitiveProgram;
use pegasus_nn::metrics::PrRcF1;
use pegasus_nn::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Shared training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainSettings {
    /// Epochs over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed (weights, shuffling).
    pub seed: u64,
}

impl Default for TrainSettings {
    fn default() -> Self {
        TrainSettings { epochs: 30, batch: 64, lr: 0.005, seed: 7 }
    }
}

impl TrainSettings {
    /// A faster profile for tests and `--quick` harness runs.
    pub fn quick() -> Self {
        TrainSettings { epochs: 10, batch: 64, lr: 0.01, seed: 7 }
    }

    /// The RNG this run starts from.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Training-input rows as `Vec<Vec<f32>>` (the compiler's expected shape).
pub fn dataset_rows(data: &Dataset) -> Vec<Vec<f32>> {
    (0..data.len()).map(|r| data.x.row(r).to_vec()).collect()
}

/// Aligned feature views of one data split, as models consume them.
///
/// The three views are row-aligned projections of the same windows:
/// `stat` holds the 16 statistical feature codes (MLP-B, Leo, N3IC),
/// `seq` the 16 interleaved (length, IPD) sequence codes (RNN-B, CNN-B/M,
/// AutoEncoder, BoS), and `raw` the 480 raw payload bytes (CNN-L). Models
/// pull the views they need and error with
/// [`PegasusError::MissingView`] when one is absent — the "universal
/// framework" contract is one data bundle in, any model out.
#[derive(Clone, Copy, Default)]
pub struct ModelData<'a> {
    stat: Option<&'a Dataset>,
    seq: Option<&'a Dataset>,
    raw: Option<&'a Dataset>,
    val_stat: Option<&'a Dataset>,
    val_seq: Option<&'a Dataset>,
}

impl<'a> ModelData<'a> {
    /// An empty bundle; attach views with the `with_*` builders.
    pub fn new() -> Self {
        ModelData::default()
    }

    /// Attaches the statistical feature view.
    pub fn with_stat(mut self, data: &'a Dataset) -> Self {
        self.stat = Some(data);
        self
    }

    /// Attaches the packet-sequence code view.
    pub fn with_seq(mut self, data: &'a Dataset) -> Self {
        self.seq = Some(data);
        self
    }

    /// Attaches the raw payload-byte view (aligned with `seq`).
    pub fn with_raw(mut self, data: &'a Dataset) -> Self {
        self.raw = Some(data);
        self
    }

    /// Attaches validation views (used during training when present).
    pub fn with_validation(mut self, stat: &'a Dataset, seq: &'a Dataset) -> Self {
        self.val_stat = Some(stat);
        self.val_seq = Some(seq);
        self
    }

    /// The statistical view, or [`PegasusError::MissingView`].
    pub fn stat(&self, model: &'static str) -> Result<&'a Dataset, PegasusError> {
        self.stat.ok_or(PegasusError::MissingView { view: "stat", model })
    }

    /// The sequence view, or [`PegasusError::MissingView`].
    pub fn seq(&self, model: &'static str) -> Result<&'a Dataset, PegasusError> {
        self.seq.ok_or(PegasusError::MissingView { view: "seq", model })
    }

    /// The raw-byte view, or [`PegasusError::MissingView`].
    pub fn raw(&self, model: &'static str) -> Result<&'a Dataset, PegasusError> {
        self.raw.ok_or(PegasusError::MissingView { view: "raw", model })
    }

    /// The statistical validation view, when provided.
    pub fn val_stat(&self) -> Option<&'a Dataset> {
        self.val_stat
    }

    /// The sequence validation view, when provided.
    pub fn val_seq(&self) -> Option<&'a Dataset> {
        self.val_seq
    }
}

/// Which per-packet feature family the streaming engine extracts for a
/// model (§7.2's feature taxonomy, from the serving side).
///
/// The [`PacketEngine`](crate::engine) mirrors on the host what the switch
/// maintains per flow, then feeds the deployed pipeline one feature vector
/// per packet once the flow's window is warm. Models consuming raw payload
/// bytes (CNN-L) lower to per-flow pipelines that take packets directly and
/// never consult this.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamFeatures {
    /// The 16-byte statistical vector (`pegasus_net::StatFeatures`) —
    /// MLP-B, Leo, N3IC.
    Stat,
    /// The interleaved (length, IPD) window sequence
    /// (`pegasus_net::SeqFeatures`) — RNN-B, CNN-B/M, AutoEncoder, BoS.
    Seq,
}

/// What a model lowers to, ready for the builder's compile step.
///
/// Most models reduce to the paper's Partition/Map/SumReduce primitives and
/// flow through the generic fuzzy-matching compiler. Models whose dataplane
/// encoding is not expressible as a feed-forward primitive program —
/// chained state-transition tables (RNN-B, BoS), tree walks (Leo), per-flow
/// distributed pipelines (CNN-L) — emit their tables directly.
pub enum Lowered {
    /// A fused primitive program for the generic compiler.
    Primitives {
        /// The fused program.
        program: PrimitiveProgram,
        /// Externally fitted cluster trees (e.g. fine-tuned centroids),
        /// keyed by the Map input's `ValueId` index.
        tree_overrides: HashMap<usize, ClusterTree>,
        /// Architecture-tuned compile options (activation-width clamps and
        /// similar per-model adjustments applied over the caller's options).
        opts: CompileOptions,
        /// Per-flow state the switch must keep for this model's features
        /// (the Table 6 column); stamped onto the compiled program.
        stateful_bits_per_flow: u64,
    },
    /// A fully emitted stateless pipeline (bespoke table layouts).
    Pipeline(Box<CompiledPipeline>),
    /// A per-flow windowed pipeline (register state, packet-by-packet).
    Flow(Box<FlowPipeline>),
}

/// The one abstraction every deployable network implements.
///
/// `train` builds the model from a [`ModelData`] bundle, `evaluate_float`
/// reports full-precision quality (the CPU/GPU baseline of Figure 9),
/// `calibration_inputs` exposes the rows that drive cluster fitting and
/// fixed-point calibration, and `lower` produces the compilable artifact.
/// Drive implementations through the [`Pegasus`](crate::pipeline::Pegasus)
/// builder; the stages make invalid orderings unrepresentable.
pub trait DataplaneNet {
    /// Display name ("MLP-B", "Leo (Decision Tree)", ...).
    fn name(&self) -> &'static str;

    /// Trains a fresh model on the bundle.
    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError>
    where
        Self: Sized;

    /// Full-precision macro metrics on the bundle's views.
    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError>;

    /// The training rows the compiler calibrates from (feature codes in
    /// `[0, 255]`, in this model's input layout).
    ///
    /// Only consulted when [`lower`](DataplaneNet::lower) returns
    /// [`Lowered::Primitives`]; bespoke lowerings calibrate internally and
    /// keep this default.
    fn calibration_inputs(&self, data: &ModelData<'_>) -> Result<Vec<Vec<f32>>, PegasusError> {
        let _ = data;
        Ok(Vec::new())
    }

    /// Lowers the trained model toward the dataplane.
    fn lower(
        &mut self,
        data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError>;

    /// The pipeline head this model compiles to (`Classify` unless the
    /// model is score-valued, like the AutoEncoder).
    fn default_target(&self) -> CompileTarget {
        CompileTarget::Classify
    }

    /// The per-packet feature family the streaming engine feeds this model
    /// (defaults to the statistical vector; sequence models override).
    fn stream_features(&self) -> StreamFeatures {
        StreamFeatures::Stat
    }

    /// Trained model size in kilobits (Table 5 column; `NaN` when the
    /// notion does not apply, e.g. decision trees).
    fn size_kilobits(&mut self) -> f64 {
        f64::NAN
    }
}

// --- serde (control-daemon artifact format) ----------------------------

impl serde::Serialize for StreamFeatures {
    fn serialize(&self, w: &mut serde::Writer) {
        w.write_u8(match self {
            StreamFeatures::Stat => 0,
            StreamFeatures::Seq => 1,
        });
    }
}

impl<'de> serde::Deserialize<'de> for StreamFeatures {
    fn deserialize(r: &mut serde::Reader<'de>) -> Result<Self, serde::DecodeError> {
        Ok(match r.read_u8("StreamFeatures")? {
            0 => StreamFeatures::Stat,
            1 => StreamFeatures::Seq,
            tag => return Err(serde::DecodeError::BadTag { what: "StreamFeatures", tag }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_nn::Tensor;

    #[test]
    fn model_data_reports_missing_views() {
        let bundle = ModelData::new();
        let err = bundle.stat("MLP-B").unwrap_err();
        assert_eq!(err, PegasusError::MissingView { view: "stat", model: "MLP-B" });
        let data = Dataset::new(Tensor::zeros(&[2, 4]), vec![0, 1]);
        let bundle = ModelData::new().with_seq(&data);
        assert!(bundle.seq("RNN-B").is_ok());
        assert!(bundle.raw("CNN-L").is_err());
        assert!(bundle.val_stat().is_none());
    }
}

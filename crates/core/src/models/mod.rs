//! The six neural models of §6.3, each with a training recipe and a
//! Pegasus compilation path onto the switch simulator.
//!
//! | model        | features (input scale)        | fusion level          |
//! |--------------|-------------------------------|-----------------------|
//! | MLP-B        | statistical, 128 b            | basic                 |
//! | RNN-B        | packet sequence, 128 b        | basic (state tables)  |
//! | CNN-B        | packet sequence, 128 b        | basic                 |
//! | CNN-M        | packet sequence, 128 b        | advanced (NAM form)   |
//! | CNN-L        | raw bytes, 3840 b             | advanced + per-flow   |
//! | AutoEncoder  | packet sequence, 128 b        | basic (Scores + MAE)  |

pub mod autoencoder;
pub mod cnn_b;
pub mod cnn_l;
pub mod cnn_m;
pub mod mlp_b;
pub mod rnn_b;

use pegasus_nn::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Shared training hyper-parameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainSettings {
    /// Epochs over the training split.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Master seed (weights, shuffling).
    pub seed: u64,
}

impl Default for TrainSettings {
    fn default() -> Self {
        TrainSettings { epochs: 30, batch: 64, lr: 0.005, seed: 7 }
    }
}

impl TrainSettings {
    /// A faster profile for tests and `--quick` harness runs.
    pub fn quick() -> Self {
        TrainSettings { epochs: 10, batch: 64, lr: 0.01, seed: 7 }
    }

    /// The RNG this run starts from.
    pub fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }
}

/// Training-input rows as `Vec<Vec<f32>>` (the compiler's expected shape).
pub fn dataset_rows(data: &Dataset) -> Vec<Vec<f32>> {
    (0..data.len()).map(|r| data.x.row(r).to_vec()).collect()
}

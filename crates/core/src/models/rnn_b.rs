//! RNN-B: the windowed recurrent model on packet sequences (§6.3).
//!
//! Training side: an embedding over the (length, IPD) codes feeds an Elman
//! RNN, one time step per packet, then a dense head — following BoS's
//! windowed design, processing all `W` steps per inference with no hidden
//! write-back.
//!
//! Dataplane side: the sequential steps compile to a chain of **state
//! transition tables**, the paper's flow-scalability trick (§4.2, §7.3):
//! the hidden state lives as its *fuzzy index* — a handful of bits — and
//! each step is one MAT keyed on `(h index, packet codes)` producing the
//! next index. Unlike BoS's exhaustive bit-string enumeration (2^n entries
//! for an n-bit input), the per-step input is clustered, so the table holds
//! `|H| × leaves(x)` entries. The final index feeds a head table of class
//! scores and the tournament argmax.

use super::{DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::compile::{emit_argmax, CompileOptions, CompileReport, CompiledPipeline};
use crate::error::PegasusError;
use crate::fuzzy::ClusterTree;
use crate::numformat::NumFormat;
use pegasus_nn::layers::{Dense, Embedding, Layer, Rnn};
use pegasus_nn::loss::softmax_cross_entropy;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::optim::{Adam, Optimizer};
use pegasus_nn::{Dataset, Tensor};
use pegasus_switch::{
    Action, AluOp, KeyPart, MatchKind, Operand, PhvLayout, SwitchProgram, Table, TableEntry,
};

/// Packets per window (16 input codes = 8 x (len, ipd)).
pub const WINDOW: usize = 8;
/// Embedding dimension per code.
pub const EMB_DIM: usize = 4;
/// Hidden state width.
pub const HIDDEN: usize = 8;

/// A trained RNN-B.
pub struct RnnB {
    emb: Embedding,
    rnn: Rnn,
    head: Dense,
    classes: usize,
}

impl RnnB {
    /// Trains RNN-B on interleaved `[len, ipd] x 8` code rows (16 columns).
    pub fn fit(train: &Dataset, settings: &TrainSettings) -> Self {
        assert_eq!(train.x.cols(), 2 * WINDOW, "RNN-B expects 16 sequence codes");
        let classes = train.classes();
        let mut rng = settings.rng();
        let mut emb = Embedding::new(&mut rng, 256, EMB_DIM);
        let mut rnn = Rnn::new(&mut rng, 2 * EMB_DIM, HIDDEN);
        let mut head = Dense::new(&mut rng, HIDDEN, classes);
        let mut opt = Adam::new(settings.lr);

        for _ in 0..settings.epochs {
            for (xb, yb) in train.batches(settings.batch, &mut rng) {
                let b = xb.rows();
                // Forward: emb -> [b, 16, EMB] -> view as [b, 8, 2*EMB] -> rnn -> head.
                let e = emb.forward(&xb, true);
                let seq = e.reshape(&[b, WINDOW, 2 * EMB_DIM]);
                let h = rnn.forward(&seq, true);
                let logits = head.forward(&h, true);
                let (_loss, grad) = softmax_cross_entropy(&logits, &yb);
                // Backward mirrors forward.
                let gh = head.backward(&grad);
                let gseq = rnn.backward(&gh);
                let ge = gseq.reshape(&[b, 2 * WINDOW, EMB_DIM]);
                let _ = emb.backward(&ge);
                let mut params: Vec<&mut pegasus_nn::layers::Param> = Vec::new();
                params.extend(emb.params_mut());
                params.extend(rnn.params_mut());
                params.extend(head.params_mut());
                opt.step(&mut params);
                for p in params {
                    p.zero_grad();
                }
            }
        }
        RnnB { emb, rnn, head, classes }
    }

    /// Full-precision forward pass (no training caches).
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let b = x.rows();
        let e = self.emb.forward(x, false);
        let seq = e.reshape(&[b, WINDOW, 2 * EMB_DIM]);
        let h = self.rnn.forward(&seq, false);
        self.head.forward(&h, false)
    }

    /// Full-precision macro metrics.
    pub fn float_metrics(&mut self, data: &Dataset) -> PrRcF1 {
        let preds = self.forward(&data.x).argmax_rows();
        pr_rc_f1(&data.y, &preds, data.classes())
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Model size in kilobits (embedding + recurrent + head weights).
    fn weight_kilobits(&self) -> f64 {
        let params = self.emb.table().len()
            + self.rnn.wx().len()
            + self.rnn.wh().len()
            + self.rnn.bias().len()
            + self.head.weight().len()
            + self.head.bias().len();
        (params * 32) as f64 / 1000.0
    }

    /// One RNN step at full precision: `h' = tanh(e Wx + h Wh + b)`.
    fn step(&self, h: &[f32], len_code: f32, ipd_code: f32) -> Vec<f32> {
        let table = self.emb.table();
        let e_len = table.row((len_code.round() as usize).min(255));
        let e_ipd = table.row((ipd_code.round() as usize).min(255));
        let mut e = Vec::with_capacity(2 * EMB_DIM);
        e.extend_from_slice(e_len);
        e.extend_from_slice(e_ipd);
        let mut out = self.rnn.bias().data().to_vec();
        for (i, &ei) in e.iter().enumerate() {
            for (o, acc) in out.iter_mut().enumerate() {
                *acc += ei * self.rnn.wx().at2(i, o);
            }
        }
        for (i, &hi) in h.iter().enumerate() {
            for (o, acc) in out.iter_mut().enumerate() {
                *acc += hi * self.rnn.wh().at2(i, o);
            }
        }
        out.iter().map(|&v| v.tanh()).collect()
    }

    /// Emits the state-transition pipeline.
    ///
    /// `opts.clustering_depth` sizes the hidden-state tree; the per-step
    /// packet codes are clustered one level shallower (they are only two
    /// dimensions wide).
    fn emit_pipeline(&self, train: &Dataset, opts: &CompileOptions) -> CompiledPipeline {
        // ---- 1. Sample hidden states along training trajectories. -------
        let n = train.len().min(opts.max_tree_samples);
        let mut h_samples: Vec<Vec<f32>> = Vec::with_capacity(n * WINDOW);
        let mut x_samples: Vec<Vec<f32>> = Vec::with_capacity(n * WINDOW);
        for r in 0..n {
            let row = train.x.row(r);
            let mut h = vec![0.0f32; HIDDEN];
            for t in 0..WINDOW {
                let (lc, ic) = (row[2 * t], row[2 * t + 1]);
                x_samples.push(vec![lc, ic]);
                h = self.step(&h, lc, ic);
                h_samples.push(h.clone());
            }
        }
        let tree_h = ClusterTree::fit(&h_samples, opts.clustering_depth + 1);
        // Packet-code tree thresholds snap to multiples of 16 so each
        // transition entry expands to few TCAM rules (the tables chain
        // sequentially — spilling a table across stages would blow the
        // stage budget).
        let tree_x = ClusterTree::fit(&x_samples, opts.clustering_depth)
            .map_thresholds(|_, t| crate::compile::snap_threshold(t.round() as i64, 8, 4) as f32);
        let h_states = tree_h.leaves();
        let h_bits = tree_h.index_bits();

        // ---- 2. Emit the switch program. --------------------------------
        let mut layout = PhvLayout::new();
        let input_fields: Vec<_> =
            (0..2 * WINDOW).map(|i| layout.add_field(&format!("in{i}"), 8)).collect();
        let mut tables: Vec<Table> = Vec::new();
        let mut report = CompileReport::default();
        let mut uniq = 0usize;

        // Step 0 transitions from the *exact* zero state (every window
        // starts at h = 0; snapping it to a fitted leaf's centroid would
        // corrupt all trajectories from the first step), so its table is
        // keyed on the first packet's codes alone.
        let boxes = tree_x.leaf_boxes(&[(0, 255), (0, 255)]);
        let mut h_field = layout.add_field("h_idx1", h_bits);
        {
            let mut t = Table::new(
                "rnn_step0",
                vec![(input_fields[0], MatchKind::Range), (input_fields[1], MatchKind::Range)],
            );
            let set_next = t.add_action(
                Action::new("next_h").with(AluOp::Set { dst: h_field, a: Operand::Param(0) }),
            );
            t.param_widths = vec![h_bits];
            let zero_h = vec![0.0f32; HIDDEN];
            for b in &boxes {
                let xc = tree_x.centroid(b.index);
                let h_next = self.step(&zero_h, xc[0], xc[1]);
                t.add_entry(TableEntry {
                    keys: vec![
                        KeyPart::Range { lo: b.ranges[0].0, hi: b.ranges[0].1 },
                        KeyPart::Range { lo: b.ranges[1].0, hi: b.ranges[1].1 },
                    ],
                    priority: 0,
                    action_idx: set_next,
                    action_data: vec![tree_h.index_of(&h_next) as i64],
                });
            }
            report.entries += boxes.len() as u64;
            report.fuzzy_tables += 1;
            report.lookups_per_input += 1;
            tables.push(t);
        }

        // Later steps: one transition table each, (h_idx, len, ipd) -> h_idx'.
        for t_step in 1..WINDOW {
            let next_h = layout.add_field(&format!("h_idx{}", t_step + 1), h_bits);
            let mut t = Table::new(
                &format!("rnn_step{t_step}"),
                vec![
                    (h_field, MatchKind::Exact),
                    (input_fields[2 * t_step], MatchKind::Range),
                    (input_fields[2 * t_step + 1], MatchKind::Range),
                ],
            );
            let set_next = t.add_action(
                Action::new("next_h").with(AluOp::Set { dst: next_h, a: Operand::Param(0) }),
            );
            t.param_widths = vec![h_bits];
            for hi in 0..h_states {
                let h_cent = tree_h.centroid(hi).to_vec();
                for b in &boxes {
                    let xc = tree_x.centroid(b.index);
                    let h_next = self.step(&h_cent, xc[0], xc[1]);
                    let next_idx = tree_h.index_of(&h_next);
                    t.add_entry(TableEntry {
                        keys: vec![
                            KeyPart::Exact(hi as u64),
                            KeyPart::Range { lo: b.ranges[0].0, hi: b.ranges[0].1 },
                            KeyPart::Range { lo: b.ranges[1].0, hi: b.ranges[1].1 },
                        ],
                        priority: 0,
                        action_idx: set_next,
                        action_data: vec![next_idx as i64],
                    });
                }
            }
            report.entries += (h_states * boxes.len()) as u64;
            report.fuzzy_tables += 1;
            report.lookups_per_input += 1;
            tables.push(t);
            h_field = next_h;
        }

        // Head table: final h index -> class scores.
        let head_outs: Vec<Vec<f32>> = (0..h_states)
            .map(|hi| {
                let h = tree_h.centroid(hi);
                let mut out = self.head.bias().data().to_vec();
                for (i, &v) in h.iter().enumerate() {
                    for (o, acc) in out.iter_mut().enumerate() {
                        *acc += v * self.head.weight().at2(i, o);
                    }
                }
                out
            })
            .collect();
        let (lo, hi) = head_outs
            .iter()
            .flatten()
            .fold((f32::MAX, f32::MIN), |(l, h), &v| (l.min(v), h.max(v)));
        let score_format = NumFormat::from_range(lo, hi, opts.act_bits);
        let score_fields: Vec<_> = (0..self.classes)
            .map(|c| layout.add_field(&format!("score{c}"), opts.act_bits))
            .collect();
        {
            let mut t = Table::new("rnn_head", vec![(h_field, MatchKind::Exact)]);
            let mut act = Action::new("scores");
            for (c, &f) in score_fields.iter().enumerate() {
                act.ops.push(AluOp::Set { dst: f, a: Operand::Param(c) });
            }
            let ai = t.add_action(act);
            t.param_widths = vec![opts.act_bits; self.classes];
            for (hi_idx, out) in head_outs.iter().enumerate() {
                t.add_entry(TableEntry {
                    keys: vec![KeyPart::Exact(hi_idx as u64)],
                    priority: 0,
                    action_idx: ai,
                    action_data: out.iter().map(|&v| score_format.to_stored(v)).collect(),
                });
            }
            report.entries += h_states as u64;
            report.exact_tables += 1;
            report.lookups_per_input += 1;
            tables.push(t);
        }

        let predicted = emit_argmax(
            &mut tables,
            &mut report,
            &mut layout,
            &mut uniq,
            &score_fields,
            score_format,
            "rnn_b",
        );

        let mut program = SwitchProgram::new("rnn_b", layout);
        program.tables = tables;
        // Per-flow window storage: 8 packets x (len, ipd) codes + 16-bit
        // previous-packet timestamp.
        program.stateful_bits_per_flow = (2 * WINDOW * 8 + 16) as u64;
        report.tables = program.tables.len();

        program.keep_alive = score_fields.clone();
        program.keep_alive.push(predicted);
        let (_, remap) = program.compact_phv(&input_fields);

        CompiledPipeline {
            program,
            input_fields: input_fields.iter().map(|&x| remap.get(x)).collect(),
            score_fields: score_fields.iter().map(|&x| remap.get(x)).collect(),
            score_format,
            predicted_field: Some(remap.get(predicted)),
            report,
        }
    }
}

impl DataplaneNet for RnnB {
    fn name(&self) -> &'static str {
        "RNN-B"
    }

    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(RnnB::fit(data.seq("RNN-B")?, settings))
    }

    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.float_metrics(data.seq("RNN-B")?))
    }

    /// Lowers to the chained state-transition tables of §4.2/§7.3 — a
    /// bespoke pipeline, not a feed-forward primitive program.
    fn lower(
        &mut self,
        data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        let train = data.seq("RNN-B")?;
        if train.is_empty() {
            return Err(PegasusError::EmptyTrainingSet);
        }
        Ok(Lowered::Pipeline(Box::new(self.emit_pipeline(train, opts))))
    }

    fn size_kilobits(&mut self) -> f64 {
        self.weight_kilobits()
    }

    fn stream_features(&self) -> super::StreamFeatures {
        super::StreamFeatures::Seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::SwitchConfig;

    fn small_data() -> (Dataset, Dataset) {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 6 });
        let (train, _val, test) = split_by_flow(&trace, 2);
        (extract_views(&train).seq, extract_views(&test).seq)
    }

    #[test]
    fn trains_and_compiles_within_stage_budget() {
        let (train, test) = small_data();
        let mut m = RnnB::fit(&train, &TrainSettings::quick());
        let float_f1 = m.float_metrics(&test).f1;
        assert!(float_f1 > 0.55, "float F1 {float_f1}");

        let data = ModelData::new().with_seq(&train);
        let opts = CompileOptions { clustering_depth: 4, ..Default::default() };
        let dp = Pegasus::new(m)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("fits");
        let report = dp.resource_report();
        assert!(report.stages_used <= 20, "stages {}", report.stages_used);
        let dp_f1 = dp.evaluate(&test).expect("evaluates").f1;
        assert!(dp_f1 > float_f1 - 0.25, "dataplane F1 {dp_f1} too far below float {float_f1}");
    }

    #[test]
    fn transition_tables_have_expected_shape() {
        let (train, _) = small_data();
        let m = RnnB::fit(&train, &TrainSettings::quick());
        let opts = CompileOptions { clustering_depth: 3, ..Default::default() };
        let p = m.emit_pipeline(&train, &opts);
        // 1 init + 8 steps + 1 head + argmax tables.
        assert!(p.report.fuzzy_tables == 8, "{:?}", p.report);
        assert!(p.report.exact_tables == 1);
        assert_eq!(p.input_fields.len(), 16);
    }
}

//! AutoEncoder: unsupervised anomaly detection by reconstruction error
//! (§6.3, §7.4).
//!
//! Training side: a dense encoder/decoder bottleneck reconstructs the
//! normalized packet-sequence codes; only *benign* traffic is ever seen.
//! Scoring side: mean absolute error between input and reconstruction —
//! traffic the model has never seen reconstructs poorly.
//!
//! Dataplane side: the reconstruction pipeline compiles through the
//! standard path with a `Scores` target; the MAE computation itself is
//! emitted as switch tables (pairwise |a−b| via two subtractions and a max,
//! then an adder tree), so the anomaly score leaves the pipeline as one
//! fixed-point field — ready for on-switch thresholding, rate limiting or
//! mirroring, as the paper suggests.
//!
//! *Substitution note:* the paper's AutoEncoder includes an embedding layer
//! reused from classification; this reproduction reconstructs normalized
//! codes directly (the reconstruction-error mechanism, which is what §7.4
//! evaluates, is identical — see DESIGN.md).

use super::{dataset_rows, DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::compile::{
    emit_into, emit_reduce, CompileOptions, CompileReport, CompileTarget, CompiledPipeline,
};
use crate::error::PegasusError;
use crate::fusion::fuse_basic;
use crate::lowering::{lower_onto, LoweringOptions};
use crate::numformat::NumFormat;
use crate::primitives::{MapFn, PrimitiveProgram, ReduceKind};
use pegasus_nn::layers::{Dense, Relu};
use pegasus_nn::loss::mae_per_row;
use pegasus_nn::metrics::PrRcF1;
use pegasus_nn::optim::Adam;
use pegasus_nn::train::{flat, train_autoencoder, TrainConfig};
use pegasus_nn::{Dataset, Sequential};
use pegasus_switch::{Action, AluOp, Operand, PhvLayout, SwitchProgram, Table};
use std::collections::HashMap;

/// Input width (16 sequence codes).
pub const INPUT_DIM: usize = 16;
/// Encoder widths: 16 -> 12 -> 6 -> 12 -> 16.
pub const BOTTLENECK: usize = 6;

/// A trained AutoEncoder.
pub struct AutoEncoder {
    /// The trained float model (dense AE over normalized codes).
    pub model: Sequential,
}

impl AutoEncoder {
    /// Trains on benign traffic only (§7.4 setting).
    pub fn fit(benign: &Dataset, settings: &TrainSettings) -> Self {
        assert_eq!(benign.x.cols(), INPUT_DIM, "AutoEncoder expects 16 sequence codes");
        let mut rng = settings.rng();
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut rng, INPUT_DIM, 12)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut rng, 12, BOTTLENECK)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut rng, BOTTLENECK, 12)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut rng, 12, INPUT_DIM)));

        let norm = benign.x.scale(1.0 / 255.0);
        let mut opt = Adam::new(settings.lr);
        let cfg =
            TrainConfig { epochs: settings.epochs, batch_size: settings.batch, verbose: false };
        train_autoencoder(&mut m, &norm, &norm, &mut opt, &cfg, &mut rng, &flat);
        AutoEncoder { model: m }
    }

    /// Full-precision anomaly scores (MAE per sample) — higher is more
    /// anomalous.
    pub fn scores_float(&mut self, data: &Dataset) -> Vec<f64> {
        let norm = data.x.scale(1.0 / 255.0);
        let recon = self.model.forward(&norm, false);
        mae_per_row(&recon, &norm).into_iter().map(f64::from).collect()
    }

    /// Builds the reconstruction-plus-input primitive program whose output
    /// is `[recon(16), normalized input(16)]`.
    fn to_primitives(&self) -> PrimitiveProgram {
        let spec = self.model.to_spec("AutoEncoder");
        let mut p = PrimitiveProgram::new(INPUT_DIM);
        let input = p.input;
        // Per-element scaling maps: each is a 1-dimensional code map, which
        // the compiler enumerates exactly (256 entries) — the normalized
        // input reaches the MAE comparison with quantization error only,
        // never clustering error.
        let offsets: Vec<usize> = (0..INPUT_DIM).collect();
        let lens = vec![1usize; INPUT_DIM];
        let elems = p.partition(input, &offsets, &lens);
        let scaled: Vec<_> = elems
            .iter()
            .map(|&e| p.map(e, MapFn::Affine { scale: vec![1.0 / 255.0], shift: vec![0.0] }))
            .collect();
        let x_norm = p.concat(&scaled);
        let recon = lower_onto(&mut p, x_norm, &spec.layers, &LoweringOptions { segment_width: 6 });
        let out = p.concat(&[recon, x_norm]);
        p.set_output(out);
        p
    }

    /// Emits the full pipeline: reconstruction, then on-switch MAE. The
    /// resulting pipeline's single score field decodes to the MAE.
    fn emit_pipeline(
        &self,
        train: &Dataset,
        opts: &CompileOptions,
    ) -> Result<CompiledPipeline, PegasusError> {
        let mut prog = self.to_primitives();
        fuse_basic(&mut prog);
        // Reconstruction fidelity is the signal: spend deeper trees and
        // wider activations here.
        let opts = &CompileOptions {
            clustering_depth: opts.clustering_depth.max(7),
            act_bits: opts.act_bits.max(16),
            ..opts.clone()
        };

        let mut layout = PhvLayout::new();
        let input_fields: Vec<_> =
            (0..INPUT_DIM).map(|i| layout.add_field(&format!("in{i}"), 8)).collect();
        let mut tables: Vec<Table> = Vec::new();
        let mut uniq = 0usize;
        let emitted = emit_into(
            &prog,
            &dataset_rows(train),
            opts,
            CompileTarget::Scores,
            "ae",
            &HashMap::new(),
            &mut layout,
            &mut tables,
            &mut uniq,
            &input_fields,
        )?;
        assert_eq!(emitted.score_fields.len(), 2 * INPUT_DIM);
        let fmt = emitted.score_format;

        // |recon_i - x_i| per element: two subtractions and a max on signed
        // scratch fields (same encoding -> the difference is bias-free).
        let mut abs_t = Table::new("ae_absdiff", vec![]);
        let mut abs_act = Action::new("absdiff");
        let mut diff_fields = Vec::with_capacity(INPUT_DIM);
        for i in 0..INPUT_DIM {
            let a = emitted.score_fields[i];
            let b = emitted.score_fields[INPUT_DIM + i];
            let t1 = layout.add_signed_field(&format!("aed1_{i}"), fmt.bits + 2);
            let t2 = layout.add_signed_field(&format!("aed2_{i}"), fmt.bits + 2);
            let d = layout.add_signed_field(&format!("aed_{i}"), fmt.bits + 2);
            abs_act.ops.push(AluOp::Sub { dst: t1, a: Operand::Field(a), b: Operand::Field(b) });
            abs_act.ops.push(AluOp::Sub { dst: t2, a: Operand::Field(b), b: Operand::Field(a) });
            abs_act.ops.push(AluOp::Max { dst: d, a: Operand::Field(t1), b: Operand::Field(t2) });
            diff_fields.push(d);
        }
        abs_t.default_action = Some((abs_t.add_action(abs_act), vec![]));
        tables.push(abs_t);

        // Sum of absolute differences (bias-free values: bias = 0).
        let mae_field = layout.add_field("ae_mae", 32);
        let diff_fmt = NumFormat { step: fmt.step, bias: 0, bits: 32 };
        let inputs: Vec<Vec<_>> = diff_fields.iter().map(|&f| vec![f]).collect();
        let mut report = CompileReport::default();
        emit_reduce(
            &mut tables,
            &mut report,
            &mut layout,
            &mut uniq,
            &inputs,
            ReduceKind::Sum,
            &[mae_field],
            diff_fmt,
            "ae_sum",
        );

        let mut program = SwitchProgram::new("autoencoder", layout);
        program.tables = tables;
        // Per-flow window: 8 packets x 16-bit codes + 16-bit timestamp
        // (Table 6 reports 240 for the paper's AE; ours stores 144).
        program.stateful_bits_per_flow = (INPUT_DIM * 8 + 16) as u64;
        let mut total_report = emitted.report;
        total_report.tables = program.tables.len();

        program.keep_alive = vec![mae_field];
        let (_, remap) = program.compact_phv(&input_fields);
        let input_fields: Vec<_> = input_fields.iter().map(|&x| remap.get(x)).collect();
        let mae_field = remap.get(mae_field);

        Ok(CompiledPipeline {
            program,
            input_fields,
            score_fields: vec![mae_field],
            // Decoded score = stored * step / INPUT_DIM = the MAE.
            score_format: NumFormat { step: fmt.step / INPUT_DIM as f32, bias: 0, bits: 32 },
            predicted_field: None,
            report: total_report,
        })
    }
}

impl DataplaneNet for AutoEncoder {
    fn name(&self) -> &'static str {
        "AutoEncoder"
    }

    /// Trains on the bundle's `seq` view, which must hold *benign* traffic
    /// only (the §7.4 zero-day setting).
    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(AutoEncoder::fit(data.seq("AutoEncoder")?, settings))
    }

    /// Not defined: the AutoEncoder is an unsupervised detector scored by
    /// AUC over [`scores_float`](AutoEncoder::scores_float), not macro-F1.
    fn evaluate_float(&mut self, _data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Err(PegasusError::Unsupported { model: "AutoEncoder", what: "macro-F1 evaluation" })
    }

    /// Lowers to the reconstruction pipeline plus the on-switch MAE tables
    /// — a bespoke Scores-target pipeline.
    fn lower(
        &mut self,
        data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        let train = data.seq("AutoEncoder")?;
        Ok(Lowered::Pipeline(Box::new(self.emit_pipeline(train, opts)?)))
    }

    fn default_target(&self) -> CompileTarget {
        CompileTarget::Scores
    }

    fn size_kilobits(&mut self) -> f64 {
        self.model.to_spec("AutoEncoder").size_kilobits()
    }

    fn stream_features(&self) -> super::StreamFeatures {
        super::StreamFeatures::Seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pegasus;
    use pegasus_datasets::{
        extract_views, generate_trace, inject_attack, peerrush, split_by_flow, AttackKind,
        GenConfig, ATTACK_LABEL,
    };
    use pegasus_nn::metrics::auc;
    use pegasus_switch::SwitchConfig;

    #[test]
    fn reconstruction_error_separates_attack_traffic() {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 25, seed: 10 });
        let (train, _val, test) = split_by_flow(&trace, 6);
        let benign = extract_views(&train).seq;
        let mut ae =
            AutoEncoder::fit(&benign, &TrainSettings { epochs: 40, ..TrainSettings::quick() });

        let mixed = inject_attack(&test, AttackKind::SsdpFlood, 42);
        let views = extract_views(&mixed);
        let scores = ae.scores_float(&views.seq);
        let labels: Vec<bool> = views.seq.y.iter().map(|&l| l == ATTACK_LABEL).collect();
        assert!(labels.iter().any(|&b| b) && labels.iter().any(|&b| !b));
        let a = auc(&scores, &labels);
        assert!(a > 0.8, "float AUC {a}");
    }

    #[test]
    fn dataplane_detection_tracks_float_detection() {
        // The operative comparison (Figure 8): does the on-switch MAE
        // separate attack from benign traffic about as well as float MAE?
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 20, seed: 11 });
        let (train, _val, test) = split_by_flow(&trace, 7);
        let benign = extract_views(&train).seq;
        let ae = AutoEncoder::fit(&benign, &TrainSettings { epochs: 30, ..TrainSettings::quick() });

        let data = ModelData::new().with_seq(&benign);
        let opts = CompileOptions { clustering_depth: 6, ..Default::default() };
        let mut dp = Pegasus::new(ae)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("fits");
        assert!(dp.resource_report().stages_used <= 20);

        let mixed = inject_attack(&test, AttackKind::SsdpFlood, 42);
        let views = extract_views(&mixed);
        let labels: Vec<bool> = views.seq.y.iter().map(|&l| l == ATTACK_LABEL).collect();
        let float_scores = dp.model_mut().scores_float(&views.seq);
        let dp_scores: Vec<f64> = (0..views.seq.len())
            .map(|r| f64::from(dp.scores(views.seq.x.row(r)).expect("scores")[0]))
            .collect();
        let float_auc = auc(&float_scores, &labels);
        let dp_auc = auc(&dp_scores, &labels);
        assert!(float_auc > 0.8, "float AUC {float_auc}");
        // The on-switch MAE must preserve most of the detector's ranking
        // power: strong absolute separation and within a fifth of float.
        // (Attack windows fall outside the benign clusters the fuzzy maps
        // were fitted on, so some ranking loss is inherent to §4.2.)
        assert!(dp_auc > 0.8, "dataplane AUC {dp_auc}");
        assert!(dp_auc > float_auc - 0.2, "dataplane AUC {dp_auc} too far below float {float_auc}");
    }
}

//! CNN-L: the large raw-byte model with per-flow distributed inference
//! (§6.3, §7.3) — the paper's headline 3840-bit input scale.
//!
//! A shared per-packet **encoder** (NAM over the first 60 payload bytes)
//! produces a feature vector per packet; fuzzy matching compresses it to a
//! 4- or 8-bit index stored in per-flow registers. The **window head** (NAM
//! over the 8 packet indexes, optionally with IPD codes) fires on every
//! packet. Neither the 480 raw bytes per packet nor the full window ever
//! coexist in the PHV — that is precisely how the model sidesteps the
//! 4096-bit PHV wall the paper describes.
//!
//! The three per-flow storage variants of Figure 7:
//!
//! | variant | idx bits | IPD/time kept | stateful bits/flow |
//! |---------|----------|---------------|--------------------|
//! | 28-bit  | 4        | no            | 7 x 4 = 28         |
//! | 44-bit  | 4        | yes (16b ts)  | 7 x 4 + 16 = 44    |
//! | 72-bit  | 8        | yes (16b ts)  | 7 x 8 + 16 = 72    |

use super::{DataplaneNet, Lowered, ModelData, TrainSettings};
use crate::compile::{CompileOptions, CompileTarget};
use crate::error::PegasusError;
use crate::flowpipe::{build_flow_pipeline, FlowClassifier, FlowPipelineSpec, PacketCodes};
use crate::fuzzy::ClusterTree;
use crate::primitives::{MapFn, PrimitiveProgram, ValueId};
use pegasus_net::{FiveTuple, Trace, WINDOW};
use pegasus_nn::layers::{BatchNorm1d, Dense, NormMode, Relu};
use pegasus_nn::loss::softmax_cross_entropy;
use pegasus_nn::metrics::{pr_rc_f1, PrRcF1};
use pegasus_nn::optim::{Adam, Optimizer};
use pegasus_nn::{Dataset, Sequential, Tensor};
use std::collections::HashMap;

/// Raw bytes per packet.
pub const BYTES: usize = 60;
/// Encoder NAM segment width (bytes).
pub const SEG: usize = 10;
/// Encoder output feature dimension.
pub const FEAT: usize = 6;
/// Head subnet hidden width.
pub const HEAD_HIDDEN: usize = 24;

/// Per-flow storage variant (Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CnnLVariant {
    /// Packet index width (4 or 8).
    pub idx_bits: u8,
    /// Keep the IPD stream (requires the 16-bit timestamp register).
    pub with_ipd: bool,
}

impl CnnLVariant {
    /// The paper's default: 44 stateful bits per flow.
    pub fn v44() -> Self {
        CnnLVariant { idx_bits: 4, with_ipd: true }
    }
    /// The minimal 28-bit variant (no IPD).
    pub fn v28() -> Self {
        CnnLVariant { idx_bits: 4, with_ipd: false }
    }
    /// The 72-bit variant (8-bit indexes).
    pub fn v72() -> Self {
        CnnLVariant { idx_bits: 8, with_ipd: true }
    }

    /// Logical stateful bits per flow: stored indexes plus the timestamp
    /// register when IPD is used (the IPD code itself folds into the
    /// extractor input and is never stored).
    pub fn stateful_bits(&self) -> u64 {
        let codes = (WINDOW as u64 - 1) * self.idx_bits as u64;
        if self.with_ipd {
            codes + 16
        } else {
            codes
        }
    }

    /// Head-branch input width (one feature vector per packet).
    fn head_dim(&self) -> usize {
        FEAT
    }
}

/// A trained CNN-L.
pub struct CnnL {
    encoder: Sequential,
    head_branches: Vec<Sequential>,
    variant: CnnLVariant,
    classes: usize,
}

fn encoder_net(rng: &mut rand::rngs::StdRng) -> Sequential {
    // NAM over byte segments is expressed directly as per-segment chains at
    // compile time; the float encoder is the sum of segment subnets.
    // Implemented as one Sequential per segment would fragment training, so
    // the float encoder processes all 60 bytes with a segment-block-diagonal
    // structure: BN -> Dense(60, 6*segments applied blockwise) is
    // approximated by a full dense pair — the compile path re-extracts
    // per-segment functions from dedicated segment subnets below.
    let mut m = Sequential::new();
    m.add(Box::new(BatchNorm1d::new(SEG, NormMode::Feature)));
    m.add(Box::new(Dense::new(rng, SEG, 24)));
    m.add(Box::new(Relu::new()));
    m.add(Box::new(Dense::new(rng, 24, FEAT)));
    m
}

impl CnnL {
    /// Trains CNN-L end to end on aligned raw-byte and sequence views.
    ///
    /// `raw` holds `[n, 480]` byte rows; `seq` holds the aligned `[n, 16]`
    /// len/IPD code rows (IPD codes sit at odd columns).
    pub fn fit(
        raw: &Dataset,
        seq: &Dataset,
        variant: CnnLVariant,
        settings: &TrainSettings,
    ) -> Self {
        assert_eq!(raw.x.cols(), WINDOW * BYTES, "CNN-L expects 480 raw bytes");
        assert_eq!(raw.len(), seq.len(), "views must be aligned");
        let classes = raw.classes();
        let mut rng = settings.rng();
        // Shared per-segment encoder subnets (6 segments of 10 bytes), plus
        // an IPD branch when the variant keeps time information.
        let n_segs = BYTES / SEG;
        let mut seg_nets: Vec<Sequential> = (0..n_segs).map(|_| encoder_net(&mut rng)).collect();
        let mut ipd_net: Option<Sequential> = variant.with_ipd.then(|| {
            let mut m = Sequential::new();
            m.add(Box::new(Dense::new(&mut rng, 1, 8)));
            m.add(Box::new(Relu::new()));
            m.add(Box::new(Dense::new(&mut rng, 8, FEAT)));
            m
        });
        let mut head_branches: Vec<Sequential> = (0..WINDOW)
            .map(|_| {
                let mut m = Sequential::new();
                m.add(Box::new(Dense::new(&mut rng, variant.head_dim(), HEAD_HIDDEN)));
                m.add(Box::new(Relu::new()));
                m.add(Box::new(Dense::new(&mut rng, HEAD_HIDDEN, classes)));
                m
            })
            .collect();
        let mut opt = Adam::new(settings.lr);

        let d = variant.head_dim();
        for _ in 0..settings.epochs {
            // Manual batching (not `Dataset::batches`): row indices must
            // survive so each raw row pairs with its aligned seq row for
            // the IPD codes.
            let mut idx: Vec<usize> = (0..raw.len()).collect();
            use rand::seq::SliceRandom;
            idx.shuffle(&mut rng);
            for chunk in idx.chunks(settings.batch) {
                let b = chunk.len();
                let yb: Vec<usize> = chunk.iter().map(|&i| raw.y[i]).collect();
                // Encode every packet of every window with segment subnets.
                let mut feats = Tensor::zeros(&[b * WINDOW, FEAT]);
                let mut seg_inputs: Vec<Tensor> = Vec::with_capacity(n_segs);
                for s in 0..n_segs {
                    let mut t = Tensor::zeros(&[b * WINDOW, SEG]);
                    for (bi, &row) in chunk.iter().enumerate() {
                        let rx = raw.x.row(row);
                        for p in 0..WINDOW {
                            let base = p * BYTES + s * SEG;
                            t.row_mut(bi * WINDOW + p).copy_from_slice(&rx[base..base + SEG]);
                        }
                    }
                    seg_inputs.push(t);
                }
                for (s, net) in seg_nets.iter_mut().enumerate() {
                    let out = net.forward(&seg_inputs[s], true);
                    feats.add_assign(&out);
                }
                // IPD branch contributes to the per-packet features.
                let mut ipd_in: Option<Tensor> = None;
                if let Some(net) = ipd_net.as_mut() {
                    let mut t = Tensor::zeros(&[b * WINDOW, 1]);
                    for (bi, &row) in chunk.iter().enumerate() {
                        for p in 0..WINDOW {
                            *t.at2_mut(bi * WINDOW + p, 0) = seq.x.at2(row, 2 * p + 1) / 255.0;
                        }
                    }
                    feats.add_assign(&net.forward(&t, true));
                    ipd_in = Some(t);
                }
                let _ = ipd_in;
                // Head inputs per packet position.
                let mut branch_inputs: Vec<Tensor> = Vec::with_capacity(WINDOW);
                for p in 0..WINDOW {
                    let mut t = Tensor::zeros(&[b, d]);
                    for (bi, _row) in chunk.iter().enumerate() {
                        let fr = feats.row(bi * WINDOW + p);
                        t.row_mut(bi)[..FEAT].copy_from_slice(fr);
                    }
                    branch_inputs.push(t);
                }
                let mut logits = Tensor::zeros(&[b, classes]);
                for (p, net) in head_branches.iter_mut().enumerate() {
                    logits.add_assign(&net.forward(&branch_inputs[p], true));
                }
                let (_loss, grad) = softmax_cross_entropy(&logits, &yb);
                // Backward: heads -> feats -> segment encoders.
                let mut gfeats = Tensor::zeros(&[b * WINDOW, FEAT]);
                for (p, net) in head_branches.iter_mut().enumerate() {
                    let g = net.backward(&grad);
                    for bi in 0..b {
                        for f in 0..FEAT {
                            *gfeats.at2_mut(bi * WINDOW + p, f) += g.at2(bi, f);
                        }
                    }
                }
                for net in seg_nets.iter_mut() {
                    let _ = net.backward(&gfeats);
                }
                if let Some(net) = ipd_net.as_mut() {
                    let _ = net.backward(&gfeats);
                }
                let mut params: Vec<&mut pegasus_nn::layers::Param> = Vec::new();
                for net in seg_nets.iter_mut() {
                    params.extend(net.params_mut());
                }
                if let Some(net) = ipd_net.as_mut() {
                    params.extend(net.params_mut());
                }
                for net in head_branches.iter_mut() {
                    params.extend(net.params_mut());
                }
                opt.step(&mut params);
                for p in params {
                    p.zero_grad();
                }
            }
        }
        // Merge segment nets into one "encoder" holder for compile-side use;
        // the 3-layer IPD branch (when present) is appended last.
        let mut encoder = Sequential::new();
        for net in seg_nets {
            // Stored as consecutive layer groups; compile re-splits by count.
            let spec = net.to_spec("seg");
            for l in spec.layers {
                encoder.add(pegasus_nn::layers::build_layer(&l));
            }
        }
        if let Some(net) = ipd_net {
            for l in net.to_spec("ipd").layers {
                encoder.add(pegasus_nn::layers::build_layer(&l));
            }
        }
        CnnL { encoder, head_branches, variant, classes }
    }

    /// Layers per segment subnet inside the packed encoder.
    const SEG_LAYERS: usize = 4;

    /// Full-precision per-packet feature vector (bytes + optional IPD code).
    fn encode_packet(&mut self, bytes: &[f32], ipd_code: Option<f32>) -> Vec<f32> {
        let n_segs = BYTES / SEG;
        let mut acc = vec![0.0f32; FEAT];
        let spec = self.encoder.to_spec("enc");
        for s in 0..n_segs {
            let mut net = Sequential::from_spec(&pegasus_nn::ModelSpec {
                name: "seg".into(),
                layers: spec.layers[s * Self::SEG_LAYERS..(s + 1) * Self::SEG_LAYERS].to_vec(),
            });
            let x = Tensor::from_vec(bytes[s * SEG..(s + 1) * SEG].to_vec(), &[1, SEG]);
            let y = net.forward(&x, false);
            for (a, &v) in acc.iter_mut().zip(y.row(0)) {
                *a += v;
            }
        }
        if let Some(ipd) = ipd_code {
            let mut net = Sequential::from_spec(&pegasus_nn::ModelSpec {
                name: "ipd".into(),
                layers: spec.layers[n_segs * Self::SEG_LAYERS..].to_vec(),
            });
            let y = net.forward(&Tensor::from_vec(vec![ipd / 255.0], &[1, 1]), false);
            for (a, &v) in acc.iter_mut().zip(y.row(0)) {
                *a += v;
            }
        }
        acc
    }

    /// Full-precision window logits.
    pub fn forward(&mut self, raw_row: &[f32], seq_row: &[f32]) -> Vec<f32> {
        let mut logits = vec![0.0f32; self.classes];
        for p in 0..WINDOW {
            let ipd = self.variant.with_ipd.then(|| seq_row[2 * p + 1]);
            let feat = self.encode_packet(&raw_row[p * BYTES..(p + 1) * BYTES], ipd);
            let x = Tensor::from_vec(feat, &[1, self.variant.head_dim()]);
            let y = self.head_branches[p].forward(&x, false);
            for (a, &v) in logits.iter_mut().zip(y.row(0)) {
                *a += v;
            }
        }
        logits
    }

    /// Full-precision macro metrics over aligned views.
    pub fn float_metrics(&mut self, raw: &Dataset, seq: &Dataset) -> PrRcF1 {
        let preds: Vec<usize> = (0..raw.len())
            .map(|r| {
                let l = self.forward(raw.x.row(r), seq.x.row(r));
                l.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect();
        pr_rc_f1(&raw.y, &preds, raw.classes())
    }

    /// The storage variant.
    pub fn variant(&self) -> CnnLVariant {
        self.variant
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Model size in kilobits (encoder + head weights).
    fn weight_kilobits(&mut self) -> f64 {
        let enc = self.encoder.param_count();
        let heads: usize = self.head_branches.iter_mut().map(|h| h.param_count()).sum();
        ((enc + heads) * 32) as f64 / 1000.0
    }

    /// Input scale in bits: 8 packets x 60 bytes (the paper's 3840).
    pub const fn input_bits() -> usize {
        WINDOW * BYTES * 8
    }

    /// Builds the encoder primitive program (NAM over byte segments plus
    /// the IPD branch when present). The last input element is the IPD code.
    fn encoder_primitives(&self) -> PrimitiveProgram {
        let spec = self.encoder.to_spec("enc");
        let n_segs = BYTES / SEG;
        let in_dim = BYTES + usize::from(self.variant.with_ipd);
        let mut p = PrimitiveProgram::new(in_dim);
        let mut offsets: Vec<usize> = (0..n_segs).map(|s| s * SEG).collect();
        let mut lens = vec![SEG; n_segs];
        if self.variant.with_ipd {
            offsets.push(BYTES);
            lens.push(1);
        }
        let input = p.input;
        let segs = p.partition(input, &offsets, &lens);
        let mut mapped: Vec<ValueId> = Vec::new();
        for (s, &seg) in segs.iter().take(n_segs).enumerate() {
            let layers = &spec.layers[s * Self::SEG_LAYERS..(s + 1) * Self::SEG_LAYERS];
            let mut fns = Vec::new();
            for layer in layers {
                match layer {
                    pegasus_nn::layers::LayerSpec::BatchNorm1d {
                        gamma,
                        beta,
                        running_mean,
                        running_var,
                        eps,
                        ..
                    } => {
                        let dim = gamma.len();
                        let mut scale = Vec::with_capacity(dim);
                        let mut shift = Vec::with_capacity(dim);
                        for i in 0..dim {
                            let inv = 1.0 / (running_var.data()[i] + eps).sqrt();
                            let sc = gamma.data()[i] * inv;
                            scale.push(sc);
                            shift.push(beta.data()[i] - sc * running_mean.data()[i]);
                        }
                        fns.push(MapFn::Affine { scale, shift });
                    }
                    pegasus_nn::layers::LayerSpec::Dense { weight, bias } => fns
                        .push(MapFn::MatVec { weight: weight.clone(), bias: bias.data().to_vec() }),
                    pegasus_nn::layers::LayerSpec::Relu => fns.push(MapFn::Relu),
                    other => panic!("unexpected encoder layer {}", other.name()),
                }
            }
            mapped.push(p.map(seg, MapFn::Chain(fns)));
        }
        if self.variant.with_ipd {
            // IPD branch: scale /255 then the 3-layer subnet.
            let layers = &spec.layers[n_segs * Self::SEG_LAYERS..];
            let mut fns = vec![MapFn::Affine { scale: vec![1.0 / 255.0], shift: vec![0.0] }];
            for layer in layers {
                match layer {
                    pegasus_nn::layers::LayerSpec::Dense { weight, bias } => fns
                        .push(MapFn::MatVec { weight: weight.clone(), bias: bias.data().to_vec() }),
                    pegasus_nn::layers::LayerSpec::Relu => fns.push(MapFn::Relu),
                    other => panic!("unexpected ipd layer {}", other.name()),
                }
            }
            mapped.push(p.map(segs[n_segs], MapFn::Chain(fns)));
        }
        let out = p.sum_reduce(&mapped);
        p.set_output(out);
        p
    }

    /// Builds the full per-flow pipeline (extractor, registers, window
    /// head) ready for deployment.
    ///
    /// `raw_train` / `seq_train` are the aligned training views.
    fn build_pipeline(
        &mut self,
        raw_train: &Dataset,
        seq_train: &Dataset,
        opts: &CompileOptions,
    ) -> Result<crate::flowpipe::FlowPipeline, PegasusError> {
        let encoder_prog = self.encoder_primitives();
        // Per-packet training rows for the extractor compile (bytes + ipd).
        let mut ext_train: Vec<Vec<f32>> = Vec::new();
        let cap = opts.max_tree_samples.max(1);
        for r in (0..raw_train.len()).step_by((raw_train.len() / cap).max(1)) {
            let row = raw_train.x.row(r);
            let seq_row = seq_train.x.row(r);
            for p in 0..WINDOW {
                let mut pkt = row[p * BYTES..(p + 1) * BYTES].to_vec();
                if self.variant.with_ipd {
                    pkt.push(seq_row[2 * p + 1]);
                }
                ext_train.push(pkt);
            }
        }
        // Feature tree over encoder outputs. Depth caps at 7: a depth-8
        // tree over the 6-dim feature space constrains every dimension in
        // every leaf box and its CRC cross-product exceeds the pipeline's
        // entire TCAM; the paper's own Figure 7 shows the 72-bit variant
        // buys under a point of F1 over 44-bit, so the cap is immaterial.
        let feats: Vec<Vec<f32>> = ext_train.iter().map(|x| encoder_prog.eval(x)).collect();
        let tree = ClusterTree::fit(&feats, (self.variant.idx_bits as usize).min(7));

        // Window model over per-packet index codes (one stream).
        let idx_domain = 1usize << self.variant.idx_bits;
        let mut wp = PrimitiveProgram::new(WINDOW);
        let segs = wp.partition_strided(wp.input, 1, 1);
        let mut mapped = Vec::new();
        for (p_idx, &seg) in segs.iter().enumerate() {
            // Enumerate head-branch outputs over index codes.
            let head_spec = self.head_branches[p_idx].to_spec("head");
            let mut head = Sequential::from_spec(&head_spec);
            let mut values = Vec::new();
            for idx in 0..idx_domain {
                let input = tree.centroid(idx.min(tree.leaves() - 1)).to_vec();
                let y = head.forward(&Tensor::from_vec(input, &[1, FEAT]), false);
                values.push(y.row(0).to_vec());
            }
            mapped.push(wp.map(seg, MapFn::Table { domains: vec![idx_domain], values }));
        }
        let out = wp.sum_reduce(&mapped);
        wp.set_output(out);

        // Window training rows (index codes) for calibration.
        let mut win_train: Vec<Vec<f32>> = Vec::new();
        for r in (0..raw_train.len()).step_by((raw_train.len() / cap).max(1)) {
            let raw_row = raw_train.x.row(r);
            let seq_row = seq_train.x.row(r);
            let mut row = Vec::with_capacity(WINDOW);
            for p in 0..WINDOW {
                let mut pkt = raw_row[p * BYTES..(p + 1) * BYTES].to_vec();
                if self.variant.with_ipd {
                    pkt.push(seq_row[2 * p + 1]);
                }
                let f = encoder_prog.eval(&pkt);
                row.push(tree.index_of(&f) as f32);
            }
            win_train.push(row);
        }

        let spec = FlowPipelineSpec {
            name: "cnn_l".to_string(),
            window: WINDOW,
            codes: PacketCodes::Extractor {
                program: encoder_prog,
                train: ext_train,
                tree,
                code_bits: self.variant.idx_bits,
                ipd_input: self.variant.with_ipd,
            },
            window_program: wp,
            window_train: win_train,
            window_tree_overrides: HashMap::new(),
            opts: CompileOptions {
                // Explicit-domain tables may exceed the small default cap.
                max_exact_entries: opts.max_exact_entries.max(idx_domain + 1),
                ..opts.clone()
            },
            target: CompileTarget::Classify,
            flow_slots_log2: 14,
            ts_bits: if self.variant.with_ipd { 16 } else { 0 },
        };
        let mut pipeline = build_flow_pipeline(&spec)?;
        pipeline.program.stateful_bits_per_flow = self.variant.stateful_bits();
        pipeline.stateful_bits_per_flow = self.variant.stateful_bits();
        Ok(pipeline)
    }

    /// Replays a labeled trace through a deployed classifier, scoring every
    /// full-window packet (the paper's packet-level evaluation).
    pub fn evaluate_on_trace(
        classifier: &mut FlowClassifier,
        trace: &Trace,
    ) -> Result<PrRcF1, PegasusError> {
        classifier.reset();
        let mut truth = Vec::new();
        let mut preds = Vec::new();
        let mut classes = 0;
        for pkt in &trace.packets {
            let Some(label) = trace.label_of(&pkt.flow) else { continue };
            classes = classes.max(label + 1);
            let codes: Vec<f32> = pkt
                .payload_head
                .iter()
                .take(BYTES)
                .map(|&b| f32::from(b))
                .chain(std::iter::repeat(0.0))
                .take(BYTES)
                .collect();
            let v =
                classifier.on_packet(flow_hash(&pkt.flow), pkt.ts_micros, pkt.wire_len, &codes)?;
            if let Some(p) = v.predicted {
                truth.push(label);
                preds.push(p.min(classes.saturating_sub(1)));
            }
        }
        Ok(pr_rc_f1(&truth, &preds, classes))
    }
}

impl DataplaneNet for CnnL {
    fn name(&self) -> &'static str {
        "CNN-L"
    }

    /// Trains the paper's default 44-bit variant; use
    /// [`CnnL::fit`] directly for the 28/72-bit Figure 7 variants.
    fn train(data: &ModelData<'_>, settings: &TrainSettings) -> Result<Self, PegasusError> {
        Ok(CnnL::fit(data.raw("CNN-L")?, data.seq("CNN-L")?, CnnLVariant::v44(), settings))
    }

    fn evaluate_float(&mut self, data: &ModelData<'_>) -> Result<PrRcF1, PegasusError> {
        Ok(self.float_metrics(data.raw("CNN-L")?, data.seq("CNN-L")?))
    }

    /// Lowers to the distributed per-flow pipeline of §7.3 — per-packet
    /// extractor, register-packed index window, window head.
    fn lower(
        &mut self,
        data: &ModelData<'_>,
        opts: &CompileOptions,
    ) -> Result<Lowered, PegasusError> {
        let raw = data.raw("CNN-L")?;
        let seq = data.seq("CNN-L")?;
        if raw.is_empty() || seq.is_empty() {
            return Err(PegasusError::EmptyTrainingSet);
        }
        Ok(Lowered::Flow(Box::new(self.build_pipeline(raw, seq, opts)?)))
    }

    fn size_kilobits(&mut self) -> f64 {
        self.weight_kilobits()
    }
}

/// Stable per-flow register hash.
pub fn flow_hash(flow: &FiveTuple) -> u32 {
    flow.dataplane_hash()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pegasus;
    use pegasus_datasets::{extract_views, generate_trace, peerrush, split_by_flow, GenConfig};
    use pegasus_switch::SwitchConfig;

    #[test]
    fn input_scale_matches_paper() {
        assert_eq!(CnnL::input_bits(), 3840);
    }

    #[test]
    fn variant_stateful_bits_match_figure7() {
        assert_eq!(CnnLVariant::v28().stateful_bits(), 28);
        assert_eq!(CnnLVariant::v44().stateful_bits(), 44);
        assert_eq!(CnnLVariant::v72().stateful_bits(), 72);
    }

    #[test]
    fn trains_compiles_deploys_and_beats_chance() {
        let trace = generate_trace(&peerrush(), &GenConfig { flows_per_class: 20, seed: 9 });
        let (train, _val, test) = split_by_flow(&trace, 5);
        let tv = extract_views(&train);
        let mut m = CnnL::fit(
            &tv.raw,
            &tv.seq,
            CnnLVariant::v28(),
            &TrainSettings { epochs: 6, ..TrainSettings::quick() },
        );
        let test_views = extract_views(&test);
        let float_f1 = m.float_metrics(&test_views.raw, &test_views.seq).f1;
        assert!(float_f1 > 0.5, "float F1 {float_f1}");

        let data = ModelData::new().with_raw(&tv.raw).with_seq(&tv.seq);
        let opts = CompileOptions { clustering_depth: 5, ..Default::default() };
        let mut dp = Pegasus::new(m)
            .options(opts)
            .compile(&data)
            .expect("compiles")
            .deploy(&SwitchConfig::tofino2())
            .expect("CNN-L fits the switch");
        let report = dp.resource_report();
        assert!(report.stages_used <= 20, "stages {}", report.stages_used);

        let dp_f1 =
            CnnL::evaluate_on_trace(dp.flow_mut().expect("per-flow"), &test).expect("replays").f1;
        assert!(dp_f1 > 0.4, "dataplane F1 {dp_f1} (float {float_f1})");
    }
}

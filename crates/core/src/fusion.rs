//! Primitive Fusion (§4.3, Figure 5).
//!
//! The number of Map primitives is the number of mapping-table lookups the
//! dataplane performs, so fusion is the paper's main scalability lever.
//! Three rewrite rules implement **Basic Primitive Fusion** — they never
//! change program semantics (proved by property tests against the float
//! interpreter):
//!
//! 1. **Merging consecutive Maps**: `Map(g) ∘ Map(f)` → `Map(g ∘ f)` when
//!    the intermediate value has a single consumer.
//! 2. **Pushing element-wise Maps through Partition**: `Partition(f(v))` →
//!    `f_slice(Partition(v))`, which lets pre-partition normalization fuse
//!    into each segment's table.
//! 3. **Linear Reordering**: `f(SumReduce(xs))` → `SumReduce(f(xs))` for
//!    linear `f` (affine maps are handled by sending the shift to exactly
//!    one branch), after which rule 1 fuses `f` into each branch's table.
//!
//! **Advanced Primitive Fusion** ❷ (Removal of Nonlinear Mappings) is the
//! model-altering [`strip_nonlinear`] pass; ❸ (Reduction of SumReduce, the
//! NAM form) is an architectural property models opt into at construction —
//! [`is_nam_form`] recognizes it.

use crate::primitives::{MapFn, Primitive, PrimitiveProgram, ReduceKind, ValueId};
use serde::{Deserialize, Serialize};

/// Before/after metrics of a fusion run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusionStats {
    /// Map ops (table lookups) before fusion.
    pub maps_before: usize,
    /// Map ops after fusion.
    pub maps_after: usize,
    /// Reduce ops before fusion.
    pub reduces_before: usize,
    /// Reduce ops after fusion.
    pub reduces_after: usize,
    /// Rewrite-rule applications performed.
    pub rewrites: usize,
}

/// Slices an element-wise function to a sub-range of its input, or `None`
/// when the function is not element-wise.
fn slice_elementwise(f: &MapFn, offset: usize, len: usize) -> Option<MapFn> {
    match f {
        MapFn::Affine { scale, shift } => Some(MapFn::Affine {
            scale: scale[offset..offset + len].to_vec(),
            shift: shift[offset..offset + len].to_vec(),
        }),
        MapFn::Relu => Some(MapFn::Relu),
        MapFn::Tanh => Some(MapFn::Tanh),
        MapFn::Sigmoid => Some(MapFn::Sigmoid),
        MapFn::Exp => Some(MapFn::Exp),
        MapFn::Chain(fs) => {
            let parts: Option<Vec<MapFn>> =
                fs.iter().map(|g| slice_elementwise(g, offset, len)).collect();
            parts.map(MapFn::Chain)
        }
        MapFn::MatVec { .. } | MapFn::Embed { .. } | MapFn::Table { .. } => None,
    }
}

/// Flattens nested chains into a single-level chain.
fn chain(f: MapFn, g: MapFn) -> MapFn {
    let mut fs = match f {
        MapFn::Chain(v) => v,
        other => vec![other],
    };
    match g {
        MapFn::Chain(v) => fs.extend(v),
        other => fs.push(other),
    }
    MapFn::Chain(fs)
}

/// Op indices that read `v`.
fn consumers(p: &PrimitiveProgram, v: ValueId) -> Vec<usize> {
    p.ops
        .iter()
        .enumerate()
        .filter(|(_, op)| match op {
            Primitive::Partition { input, .. } | Primitive::Map { input, .. } => *input == v,
            Primitive::Reduce { inputs, .. } | Primitive::Concat { inputs, .. } => {
                inputs.contains(&v)
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Rule 1: merge `Map(f) ; Map(g)` pairs where the intermediate value has a
/// single consumer and is not the program output. Returns rewrites applied.
fn merge_consecutive_maps(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    loop {
        let mut found = None;
        'scan: for i in 0..p.ops.len() {
            let Primitive::Map { output: mid, .. } = &p.ops[i] else { continue };
            let mid = *mid;
            if mid == p.output {
                continue;
            }
            let cons = consumers(p, mid);
            if cons.len() != 1 {
                continue;
            }
            let j = cons[0];
            if matches!(&p.ops[j], Primitive::Map { .. }) {
                found = Some((i, j));
                break 'scan;
            }
        }
        let Some((i, j)) = found else { break };
        // Fuse op j's function after op i's; op j's output becomes the
        // fused op's output; remove op j.
        let (f, input_i) = match &p.ops[i] {
            Primitive::Map { input, f, .. } => (f.clone(), *input),
            _ => unreachable!(),
        };
        let (g, out_j) = match &p.ops[j] {
            Primitive::Map { f, output, .. } => (f.clone(), *output),
            _ => unreachable!(),
        };
        p.ops[i] = Primitive::Map { input: input_i, f: chain(f, g), output: out_j };
        p.ops.remove(j);
        rewrites += 1;
    }
    rewrites
}

/// Rule 2: push an element-wise Map through a following Partition.
fn push_map_through_partition(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    loop {
        let mut found = None;
        'scan: for i in 0..p.ops.len() {
            let Primitive::Map { f, output: mid, .. } = &p.ops[i] else { continue };
            let mid = *mid;
            if mid == p.output {
                continue;
            }
            if slice_elementwise(f, 0, 1).is_none() {
                continue;
            }
            let cons = consumers(p, mid);
            if cons.len() != 1 {
                continue;
            }
            if matches!(&p.ops[cons[0]], Primitive::Partition { .. }) {
                found = Some((i, cons[0]));
                break 'scan;
            }
        }
        let Some((i, j)) = found else { break };
        let (f, map_in) = match &p.ops[i] {
            Primitive::Map { input, f, .. } => (f.clone(), *input),
            _ => unreachable!(),
        };
        let (offsets, lens, outputs) = match &p.ops[j] {
            Primitive::Partition { offsets, lens, outputs, .. } => {
                (offsets.clone(), lens.clone(), outputs.clone())
            }
            _ => unreachable!(),
        };
        // Partition now reads the Map's input directly; each segment gets a
        // fresh value fed through the sliced function into the old segment
        // value (so downstream consumers are untouched).
        let mut new_ops = Vec::with_capacity(outputs.len());
        let mut new_outputs = Vec::with_capacity(outputs.len());
        for ((&o, &l), &old_out) in offsets.iter().zip(lens.iter()).zip(outputs.iter()) {
            let seg_raw = p.new_value(l);
            new_outputs.push(seg_raw);
            let sliced = slice_elementwise(&f, o, l).expect("checked elementwise");
            new_ops.push(Primitive::Map { input: seg_raw, f: sliced, output: old_out });
        }
        p.ops[j] = Primitive::Partition { input: map_in, offsets, lens, outputs: new_outputs };
        // Insert the per-segment maps right after the partition, drop op i.
        let insert_at = j + 1;
        for (k, op) in new_ops.into_iter().enumerate() {
            p.ops.insert(insert_at + k, op);
        }
        p.ops.remove(i);
        rewrites += 1;
    }
    rewrites
}

/// Rule 3: `Map(affine-or-linear f)` directly after `Reduce(Sum)` — swap so
/// `f` applies per branch (shift goes to the first branch only).
fn linear_reorder(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    loop {
        let mut found = None;
        'scan: for i in 0..p.ops.len() {
            let Primitive::Reduce { kind: ReduceKind::Sum, output: mid, .. } = &p.ops[i] else {
                continue;
            };
            let mid = *mid;
            if mid == p.output {
                continue;
            }
            let cons = consumers(p, mid);
            if cons.len() != 1 {
                continue;
            }
            if let Primitive::Map { f, .. } = &p.ops[cons[0]] {
                if f.is_affine() {
                    found = Some((i, cons[0]));
                    break 'scan;
                }
            }
        }
        let Some((i, j)) = found else { break };
        let inputs = match &p.ops[i] {
            Primitive::Reduce { inputs, .. } => inputs.clone(),
            _ => unreachable!(),
        };
        let (f, out_j) = match &p.ops[j] {
            Primitive::Map { f, output, .. } => (f.clone(), *output),
            _ => unreachable!(),
        };
        let zeroed = zero_shift(&f);
        // Per-branch maps: first branch carries the full affine (with
        // shift/bias), the rest the zero-shift version.
        let mut mapped = Vec::with_capacity(inputs.len());
        let mut new_ops = Vec::with_capacity(inputs.len());
        for (bi, &inp) in inputs.iter().enumerate() {
            let g = if bi == 0 { f.clone() } else { zeroed.clone() };
            let out = p.new_value(g.out_dim(p.dim(inp)));
            mapped.push(out);
            new_ops.push(Primitive::Map { input: inp, f: g, output: out });
        }
        // Replace: maps go where the reduce was; reduce moves to j's slot
        // writing j's output.
        let reduce = Primitive::Reduce { inputs: mapped, kind: ReduceKind::Sum, output: out_j };
        p.ops[j] = reduce;
        p.ops.remove(i);
        let insert_at = i;
        for (k, op) in new_ops.into_iter().enumerate() {
            p.ops.insert(insert_at + k, op);
        }
        rewrites += 1;
    }
    rewrites
}

/// The zero-shift (purely linear) version of an affine function.
fn zero_shift(f: &MapFn) -> MapFn {
    match f {
        MapFn::Affine { scale, .. } => {
            MapFn::Affine { scale: scale.clone(), shift: vec![0.0; scale.len()] }
        }
        MapFn::MatVec { weight, bias } => {
            MapFn::MatVec { weight: weight.clone(), bias: vec![0.0; bias.len()] }
        }
        MapFn::Chain(fs) => {
            // Only the additive constant of the composition must vanish;
            // zeroing every stage's shift achieves that for affine chains.
            MapFn::Chain(fs.iter().map(zero_shift).collect())
        }
        other => other.clone(),
    }
}

/// Rule 4: push a Partition through a preceding Sum-Reduce:
/// `Partition(Sum(xs))_s = Sum(Partition(x_b)_s)`. Enables cross-layer
/// fusion once nonlinearities are out of the way.
fn push_partition_through_sum(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    loop {
        let mut found = None;
        'scan: for i in 0..p.ops.len() {
            let Primitive::Reduce { kind: ReduceKind::Sum, output: mid, .. } = &p.ops[i] else {
                continue;
            };
            let mid = *mid;
            if mid == p.output {
                continue;
            }
            let cons = consumers(p, mid);
            if cons.len() != 1 {
                continue;
            }
            if matches!(&p.ops[cons[0]], Primitive::Partition { .. }) {
                found = Some((i, cons[0]));
                break 'scan;
            }
        }
        let Some((i, j)) = found else { break };
        let branches = match &p.ops[i] {
            Primitive::Reduce { inputs, .. } => inputs.clone(),
            _ => unreachable!(),
        };
        let (offsets, lens, seg_outs) = match &p.ops[j] {
            Primitive::Partition { offsets, lens, outputs, .. } => {
                (offsets.clone(), lens.clone(), outputs.clone())
            }
            _ => unreachable!(),
        };
        // Per-branch partitions.
        let mut branch_segs: Vec<Vec<ValueId>> = Vec::with_capacity(branches.len());
        let mut new_parts = Vec::with_capacity(branches.len());
        for &b in &branches {
            let outs: Vec<ValueId> = lens.iter().map(|&l| p.new_value(l)).collect();
            new_parts.push(Primitive::Partition {
                input: b,
                offsets: offsets.clone(),
                lens: lens.clone(),
                outputs: outs.clone(),
            });
            branch_segs.push(outs);
        }
        // Per-segment sums writing the old segment values.
        let mut new_sums = Vec::with_capacity(seg_outs.len());
        for (s, &old) in seg_outs.iter().enumerate() {
            let inputs: Vec<ValueId> = branch_segs.iter().map(|bs| bs[s]).collect();
            new_sums.push(Primitive::Reduce { inputs, kind: ReduceKind::Sum, output: old });
        }
        // Splice: replace ops i (reduce) and j (partition). Remove the later
        // index first to keep `i` valid.
        debug_assert!(j > i);
        p.ops.remove(j);
        p.ops.remove(i);
        for (insert_at, op) in (i..).zip(new_parts.into_iter().chain(new_sums)) {
            p.ops.insert(insert_at, op);
        }
        rewrites += 1;
    }
    rewrites
}

/// Output-slices an affine function: `slice(f(x), o..o+l)` as a function of
/// the *whole* input `x`. `None` when not expressible.
fn slice_output(f: &MapFn, offset: usize, len: usize) -> Option<MapFn> {
    match f {
        MapFn::Affine { scale, shift } => Some(MapFn::Affine {
            scale: scale[offset..offset + len].to_vec(),
            shift: shift[offset..offset + len].to_vec(),
        }),
        MapFn::MatVec { weight, bias } => {
            let (in_dim, _out) = (weight.shape()[0], weight.shape()[1]);
            let mut w = pegasus_nn::Tensor::zeros(&[in_dim, len]);
            for r in 0..in_dim {
                for c in 0..len {
                    *w.at2_mut(r, c) = weight.at2(r, offset + c);
                }
            }
            Some(MapFn::MatVec { weight: w, bias: bias[offset..offset + len].to_vec() })
        }
        MapFn::Chain(fs) => match fs.split_last() {
            Some((last, prefix)) => {
                let sliced_last = slice_output(last, offset, len)?;
                // The prefix still computes its whole output: Affine slices
                // of the *last* stage only are safe.
                let mut chain: Vec<MapFn> = prefix.to_vec();
                chain.push(sliced_last);
                Some(MapFn::Chain(chain))
            }
            None => None,
        },
        _ => None,
    }
}

/// Rule 5: a Partition directly after a Map whose function is output-
/// sliceable (ends in MatVec/Affine) — replace both with per-segment Maps of
/// column-sliced functions reading the Map's input.
fn partition_of_sliceable_map(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    loop {
        let mut found = None;
        'scan: for i in 0..p.ops.len() {
            let Primitive::Map { f, output: mid, .. } = &p.ops[i] else { continue };
            let mid = *mid;
            if mid == p.output {
                continue;
            }
            // Elementwise maps are rule 2's job (cheaper rewrite).
            if slice_elementwise(f, 0, 1).is_some() {
                continue;
            }
            if slice_output(f, 0, 1).is_none() {
                continue;
            }
            let cons = consumers(p, mid);
            if cons.len() != 1 {
                continue;
            }
            if matches!(&p.ops[cons[0]], Primitive::Partition { .. }) {
                found = Some((i, cons[0]));
                break 'scan;
            }
        }
        let Some((i, j)) = found else { break };
        let (f, map_in) = match &p.ops[i] {
            Primitive::Map { input, f, .. } => (f.clone(), *input),
            _ => unreachable!(),
        };
        let (offsets, lens, seg_outs) = match &p.ops[j] {
            Primitive::Partition { offsets, lens, outputs, .. } => {
                (offsets.clone(), lens.clone(), outputs.clone())
            }
            _ => unreachable!(),
        };
        let mut new_maps = Vec::with_capacity(seg_outs.len());
        for ((&o, &l), &old) in offsets.iter().zip(lens.iter()).zip(seg_outs.iter()) {
            let g = slice_output(&f, o, l).expect("checked sliceable");
            new_maps.push(Primitive::Map { input: map_in, f: g, output: old });
        }
        debug_assert!(j > i);
        p.ops.remove(j);
        p.ops.remove(i);
        for (insert_at, op) in (i..).zip(new_maps) {
            p.ops.insert(insert_at, op);
        }
        rewrites += 1;
    }
    rewrites
}

/// Flattens an affine function to explicit `(W, b)` form with
/// `f(x) = W^T x + b`, `W: [in, out]`. `None` for nonlinear functions.
fn affine_as_matrix(f: &MapFn, in_dim: usize) -> Option<(pegasus_nn::Tensor, Vec<f32>)> {
    match f {
        MapFn::Affine { scale, shift } => {
            assert_eq!(scale.len(), in_dim);
            let mut w = pegasus_nn::Tensor::zeros(&[in_dim, in_dim]);
            for (i, &sc) in scale.iter().enumerate() {
                *w.at2_mut(i, i) = sc;
            }
            Some((w, shift.clone()))
        }
        MapFn::MatVec { weight, bias } => {
            assert_eq!(weight.shape()[0], in_dim);
            Some((weight.clone(), bias.clone()))
        }
        MapFn::Chain(fs) => {
            let mut acc: Option<(pegasus_nn::Tensor, Vec<f32>)> = None;
            let mut dim = in_dim;
            for g in fs {
                let (wg, bg) = affine_as_matrix(g, dim)?;
                dim = wg.shape()[1];
                acc = Some(match acc {
                    None => (wg, bg),
                    Some((wa, ba)) => {
                        // x -> wa x + ba -> wg (wa x + ba) + bg
                        let w = wa.matmul(&wg);
                        let ba_t = pegasus_nn::Tensor::from_vec(ba, &[1, wg.shape()[0]]);
                        let shifted = ba_t.matmul(&wg);
                        let b: Vec<f32> =
                            shifted.data().iter().zip(bg.iter()).map(|(&a, &c)| a + c).collect();
                        (w, b)
                    }
                });
            }
            acc
        }
        _ => None,
    }
}

/// Rule 7: merge parallel affine Maps over the *same* input whose outputs
/// feed the same Sum — `f(x) + g(x) = (f + g)(x)`, one lookup instead of
/// two. The collapse that yields the paper's "single table lookup per
/// segment" for linear models (Figure 5 ❷).
fn merge_parallel_summed_maps(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    'outer: loop {
        for i in 0..p.ops.len() {
            let Primitive::Reduce { kind: ReduceKind::Sum, inputs, output } = &p.ops[i] else {
                continue;
            };
            let (inputs, output) = (inputs.clone(), *output);
            // Map each reduce input to its producing affine Map (single-use).
            let mut producers: Vec<Option<(usize, ValueId)>> = Vec::new();
            for &v in &inputs {
                let mut found = None;
                for (k, op) in p.ops.iter().enumerate() {
                    if let Primitive::Map { input, f, output: o } = op {
                        if *o == v && consumers(p, v).len() == 1 && v != p.output && f.is_affine() {
                            found = Some((k, *input));
                        }
                    }
                }
                producers.push(found);
            }
            // Find two reduce inputs with the same map input.
            for a in 0..inputs.len() {
                for b in a + 1..inputs.len() {
                    let (Some((ka, xa)), Some((kb, xb))) = (producers[a], producers[b]) else {
                        continue;
                    };
                    if xa != xb {
                        continue;
                    }
                    let in_dim = p.dim(xa);
                    let (fa, fb) = match (&p.ops[ka], &p.ops[kb]) {
                        (Primitive::Map { f: fa, .. }, Primitive::Map { f: fb, .. }) => {
                            (fa.clone(), fb.clone())
                        }
                        _ => unreachable!(),
                    };
                    let (Some((wa, ba)), Some((wb, bb))) =
                        (affine_as_matrix(&fa, in_dim), affine_as_matrix(&fb, in_dim))
                    else {
                        continue;
                    };
                    if wa.shape() != wb.shape() {
                        continue;
                    }
                    let w = wa.add(&wb);
                    let bias: Vec<f32> = ba.iter().zip(bb.iter()).map(|(&x, &y)| x + y).collect();
                    let merged_f = MapFn::MatVec { weight: w, bias };
                    let (va, vb) = (inputs[a], inputs[b]);
                    let _ = (ka, kb);
                    // Rebuild the reduce input list.
                    let mut new_inputs: Vec<ValueId> = inputs.clone();
                    new_inputs.retain(|&v| v != va && v != vb);
                    if new_inputs.is_empty() {
                        // Reduce of the two merged inputs only: the merged
                        // map writes the reduce's output directly.
                        p.ops[i] = Primitive::Map { input: xa, f: merged_f, output };
                    } else {
                        let merged_out = p.new_value(merged_f.out_dim(in_dim));
                        new_inputs.push(merged_out);
                        p.ops[i] =
                            Primitive::Reduce { inputs: new_inputs, kind: ReduceKind::Sum, output };
                        p.ops.insert(
                            i,
                            Primitive::Map { input: xa, f: merged_f, output: merged_out },
                        );
                    }
                    // Remove the two superseded maps by their output values.
                    p.ops.retain(|op| {
                        !matches!(op, Primitive::Map { output: o, .. } if *o == va || *o == vb)
                    });
                    rewrites += 1;
                    continue 'outer;
                }
            }
        }
        break;
    }
    rewrites
}

/// Rule 6: flatten nested Sum-Reduces (`Sum(..., Sum(ys), ...)` with the
/// inner sum single-consumed).
fn flatten_nested_sums(p: &mut PrimitiveProgram) -> usize {
    let mut rewrites = 0;
    loop {
        let mut found = None;
        'scan: for i in 0..p.ops.len() {
            let Primitive::Reduce { kind: ReduceKind::Sum, output: mid, .. } = &p.ops[i] else {
                continue;
            };
            let mid = *mid;
            if mid == p.output {
                continue;
            }
            let cons = consumers(p, mid);
            if cons.len() != 1 {
                continue;
            }
            if let Primitive::Reduce { kind: ReduceKind::Sum, .. } = &p.ops[cons[0]] {
                found = Some((i, cons[0], mid));
                break 'scan;
            }
        }
        let Some((i, j, mid)) = found else { break };
        let inner_inputs = match &p.ops[i] {
            Primitive::Reduce { inputs, .. } => inputs.clone(),
            _ => unreachable!(),
        };
        if let Primitive::Reduce { inputs, .. } = &mut p.ops[j] {
            let pos = inputs.iter().position(|&v| v == mid).expect("consumer");
            inputs.splice(pos..=pos, inner_inputs);
        }
        p.ops.remove(i);
        rewrites += 1;
    }
    rewrites
}

/// Removes ops whose outputs nobody consumes (and that aren't the program
/// output), iterating to fixpoint.
fn eliminate_dead(p: &mut PrimitiveProgram) -> usize {
    let mut removed = 0;
    loop {
        let mut dead = None;
        for (i, op) in p.ops.iter().enumerate() {
            let outs: Vec<ValueId> = match op {
                Primitive::Partition { outputs, .. } => outputs.clone(),
                Primitive::Map { output, .. }
                | Primitive::Reduce { output, .. }
                | Primitive::Concat { output, .. } => vec![*output],
            };
            if outs.iter().all(|&o| o != p.output && consumers(p, o).is_empty()) {
                dead = Some(i);
                break;
            }
        }
        match dead {
            Some(i) => {
                p.ops.remove(i);
                removed += 1;
            }
            None => break,
        }
    }
    removed
}

/// Basic Primitive Fusion: applies all three rewrite rules to fixpoint.
pub fn fuse_basic(p: &mut PrimitiveProgram) -> FusionStats {
    let maps_before = p.map_count();
    let reduces_before = p.reduce_count();
    let mut rewrites = 0;
    loop {
        let n = push_map_through_partition(p)
            + flatten_nested_sums(p)
            + linear_reorder(p)
            + merge_consecutive_maps(p);
        rewrites += n;
        if n == 0 {
            break;
        }
    }
    rewrites += eliminate_dead(p);
    FusionStats {
        maps_before,
        maps_after: p.map_count(),
        reduces_before,
        reduces_after: p.reduce_count(),
        rewrites,
    }
}

/// Aggressive fusion for affine regions: adds the partition-through-sum,
/// map-output-slicing and parallel-map-merging rules to the basic set.
/// Semantics-preserving like `fuse_basic`, but only *profitable* when the
/// chains between partitions are affine — which is why it runs as part of
/// [`strip_nonlinear`] (Advanced Fusion ❷) rather than by default.
pub fn fuse_affine_collapse(p: &mut PrimitiveProgram) -> FusionStats {
    let maps_before = p.map_count();
    let reduces_before = p.reduce_count();
    let mut rewrites = 0;
    loop {
        let n = push_map_through_partition(p)
            + push_partition_through_sum(p)
            + partition_of_sliceable_map(p)
            + flatten_nested_sums(p)
            + linear_reorder(p)
            + merge_consecutive_maps(p)
            + merge_parallel_summed_maps(p);
        rewrites += n;
        if n == 0 {
            break;
        }
    }
    rewrites += eliminate_dead(p);
    FusionStats {
        maps_before,
        maps_after: p.map_count(),
        reduces_before,
        reduces_after: p.reduce_count(),
        rewrites,
    }
}

/// Advanced Primitive Fusion ❷: deletes every nonlinear element-wise Map
/// (ReLU/tanh/sigmoid/exp), then re-runs basic fusion. **Changes program
/// semantics** — the paper notes purely linear models trade accuracy for a
/// single-lookup pipeline. Returns the number of nonlinearities removed.
pub fn strip_nonlinear(p: &mut PrimitiveProgram) -> usize {
    let mut removed = 0;
    // Replace nonlinear stages with identity within chains, drop standalone
    // nonlinear maps by rewiring their consumers.
    loop {
        let mut target = None;
        for (i, op) in p.ops.iter().enumerate() {
            if let Primitive::Map { f, .. } = op {
                if is_or_contains_nonlinear(f) {
                    target = Some(i);
                    break;
                }
            }
        }
        let Some(i) = target else { break };
        let Primitive::Map { input, f, output } = p.ops[i].clone() else { unreachable!() };
        match remove_nonlinear(&f) {
            Some(linear_rest) => {
                p.ops[i] = Primitive::Map { input, f: linear_rest, output };
            }
            None => {
                // Entire map was nonlinear: rewire consumers to the input.
                rewire(p, output, input);
                p.ops.remove(i);
            }
        }
        removed += 1;
    }
    fuse_affine_collapse(p);
    removed
}

fn is_or_contains_nonlinear(f: &MapFn) -> bool {
    match f {
        MapFn::Relu | MapFn::Tanh | MapFn::Sigmoid | MapFn::Exp => true,
        MapFn::Chain(fs) => fs.iter().any(is_or_contains_nonlinear),
        _ => false,
    }
}

/// Drops nonlinear stages from a chain; `None` when nothing remains.
fn remove_nonlinear(f: &MapFn) -> Option<MapFn> {
    match f {
        MapFn::Relu | MapFn::Tanh | MapFn::Sigmoid | MapFn::Exp => None,
        MapFn::Chain(fs) => {
            let kept: Vec<MapFn> = fs.iter().filter_map(remove_nonlinear).collect();
            if kept.is_empty() {
                None
            } else {
                Some(MapFn::Chain(kept))
            }
        }
        other => Some(other.clone()),
    }
}

fn rewire(p: &mut PrimitiveProgram, from: ValueId, to: ValueId) {
    for op in &mut p.ops {
        match op {
            Primitive::Partition { input, .. } | Primitive::Map { input, .. } => {
                if *input == from {
                    *input = to;
                }
            }
            Primitive::Reduce { inputs, .. } | Primitive::Concat { inputs, .. } => {
                for v in inputs {
                    if *v == from {
                        *v = to;
                    }
                }
            }
        }
    }
    if p.output == from {
        p.output = to;
    }
}

/// Advanced Primitive Fusion ❸ recognition: the NAM form — per-segment
/// sub-programs with exactly one final Sum reduction and no intermediate
/// cross-segment Reduce.
pub fn is_nam_form(p: &PrimitiveProgram) -> bool {
    let reduces: Vec<&Primitive> =
        p.ops.iter().filter(|op| matches!(op, Primitive::Reduce { .. })).collect();
    match reduces.as_slice() {
        [Primitive::Reduce { output, .. }] => *output == p.output,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pegasus_nn::Tensor;
    use rand::Rng;
    use rand::SeedableRng;

    /// Builds the naive (unfused) program for a small MLP:
    /// BN -> FC -> ReLU -> BN -> FC, partitioned MatMuls.
    fn naive_mlp(seed: u64) -> PrimitiveProgram {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut rnd_vec =
            |n: usize| -> Vec<f32> { (0..n).map(|_| rng.gen_range(-1.0..1.0f32)).collect() };
        let in_dim = 4;
        let hid = 4;
        let out = 2;

        let mut p = PrimitiveProgram::new(in_dim);
        // BN1 (whole vector).
        let bn1 = p.map(p.input, MapFn::Affine { scale: rnd_vec(in_dim), shift: rnd_vec(in_dim) });
        // FC1 partitioned into 2 segments.
        let segs = p.partition_strided(bn1, 2, 2);
        let w1a = Tensor::from_vec(rnd_vec(2 * hid), &[2, hid]);
        let w1b = Tensor::from_vec(rnd_vec(2 * hid), &[2, hid]);
        let m0 = p.map(segs[0], MapFn::MatVec { weight: w1a, bias: rnd_vec(hid) });
        let m1 = p.map(segs[1], MapFn::MatVec { weight: w1b, bias: vec![0.0; hid] });
        let h1 = p.sum_reduce(&[m0, m1]);
        // ReLU + BN2 as standalone elementwise maps.
        let r1 = p.map(h1, MapFn::Relu);
        let bn2 = p.map(r1, MapFn::Affine { scale: rnd_vec(hid), shift: rnd_vec(hid) });
        // FC2 partitioned.
        let segs2 = p.partition_strided(bn2, 2, 2);
        let w2a = Tensor::from_vec(rnd_vec(2 * out), &[2, out]);
        let w2b = Tensor::from_vec(rnd_vec(2 * out), &[2, out]);
        let n0 = p.map(segs2[0], MapFn::MatVec { weight: w2a, bias: rnd_vec(out) });
        let n1 = p.map(segs2[1], MapFn::MatVec { weight: w2b, bias: vec![0.0; out] });
        let y = p.sum_reduce(&[n0, n1]);
        p.set_output(y);
        p
    }

    #[test]
    fn basic_fusion_reduces_lookups() {
        let mut p = naive_mlp(1);
        let before = p.map_count(); // 7 maps: BN1, 2xFC1, ReLU, BN2, 2xFC2
        assert_eq!(before, 7);
        let stats = fuse_basic(&mut p);
        // Figure 5 ❶: collapses to one fused map per segment per block = 4.
        assert_eq!(stats.maps_after, 4, "{:?}\n{:#?}", stats, p.ops);
        assert!(stats.rewrites > 0);
    }

    #[test]
    fn basic_fusion_preserves_semantics() {
        for seed in 0..5 {
            let p0 = naive_mlp(seed);
            let mut p1 = p0.clone();
            fuse_basic(&mut p1);
            let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
            for _ in 0..10 {
                let x: Vec<f32> = (0..4).map(|_| rng.gen_range(-3.0..3.0f32)).collect();
                let y0 = p0.eval(&x);
                let y1 = p1.eval(&x);
                for (a, b) in y0.iter().zip(y1.iter()) {
                    assert!((a - b).abs() < 1e-4, "seed {seed}: {y0:?} vs {y1:?}");
                }
            }
        }
    }

    #[test]
    fn merge_maps_chains_functions() {
        let mut p = PrimitiveProgram::new(2);
        let a = p.map(p.input, MapFn::Affine { scale: vec![2.0, 2.0], shift: vec![0.0, 0.0] });
        let b = p.map(a, MapFn::Relu);
        p.set_output(b);
        let n = merge_consecutive_maps(&mut p);
        assert_eq!(n, 1);
        assert_eq!(p.map_count(), 1);
        assert_eq!(p.eval(&[1.0, -1.0]), vec![2.0, 0.0]);
    }

    #[test]
    fn linear_reorder_swaps_affine_after_sum() {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let s = p.sum_reduce(&segs);
        let out = p.map(s, MapFn::Affine { scale: vec![3.0, 3.0], shift: vec![1.0, 1.0] });
        p.set_output(out);
        let y_before = p.eval(&[1.0, 2.0, 3.0, 4.0]);
        let n = linear_reorder(&mut p);
        assert_eq!(n, 1);
        let y_after = p.eval(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y_before, y_after);
        // Shift must be applied exactly once: y = 3*(x0+x2)+1, 3*(x1+x3)+1.
        assert_eq!(y_after, vec![13.0, 19.0]);
    }

    #[test]
    fn push_through_partition_preserves_output() {
        let mut p = PrimitiveProgram::new(4);
        let m =
            p.map(p.input, MapFn::Affine { scale: vec![1.0, 2.0, 3.0, 4.0], shift: vec![0.5; 4] });
        let segs = p.partition_strided(m, 2, 2);
        let c = p.concat(&segs);
        p.set_output(c);
        let before = p.eval(&[1.0, 1.0, 1.0, 1.0]);
        let n = push_map_through_partition(&mut p);
        assert_eq!(n, 1);
        assert_eq!(p.eval(&[1.0, 1.0, 1.0, 1.0]), before);
        assert_eq!(before, vec![1.5, 2.5, 3.5, 4.5]);
    }

    #[test]
    fn strip_nonlinear_collapses_to_single_block() {
        let mut p = naive_mlp(2);
        let removed = strip_nonlinear(&mut p);
        assert!(removed >= 1);
        // Without the ReLU the two FC blocks merge: 2 maps (one per
        // first-layer segment) and 1 reduce remain.
        assert_eq!(p.map_count(), 2, "{:#?}", p.ops);
        assert!(is_nam_form(&p));
    }

    #[test]
    fn nam_form_recognition() {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let m0 = p.map(segs[0], MapFn::Tanh);
        let m1 = p.map(segs[1], MapFn::Tanh);
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        assert!(is_nam_form(&p));
        let mut p2 = naive_mlp(3);
        assert!(!is_nam_form(&p2)); // two reduces
        fuse_basic(&mut p2);
        assert!(!is_nam_form(&p2)); // still two (nonlinearity blocks)
    }

    #[test]
    fn dead_code_removed() {
        let mut p = PrimitiveProgram::new(2);
        let _unused = p.map(p.input, MapFn::Relu);
        let used = p.map(p.input, MapFn::Tanh);
        p.set_output(used);
        let stats = fuse_basic(&mut p);
        assert_eq!(p.map_count(), 1);
        assert!(stats.rewrites >= 1);
    }

    /// Fusion is semantics-preserving on random MLP-shaped programs and
    /// random inputs (DESIGN.md §6 property).
    #[test]
    fn fusion_preserves_semantics_randomized() {
        use rand::{Rng, SeedableRng};
        for seed in 0u64..50 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xf00d);
            let p0 = naive_mlp(seed);
            let mut p1 = p0.clone();
            fuse_basic(&mut p1);
            for _ in 0..4 {
                let xs: Vec<f32> = (0..4).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
                let y0 = p0.eval(&xs);
                let y1 = p1.eval(&xs);
                for (a, b) in y0.iter().zip(y1.iter()) {
                    assert!((a - b).abs() < 1e-3, "seed {seed}: {y0:?} vs {y1:?}");
                }
            }
        }
    }

    /// Fusion never increases the lookup count.
    #[test]
    fn fusion_monotone_randomized() {
        for seed in 0u64..50 {
            let mut p = naive_mlp(seed);
            let before = p.map_count();
            let stats = fuse_basic(&mut p);
            assert!(stats.maps_after <= before, "seed {seed}");
        }
    }
}

//! Static artifact verification: `pegasus-verify`'s analysis core.
//!
//! Pegasus's premise is that a DNN is compiled into dataplane primitives
//! that *provably* fit the switch's resource and semantics model. This
//! module makes that proof explicit: [`verify_pipeline`] /
//! [`verify_flow`] run over every compiled artifact — at compile time
//! ([`Pegasus::compile`](crate::pipeline::Pegasus::compile)), at deploy
//! time ([`DataplaneModel::deploy`](crate::runtime::DataplaneModel::deploy),
//! [`FlowClassifier::deploy`](crate::flowpipe::FlowClassifier::deploy)) and
//! at attach/swap time
//! ([`ControlHandle::attach`](crate::engine::server::ControlHandle::attach)) —
//! and produce a typed [`VerifyReport`] of [`Diagnostic`]s. Any
//! `Error`-severity diagnostic rejects the artifact with
//! [`PegasusError::Verify`](crate::error::PegasusError::Verify) before a
//! single packet flows.
//!
//! Three analysis layers:
//!
//! 1. **Structural checks** (`V0xx`) — every ALU operand and scratch index
//!    in bounds, dense-LUT slots naming real entries, entry action/data
//!    offsets inside their pools, range parts ordered and inside the key
//!    field's declared bit width, shift amounts below 64.
//! 2. **Interval abstract interpretation** (`V1xx`) — `[lo, hi]` value
//!    ranges propagated per PHV/scratch field through every micro-op
//!    sequence and across table stages (respecting `mask_of`/`truncate`
//!    wrapping semantics), proving every packed dense-LUT key code lands
//!    in bounds and flagging value ranges that silently wrap past their
//!    field's declared width.
//! 3. **Semantic lints** (`V2xx`) — unreachable/shadowed entries, tables
//!    with no default action and a provable match gap, same-priority
//!    overlapping entries (hardware match nondeterminism), and the full
//!    [`SwitchConfig`] resource accounting (stages, PHV, SRAM/TCAM, action
//!    bus) as static diagnostics instead of deploy-time surprises.
//!
//! `V301` (`Info`) records why a pipeline did not flatten into the
//! streaming hot path (see [`FlattenSkip`](crate::engine::FlattenSkip)).
//!
//! # Diagnostic codes
//!
//! | Code | Severity | Meaning |
//! |------|----------|---------|
//! | `V001` | Error | scratch/PHV field index out of bounds |
//! | `V002` | Error | dense-LUT slot names a nonexistent entry |
//! | `V003` | Error | entry action/data reference out of bounds |
//! | `V004` | Error | range key with `lo > hi` |
//! | `V005` | Error | key value/range outside the field's declared width |
//! | `V006` | Error | shift amount ≥ 64 |
//! | `V007` | Error | entry key arity differs from the table declaration |
//! | `V008` | Warn  | ternary entry can never match (`value & !mask != 0`) |
//! | `V101` | Error | a packed dense-LUT key is not provably in bounds |
//! | `V102` | Warn  | a value range provably wraps past its field width |
//! | `V201` | Error | entry shadowed by a dominating entry |
//! | `V202` | Warn  | no default action and a provable match gap |
//! | `V203` | Warn  | same-priority overlapping entries |
//! | `V204` | Error | switch resource model rejects the program |
//! | `V301` | Info  | pipeline does not flatten (reason attached) |

use crate::compile::CompiledPipeline;
use crate::engine::flat::{FlatOp, FlatPart, FlatProgram, FlatTable, Matcher, Src};
use crate::flowpipe::FlowPipeline;
use pegasus_switch::{
    mask_of, AluOp, FieldId, KeyPart, SwitchConfig, SwitchProgram, Table, TernaryKey,
};
use std::fmt;

/// How bad one diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational only (e.g. the flatten-skip reason).
    Info,
    /// Suspicious but not rejecting (e.g. silent wrap-around).
    Warn,
    /// Rejects `deploy`/`attach`/`swap` via
    /// [`PegasusError::Verify`](crate::error::PegasusError::Verify).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warn => write!(f, "warn"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding of the static verifier.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Stable code, e.g. `"V001"` (see the module-level table).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// The table the finding is anchored to, when table-scoped.
    pub table: Option<String>,
    /// Human-readable description with the concrete numbers.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        if let Some(t) = &self.table {
            write!(f, " [{t}]")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The typed outcome of one verification run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VerifyReport {
    /// The verified pipeline's name.
    pub pipeline: String,
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// True when no `Error`-severity diagnostic was produced (the artifact
    /// is admissible; warnings and infos may still be present).
    pub fn is_clean(&self) -> bool {
        !self.has_errors()
    }

    /// True when at least one `Error`-severity diagnostic was produced.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The `Error`-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The `Warn`-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn)
    }

    /// True when any finding carries the given code.
    pub fn has_code(&self, code: &str) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    fn push(
        &mut self,
        code: &'static str,
        severity: Severity,
        table: Option<&str>,
        message: String,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            table: table.map(str::to_string),
            message,
        });
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (e, w) = (self.errors().count(), self.warnings().count());
        writeln!(f, "verify {}: {} error(s), {} warning(s)", self.pipeline, e, w)?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

/// Entries above this count skip the quadratic semantic lints (shadowing
/// and overlap) on non-exact tables; exact tables use a hash-based
/// duplicate check at any size, so the compiler's enumerated maps are
/// always covered.
const SEMANTIC_LINT_MAX_ENTRIES: usize = 4096;

/// Key domains up to this many points are enumerated exhaustively for the
/// no-default coverage lint (`V202`); larger domains are skipped rather
/// than guessed at (the verifier never reports what it cannot prove).
const COVERAGE_MAX_POINTS: u64 = 1 << 16;

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Verifies a stateless compiled pipeline: program-level structural and
/// semantic layers, resource accounting when `cfg` is given, then the
/// flattened representation (structural + interval analysis) or the typed
/// flatten-skip reason as a `V301` info.
pub fn verify_pipeline(p: &CompiledPipeline, cfg: Option<&SwitchConfig>) -> VerifyReport {
    let mut r = verify_program(&p.program, cfg);
    let nfields = p.program.layout.len();
    check_pipeline_fields(&mut r, "input field", &p.input_fields, nfields);
    check_pipeline_fields(&mut r, "score field", &p.score_fields, nfields);
    if let Some(f) = p.predicted_field {
        check_pipeline_fields(&mut r, "predicted field", &[f], nfields);
    }
    // Flatten only artifacts that passed the structural layer: the
    // flattener (like the resource model) trusts the invariants above.
    if r.has_errors() {
        return r;
    }
    match FlatProgram::from_pipeline(p) {
        Ok(flat) => {
            let table_names: Vec<&str> = p.program.tables.iter().map(|t| t.name.as_str()).collect();
            verify_flat(&mut r, &flat, &table_names);
        }
        Err(skip) => {
            r.push(
                "V301",
                Severity::Info,
                None,
                format!("pipeline does not flatten: {skip} (simulator fallback)"),
            );
        }
    }
    r
}

/// Verifies a per-flow windowed pipeline (program-level layers only —
/// flow pipelines keep registers and never flatten; the register file is
/// their hot path).
pub fn verify_flow(p: &FlowPipeline, cfg: Option<&SwitchConfig>) -> VerifyReport {
    let mut r = verify_program(&p.program, cfg);
    let nfields = p.program.layout.len();
    check_pipeline_fields(&mut r, "extractor field", &p.extractor_fields, nfields);
    check_pipeline_fields(&mut r, "score field", &p.score_fields, nfields);
    let singles = [
        ("len field", p.len_field),
        ("ts field", p.ts_field),
        ("hash field", p.hash_field),
        ("valid field", p.valid_field),
    ];
    for (what, f) in singles {
        check_pipeline_fields(&mut r, what, &[f], nfields);
    }
    if let Some(f) = p.predicted_field {
        check_pipeline_fields(&mut r, "predicted field", &[f], nfields);
    }
    r
}

/// Verifies a bare switch program: structural checks over every table,
/// semantic lints, and — when `cfg` is given and the structural layer is
/// clean — full resource accounting as `V204` diagnostics.
pub fn verify_program(prog: &SwitchProgram, cfg: Option<&SwitchConfig>) -> VerifyReport {
    let mut r = VerifyReport { pipeline: prog.name.clone(), diagnostics: Vec::new() };
    for t in &prog.tables {
        check_table_structure(&mut r, prog, t);
    }
    for t in &prog.tables {
        check_table_semantics(&mut r, prog, t);
    }
    // Resource accounting runs only on structurally sound programs: the
    // cost model's range expansion asserts exactly the invariants the
    // structural layer just checked.
    if let Some(cfg) = cfg {
        if !r.has_errors() {
            if let Err(e) = prog.check_resources(cfg) {
                r.push("V204", Severity::Error, None, format!("resource model rejects: {e}"));
            }
        }
    }
    r
}

fn check_pipeline_fields(r: &mut VerifyReport, what: &str, fields: &[FieldId], nfields: usize) {
    for f in fields {
        if f.0 >= nfields {
            r.push(
                "V001",
                Severity::Error,
                None,
                format!("{what} #{} outside the {nfields}-field layout", f.0),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 1a: structural checks over the switch program.
// ---------------------------------------------------------------------------

fn check_table_structure(r: &mut VerifyReport, prog: &SwitchProgram, t: &Table) {
    let nfields = prog.layout.len();
    let name = t.name.as_str();

    // Key field declarations.
    for (f, _) in &t.keys {
        if f.0 >= nfields {
            r.push(
                "V001",
                Severity::Error,
                Some(name),
                format!("key field #{} outside the {nfields}-field layout", f.0),
            );
        }
    }

    // Action micro-ops: operand fields, register ids, shift amounts.
    for (ai, a) in t.actions.iter().enumerate() {
        for op in &a.ops {
            if let Some(dst) = op.dst_field() {
                if dst.0 >= nfields {
                    r.push(
                        "V001",
                        Severity::Error,
                        Some(name),
                        format!("action #{ai} writes field #{} outside the layout", dst.0),
                    );
                }
            }
            for src in op.src_fields() {
                if src.0 >= nfields {
                    r.push(
                        "V001",
                        Severity::Error,
                        Some(name),
                        format!("action #{ai} reads field #{} outside the layout", src.0),
                    );
                }
            }
            if let AluOp::Shl { amount, .. } | AluOp::Shr { amount, .. } = op {
                if *amount >= 64 {
                    r.push(
                        "V006",
                        Severity::Error,
                        Some(name),
                        format!("action #{ai} shifts by {amount} (must be < 64)"),
                    );
                }
            }
            if let Some(reg) = reg_of(op) {
                if reg >= prog.registers.len() {
                    r.push(
                        "V003",
                        Severity::Error,
                        Some(name),
                        format!(
                            "action #{ai} touches register #{reg}, program declares {}",
                            prog.registers.len()
                        ),
                    );
                }
            }
        }
    }

    // Per-action max param slot (for entry data-length checks below).
    let max_param: Vec<Option<usize>> =
        t.actions.iter().map(|a| a.ops.iter().flat_map(|op| op.param_slots()).max()).collect();

    // Entries.
    for (ei, e) in t.entries.iter().enumerate() {
        if e.keys.len() != t.keys.len() {
            r.push(
                "V007",
                Severity::Error,
                Some(name),
                format!(
                    "entry #{ei} has {} key part(s), table declares {}",
                    e.keys.len(),
                    t.keys.len()
                ),
            );
            continue;
        }
        if e.action_idx >= t.actions.len() {
            r.push(
                "V003",
                Severity::Error,
                Some(name),
                format!(
                    "entry #{ei} invokes action #{}, table declares {}",
                    e.action_idx,
                    t.actions.len()
                ),
            );
        } else if let Some(maxp) = max_param[e.action_idx] {
            if maxp >= e.action_data.len() {
                r.push(
                    "V003",
                    Severity::Error,
                    Some(name),
                    format!(
                        "entry #{ei}: action #{} reads param slot {maxp}, entry carries {} word(s)",
                        e.action_idx,
                        e.action_data.len()
                    ),
                );
            }
        }
        for (j, part) in e.keys.iter().enumerate() {
            let field = t.keys[j].0;
            if field.0 >= nfields {
                continue; // already flagged at the declaration
            }
            let bits = prog.layout.def(field).bits;
            check_key_part(r, name, ei, j, part, bits);
        }
    }

    // Default action.
    if let Some((idx, data)) = &t.default_action {
        if *idx >= t.actions.len() {
            r.push(
                "V003",
                Severity::Error,
                Some(name),
                format!("default invokes action #{idx}, table declares {}", t.actions.len()),
            );
        } else if let Some(maxp) = max_param[*idx] {
            if maxp >= data.len() {
                r.push(
                    "V003",
                    Severity::Error,
                    Some(name),
                    format!(
                        "default action #{idx} reads param slot {maxp}, default carries {} word(s)",
                        data.len()
                    ),
                );
            }
        }
    }
}

fn check_key_part(
    r: &mut VerifyReport,
    table: &str,
    entry: usize,
    col: usize,
    part: &KeyPart,
    bits: u8,
) {
    let field_mask = mask_of(bits);
    match part {
        KeyPart::Exact(v) => {
            if *v > field_mask {
                r.push(
                    "V005",
                    Severity::Error,
                    Some(table),
                    format!("entry #{entry} key #{col}: exact value {v} exceeds {bits}-bit field"),
                );
            }
        }
        KeyPart::Ternary(TernaryKey { value, mask }) => {
            if value & !mask != 0 {
                r.push(
                    "V008",
                    Severity::Warn,
                    Some(table),
                    format!(
                        "entry #{entry} key #{col}: ternary value {value:#x} sets don't-care \
                         bits of mask {mask:#x} — entry can never match"
                    ),
                );
            } else if *value > field_mask {
                r.push(
                    "V005",
                    Severity::Error,
                    Some(table),
                    format!(
                        "entry #{entry} key #{col}: ternary value {value:#x} exceeds \
                         {bits}-bit field"
                    ),
                );
            }
        }
        KeyPart::Range { lo, hi } => {
            if lo > hi {
                r.push(
                    "V004",
                    Severity::Error,
                    Some(table),
                    format!("entry #{entry} key #{col}: inverted range [{lo}, {hi}]"),
                );
            } else if *hi > field_mask {
                r.push(
                    "V005",
                    Severity::Error,
                    Some(table),
                    format!("entry #{entry} key #{col}: range end {hi} exceeds {bits}-bit field"),
                );
            } else if bits > 48 {
                r.push(
                    "V005",
                    Severity::Error,
                    Some(table),
                    format!(
                        "entry #{entry} key #{col}: range match on a {bits}-bit field \
                         (TCAM range coding supports up to 48)"
                    ),
                );
            }
        }
    }
}

/// The register array an op touches, if any.
fn reg_of(op: &AluOp) -> Option<usize> {
    match op {
        AluOp::RegRead { reg, .. }
        | AluOp::RegWrite { reg, .. }
        | AluOp::RegReadWrite { reg, .. }
        | AluOp::RegIncrSat { reg, .. }
        | AluOp::RegShiftInsert { reg, .. } => Some(reg.0),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Layer 3: semantic lints (shadowing, overlap, coverage).
// ---------------------------------------------------------------------------

fn check_table_semantics(r: &mut VerifyReport, prog: &SwitchProgram, t: &Table) {
    let name = t.name.as_str();
    // Only structurally sound entries take part (a malformed entry's
    // semantics are undefined; it was already flagged).
    let sound = |e: &pegasus_switch::TableEntry| e.keys.len() == t.keys.len();
    let widths: Option<Vec<u8>> = t
        .keys
        .iter()
        .map(|(f, _)| (f.0 < prog.layout.len()).then(|| prog.layout.def(*f).bits))
        .collect();
    let Some(widths) = widths else { return };

    if t.is_exact() {
        // Exact tables: shadowing == duplicate key tuple (hash check, any
        // size — this is the compiler's enumerated-map shape).
        let mut seen: std::collections::HashMap<Vec<u64>, usize> = std::collections::HashMap::new();
        for (ei, e) in t.entries.iter().enumerate() {
            if !sound(e) {
                continue;
            }
            let key: Option<Vec<u64>> = e
                .keys
                .iter()
                .map(|p| if let KeyPart::Exact(v) = p { Some(*v) } else { None })
                .collect();
            let Some(key) = key else { continue };
            match seen.get(&key) {
                Some(&first) => r.push(
                    "V201",
                    Severity::Error,
                    Some(name),
                    format!("entry #{ei} duplicates entry #{first}'s exact key — unreachable"),
                ),
                None => {
                    seen.insert(key, ei);
                }
            }
        }
    } else if t.entries.len() <= SEMANTIC_LINT_MAX_ENTRIES {
        for j in 0..t.entries.len() {
            if !sound(&t.entries[j]) {
                continue;
            }
            for i in 0..t.entries.len() {
                if i == j || !sound(&t.entries[i]) {
                    continue;
                }
                let (a, b) = (&t.entries[i], &t.entries[j]);
                // Entry j can never win when a dominating entry i covers
                // its whole match set: strictly higher priority anywhere,
                // or same priority earlier in the table (first match wins
                // among equals).
                let dominates = a.priority > b.priority || (a.priority == b.priority && i < j);
                if dominates && covers_all(a, b, &widths) {
                    r.push(
                        "V201",
                        Severity::Error,
                        Some(name),
                        format!(
                            "entry #{j} is shadowed by entry #{i} \
                             (priority {} vs {}) — unreachable",
                            a.priority, b.priority
                        ),
                    );
                    break;
                }
                // Same-priority partial overlap: resolution falls back to
                // entry order, which real match hardware does not
                // guarantee.
                if i < j
                    && a.priority == b.priority
                    && !covers_all(a, b, &widths)
                    && !covers_all(b, a, &widths)
                    && overlaps_all(a, b, &widths)
                    && (a.action_idx != b.action_idx || a.action_data != b.action_data)
                {
                    r.push(
                        "V203",
                        Severity::Warn,
                        Some(name),
                        format!(
                            "entries #{i} and #{j} overlap at equal priority {} with \
                             different outcomes — match order decides",
                            a.priority
                        ),
                    );
                }
            }
        }
    }

    // Coverage: no default action and a provable gap in the key space.
    if t.default_action.is_none() && !t.keys.is_empty() && !t.entries.is_empty() {
        let domain = widths.iter().fold(1u64, |acc, &b| acc.saturating_mul(1u64 << b.min(63)));
        if domain <= COVERAGE_MAX_POINTS {
            let k = widths.len();
            let mut raws = vec![0u64; k];
            'points: for point in 0..domain {
                let mut rem = point;
                for (j, &b) in widths.iter().enumerate().rev() {
                    raws[j] = rem & mask_of(b);
                    rem >>= b;
                }
                let hit = t
                    .entries
                    .iter()
                    .filter(|e| sound(e))
                    .any(|e| e.keys.iter().zip(raws.iter()).all(|(p, &raw)| p.matches(raw)));
                if !hit {
                    r.push(
                        "V202",
                        Severity::Warn,
                        Some(name),
                        format!(
                            "no default action and key point {raws:?} matches no entry — \
                             packets there pass through unmodified"
                        ),
                    );
                    break 'points;
                }
            }
        }
    }
}

/// True when every column of `a` covers (is a superset of) the matching
/// column of `b` — conservative: only returns `true` when provable.
fn covers_all(
    a: &pegasus_switch::TableEntry,
    b: &pegasus_switch::TableEntry,
    widths: &[u8],
) -> bool {
    a.keys
        .iter()
        .zip(b.keys.iter())
        .zip(widths.iter())
        .all(|((pa, pb), &bits)| part_covers(pa, pb, bits))
}

fn part_covers(a: &KeyPart, b: &KeyPart, bits: u8) -> bool {
    let width_mask = mask_of(bits);
    match (a, b) {
        (KeyPart::Exact(x), KeyPart::Exact(y)) => x == y,
        (KeyPart::Ternary(t), KeyPart::Exact(y)) => t.matches(*y),
        (KeyPart::Range { lo, hi }, KeyPart::Exact(y)) => (lo..=hi).contains(&y),
        (KeyPart::Exact(x), KeyPart::Ternary(t)) => {
            t.mask & width_mask == width_mask && t.value == *x
        }
        (KeyPart::Exact(x), KeyPart::Range { lo, hi }) => lo == hi && lo == x,
        (KeyPart::Ternary(ta), KeyPart::Ternary(tb)) => {
            // a cares only where b also cares, and they agree there.
            ta.mask & tb.mask == ta.mask && tb.value & ta.mask == ta.value
        }
        (KeyPart::Range { lo, hi }, KeyPart::Ternary(t)) => {
            // b's smallest point is `value`, largest sets every wildcard
            // bit inside the field width.
            let min = t.value;
            let max = t.value | (!t.mask & width_mask);
            *lo <= min && max <= *hi
        }
        (KeyPart::Range { lo, hi }, KeyPart::Range { lo: lo2, hi: hi2 }) => lo <= lo2 && hi2 <= hi,
        (KeyPart::Ternary(t), KeyPart::Range { lo, hi }) => {
            // Only the singleton range is provable without enumeration.
            lo == hi && t.matches(*lo)
        }
    }
}

/// True when every column pair intersects (conservative: returns `true`
/// unless disjointness is provable, so only provable overlaps get past the
/// caller's extra filters).
fn overlaps_all(
    a: &pegasus_switch::TableEntry,
    b: &pegasus_switch::TableEntry,
    widths: &[u8],
) -> bool {
    a.keys
        .iter()
        .zip(b.keys.iter())
        .zip(widths.iter())
        .all(|((pa, pb), &bits)| part_overlaps(pa, pb, bits))
}

fn part_overlaps(a: &KeyPart, b: &KeyPart, bits: u8) -> bool {
    let width_mask = mask_of(bits);
    match (a, b) {
        (KeyPart::Exact(x), KeyPart::Exact(y)) => x == y,
        (KeyPart::Exact(x), KeyPart::Ternary(t)) | (KeyPart::Ternary(t), KeyPart::Exact(x)) => {
            t.matches(*x)
        }
        (KeyPart::Exact(x), KeyPart::Range { lo, hi })
        | (KeyPart::Range { lo, hi }, KeyPart::Exact(x)) => (lo..=hi).contains(&x),
        (KeyPart::Ternary(ta), KeyPart::Ternary(tb)) => {
            (ta.value ^ tb.value) & (ta.mask & tb.mask) == 0
        }
        (KeyPart::Range { lo, hi }, KeyPart::Range { lo: lo2, hi: hi2 }) => lo <= hi2 && lo2 <= hi,
        (KeyPart::Ternary(t), KeyPart::Range { lo, hi })
        | (KeyPart::Range { lo, hi }, KeyPart::Ternary(t)) => {
            // Provably disjoint only when the ternary set's hull misses
            // the range entirely.
            let min = t.value;
            let max = t.value | (!t.mask & width_mask);
            !(max < *lo || min > *hi)
        }
    }
}

// ---------------------------------------------------------------------------
// Layer 1b + 2: flat-program structural checks and interval analysis.
// ---------------------------------------------------------------------------

fn verify_flat(r: &mut VerifyReport, flat: &FlatProgram, table_names: &[&str]) {
    let before = r.diagnostics.len();
    let nfields = flat.fields_meta().len();
    for (ti, ft) in flat.flat_tables().iter().enumerate() {
        let name = table_names.get(ti).copied().unwrap_or("?");
        check_flat_table(r, ft, name, nfields);
    }
    // The interval layer indexes by the structures the checks above just
    // validated; run it only on a structurally sound flat program.
    let structurally_sound = !r.diagnostics[before..].iter().any(|d| d.severity == Severity::Error);
    if structurally_sound {
        interval_analysis(r, flat, table_names);
    }
}

fn check_flat_table(r: &mut VerifyReport, ft: &FlatTable, name: &str, nfields: usize) {
    for &(f, _) in &ft.keys {
        if f >= nfields {
            r.push(
                "V001",
                Severity::Error,
                Some(name),
                format!("flat key scratch index {f} outside the {nfields}-field scratch"),
            );
        }
    }
    if ft.entry_action.len() != ft.entry_data.len() {
        r.push(
            "V003",
            Severity::Error,
            Some(name),
            format!(
                "flat entry arrays disagree: {} action(s), {} data slice(s)",
                ft.entry_action.len(),
                ft.entry_data.len()
            ),
        );
    }
    let check_ref = |r: &mut VerifyReport, what: &str, action: u32, off: u32, len: u32| {
        if action as usize >= ft.actions.len() {
            r.push(
                "V003",
                Severity::Error,
                Some(name),
                format!("{what} invokes flat action #{action}, table has {}", ft.actions.len()),
            );
        }
        if off as usize + len as usize > ft.data.len() {
            r.push(
                "V003",
                Severity::Error,
                Some(name),
                format!(
                    "{what} data slice [{off}, +{len}) outside the {}-word pool",
                    ft.data.len()
                ),
            );
        }
    };
    for (ei, (&action, &(off, len))) in ft.entry_action.iter().zip(ft.entry_data.iter()).enumerate()
    {
        check_ref(r, &format!("flat entry #{ei}"), action, off, len);
    }
    if let Some((action, (off, len))) = ft.default_entry {
        check_ref(r, "flat default", action, off, len);
    }

    match &ft.matcher {
        Matcher::Always => {}
        Matcher::Dense(lut) => {
            let entries = ft.entry_action.len() as u32;
            for (slot, &v) in lut.iter().enumerate() {
                if v > entries {
                    r.push(
                        "V002",
                        Severity::Error,
                        Some(name),
                        format!(
                            "dense-LUT slot {slot} holds {v}, table has {entries} entry(ies) \
                             (slot encoding is entry index + 1)"
                        ),
                    );
                    break; // one witness per table keeps reports readable
                }
            }
        }
        Matcher::Scan { parts, priorities, .. } => {
            let k = ft.keys.len();
            if parts.len() != priorities.len() * k {
                r.push(
                    "V003",
                    Severity::Error,
                    Some(name),
                    format!(
                        "flat scan shape disagrees: {} part(s) for {} entry(ies) × {k} key(s)",
                        parts.len(),
                        priorities.len()
                    ),
                );
            }
            for (pi, part) in parts.iter().enumerate() {
                let bits = ft.keys.get(pi % k.max(1)).map_or(64, |&(_, b)| b);
                match *part {
                    FlatPart::Range { lo, hi } if lo > hi => r.push(
                        "V004",
                        Severity::Error,
                        Some(name),
                        format!("flat part #{pi}: inverted range [{lo}, {hi}]"),
                    ),
                    FlatPart::Range { hi, .. } if hi > mask_of(bits) => r.push(
                        "V005",
                        Severity::Error,
                        Some(name),
                        format!("flat part #{pi}: range end {hi} exceeds {bits}-bit key"),
                    ),
                    _ => {}
                }
            }
        }
    }

    for (ai, ops) in ft.actions.iter().enumerate() {
        for op in ops {
            let (dst, srcs, shift) = flat_op_parts(op);
            if dst >= nfields {
                r.push(
                    "V001",
                    Severity::Error,
                    Some(name),
                    format!("flat action #{ai} writes scratch index {dst} (scratch has {nfields})"),
                );
            }
            for s in srcs.into_iter().flatten() {
                if let Src::Field(f) = s {
                    if f >= nfields {
                        r.push(
                            "V001",
                            Severity::Error,
                            Some(name),
                            format!(
                                "flat action #{ai} reads scratch index {f} \
                                 (scratch has {nfields})"
                            ),
                        );
                    }
                }
            }
            if let Some(amount) = shift {
                if amount >= 64 {
                    r.push(
                        "V006",
                        Severity::Error,
                        Some(name),
                        format!("flat action #{ai} shifts by {amount} (must be < 64)"),
                    );
                }
            }
        }
    }
}

/// `(dst, [a, b], shift amount)` of one flat op.
fn flat_op_parts(op: &FlatOp) -> (usize, [Option<Src>; 2], Option<u8>) {
    match *op {
        FlatOp::Set { dst, a } | FlatOp::Popcnt { dst, a } => (dst, [Some(a), None], None),
        FlatOp::Shl { dst, a, amount } | FlatOp::Shr { dst, a, amount } => {
            (dst, [Some(a), None], Some(amount))
        }
        FlatOp::Add { dst, a, b }
        | FlatOp::Sub { dst, a, b }
        | FlatOp::Min { dst, a, b }
        | FlatOp::Max { dst, a, b }
        | FlatOp::And { dst, a, b }
        | FlatOp::Or { dst, a, b }
        | FlatOp::Xor { dst, a, b } => (dst, [Some(a), Some(b)], None),
    }
}

// ---------------------------------------------------------------------------
// Layer 2: interval abstract interpretation.
// ---------------------------------------------------------------------------

/// An inclusive `[lo, hi]` value interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Interval {
    lo: i64,
    hi: i64,
}

impl Interval {
    const fn point(v: i64) -> Self {
        Interval { lo: v, hi: v }
    }

    /// The no-information interval (distinct from a provable wrap).
    const TOP: Interval = Interval { lo: i64::MIN, hi: i64::MAX };

    fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }
}

/// The representable range of a `bits`-wide field.
fn representable(bits: u8, signed: bool) -> Interval {
    if bits >= 64 {
        return Interval::TOP;
    }
    if signed {
        Interval { lo: -(1i64 << (bits - 1)), hi: (1i64 << (bits - 1)) - 1 }
    } else {
        Interval { lo: 0, hi: (1i64 << bits) - 1 }
    }
}

/// Abstract `truncate`: identity when the interval fits the field, else
/// the field's full representable range. The bool reports a *provable*
/// wrap (a finite interval that exceeds the width) — `TOP` widens
/// silently, because "unknown" is not "provably wrapping".
fn truncate_abs(iv: Interval, bits: u8, signed: bool) -> (Interval, bool) {
    let rep = representable(bits, signed);
    if rep.lo <= iv.lo && iv.hi <= rep.hi {
        (iv, false)
    } else if iv == Interval::TOP {
        (rep, false)
    } else {
        (rep, true)
    }
}

fn clamp128(v: i128) -> i64 {
    v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
}

fn interval_analysis(r: &mut VerifyReport, flat: &FlatProgram, table_names: &[&str]) {
    let metas = flat.fields_meta();
    let mut state: Vec<Interval> = vec![Interval::point(0); metas.len()];
    // Input feature codes are clamped to [0, 255] before the store.
    for &f in flat.input_scratch() {
        let (iv, _) = truncate_abs(Interval { lo: 0, hi: 255 }, metas[f].bits, metas[f].signed);
        state[f] = iv;
    }

    for (ti, ft) in flat.flat_tables().iter().enumerate() {
        let name = table_names.get(ti).copied().unwrap_or("?");

        // Prove the packed dense-LUT key code in bounds from the current
        // key-field intervals (packing is monotone: each field's raw code
        // occupies its own bit slice).
        if let Matcher::Dense(lut) = &ft.matcher {
            let (mut lo, mut hi) = (0u128, 0u128);
            for &(f, bits) in &ft.keys {
                let mask = mask_of(bits);
                let iv = state[f];
                // A field interval inside [0, mask] passes through the raw
                // masking untouched; anything else can reach any code.
                let (rlo, rhi) = if iv.lo >= 0 && iv.hi as u128 <= mask as u128 {
                    (iv.lo as u64, iv.hi as u64)
                } else {
                    (0, mask)
                };
                lo = (lo << bits) | rlo as u128;
                hi = (hi << bits) | rhi as u128;
            }
            if hi >= lut.len() as u128 {
                r.push(
                    "V101",
                    Severity::Error,
                    Some(name),
                    format!(
                        "packed dense-LUT key proven only to [{lo}, {hi}], LUT has {} slot(s)",
                        lut.len()
                    ),
                );
            }
        }

        // Collect the table's possible outcomes and join them.
        let reachable: Vec<usize> = match &ft.matcher {
            Matcher::Always => Vec::new(),
            // The enumerated LUT knows exactly which entries are live.
            Matcher::Dense(lut) => {
                let mut seen = vec![false; ft.entry_action.len()];
                for &slot in lut {
                    if slot > 0 && (slot as usize - 1) < seen.len() {
                        seen[slot as usize - 1] = true;
                    }
                }
                seen.iter().enumerate().filter(|(_, &s)| s).map(|(e, _)| e).collect()
            }
            Matcher::Scan { priorities, .. } => (0..priorities.len()).collect(),
        };
        let can_miss = match &ft.matcher {
            Matcher::Always => true,
            Matcher::Dense(lut) => lut.contains(&0),
            Matcher::Scan { .. } => true, // a scan can always fall through
        };

        let mut outcomes: Vec<Vec<Interval>> = Vec::new();
        for e in reachable {
            let action = ft.entry_action[e] as usize;
            let (off, len) = ft.entry_data[e];
            let params = &ft.data[off as usize..(off + len) as usize];
            outcomes.push(apply_action(r, &state, &ft.actions[action], params, metas, name));
        }
        if can_miss {
            match ft.default_entry {
                Some((action, (off, len))) => {
                    let params = &ft.data[off as usize..(off + len) as usize];
                    outcomes.push(apply_action(
                        r,
                        &state,
                        &ft.actions[action as usize],
                        params,
                        metas,
                        name,
                    ));
                }
                // No default: a miss leaves the scratch untouched.
                None => outcomes.push(state.clone()),
            }
        }
        if let Some(first) = outcomes.first() {
            let mut joined = first.clone();
            for o in &outcomes[1..] {
                for (j, iv) in o.iter().enumerate() {
                    joined[j] = joined[j].join(*iv);
                }
            }
            state = joined;
        }
    }
}

/// Runs one action's micro-ops over a copy of the abstract state,
/// reporting provable wrap-arounds as `V102` (once per table).
fn apply_action(
    r: &mut VerifyReport,
    state: &[Interval],
    ops: &[FlatOp],
    params: &[i64],
    metas: &[crate::engine::flat::FieldMeta],
    table: &str,
) -> Vec<Interval> {
    let mut s = state.to_vec();
    let read = |s: &[Interval], src: Src| -> Interval {
        match src {
            Src::Field(f) => s[f],
            Src::Const(c) => Interval::point(c),
            Src::Param(i) => Interval::point(params[i]),
        }
    };
    for op in ops {
        let (dst, raw) = match *op {
            FlatOp::Set { dst, a } => (dst, read(&s, a)),
            FlatOp::Add { dst, a, b } => {
                let (x, y) = (read(&s, a), read(&s, b));
                (
                    dst,
                    Interval {
                        lo: clamp128(x.lo as i128 + y.lo as i128),
                        hi: clamp128(x.hi as i128 + y.hi as i128),
                    },
                )
            }
            FlatOp::Sub { dst, a, b } => {
                let (x, y) = (read(&s, a), read(&s, b));
                (
                    dst,
                    Interval {
                        lo: clamp128(x.lo as i128 - y.hi as i128),
                        hi: clamp128(x.hi as i128 - y.lo as i128),
                    },
                )
            }
            FlatOp::Shl { dst, a, amount } => {
                let x = read(&s, a);
                (
                    dst,
                    Interval {
                        lo: clamp128((x.lo as i128) << amount),
                        hi: clamp128((x.hi as i128) << amount),
                    },
                )
            }
            FlatOp::Shr { dst, a, amount } => {
                let x = read(&s, a);
                (dst, Interval { lo: x.lo >> amount, hi: x.hi >> amount })
            }
            FlatOp::Min { dst, a, b } => {
                let (x, y) = (read(&s, a), read(&s, b));
                (dst, Interval { lo: x.lo.min(y.lo), hi: x.hi.min(y.hi) })
            }
            FlatOp::Max { dst, a, b } => {
                let (x, y) = (read(&s, a), read(&s, b));
                (dst, Interval { lo: x.lo.max(y.lo), hi: x.hi.max(y.hi) })
            }
            FlatOp::And { dst, a, b } => {
                let (x, y) = (read(&s, a), read(&s, b));
                if x.lo >= 0 && y.lo >= 0 {
                    (dst, Interval { lo: 0, hi: x.hi.min(y.hi) })
                } else {
                    (dst, Interval::TOP)
                }
            }
            FlatOp::Or { dst, a, b } | FlatOp::Xor { dst, a, b } => {
                let (x, y) = (read(&s, a), read(&s, b));
                if x.lo >= 0 && y.lo >= 0 {
                    // Results stay within the combined bit hull.
                    let top_bits = 64 - (x.hi.max(y.hi) as u64).leading_zeros();
                    let hi = if top_bits >= 63 { i64::MAX } else { (1i64 << top_bits) - 1 };
                    let lo = if matches!(op, FlatOp::Or { .. }) { x.lo.max(y.lo) } else { 0 };
                    (dst, Interval { lo, hi })
                } else {
                    (dst, Interval::TOP)
                }
            }
            FlatOp::Popcnt { dst, .. } => (dst, Interval { lo: 0, hi: 64 }),
        };
        let m = metas[dst];
        let (iv, wrapped) = truncate_abs(raw, m.bits, m.signed);
        if wrapped
            && !r.diagnostics.iter().any(|d| d.code == "V102" && d.table.as_deref() == Some(table))
        {
            r.push(
                "V102",
                Severity::Warn,
                Some(table),
                format!(
                    "value range [{}, {}] wraps past scratch field #{dst}'s {}-bit width",
                    raw.lo, raw.hi, m.bits
                ),
            );
        }
        s[dst] = iv;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CompileOptions, CompileTarget};
    use crate::fusion::fuse_basic;
    use crate::primitives::{MapFn, PrimitiveProgram};
    use pegasus_nn::Tensor;
    use pegasus_switch::{Action, AluOp, MatchKind, Operand, PhvLayout, SwitchConfig, TableEntry};
    use rand::Rng;
    use rand::SeedableRng;

    fn scorer() -> PrimitiveProgram {
        let mut p = PrimitiveProgram::new(4);
        let segs = p.partition_strided(p.input, 2, 2);
        let w0 = Tensor::from_vec(vec![1.0, 0.0, 1.0, 0.0], &[2, 2]);
        let w1 = Tensor::from_vec(vec![0.0, 1.0, 0.0, 1.0], &[2, 2]);
        let m0 = p.map(segs[0], MapFn::MatVec { weight: w0, bias: vec![0.0, 0.0] });
        let m1 = p.map(segs[1], MapFn::MatVec { weight: w1, bias: vec![0.0, 0.0] });
        let out = p.sum_reduce(&[m0, m1]);
        p.set_output(out);
        p
    }

    fn inputs(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n).map(|_| (0..4).map(|_| rng.gen_range(0..256) as f32).collect()).collect()
    }

    fn compiled() -> CompiledPipeline {
        let mut prog = scorer();
        fuse_basic(&mut prog);
        compile(
            &prog,
            &inputs(1200, 21),
            &CompileOptions { clustering_depth: 6, ..Default::default() },
            CompileTarget::Classify,
            "verify",
        )
        .expect("compiles")
    }

    #[test]
    fn clean_pipeline_verifies_with_lut_proof() {
        let c = compiled();
        let r = verify_pipeline(&c, Some(&SwitchConfig::tofino2()));
        assert!(r.is_clean(), "{r}");
        // The flattenable scorer must not carry a flatten-skip info.
        assert!(!r.has_code("V301"), "{r}");
        // Dense LUTs exist and none of them produced a V101.
        assert!(!r.has_code("V101"), "{r}");
    }

    #[test]
    fn interval_analysis_proves_dense_bounds_and_flags_corruption() {
        let c = compiled();
        let flat = FlatProgram::from_pipeline(&c).expect("flattens");
        let names: Vec<&str> = c.program.tables.iter().map(|t| t.name.as_str()).collect();
        let mut r = VerifyReport::default();
        verify_flat(&mut r, &flat, &names);
        assert!(!r.has_errors(), "{r}");
        assert!(flat.dense_tables() >= 2);
    }

    #[test]
    fn dangling_lut_slot_is_v002() {
        // Hand-build a flat table whose LUT points past its entries — the
        // corruption class that cannot be produced through the public
        // compile path (the builder enumerates consistently by
        // construction), exactly why the verifier checks it.
        let ft = FlatTable {
            keys: vec![(0, 2)],
            matcher: Matcher::Dense(vec![0, 9, 0, 0]),
            entry_action: vec![0],
            entry_data: vec![(0, 0)],
            data: vec![],
            default_entry: None,
            actions: vec![vec![]],
        };
        let mut r = VerifyReport::default();
        check_flat_table(&mut r, &ft, "t", 1);
        assert!(r.has_code("V002"), "{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn wraparound_is_flagged_as_v102() {
        // An 8-bit field incremented by 200 from the [0, 255] input range
        // provably wraps.
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 8);
        let mut prog = SwitchProgram::new("wrap", layout);
        let mut t = pegasus_switch::Table::new("bump", vec![]);
        let a = t.add_action(Action::new("bump").with(AluOp::Add {
            dst: x,
            a: Operand::Field(x),
            b: Operand::Const(200),
        }));
        t.default_action = Some((a, vec![]));
        prog.tables.push(t);
        let p = CompiledPipeline {
            program: prog,
            input_fields: vec![x],
            score_fields: vec![x],
            score_format: crate::numformat::NumFormat::code8(),
            predicted_field: None,
            report: Default::default(),
        };
        let r = verify_pipeline(&p, None);
        assert!(r.has_code("V102"), "{r}");
        assert!(r.is_clean(), "warn must not reject: {r}");
    }

    #[test]
    fn shadowing_and_overlap_lints() {
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 8);
        let y = layout.add_field("out", 8);
        let mut prog = SwitchProgram::new("lints", layout);
        let mut t = pegasus_switch::Table::new("ranges", vec![(x, MatchKind::Range)]);
        let a = t.add_action(Action::new("set").with(AluOp::Set { dst: y, a: Operand::Param(0) }));
        t.param_widths = vec![8];
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 0, hi: 100 }],
            priority: 5,
            action_idx: a,
            action_data: vec![1],
        });
        // Shadowed: lower priority, fully inside the first range.
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 10, hi: 20 }],
            priority: 1,
            action_idx: a,
            action_data: vec![2],
        });
        // Overlapping at equal priority with a different outcome.
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 50, hi: 200 }],
            priority: 5,
            action_idx: a,
            action_data: vec![3],
        });
        t.default_action = Some((a, vec![0]));
        prog.tables.push(t);
        let r = verify_program(&prog, None);
        assert!(r.has_code("V201"), "{r}");
        assert!(r.has_code("V203"), "{r}");
    }

    #[test]
    fn coverage_gap_without_default_is_v202() {
        let mut layout = PhvLayout::new();
        let x = layout.add_field("x", 4);
        let y = layout.add_field("out", 8);
        let mut prog = SwitchProgram::new("gap", layout);
        let mut t = pegasus_switch::Table::new("partial", vec![(x, MatchKind::Range)]);
        let a = t.add_action(Action::new("set").with(AluOp::Set { dst: y, a: Operand::Const(1) }));
        t.add_entry(TableEntry {
            keys: vec![KeyPart::Range { lo: 0, hi: 7 }],
            priority: 0,
            action_idx: a,
            action_data: vec![],
        });
        prog.tables.push(t);
        let r = verify_program(&prog, None);
        assert!(r.has_code("V202"), "{r}");
        assert!(r.is_clean(), "coverage gap is a warning: {r}");
    }

    #[test]
    fn part_covers_is_conservative_and_exact_on_small_fields() {
        // Exhaustive ground truth on a 6-bit field: whenever part_covers
        // says yes, every point matching b must match a.
        let bits = 6u8;
        let parts = |seed: u64| -> Vec<KeyPart> {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut out = Vec::new();
            for _ in 0..40 {
                out.push(match rng.gen_range(0..3) {
                    0 => KeyPart::Exact(rng.gen_range(0..64)),
                    1 => {
                        let mask = rng.gen_range(0..64u64);
                        KeyPart::Ternary(TernaryKey { value: rng.gen_range(0..64u64) & mask, mask })
                    }
                    _ => {
                        let lo = rng.gen_range(0..64u64);
                        KeyPart::Range { lo, hi: rng.gen_range(lo..64) }
                    }
                });
            }
            out
        };
        for a in parts(1) {
            for b in parts(2) {
                let claimed = part_covers(&a, &b, bits);
                let truth = (0..64u64).all(|v| !b.matches(v) || a.matches(v));
                assert!(!claimed || truth, "covers false positive: {a:?} over {b:?}");
                let o_claimed = part_overlaps(&a, &b, bits);
                let o_truth = (0..64u64).any(|v| a.matches(v) && b.matches(v));
                // Overlap is conservative in the other direction: it may
                // claim overlap that does not exist, never miss one.
                assert!(o_claimed || !o_truth, "overlap false negative: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn resource_overflow_is_v204() {
        let c = compiled();
        let tiny = SwitchConfig {
            stages: 1,
            sram_bits_per_stage: 64,
            tcam_bits_per_stage: 64,
            ..SwitchConfig::tiny_test()
        };
        let r = verify_pipeline(&c, Some(&tiny));
        assert!(r.has_code("V204"), "{r}");
        assert!(r.has_errors());
    }
}

//! The one error type of the public Pegasus API.
//!
//! Every fallible step of the train → compile → deploy → serve pipeline
//! returns [`PegasusError`]: compilation rejects bad calibration data,
//! deployment surfaces the switch resource model's [`DeployError`], and the
//! runtime reports misuse (wrong feature arity, class queries against a
//! score pipeline) instead of panicking. The old surface `expect`ed or
//! `assert!`ed its way through all of these.

use crate::verify::VerifyReport;
use pegasus_switch::DeployError;
use std::fmt;

/// Everything that can go wrong between a trained model and a serving
/// dataplane.
#[derive(Clone, Debug, PartialEq)]
pub enum PegasusError {
    /// The switch resource model rejected the program.
    Deploy(DeployError),
    /// The static verifier found `Error`-severity diagnostics in the
    /// artifact; the full [`VerifyReport`] is attached. Raised at compile,
    /// deploy, attach, and swap time — a corrupt or over-budget artifact
    /// never reaches a serving engine.
    Verify {
        /// The verifier's findings (boxed: reports carry every diagnostic).
        report: Box<VerifyReport>,
    },
    /// A sample's feature count does not match the compiled pipeline.
    FeatureCount {
        /// Features the pipeline was compiled for.
        expected: usize,
        /// Features the caller supplied.
        got: usize,
    },
    /// A class verdict was requested from a pipeline compiled with the
    /// `Scores` target (no argmax head, e.g. the AutoEncoder).
    NotAClassifier {
        /// The offending pipeline's name.
        pipeline: String,
    },
    /// Scores were requested from a pipeline that carries no score fields
    /// (verdict-only tables — Leo's and BoS's heads store the class
    /// directly, never a score vector).
    NoScores {
        /// The offending pipeline's name.
        pipeline: String,
    },
    /// Compilation needs a non-empty calibration set (cluster fitting and
    /// fixed-point format selection are data-driven).
    EmptyTrainingSet,
    /// Calibration inputs fall outside the 8-bit feature-code domain the
    /// dataplane parsers produce.
    CalibrationRange {
        /// Smallest value observed.
        lo: f32,
        /// Largest value observed.
        hi: f32,
    },
    /// A model was driven with data missing the feature view it consumes.
    MissingView {
        /// The view the model needs (`"stat"`, `"seq"`, or `"raw"`).
        view: &'static str,
        /// The model asking for it.
        model: &'static str,
    },
    /// The requested operation needs the per-flow (stateful) runtime — use
    /// [`Deployment::flow_mut`](crate::pipeline::Deployment::flow_mut) and
    /// feed packets, not feature rows.
    FlowStateRequired {
        /// The per-flow pipeline's name.
        pipeline: String,
    },
    /// The operation is not defined for this model family (e.g. macro-F1 of
    /// an unsupervised detector).
    Unsupported {
        /// The model.
        model: &'static str,
        /// What was asked of it.
        what: &'static str,
    },
    /// An engine or builder parameter is outside its valid domain (e.g.
    /// zero shards). The legacy [`StreamConfig`](crate::engine::StreamConfig)
    /// path silently clamped such values; the
    /// [`EngineBuilder`](crate::engine::server::EngineBuilder) rejects them.
    InvalidConfig {
        /// The offending parameter.
        field: &'static str,
        /// Why the value is invalid.
        reason: &'static str,
    },
    /// A tenant's flow-state budget (`flow-table capacity × stateful bits
    /// per flow`) exceeds the stateful-SRAM budget of the switch model its
    /// artifact was deployed against — the paper's Figure 7 constraint
    /// enforced at attach/swap time.
    StateBudget {
        /// Register bits the requested capacity would consume.
        needed_bits: u64,
        /// Register bits the switch model offers (`register_bits_total`).
        budget_bits: u64,
    },
    /// An attach (or swap) would push the *aggregate* flow-state cost
    /// across every attached tenant past the engine's fleet-wide SRAM
    /// ceiling ([`EngineBuilder::fleet_state_budget_bits`]) — the
    /// per-tenant budget's fleet-level companion.
    ///
    /// [`EngineBuilder::fleet_state_budget_bits`]:
    /// crate::engine::server::EngineBuilder::fleet_state_budget_bits
    FleetStateBudget {
        /// Aggregate register bits the fleet would consume after the
        /// operation.
        needed_bits: u64,
        /// The configured fleet-wide ceiling.
        budget_bits: u64,
        /// Tenants attached when the operation was rejected.
        tenants: usize,
    },
    /// A control-plane operation referenced a tenant that is not attached
    /// (never attached, already detached, or a stale token after the
    /// engine restarted).
    UnknownTenant {
        /// The token's tenant id.
        tenant: u32,
    },
    /// The engine has shut down; its ingress and control handles are dead.
    EngineStopped,
}

impl fmt::Display for PegasusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PegasusError::Deploy(e) => write!(f, "deployment rejected: {e}"),
            PegasusError::Verify { report } => {
                let first = report
                    .errors()
                    .next()
                    .map(|d| format!("{d}"))
                    .unwrap_or_else(|| "no error diagnostics".to_string());
                write!(
                    f,
                    "static verification of '{}' failed with {} error(s); first: {first}",
                    report.pipeline,
                    report.errors().count()
                )
            }
            PegasusError::FeatureCount { expected, got } => {
                write!(f, "feature count mismatch: pipeline expects {expected}, got {got}")
            }
            PegasusError::NotAClassifier { pipeline } => {
                write!(f, "pipeline '{pipeline}' has a Scores target; it produces no class verdict")
            }
            PegasusError::NoScores { pipeline } => {
                write!(f, "pipeline '{pipeline}' stores verdicts directly; it has no score fields")
            }
            PegasusError::EmptyTrainingSet => {
                write!(f, "compilation requires a non-empty calibration set")
            }
            PegasusError::CalibrationRange { lo, hi } => {
                write!(f, "calibration inputs must be 8-bit feature codes, saw range [{lo}, {hi}]")
            }
            PegasusError::MissingView { view, model } => {
                write!(f, "{model} needs the '{view}' feature view, which was not provided")
            }
            PegasusError::FlowStateRequired { pipeline } => {
                write!(
                    f,
                    "pipeline '{pipeline}' keeps per-flow state; drive it packet-by-packet via flow_mut()"
                )
            }
            PegasusError::Unsupported { model, what } => {
                write!(f, "{model} does not support {what}")
            }
            PegasusError::InvalidConfig { field, reason } => {
                write!(f, "invalid engine configuration: {field} {reason}")
            }
            PegasusError::StateBudget { needed_bits, budget_bits } => {
                write!(
                    f,
                    "per-tenant flow-state budget exceeded: needs {needed_bits} register bits, \
                     the switch model offers {budget_bits}"
                )
            }
            PegasusError::FleetStateBudget { needed_bits, budget_bits, tenants } => {
                write!(
                    f,
                    "fleet flow-state budget exceeded: {tenants} attached tenants would need \
                     {needed_bits} aggregate register bits, the fleet ceiling is {budget_bits}"
                )
            }
            PegasusError::UnknownTenant { tenant } => {
                write!(f, "tenant {tenant} is not attached to this engine")
            }
            PegasusError::EngineStopped => {
                write!(f, "the engine has shut down; this handle is no longer usable")
            }
        }
    }
}

impl std::error::Error for PegasusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PegasusError::Deploy(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeployError> for PegasusError {
    fn from(e: DeployError) -> Self {
        PegasusError::Deploy(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_errors_convert_and_display() {
        let e: PegasusError = DeployError::OutOfStages { needed: 25, available: 20 }.into();
        assert!(matches!(e, PegasusError::Deploy(_)));
        let msg = e.to_string();
        assert!(msg.contains("25"), "{msg}");
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn messages_name_the_numbers() {
        let e = PegasusError::FeatureCount { expected: 16, got: 2 };
        let msg = e.to_string();
        assert!(msg.contains("16") && msg.contains('2'), "{msg}");
    }

    #[test]
    fn invalid_config_names_the_field() {
        let e = PegasusError::InvalidConfig { field: "shards", reason: "must be at least 1" };
        let msg = e.to_string();
        assert!(msg.contains("shards") && msg.contains("at least 1"), "{msg}");
        let e = PegasusError::UnknownTenant { tenant: 42 };
        assert!(e.to_string().contains("42"));
    }
}

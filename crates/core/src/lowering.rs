//! Lowering trained models (`pegasus-nn` [`ModelSpec`]s) onto primitives.
//!
//! This implements the paper's Table 4 operator translation for the
//! sequential model families (MLP-B, AutoEncoder, and the dense heads of
//! every other model):
//!
//! | DL operator            | primitives emitted                          |
//! |------------------------|---------------------------------------------|
//! | Embedding lookup       | per-element `Map(Embed)`                     |
//! | Element-wise transform | `Map(Affine / Relu / Tanh / Sigmoid)`        |
//! | Weighted aggregation   | `Partition` → `Map(MatVec)` × k → `SumReduce`|
//! | Softmax (argmax head)  | dropped — argmax(softmax(x)) = argmax(x)     |
//!
//! Convolutional and recurrent models are authored directly in primitive
//! form by their builders (see `models`), because their partition structure
//! (overlapping windows, per-time-step reuse) is the design decision the
//! paper's Pegasus Syntax exposes to the developer.

use crate::primitives::{MapFn, PrimitiveProgram, ValueId};
use pegasus_nn::layers::{LayerSpec, NormMode};
use pegasus_nn::{ModelSpec, Tensor};

/// How to split dense-layer inputs into segments.
#[derive(Clone, Copy, Debug)]
pub struct LoweringOptions {
    /// Elements per partition segment for weighted aggregation
    /// (Figure 6's `dim` parameter). Inputs not divisible by this get a
    /// trailing smaller segment.
    pub segment_width: usize,
}

impl Default for LoweringOptions {
    fn default() -> Self {
        LoweringOptions { segment_width: 4 }
    }
}

/// Splits `[0, n)` into consecutive segments of at most `width`.
fn segmentation(n: usize, width: usize) -> (Vec<usize>, Vec<usize>) {
    assert!(width >= 1);
    let mut offsets = Vec::new();
    let mut lens = Vec::new();
    let mut o = 0;
    while o < n {
        let l = width.min(n - o);
        offsets.push(o);
        lens.push(l);
        o += l;
    }
    (offsets, lens)
}

/// Extracts the column block `[.., c0..c0+len]` of a `[rows, cols]` tensor.
fn col_block(w: &Tensor, r0: usize, rows: usize) -> Tensor {
    // Rows r0..r0+rows, all columns — the weight slice a segment multiplies.
    let cols = w.shape()[1];
    let mut out = Tensor::zeros(&[rows, cols]);
    for r in 0..rows {
        for c in 0..cols {
            *out.at2_mut(r, c) = w.at2(r0 + r, c);
        }
    }
    out
}

/// Lowers a sequential model spec to a primitive program.
///
/// Supported layers: Dense, BatchNorm1d (feature mode), Relu, Tanh,
/// Sigmoid, Softmax (only as the final layer, where it is dropped),
/// Embedding (+ the Flatten that follows it), Flatten (no-op on 2-D
/// values). Panics on anything else — conv/rnn models lower through their
/// dedicated builders.
pub fn lower_sequential(spec: &ModelSpec, opts: &LoweringOptions) -> PrimitiveProgram {
    let in_dim = infer_input_dim(spec);
    let mut p = PrimitiveProgram::new(in_dim);
    let mut v = p.input;
    for (li, layer) in spec.layers.iter().enumerate() {
        let is_last = li == spec.layers.len() - 1;
        v = lower_layer(&mut p, v, layer, is_last, opts);
    }
    p.set_output(v);
    p
}

/// Lowers an ordered list of layer specs onto an existing program, starting
/// from value `v`. Returns the final value. Building block for models that
/// mix custom primitives (scaling maps, concats) with standard dense stacks.
pub fn lower_onto(
    p: &mut PrimitiveProgram,
    mut v: ValueId,
    layers: &[LayerSpec],
    opts: &LoweringOptions,
) -> ValueId {
    for (li, layer) in layers.iter().enumerate() {
        v = lower_layer(p, v, layer, li == layers.len() - 1, opts);
    }
    v
}

fn lower_layer(
    p: &mut PrimitiveProgram,
    v: ValueId,
    layer: &LayerSpec,
    is_last: bool,
    opts: &LoweringOptions,
) -> ValueId {
    match layer {
        LayerSpec::Dense { weight, bias } => {
            let in_dim = p.dim(v);
            assert_eq!(weight.shape()[0], in_dim, "dense dim mismatch");
            let (offsets, lens) = segmentation(in_dim, opts.segment_width);
            if offsets.len() == 1 {
                return p
                    .map(v, MapFn::MatVec { weight: weight.clone(), bias: bias.data().to_vec() });
            }
            let segs = p.partition(v, &offsets, &lens);
            let zero_bias = vec![0.0f32; weight.shape()[1]];
            let mapped: Vec<ValueId> = segs
                .iter()
                .enumerate()
                .map(|(si, &s)| {
                    let w = col_block(weight, offsets[si], lens[si]);
                    let b = if si == 0 { bias.data().to_vec() } else { zero_bias.clone() };
                    p.map(s, MapFn::MatVec { weight: w, bias: b })
                })
                .collect();
            p.sum_reduce(&mapped)
        }
        LayerSpec::BatchNorm1d { gamma, beta, running_mean, running_var, eps, mode } => {
            assert_eq!(*mode, NormMode::Feature, "channel-mode BN lowers via conv builders");
            let dim = p.dim(v);
            assert_eq!(gamma.len(), dim, "batchnorm dim mismatch");
            let mut scale = Vec::with_capacity(dim);
            let mut shift = Vec::with_capacity(dim);
            for i in 0..dim {
                let inv = 1.0 / (running_var.data()[i] + eps).sqrt();
                let s = gamma.data()[i] * inv;
                scale.push(s);
                shift.push(beta.data()[i] - s * running_mean.data()[i]);
            }
            p.map(v, MapFn::Affine { scale, shift })
        }
        LayerSpec::Relu => p.map(v, MapFn::Relu),
        LayerSpec::Tanh => p.map(v, MapFn::Tanh),
        LayerSpec::Sigmoid => p.map(v, MapFn::Sigmoid),
        LayerSpec::Softmax => {
            assert!(is_last, "softmax only lowers as the final layer (argmax-invariant drop)");
            v
        }
        LayerSpec::Embedding { table } => {
            // One Map(Embed) per input element (Table 4: embedding lookup
            // is a single Map) — kept whole-vector here; the compiler's
            // exact-enumeration path turns per-element lookups into 256-entry
            // SRAM tables after fusion partitions them.
            p.map(v, MapFn::Embed { table: table.clone() })
        }
        LayerSpec::Flatten => v, // values are already flat vectors
        other => panic!("layer {} does not lower via lower_sequential", other.name()),
    }
}

fn infer_input_dim(spec: &ModelSpec) -> usize {
    for layer in &spec.layers {
        match layer {
            LayerSpec::Dense { weight, .. } => return weight.shape()[0],
            LayerSpec::BatchNorm1d { gamma, .. } => return gamma.len(),
            // Embedding consumes [batch, time]; time is context-dependent —
            // callers with embeddings should build programs explicitly.
            _ => continue,
        }
    }
    panic!("cannot infer input dim from model spec")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fusion::fuse_basic;
    use pegasus_nn::init::rng;
    use pegasus_nn::layers::{BatchNorm1d, Dense, Layer, NormMode, Relu, Softmax};
    use pegasus_nn::{Sequential, Tensor};

    fn mlp(seed: u64) -> Sequential {
        let mut r = rng(seed);
        let mut m = Sequential::new();
        m.add(Box::new(BatchNorm1d::new(8, NormMode::Feature)));
        m.add(Box::new(Dense::new(&mut r, 8, 6)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 6, 3)));
        m.add(Box::new(Softmax::new()));
        m
    }

    /// Settle BN running stats so inference-mode outputs are meaningful.
    fn settle_bn(m: &mut Sequential, seed: u64) {
        let mut r = rng(seed);
        for _ in 0..50 {
            let x = pegasus_nn::init::normal(&mut r, &[32, 8], 20.0);
            let _ = m.forward(&x, true);
        }
    }

    #[test]
    fn lowered_program_matches_model_inference() {
        let mut m = mlp(1);
        settle_bn(&mut m, 2);
        let spec = m.to_spec("mlp");
        let prog = lower_sequential(&spec, &LoweringOptions::default());

        let mut r = rng(3);
        for _ in 0..20 {
            let x = pegasus_nn::init::normal(&mut r, &[1, 8], 20.0);
            let want = m.forward(&x, false);
            // Model ends in softmax; program drops it — compare pre-softmax
            // by rank order instead.
            let got = prog.eval(x.row(0));
            let want_arg = want.argmax_rows()[0];
            let got_arg = got
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(want_arg, got_arg);
        }
    }

    #[test]
    fn lowered_values_match_exactly_without_softmax() {
        let mut r = rng(4);
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 8, 4)));
        m.add(Box::new(Relu::new()));
        m.add(Box::new(Dense::new(&mut r, 4, 2)));
        let spec = m.to_spec("m");
        let prog = lower_sequential(&spec, &LoweringOptions { segment_width: 3 });
        for _ in 0..10 {
            let x = pegasus_nn::init::normal(&mut r, &[1, 8], 1.0);
            let want = m.forward(&x, false);
            let got = prog.eval(x.row(0));
            for (a, b) in want.row(0).iter().zip(got.iter()) {
                assert!((a - b).abs() < 1e-4, "{want:?} vs {got:?}");
            }
        }
    }

    #[test]
    fn segmentation_handles_remainders() {
        let (offsets, lens) = segmentation(10, 4);
        assert_eq!(offsets, vec![0, 4, 8]);
        assert_eq!(lens, vec![4, 4, 2]);
    }

    #[test]
    fn fusion_collapses_lowered_mlp_to_block_form() {
        let mut m = mlp(5);
        settle_bn(&mut m, 6);
        let spec = m.to_spec("mlp");
        let mut prog = lower_sequential(&spec, &LoweringOptions { segment_width: 4 });
        let stats = fuse_basic(&mut prog);
        // Two dense blocks, segment width 4: 8/4=2 segments + 6/4=2 segments
        // = 4 fused maps (BN and ReLU folded into them).
        assert_eq!(stats.maps_after, 4, "{stats:?}");
    }

    #[test]
    fn single_segment_dense_needs_no_partition() {
        let mut r = rng(7);
        let mut m = Sequential::new();
        m.add(Box::new(Dense::new(&mut r, 3, 2)));
        let spec = m.to_spec("m");
        let prog = lower_sequential(&spec, &LoweringOptions { segment_width: 4 });
        assert_eq!(prog.map_count(), 1);
        assert_eq!(prog.reduce_count(), 0);
    }

    #[test]
    fn embedding_lowering_matches_layer() {
        let table = Tensor::from_vec(vec![0.0, 1.0, 10.0, 11.0, 20.0, 21.0], &[3, 2]);
        let mut emb = pegasus_nn::layers::Embedding::from_parts(table.clone());
        let spec = ModelSpec {
            name: "e".into(),
            layers: vec![
                LayerSpec::Dense { weight: Tensor::zeros(&[2, 2]), bias: Tensor::zeros(&[2]) }, // only to infer input dim 2
            ],
        };
        let _ = spec;
        // Build program manually for the embed check.
        let mut p = PrimitiveProgram::new(2);
        let input = p.input;
        let v = lower_layer(
            &mut p,
            input,
            &LayerSpec::Embedding { table },
            false,
            &LoweringOptions::default(),
        );
        p.set_output(v);
        let got = p.eval(&[2.0, 0.0]);
        let want = emb.forward(&Tensor::from_vec(vec![2.0, 0.0], &[1, 2]), false);
        assert_eq!(got, want.data());
    }

    #[test]
    #[should_panic(expected = "does not lower")]
    fn unsupported_layers_panic() {
        let spec = ModelSpec {
            name: "bad".into(),
            layers: vec![
                LayerSpec::Dense { weight: Tensor::zeros(&[4, 4]), bias: Tensor::zeros(&[4]) },
                LayerSpec::GlobalMaxPool1d,
            ],
        };
        let _ = lower_sequential(&spec, &LoweringOptions::default());
    }
}
